/**
 * @file
 * Surface normals, curvature keypoints, and descriptor matching — the
 * "Recognition" workload of Fig. 4b (PCL-style 3-D object recognition:
 * normal estimation -> keypoints -> descriptors -> correspondence).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/mem_trace.h"
#include "pointcloud/kdtree.h"
#include "pointcloud/point_cloud.h"

namespace sov {

/** Normal + curvature at one point. */
struct SurfaceNormal
{
    Vec3 normal;      //!< unit, sign-disambiguated toward +z
    double curvature; //!< lambda0 / (lambda0+lambda1+lambda2)
    bool valid = false;
};

/**
 * PCA normal estimation over a radius neighborhood.
 * Points with fewer than 3 neighbors get valid == false.
 */
std::vector<SurfaceNormal> estimateNormals(const PointCloud &cloud,
                                           const KdTree &tree,
                                           double radius,
                                           MemTrace *trace = nullptr);

/**
 * Indices of curvature keypoints: local curvature above
 * @p curvature_threshold and maximal within @p radius.
 */
std::vector<std::uint32_t> curvatureKeypoints(
    const PointCloud &cloud, const KdTree &tree,
    const std::vector<SurfaceNormal> &normals,
    double radius, double curvature_threshold,
    MemTrace *trace = nullptr);

/** A simple rotation-invariant neighborhood descriptor (radial
 *  distance histogram, 8 bins). */
struct Descriptor
{
    static constexpr std::size_t kBins = 8;
    double bins[kBins] = {};

    /** L2 distance between descriptors. */
    double distanceTo(const Descriptor &o) const;
};

/** Compute descriptors at the given keypoints. */
std::vector<Descriptor> computeDescriptors(
    const PointCloud &cloud, const KdTree &tree,
    const std::vector<std::uint32_t> &keypoints, double radius,
    MemTrace *trace = nullptr);

/** A matched keypoint pair (indices into the two keypoint arrays). */
struct Correspondence
{
    std::uint32_t query;
    std::uint32_t match;
    double distance;
};

/**
 * Greedy nearest-descriptor matching with a ratio test.
 * @param ratio Lowe-style threshold; best/second-best must be below it.
 */
std::vector<Correspondence> matchDescriptors(
    const std::vector<Descriptor> &query,
    const std::vector<Descriptor> &train, double ratio = 0.8);

} // namespace sov
