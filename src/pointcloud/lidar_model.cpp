#include "pointcloud/lidar_model.h"

#include <cmath>

namespace sov {

PointCloud
LidarModel::scan(const WorldSnapshot &world, const Pose2 &pose, Timestamp t,
                 std::uint32_t cloud_id)
{
    PointCloud cloud(cloud_id);
    cloud.reserve(config_.rings * config_.azimuth_steps / 4);

    const double min_el = config_.min_elevation_deg * M_PI / 180.0;
    const double max_el = config_.max_elevation_deg * M_PI / 180.0;

    for (std::uint32_t ring = 0; ring < config_.rings; ++ring) {
        const double elevation = config_.rings > 1
            ? min_el + (max_el - min_el) * ring / (config_.rings - 1)
            : 0.0;
        const double cos_el = std::cos(elevation);
        const double sin_el = std::sin(elevation);

        for (std::uint32_t a = 0; a < config_.azimuth_steps; ++a) {
            const double azimuth = pose.heading +
                2.0 * M_PI * a / config_.azimuth_steps;
            const Vec2 dir2(std::cos(azimuth), std::sin(azimuth));

            // Obstacle hit: planar raycast; the beam strikes the box if
            // the hit point is below the obstacle's height.
            double range = config_.max_range;
            bool hit = false;
            double hit_z = 0.0;
            if (const auto d = world.raycast(pose.position, dir2,
                                             config_.max_range, t)) {
                const double horizontal = *d;
                const double beam_z = config_.mount_height +
                    horizontal / cos_el * sin_el;
                // Find which obstacle to check height against: use the
                // tallest plausible obstacle height (conservative).
                if (beam_z >= 0.0 && beam_z <= 2.5 && horizontal > 0.01) {
                    range = horizontal / cos_el;
                    hit = true;
                    hit_z = beam_z;
                }
            }

            // Ground intersection for downward beams that miss objects.
            if (!hit && sin_el < -1e-6) {
                const double ground_range =
                    -config_.mount_height / sin_el;
                if (ground_range <= config_.max_range) {
                    range = ground_range;
                    hit = true;
                    hit_z = 0.0;
                }
            }

            if (!hit)
                continue; // beam escapes to the sky

            const double noisy =
                range + rng_.gaussian(0.0, config_.range_noise_sigma);
            const double horizontal = noisy * cos_el;
            cloud.add(Vec3(pose.position.x() + dir2.x() * horizontal,
                           pose.position.y() + dir2.y() * horizontal,
                           hit_z));
        }
    }
    return cloud;
}

} // namespace sov
