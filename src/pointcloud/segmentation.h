/**
 * @file
 * Euclidean cluster segmentation — the "Segmentation" workload of
 * Fig. 4b. Groups points whose mutual distance is below a tolerance,
 * the PCL EuclideanClusterExtraction equivalent.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/mem_trace.h"
#include "pointcloud/kdtree.h"
#include "pointcloud/point_cloud.h"

namespace sov {

/** Parameters of Euclidean clustering. */
struct SegmentationConfig
{
    double cluster_tolerance = 0.5; //!< meters
    std::size_t min_cluster_size = 5;
    std::size_t max_cluster_size = 100000;
};

/** One extracted cluster: indices into the source cloud. */
struct Cluster
{
    std::vector<std::uint32_t> indices;
    Vec3 centroid;
};

/**
 * Extract Euclidean clusters via BFS over radius neighborhoods.
 * @param tree kd-tree built over @p cloud.
 * @param trace Optional memory-trace instrumentation.
 */
std::vector<Cluster> euclideanClusters(const PointCloud &cloud,
                                       const KdTree &tree,
                                       const SegmentationConfig &config = {},
                                       MemTrace *trace = nullptr);

/**
 * Remove ground points by height threshold — the usual pre-processing
 * step before clustering obstacles in a LiDAR pipeline.
 * @return Indices of the non-ground points.
 */
std::vector<std::uint32_t> removeGround(const PointCloud &cloud,
                                        double ground_z_threshold = 0.2);

} // namespace sov
