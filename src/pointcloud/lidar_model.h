/**
 * @file
 * Synthetic spinning-LiDAR model.
 *
 * We do not mount LiDARs (Sec. III-D argues against them), but the
 * case-study needs realistic point clouds to characterize. This model
 * raycasts a Velodyne-style scan pattern (rings of azimuth steps at
 * several elevation angles) against the world's obstacles and the
 * ground plane, producing clouds with the irregular spatial density of
 * real scans.
 */
#pragma once

#include <cstdint>

#include "core/rng.h"
#include "core/time.h"
#include "math/geometry.h"
#include "pointcloud/point_cloud.h"
#include "world/world.h"

namespace sov {

/** Scan-pattern parameters (defaults approximate a 16-ring unit). */
struct LidarConfig
{
    std::uint32_t rings = 16;          //!< elevation channels
    std::uint32_t azimuth_steps = 900; //!< horizontal samples per rev
    double min_elevation_deg = -15.0;
    double max_elevation_deg = 15.0;
    double max_range = 60.0;           //!< meters
    double range_noise_sigma = 0.02;   //!< paper: ~2 cm ToF precision
    double mount_height = 1.8;         //!< meters above ground
};

/** Synthetic LiDAR attached to the ego vehicle. */
class LidarModel
{
  public:
    LidarModel(const LidarConfig &config, Rng rng)
        : config_(config), rng_(std::move(rng)) {}

    /**
     * Capture one scan from @p pose at time @p t.
     * @param cloud_id Id to stamp onto the produced cloud.
     */
    PointCloud scan(const WorldSnapshot &world, const Pose2 &pose, Timestamp t,
                    std::uint32_t cloud_id);

    const LidarConfig &config() const { return config_; }

  private:
    LidarConfig config_;
    Rng rng_;
};

} // namespace sov
