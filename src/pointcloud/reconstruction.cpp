#include "pointcloud/reconstruction.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/logging.h"

namespace sov {

double
Mesh::surfaceArea(const PointCloud &cloud) const
{
    double area = 0.0;
    for (const auto &t : triangles) {
        const Vec3 ab = cloud[t.b] - cloud[t.a];
        const Vec3 ac = cloud[t.c] - cloud[t.a];
        area += 0.5 * ab.cross(ac).norm();
    }
    return area;
}

Mesh
greedyTriangulation(const PointCloud &cloud, const KdTree &tree,
                    const ReconstructionConfig &config, MemTrace *trace)
{
    SOV_ASSERT(&tree.cloud() == &cloud);
    Mesh mesh;
    const double max_edge2 =
        config.max_edge_length * config.max_edge_length;

    // Edges already used by two triangles are closed.
    std::set<std::pair<std::uint32_t, std::uint32_t>> used_edges;
    const auto edge_key = [](std::uint32_t x, std::uint32_t y) {
        return std::make_pair(std::min(x, y), std::max(x, y));
    };

    for (std::uint32_t i = 0; i < cloud.size(); ++i) {
        if (trace)
            trace->touchPoint(cloud.id(), i);
        auto neighbors = tree.kNearest(cloud[i], config.max_neighbors + 1,
                                       trace);
        // Drop the query point itself.
        std::erase_if(neighbors,
                      [i](const Neighbor &n) { return n.index == i; });

        // Fan-triangulate consecutive neighbor pairs around i.
        for (std::size_t a = 0; a + 1 < neighbors.size(); ++a) {
            const std::uint32_t na = neighbors[a].index;
            const std::uint32_t nb = neighbors[a + 1].index;
            if (na <= i || nb <= i)
                continue; // each triangle emitted once (by lowest index)
            if ((cloud[na] - cloud[nb]).squaredNorm() > max_edge2 ||
                neighbors[a].squared_distance > max_edge2 ||
                neighbors[a + 1].squared_distance > max_edge2) {
                continue;
            }
            const auto e1 = edge_key(i, na);
            const auto e2 = edge_key(i, nb);
            const auto e3 = edge_key(na, nb);
            if (used_edges.count(e3))
                continue; // opposite edge already meshed
            // Reject degenerate slivers.
            const Vec3 ab = cloud[na] - cloud[i];
            const Vec3 ac = cloud[nb] - cloud[i];
            if (ab.cross(ac).norm() < 1e-9)
                continue;
            mesh.triangles.push_back(Triangle{i, na, nb});
            used_edges.insert(e1);
            used_edges.insert(e2);
            used_edges.insert(e3);
        }
    }
    return mesh;
}

} // namespace sov
