#include "pointcloud/kdtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.h"
#include "math/simd_kernels.h"

namespace sov {

namespace {

/**
 * Scalar leaf scan, inlined for the SimdLevel::None tier: rounds
 * exactly like simd::nearestLeaf's scalar body (left-associated sum,
 * strict improvement — which the vector paths replay bit-for-bit), so
 * the tiers stay bitwise interchangeable while the None path skips a
 * cross-TU call plus level dispatch per leaf — real money on
 * kLeafSize-point leaves visited once per query.
 */
inline void
scanLeafInline(const double *xs, const double *ys, const double *zs,
               std::size_t n, const double qc[3], double &best_d2,
               std::size_t &best_off)
{
    for (std::size_t i = 0; i < n; ++i) {
        const double dx = xs[i] - qc[0];
        const double dy = ys[i] - qc[1];
        const double dz = zs[i] - qc[2];
        const double d2 = dx * dx + dy * dy + dz * dz;
        if (d2 < best_d2) {
            best_d2 = d2;
            best_off = i;
        }
    }
}

} // namespace

KdTree::KdTree(const PointCloud &cloud, std::uint32_t tree_id)
    : cloud_(cloud), tree_id_(tree_id)
{
    indices_.resize(cloud.size());
    std::iota(indices_.begin(), indices_.end(), 0u);
    if (!cloud.empty())
        root_ = build(0, static_cast<std::uint32_t>(cloud.size()), 0);

    // Leaf-ordered SoA mirror for nearestFast: one sequential pass at
    // build time buys contiguous (and vectorizable) leaf scans on
    // every query.
    leaf_x_.resize(cloud.size());
    leaf_y_.resize(cloud.size());
    leaf_z_.resize(cloud.size());
    for (std::size_t i = 0; i < indices_.size(); ++i) {
        const Vec3 &p = cloud_[indices_[i]];
        leaf_x_[i] = p.x();
        leaf_y_[i] = p.y();
        leaf_z_[i] = p.z();
    }

    buildLeafPaths();
}

void
KdTree::buildLeafPaths()
{
    leaf_of_point_.assign(cloud_.size(), -1);
    path_begin_.assign(nodes_.size(), 0);
    path_count_.assign(nodes_.size(), 0);
    if (root_ < 0)
        return;

    // DFS carrying the ancestor-plane path; at each leaf, flush the
    // path (deepest plane first — tightest prune first on replay) and
    // record the leaf id for every point it holds.
    std::vector<PathEntry> path; // ancestors of the current node
    const auto dfs = [&](const auto &self, std::int32_t node_id) -> void {
        const Node &node = nodes_[node_id];
        if (node.leaf) {
            path_begin_[node_id] =
                static_cast<std::uint32_t>(path_entries_.size());
            path_count_[node_id] =
                static_cast<std::uint32_t>(path.size());
            for (auto it = path.rbegin(); it != path.rend(); ++it)
                path_entries_.push_back(*it);
            for (std::uint32_t i = node.begin; i < node.end; ++i)
                leaf_of_point_[indices_[i]] = node_id;
            return;
        }
        PathEntry entry;
        entry.split = node.split;
        entry.dim = node.dim;
        entry.far = node.right;
        entry.via_left = 1;
        path.push_back(entry);
        self(self, node.left);
        path.back().far = node.left;
        path.back().via_left = 0;
        self(self, node.right);
        path.pop_back();
    };
    dfs(dfs, root_);
}

std::int32_t
KdTree::build(std::uint32_t begin, std::uint32_t end, int depth)
{
    Node node;
    if (end - begin <= kLeafSize) {
        node.leaf = true;
        node.begin = begin;
        node.end = end;
        nodes_.push_back(node);
        return static_cast<std::int32_t>(nodes_.size() - 1);
    }

    // Split on the widest dimension of this subset's bounding box.
    Vec3 lo = cloud_[indices_[begin]];
    Vec3 hi = lo;
    for (std::uint32_t i = begin; i < end; ++i) {
        const Vec3 &p = cloud_[indices_[i]];
        for (std::size_t d = 0; d < 3; ++d) {
            lo[d] = std::min(lo[d], p[d]);
            hi[d] = std::max(hi[d], p[d]);
        }
    }
    std::uint8_t dim = 0;
    double widest = hi[0] - lo[0];
    for (std::uint8_t d = 1; d < 3; ++d) {
        if (hi[d] - lo[d] > widest) {
            widest = hi[d] - lo[d];
            dim = d;
        }
    }

    const std::uint32_t mid = (begin + end) / 2;
    std::nth_element(indices_.begin() + begin, indices_.begin() + mid,
                     indices_.begin() + end,
                     [this, dim](std::uint32_t a, std::uint32_t b) {
                         return cloud_[a][dim] < cloud_[b][dim];
                     });

    node.dim = dim;
    node.split = static_cast<float>(cloud_[indices_[mid]][dim]);
    nodes_.push_back(node);
    const std::int32_t self = static_cast<std::int32_t>(nodes_.size() - 1);
    const std::int32_t left = build(begin, mid, depth + 1);
    const std::int32_t right = build(mid, end, depth + 1);
    nodes_[self].left = left;
    nodes_[self].right = right;
    return self;
}

std::optional<Neighbor>
KdTree::nearest(const Vec3 &query, MemTrace *trace) const
{
    if (root_ < 0)
        return std::nullopt;
    Neighbor best{0, std::numeric_limits<double>::max()};
    searchNearest(root_, query, best, trace);
    return best;
}

void
KdTree::searchNearest(std::int32_t node_id, const Vec3 &query,
                      Neighbor &best, MemTrace *trace) const
{
    const Node &node = nodes_[node_id];
    if (trace)
        trace->touchNode(tree_id_, static_cast<std::uint32_t>(node_id));

    if (node.leaf) {
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
            const std::uint32_t idx = indices_[i];
            if (trace)
                trace->touchPoint(cloud_.id(), idx);
            const double d2 = (cloud_[idx] - query).squaredNorm();
            if (d2 < best.squared_distance)
                best = Neighbor{idx, d2};
        }
        return;
    }

    const double delta = query[node.dim] - node.split;
    const std::int32_t near = delta <= 0.0 ? node.left : node.right;
    const std::int32_t far = delta <= 0.0 ? node.right : node.left;
    searchNearest(near, query, best, trace);
    if (delta * delta < best.squared_distance)
        searchNearest(far, query, best, trace);
}

void
KdTree::descendNearest(std::int32_t node_id, const double qc[3],
                       Neighbor &best, double prune_scale,
                       SimdLevel level) const
{
    // Deferred far subtrees, deepest on top — popping them after the
    // near descent replays the recursive near/far visit order exactly,
    // and each pop re-tests its split distance against the *current*
    // best, just like the recursion does on unwind.
    struct Deferred
    {
        std::int32_t node;
        double delta2;
    };
    Deferred stack[64];
    std::size_t top = 0;

    for (;;) {
        const Node &node = nodes_[node_id];
        if (!node.leaf) {
            const double delta = qc[node.dim] - node.split;
            const double delta2 = delta * delta;
            const std::int32_t far =
                delta <= 0.0 ? node.right : node.left;
            // Defer the far child only while it is still reachable:
            // the prune test is strict and best only shrinks, so a
            // subtree failing it now would fail it on unwind too —
            // skipping the push changes nothing but the stack traffic
            // (the big win for warm-started queries, whose tight
            // initial best rejects nearly every far subtree here).
            if (delta2 < best.squared_distance * prune_scale) {
                SOV_ASSERT(top < sizeof(stack) / sizeof(stack[0]));
                stack[top++] = Deferred{far, delta2};
            }
            node_id = delta <= 0.0 ? node.left : node.right;
            continue;
        }

        double best_d2 = best.squared_distance;
        std::size_t off = simd::kNoImprovement;
        if (level == SimdLevel::None)
            scanLeafInline(leaf_x_.data() + node.begin,
                           leaf_y_.data() + node.begin,
                           leaf_z_.data() + node.begin,
                           node.end - node.begin, qc, best_d2, off);
        else
            simd::nearestLeaf(leaf_x_.data() + node.begin,
                              leaf_y_.data() + node.begin,
                              leaf_z_.data() + node.begin,
                              node.end - node.begin, qc[0], qc[1],
                              qc[2], best_d2, off, level);
        if (off != simd::kNoImprovement)
            best = Neighbor{indices_[node.begin +
                                     static_cast<std::uint32_t>(off)],
                            best_d2};

        // Unwind: first deferred subtree still worth visiting.
        for (;;) {
            if (top == 0)
                return;
            const Deferred d = stack[--top];
            if (d.delta2 < best.squared_distance * prune_scale) {
                node_id = d.node;
                break;
            }
        }
    }
}

std::optional<Neighbor>
KdTree::nearestFast(const Vec3 &query, SimdLevel level,
                    double approx_epsilon,
                    std::uint32_t seed_index) const
{
    if (root_ < 0)
        return std::nullopt;

    // With ε > 0 a far subtree is only visited when it could beat the
    // best by more than (1+ε) in distance: delta² < best/(1+ε)².
    const double prune_scale =
        1.0 / ((1.0 + approx_epsilon) * (1.0 + approx_epsilon));

    Neighbor best{0, std::numeric_limits<double>::max()};
    const double qc[3] = {query.x(), query.y(), query.z()};

    if (seed_index == kNoSeed || seed_index >= cloud_.size()) {
        descendNearest(root_, qc, best, prune_scale, level);
        return best;
    }

    // Warm start — bottom-up from the seed's leaf. Seeding best with
    // a known-good candidate can only tighten the pruning bound, so
    // the returned distance is still the exact (or ε-approximate)
    // nearest; scans replace only on strict improvement, so a tie
    // keeps the seed. Only tie-breaking may differ from the unseeded
    // query. Instead of chasing root→leaf pointers, jump straight to
    // the seed's leaf, scan it, then replay its precomputed ancestor
    // planes (deepest first): the far sibling is descended only when
    // the query sits on its side of the plane (the pose moved the
    // point across a split, so the subtree may hold arbitrarily close
    // points) or the plane is nearer than the current best — exactly
    // the subtrees a top-down traversal could not prune. For a tight
    // seed this is a branch-free linear scan that prunes everything.
    {
        const Vec3 &s = cloud_[seed_index];
        const double dx = s.x() - qc[0];
        const double dy = s.y() - qc[1];
        const double dz = s.z() - qc[2];
        best = Neighbor{seed_index, dx * dx + dy * dy + dz * dz};
    }

    const std::int32_t leaf_id = leaf_of_point_[seed_index];
    const Node &leaf = nodes_[leaf_id];
    double best_d2 = best.squared_distance;
    std::size_t off = simd::kNoImprovement;
    if (level == SimdLevel::None)
        scanLeafInline(leaf_x_.data() + leaf.begin,
                       leaf_y_.data() + leaf.begin,
                       leaf_z_.data() + leaf.begin,
                       leaf.end - leaf.begin, qc, best_d2, off);
    else
        simd::nearestLeaf(leaf_x_.data() + leaf.begin,
                          leaf_y_.data() + leaf.begin,
                          leaf_z_.data() + leaf.begin,
                          leaf.end - leaf.begin, qc[0], qc[1], qc[2],
                          best_d2, off, level);
    if (off != simd::kNoImprovement)
        best = Neighbor{
            indices_[leaf.begin + static_cast<std::uint32_t>(off)],
            best_d2};

    const PathEntry *entry = path_entries_.data() + path_begin_[leaf_id];
    const PathEntry *end = entry + path_count_[leaf_id];
    for (; entry != end; ++entry) {
        const double delta = qc[entry->dim] - entry->split;
        // Query on the sibling's side of the plane (delta > 0 leads
        // right; ties lead left, like the recursion's near choice)?
        const bool wrong_side =
            entry->via_left ? delta > 0.0 : delta <= 0.0;
        if (wrong_side ||
            delta * delta < best.squared_distance * prune_scale)
            descendNearest(entry->far, qc, best, prune_scale, level);
    }
    return best;
}

void
KdTree::nearestBatch(const double *qx, const double *qy,
                     const double *qz, std::size_t n,
                     const std::uint32_t *seeds,
                     std::uint32_t *out_index, double *out_d2,
                     SimdLevel level, double approx_epsilon) const
{
    if (root_ < 0) {
        for (std::size_t i = 0; i < n; ++i) {
            out_index[i] = kNoSeed;
            out_d2[i] = std::numeric_limits<double>::max();
        }
        return;
    }

    // A lone descent keeps its whole state — current node, best, the
    // deferred stack — in registers; measured against that, software
    // round-robin interleaving of several traversals spills every
    // lane's state to the stack and runs ~2× slower per query. So the
    // batch runs queries back to back, and its win over caller-side
    // nearestFast calls is the inlined per-query setup (no Vec3 or
    // optional round trips) on top of the SoA-friendly interface.
    // The body below IS nearestFast's seeded/unseeded logic verbatim,
    // so results are bitwise identical to sequential calls.
    const double prune_scale =
        1.0 / ((1.0 + approx_epsilon) * (1.0 + approx_epsilon));
    const std::size_t cloud_size = cloud_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double qc[3] = {qx[i], qy[i], qz[i]};
        Neighbor best{0, std::numeric_limits<double>::max()};
        const std::uint32_t seed = seeds ? seeds[i] : kNoSeed;
        if (seed == kNoSeed || seed >= cloud_size) {
            descendNearest(root_, qc, best, prune_scale, level);
            out_index[i] = best.index;
            out_d2[i] = best.squared_distance;
            continue;
        }

        const Vec3 &s = cloud_[seed];
        const double dx = s.x() - qc[0];
        const double dy = s.y() - qc[1];
        const double dz = s.z() - qc[2];
        best = Neighbor{seed, dx * dx + dy * dy + dz * dz};

        const std::int32_t leaf_id = leaf_of_point_[seed];
        const Node &leaf = nodes_[leaf_id];
        double best_d2 = best.squared_distance;
        std::size_t off = simd::kNoImprovement;
        if (level == SimdLevel::None)
            scanLeafInline(leaf_x_.data() + leaf.begin,
                           leaf_y_.data() + leaf.begin,
                           leaf_z_.data() + leaf.begin,
                           leaf.end - leaf.begin, qc, best_d2, off);
        else
            simd::nearestLeaf(leaf_x_.data() + leaf.begin,
                              leaf_y_.data() + leaf.begin,
                              leaf_z_.data() + leaf.begin,
                              leaf.end - leaf.begin, qc[0], qc[1],
                              qc[2], best_d2, off, level);
        if (off != simd::kNoImprovement)
            best = Neighbor{
                indices_[leaf.begin + static_cast<std::uint32_t>(off)],
                best_d2};

        const PathEntry *entry =
            path_entries_.data() + path_begin_[leaf_id];
        const PathEntry *end = entry + path_count_[leaf_id];
        for (; entry != end; ++entry) {
            const double delta = qc[entry->dim] - entry->split;
            const bool wrong_side =
                entry->via_left ? delta > 0.0 : delta <= 0.0;
            if (wrong_side ||
                delta * delta < best.squared_distance * prune_scale)
                descendNearest(entry->far, qc, best, prune_scale,
                               level);
        }
        out_index[i] = best.index;
        out_d2[i] = best.squared_distance;
    }
}

std::vector<Neighbor>
KdTree::radiusSearch(const Vec3 &query, double radius,
                     MemTrace *trace) const
{
    std::vector<Neighbor> out;
    if (root_ >= 0)
        searchRadius(root_, query, radius * radius, out, trace);
    return out;
}

void
KdTree::searchRadius(std::int32_t node_id, const Vec3 &query,
                     double radius2, std::vector<Neighbor> &out,
                     MemTrace *trace) const
{
    const Node &node = nodes_[node_id];
    if (trace)
        trace->touchNode(tree_id_, static_cast<std::uint32_t>(node_id));

    if (node.leaf) {
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
            const std::uint32_t idx = indices_[i];
            if (trace)
                trace->touchPoint(cloud_.id(), idx);
            const double d2 = (cloud_[idx] - query).squaredNorm();
            if (d2 <= radius2)
                out.push_back(Neighbor{idx, d2});
        }
        return;
    }

    const double delta = query[node.dim] - node.split;
    const std::int32_t near = delta <= 0.0 ? node.left : node.right;
    const std::int32_t far = delta <= 0.0 ? node.right : node.left;
    searchRadius(near, query, radius2, out, trace);
    if (delta * delta <= radius2)
        searchRadius(far, query, radius2, out, trace);
}

std::vector<Neighbor>
KdTree::kNearest(const Vec3 &query, std::size_t k, MemTrace *trace) const
{
    std::vector<Neighbor> heap; // max-heap on squared distance
    if (root_ >= 0 && k > 0)
        searchKNearest(root_, query, k, heap, trace);
    std::sort(heap.begin(), heap.end(),
              [](const Neighbor &a, const Neighbor &b) {
                  return a.squared_distance < b.squared_distance;
              });
    return heap;
}

void
KdTree::searchKNearest(std::int32_t node_id, const Vec3 &query,
                       std::size_t k, std::vector<Neighbor> &heap,
                       MemTrace *trace) const
{
    const auto cmp = [](const Neighbor &a, const Neighbor &b) {
        return a.squared_distance < b.squared_distance;
    };
    const Node &node = nodes_[node_id];
    if (trace)
        trace->touchNode(tree_id_, static_cast<std::uint32_t>(node_id));

    if (node.leaf) {
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
            const std::uint32_t idx = indices_[i];
            if (trace)
                trace->touchPoint(cloud_.id(), idx);
            const double d2 = (cloud_[idx] - query).squaredNorm();
            if (heap.size() < k) {
                heap.push_back(Neighbor{idx, d2});
                std::push_heap(heap.begin(), heap.end(), cmp);
            } else if (d2 < heap.front().squared_distance) {
                std::pop_heap(heap.begin(), heap.end(), cmp);
                heap.back() = Neighbor{idx, d2};
                std::push_heap(heap.begin(), heap.end(), cmp);
            }
        }
        return;
    }

    const double delta = query[node.dim] - node.split;
    const std::int32_t near = delta <= 0.0 ? node.left : node.right;
    const std::int32_t far = delta <= 0.0 ? node.right : node.left;
    searchKNearest(near, query, k, heap, trace);
    const double worst = heap.size() < k
        ? std::numeric_limits<double>::max()
        : heap.front().squared_distance;
    if (delta * delta < worst)
        searchKNearest(far, query, k, heap, trace);
}

} // namespace sov
