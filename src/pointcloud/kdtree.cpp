#include "pointcloud/kdtree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.h"

namespace sov {

KdTree::KdTree(const PointCloud &cloud, std::uint32_t tree_id)
    : cloud_(cloud), tree_id_(tree_id)
{
    indices_.resize(cloud.size());
    std::iota(indices_.begin(), indices_.end(), 0u);
    if (!cloud.empty())
        root_ = build(0, static_cast<std::uint32_t>(cloud.size()), 0);
}

std::int32_t
KdTree::build(std::uint32_t begin, std::uint32_t end, int depth)
{
    Node node;
    if (end - begin <= kLeafSize) {
        node.leaf = true;
        node.begin = begin;
        node.end = end;
        nodes_.push_back(node);
        return static_cast<std::int32_t>(nodes_.size() - 1);
    }

    // Split on the widest dimension of this subset's bounding box.
    Vec3 lo = cloud_[indices_[begin]];
    Vec3 hi = lo;
    for (std::uint32_t i = begin; i < end; ++i) {
        const Vec3 &p = cloud_[indices_[i]];
        for (std::size_t d = 0; d < 3; ++d) {
            lo[d] = std::min(lo[d], p[d]);
            hi[d] = std::max(hi[d], p[d]);
        }
    }
    std::uint8_t dim = 0;
    double widest = hi[0] - lo[0];
    for (std::uint8_t d = 1; d < 3; ++d) {
        if (hi[d] - lo[d] > widest) {
            widest = hi[d] - lo[d];
            dim = d;
        }
    }

    const std::uint32_t mid = (begin + end) / 2;
    std::nth_element(indices_.begin() + begin, indices_.begin() + mid,
                     indices_.begin() + end,
                     [this, dim](std::uint32_t a, std::uint32_t b) {
                         return cloud_[a][dim] < cloud_[b][dim];
                     });

    node.dim = dim;
    node.split = static_cast<float>(cloud_[indices_[mid]][dim]);
    nodes_.push_back(node);
    const std::int32_t self = static_cast<std::int32_t>(nodes_.size() - 1);
    const std::int32_t left = build(begin, mid, depth + 1);
    const std::int32_t right = build(mid, end, depth + 1);
    nodes_[self].left = left;
    nodes_[self].right = right;
    return self;
}

std::optional<Neighbor>
KdTree::nearest(const Vec3 &query, MemTrace *trace) const
{
    if (root_ < 0)
        return std::nullopt;
    Neighbor best{0, std::numeric_limits<double>::max()};
    searchNearest(root_, query, best, trace);
    return best;
}

void
KdTree::searchNearest(std::int32_t node_id, const Vec3 &query,
                      Neighbor &best, MemTrace *trace) const
{
    const Node &node = nodes_[node_id];
    if (trace)
        trace->touchNode(tree_id_, static_cast<std::uint32_t>(node_id));

    if (node.leaf) {
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
            const std::uint32_t idx = indices_[i];
            if (trace)
                trace->touchPoint(cloud_.id(), idx);
            const double d2 = (cloud_[idx] - query).squaredNorm();
            if (d2 < best.squared_distance)
                best = Neighbor{idx, d2};
        }
        return;
    }

    const double delta = query[node.dim] - node.split;
    const std::int32_t near = delta <= 0.0 ? node.left : node.right;
    const std::int32_t far = delta <= 0.0 ? node.right : node.left;
    searchNearest(near, query, best, trace);
    if (delta * delta < best.squared_distance)
        searchNearest(far, query, best, trace);
}

std::vector<Neighbor>
KdTree::radiusSearch(const Vec3 &query, double radius,
                     MemTrace *trace) const
{
    std::vector<Neighbor> out;
    if (root_ >= 0)
        searchRadius(root_, query, radius * radius, out, trace);
    return out;
}

void
KdTree::searchRadius(std::int32_t node_id, const Vec3 &query,
                     double radius2, std::vector<Neighbor> &out,
                     MemTrace *trace) const
{
    const Node &node = nodes_[node_id];
    if (trace)
        trace->touchNode(tree_id_, static_cast<std::uint32_t>(node_id));

    if (node.leaf) {
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
            const std::uint32_t idx = indices_[i];
            if (trace)
                trace->touchPoint(cloud_.id(), idx);
            const double d2 = (cloud_[idx] - query).squaredNorm();
            if (d2 <= radius2)
                out.push_back(Neighbor{idx, d2});
        }
        return;
    }

    const double delta = query[node.dim] - node.split;
    const std::int32_t near = delta <= 0.0 ? node.left : node.right;
    const std::int32_t far = delta <= 0.0 ? node.right : node.left;
    searchRadius(near, query, radius2, out, trace);
    if (delta * delta <= radius2)
        searchRadius(far, query, radius2, out, trace);
}

std::vector<Neighbor>
KdTree::kNearest(const Vec3 &query, std::size_t k, MemTrace *trace) const
{
    std::vector<Neighbor> heap; // max-heap on squared distance
    if (root_ >= 0 && k > 0)
        searchKNearest(root_, query, k, heap, trace);
    std::sort(heap.begin(), heap.end(),
              [](const Neighbor &a, const Neighbor &b) {
                  return a.squared_distance < b.squared_distance;
              });
    return heap;
}

void
KdTree::searchKNearest(std::int32_t node_id, const Vec3 &query,
                       std::size_t k, std::vector<Neighbor> &heap,
                       MemTrace *trace) const
{
    const auto cmp = [](const Neighbor &a, const Neighbor &b) {
        return a.squared_distance < b.squared_distance;
    };
    const Node &node = nodes_[node_id];
    if (trace)
        trace->touchNode(tree_id_, static_cast<std::uint32_t>(node_id));

    if (node.leaf) {
        for (std::uint32_t i = node.begin; i < node.end; ++i) {
            const std::uint32_t idx = indices_[i];
            if (trace)
                trace->touchPoint(cloud_.id(), idx);
            const double d2 = (cloud_[idx] - query).squaredNorm();
            if (heap.size() < k) {
                heap.push_back(Neighbor{idx, d2});
                std::push_heap(heap.begin(), heap.end(), cmp);
            } else if (d2 < heap.front().squared_distance) {
                std::pop_heap(heap.begin(), heap.end(), cmp);
                heap.back() = Neighbor{idx, d2};
                std::push_heap(heap.begin(), heap.end(), cmp);
            }
        }
        return;
    }

    const double delta = query[node.dim] - node.split;
    const std::int32_t near = delta <= 0.0 ? node.left : node.right;
    const std::int32_t far = delta <= 0.0 ? node.right : node.left;
    searchKNearest(near, query, k, heap, trace);
    const double worst = heap.size() < k
        ? std::numeric_limits<double>::max()
        : heap.front().squared_distance;
    if (delta * delta < worst)
        searchKNearest(far, query, k, heap, trace);
}

} // namespace sov
