/**
 * @file
 * Point cloud container for the LiDAR processing case-study (Sec. III-D).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "math/quat.h"
#include "math/vec.h"

namespace sov {

/**
 * A 3-D point cloud with a stable id used by the memory-trace
 * instrumentation to assign addresses.
 */
class PointCloud
{
  public:
    PointCloud() = default;
    explicit PointCloud(std::uint32_t id) : id_(id) {}
    PointCloud(std::uint32_t id, std::vector<Vec3> points)
        : id_(id), points_(std::move(points)) {}

    std::uint32_t id() const { return id_; }
    void setId(std::uint32_t id) { id_ = id; }

    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }
    const Vec3 &operator[](std::size_t i) const { return points_[i]; }
    Vec3 &operator[](std::size_t i) { return points_[i]; }
    const std::vector<Vec3> &points() const { return points_; }

    void add(const Vec3 &p) { points_.push_back(p); }
    void clear() { points_.clear(); }
    void reserve(std::size_t n) { points_.reserve(n); }

    /** Centroid of all points; zero for an empty cloud. */
    Vec3 centroid() const;

    /** Rigidly transformed copy: p' = R p + t. */
    PointCloud transformed(const Quat &rotation, const Vec3 &translation)
        const;

    /** Axis-aligned bounds as (min, max) corners. */
    std::pair<Vec3, Vec3> bounds() const;

    /** Uniformly subsampled copy keeping every @p stride-th point. */
    PointCloud downsampled(std::size_t stride) const;

  private:
    std::uint32_t id_ = 0;
    std::vector<Vec3> points_;
};

} // namespace sov
