/**
 * @file
 * Point-to-point ICP — the LiDAR localization algorithm of the
 * Sec. III-D case-study. Registration of a live scan against a
 * reference map estimates the sensor pose; its neighbor-search inner
 * loop is what makes LiDAR localization memory-irregular (Fig. 4).
 */
#pragma once

#include <cstddef>

#include "core/kernels.h"
#include "math/quat.h"
#include "memsim/mem_trace.h"
#include "pointcloud/kdtree.h"
#include "pointcloud/point_cloud.h"

namespace sov {

/** Rigid transform estimated by ICP. */
struct RigidTransform
{
    Quat rotation;
    Vec3 translation{0.0, 0.0, 0.0};

    Vec3 apply(const Vec3 &p) const { return rotation.rotate(p) + translation; }
};

/** Configuration of the ICP solver. */
struct IcpConfig
{
    std::size_t max_iterations = 30;
    /** Correspondences farther than this are rejected (meters). */
    double max_correspondence_distance = 2.0;
    /** Stop when the update norm falls below this. */
    double convergence_threshold = 1e-6;
    /**
     * Implementation tier (core/kernels.h). Reference accumulates the
     * normal equations term-by-term; Fast batches correspondences
     * through KdTree::nearestFast and a closed-form JᵀJ/Jᵀr
     * assembly; Simd additionally vectorizes the leaf scans and the
     * accumulation. Runs with a MemTrace always take the Reference
     * path — the Fig. 4 experiments need its touch hooks.
     */
    KernelBackend backend = KernelBackend::Reference;
    /**
     * Fast/Simd: approximate-nearest-neighbor bound ε forwarded to
     * KdTree::nearestFast (0 = exact search, identical
     * correspondences to Reference).
     */
    double approx_nn_epsilon = 0.0;
};

/** Result of an ICP run. */
struct IcpResult
{
    RigidTransform transform;
    std::size_t iterations = 0;
    double mean_error = 0.0; //!< mean correspondence distance (m)
    bool converged = false;
};

/**
 * Align @p source onto @p target starting from @p initial_guess.
 *
 * Gauss-Newton on the 6-DoF pose with small-angle linearization of the
 * rotation; correspondences from a kd-tree over the target.
 *
 * @param trace Optional memory-trace instrumentation (Fig. 4a/4b).
 */
IcpResult icpAlign(const PointCloud &source, const PointCloud &target,
                   const KdTree &target_tree,
                   const RigidTransform &initial_guess = {},
                   const IcpConfig &config = {},
                   MemTrace *trace = nullptr);

} // namespace sov
