#include "pointcloud/segmentation.h"

#include <queue>

#include "core/logging.h"

namespace sov {

std::vector<Cluster>
euclideanClusters(const PointCloud &cloud, const KdTree &tree,
                  const SegmentationConfig &config, MemTrace *trace)
{
    SOV_ASSERT(&tree.cloud() == &cloud);
    std::vector<Cluster> clusters;
    std::vector<bool> visited(cloud.size(), false);

    for (std::uint32_t seed = 0; seed < cloud.size(); ++seed) {
        if (visited[seed])
            continue;
        visited[seed] = true;

        Cluster cluster;
        std::queue<std::uint32_t> frontier;
        frontier.push(seed);
        while (!frontier.empty()) {
            const std::uint32_t idx = frontier.front();
            frontier.pop();
            cluster.indices.push_back(idx);
            if (trace)
                trace->touchPoint(cloud.id(), idx);

            const auto neighbors = tree.radiusSearch(
                cloud[idx], config.cluster_tolerance, trace);
            for (const auto &n : neighbors) {
                if (!visited[n.index]) {
                    visited[n.index] = true;
                    frontier.push(n.index);
                }
            }
        }

        if (cluster.indices.size() < config.min_cluster_size ||
            cluster.indices.size() > config.max_cluster_size) {
            continue;
        }
        Vec3 sum = Vec3::zero();
        for (const auto idx : cluster.indices)
            sum += cloud[idx];
        cluster.centroid =
            sum / static_cast<double>(cluster.indices.size());
        clusters.push_back(std::move(cluster));
    }
    return clusters;
}

std::vector<std::uint32_t>
removeGround(const PointCloud &cloud, double ground_z_threshold)
{
    std::vector<std::uint32_t> keep;
    keep.reserve(cloud.size());
    for (std::uint32_t i = 0; i < cloud.size(); ++i) {
        if (cloud[i].z() > ground_z_threshold)
            keep.push_back(i);
    }
    return keep;
}

} // namespace sov
