/**
 * @file
 * Greedy surface reconstruction — the "Reconstruction" workload of
 * Fig. 4b. A greedy-projection-triangulation-style mesher: for each
 * point, triangulate its local neighborhood ring, skipping triangles
 * that duplicate already-meshed edges.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "memsim/mem_trace.h"
#include "pointcloud/kdtree.h"
#include "pointcloud/point_cloud.h"

namespace sov {

/** A mesh triangle referencing cloud point indices. */
struct Triangle
{
    std::uint32_t a, b, c;
};

/** Parameters of the greedy mesher. */
struct ReconstructionConfig
{
    /** Neighborhood search radius (meters). */
    double radius = 1.0;
    /** Maximum edge length accepted into the mesh. */
    double max_edge_length = 1.5;
    /** Neighbors considered per point. */
    std::size_t max_neighbors = 12;
};

/** Result of surface reconstruction. */
struct Mesh
{
    std::vector<Triangle> triangles;

    /** Total surface area of the mesh. */
    double surfaceArea(const PointCloud &cloud) const;
};

/**
 * Greedy triangulation of @p cloud.
 * @param trace Optional memory-trace instrumentation.
 */
Mesh greedyTriangulation(const PointCloud &cloud, const KdTree &tree,
                         const ReconstructionConfig &config = {},
                         MemTrace *trace = nullptr);

} // namespace sov
