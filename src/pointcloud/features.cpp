#include "pointcloud/features.h"

#include <cmath>

#include "core/logging.h"
#include "math/eigen.h"
#include "math/matrix.h"

namespace sov {

std::vector<SurfaceNormal>
estimateNormals(const PointCloud &cloud, const KdTree &tree, double radius,
                MemTrace *trace)
{
    SOV_ASSERT(&tree.cloud() == &cloud);
    std::vector<SurfaceNormal> normals(cloud.size());
    for (std::uint32_t i = 0; i < cloud.size(); ++i) {
        const auto neighbors = tree.radiusSearch(cloud[i], radius, trace);
        if (neighbors.size() < 3)
            continue;

        // Covariance of the neighborhood.
        Vec3 mean = Vec3::zero();
        for (const auto &n : neighbors)
            mean += cloud[n.index];
        mean = mean / static_cast<double>(neighbors.size());

        Matrix cov = Matrix::zero(3, 3);
        for (const auto &n : neighbors) {
            const Vec3 d = cloud[n.index] - mean;
            for (std::size_t r = 0; r < 3; ++r)
                for (std::size_t c = 0; c < 3; ++c)
                    cov(r, c) += d[r] * d[c];
        }
        cov = cov * (1.0 / static_cast<double>(neighbors.size()));

        const EigenDecomposition eig = symmetricEigen(cov);
        Vec3 normal(eig.vectors(0, 0), eig.vectors(1, 0),
                    eig.vectors(2, 0));
        if (normal.norm() < 1e-12)
            continue;
        normal = normal.normalized();
        if (normal.z() < 0.0)
            normal = -normal; // consistent orientation

        const double total =
            eig.values[0] + eig.values[1] + eig.values[2];
        normals[i].normal = normal;
        normals[i].curvature =
            total > 1e-12 ? eig.values[0] / total : 0.0;
        normals[i].valid = true;
    }
    return normals;
}

std::vector<std::uint32_t>
curvatureKeypoints(const PointCloud &cloud, const KdTree &tree,
                   const std::vector<SurfaceNormal> &normals,
                   double radius, double curvature_threshold,
                   MemTrace *trace)
{
    SOV_ASSERT(&tree.cloud() == &cloud);
    SOV_ASSERT(normals.size() == cloud.size());
    std::vector<std::uint32_t> keypoints;
    for (std::uint32_t i = 0; i < cloud.size(); ++i) {
        if (!normals[i].valid ||
            normals[i].curvature < curvature_threshold) {
            continue;
        }
        const auto neighbors = tree.radiusSearch(cloud[i], radius, trace);
        bool is_max = true;
        for (const auto &n : neighbors) {
            if (n.index != i && normals[n.index].valid &&
                normals[n.index].curvature > normals[i].curvature) {
                is_max = false;
                break;
            }
        }
        if (is_max)
            keypoints.push_back(i);
    }
    return keypoints;
}

double
Descriptor::distanceTo(const Descriptor &o) const
{
    double s = 0.0;
    for (std::size_t i = 0; i < kBins; ++i) {
        const double d = bins[i] - o.bins[i];
        s += d * d;
    }
    return std::sqrt(s);
}

std::vector<Descriptor>
computeDescriptors(const PointCloud &cloud, const KdTree &tree,
                   const std::vector<std::uint32_t> &keypoints,
                   double radius, MemTrace *trace)
{
    SOV_ASSERT(&tree.cloud() == &cloud);
    std::vector<Descriptor> descriptors(keypoints.size());
    for (std::size_t k = 0; k < keypoints.size(); ++k) {
        const Vec3 &center = cloud[keypoints[k]];
        const auto neighbors = tree.radiusSearch(center, radius, trace);
        if (neighbors.empty())
            continue;
        Descriptor &d = descriptors[k];
        for (const auto &n : neighbors) {
            const double dist = std::sqrt(n.squared_distance);
            auto bin = static_cast<std::size_t>(
                dist / radius * Descriptor::kBins);
            if (bin >= Descriptor::kBins)
                bin = Descriptor::kBins - 1;
            d.bins[bin] += 1.0;
        }
        // Normalize to neighborhood size for density invariance.
        for (auto &b : d.bins)
            b /= static_cast<double>(neighbors.size());
    }
    return descriptors;
}

std::vector<Correspondence>
matchDescriptors(const std::vector<Descriptor> &query,
                 const std::vector<Descriptor> &train, double ratio)
{
    std::vector<Correspondence> matches;
    if (train.empty())
        return matches;
    for (std::uint32_t q = 0; q < query.size(); ++q) {
        double best = std::numeric_limits<double>::max();
        double second = best;
        std::uint32_t best_idx = 0;
        for (std::uint32_t t = 0; t < train.size(); ++t) {
            const double d = query[q].distanceTo(train[t]);
            if (d < best) {
                second = best;
                best = d;
                best_idx = t;
            } else if (d < second) {
                second = d;
            }
        }
        if (train.size() == 1 || best < ratio * second)
            matches.push_back(Correspondence{q, best_idx, best});
    }
    return matches;
}

} // namespace sov
