/**
 * @file
 * 3-D kd-tree for neighbor search — the irregular kernel at the heart
 * of LiDAR processing (Sec. III-D: "LiDAR processing relies on
 * irregular kernels (e.g., neighbor search)").
 *
 * All queries optionally report the points and tree nodes they touch
 * to a MemTrace, which is how Fig. 4a (reuse irregularity) and Fig. 4b
 * (off-chip traffic) are measured.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/simd.h"
#include "memsim/mem_trace.h"
#include "pointcloud/point_cloud.h"

namespace sov {

/** Result of a nearest-neighbor query. */
struct Neighbor
{
    std::uint32_t index;
    double squared_distance;
};

/** Static kd-tree over a point cloud (median split, leaf size 16). */
class KdTree
{
  public:
    /**
     * Build from a cloud. The cloud must outlive the tree.
     * @param tree_id Identifier for address-trace purposes.
     */
    KdTree(const PointCloud &cloud, std::uint32_t tree_id = 0);

    /** Nearest neighbor of @p query; nullopt on an empty cloud. */
    std::optional<Neighbor> nearest(const Vec3 &query,
                                    MemTrace *trace = nullptr) const;

    /**
     * Cache-friendly nearest for the ICP Fast/Simd tiers: iterative
     * traversal (explicit stack, no recursion or trace branches) over
     * leaf-ordered SoA coordinates, so leaf scans run contiguously
     * instead of chasing indices into the cloud. The traversal visits
     * nodes in exactly the order the recursive oracle does and the
     * distances round identically, so with @p approx_epsilon == 0 the
     * result is bit-identical to nearest() — ties included.
     *
     * @param level Vector level of the leaf scan (bit-identical at
     *        every level; see math/simd_kernels.h).
     * @param approx_epsilon Approximate-NN bound: subtrees are pruned
     *        unless they could beat the current best by more than a
     *        (1+ε) factor in distance; the returned neighbor is within
     *        (1+ε)·d(true nearest). 0 searches exactly.
     * @param seed_index Warm start: a point index whose distance seeds
     *        the best before the descent, letting the traversal prune
     *        far subtrees immediately. The result is still the exact
     *        nearest distance (a seed can only tighten the bound);
     *        only tie-breaking may differ from the unseeded query.
     *        ICP passes each point's previous-iteration correspondence.
     */
    std::optional<Neighbor>
    nearestFast(const Vec3 &query, SimdLevel level = SimdLevel::None,
                double approx_epsilon = 0.0,
                std::uint32_t seed_index = kNoSeed) const;

    /** Sentinel for nearestFast's seed_index: no warm start. */
    static constexpr std::uint32_t kNoSeed = 0xffffffffu;

    /**
     * Batch nearest for ICP-style callers: answers @p n queries in one
     * call over SoA inputs. Results are bitwise identical to calling
     * nearestFast per query — ties included. (Software-interleaving
     * several traversals was tried here and measured ~2× slower than
     * the sequential descent, whose whole state stays in registers;
     * the batch form is kept for the SoA interface and hoisted setup.)
     *
     * @param seeds Per-query warm-start indices (kNoSeed entries or
     *        nullptr disable seeding; see nearestFast).
     * @param out_index / @param out_d2 Receive each query's neighbor;
     *        on an empty tree out_index is filled with kNoSeed.
     */
    void nearestBatch(const double *qx, const double *qy,
                      const double *qz, std::size_t n,
                      const std::uint32_t *seeds,
                      std::uint32_t *out_index, double *out_d2,
                      SimdLevel level = SimdLevel::None,
                      double approx_epsilon = 0.0) const;

    /** All points within @p radius of @p query (unsorted). */
    std::vector<Neighbor> radiusSearch(const Vec3 &query, double radius,
                                       MemTrace *trace = nullptr) const;

    /** The k nearest neighbors, closest first. */
    std::vector<Neighbor> kNearest(const Vec3 &query, std::size_t k,
                                   MemTrace *trace = nullptr) const;

    std::size_t numNodes() const { return nodes_.size(); }

    /** The cloud this tree indexes (results index into it). */
    const PointCloud &cloud() const { return cloud_; }

  private:
    struct Node
    {
        // Internal node: split dimension/value and children.
        // Leaf: begin/end range into indices_.
        std::int32_t left = -1;
        std::int32_t right = -1;
        std::uint32_t begin = 0;
        std::uint32_t end = 0;
        float split = 0.0f;
        std::uint8_t dim = 0;
        bool leaf = false;
    };

    /**
     * One ancestor plane on a leaf's root path, deepest first. A
     * seeded query replays these as a branch-free linear scan instead
     * of a root→leaf pointer chase: the far-sibling subtree is
     * searched only when the query sits on its side of the plane or
     * the plane is closer than the current best — exactly the
     * subtrees the top-down traversal could not prune either.
     */
    struct PathEntry
    {
        double split = 0.0;
        std::int32_t far = -1;    // sibling subtree off the path
        std::uint16_t dim = 0;
        /** 1 when the path continues into the LEFT child (query side
         *  consistent ⇔ delta ≤ 0). */
        std::uint16_t via_left = 0;
    };

    std::int32_t build(std::uint32_t begin, std::uint32_t end, int depth);
    void buildLeafPaths();

    void searchNearest(std::int32_t node, const Vec3 &query,
                       Neighbor &best, MemTrace *trace) const;
    /** Iterative top-down nearest over the subtree at @p node_id,
     *  tightening @p best in place (the nearestFast core loop). */
    void descendNearest(std::int32_t node_id, const double qc[3],
                        Neighbor &best, double prune_scale,
                        SimdLevel level) const;
    void searchRadius(std::int32_t node, const Vec3 &query, double radius2,
                      std::vector<Neighbor> &out, MemTrace *trace) const;
    void searchKNearest(std::int32_t node, const Vec3 &query, std::size_t k,
                        std::vector<Neighbor> &heap, MemTrace *trace) const;

    const PointCloud &cloud_;
    std::uint32_t tree_id_;
    std::vector<std::uint32_t> indices_;
    std::vector<Node> nodes_;
    std::int32_t root_ = -1;
    /** Leaf-ordered SoA copies of the coordinates (indices_ order),
     *  so nearestFast scans leaves without indirection. */
    std::vector<double> leaf_x_;
    std::vector<double> leaf_y_;
    std::vector<double> leaf_z_;
    /** Point index → id of the leaf node holding it (warm starts jump
     *  straight to the seed's leaf). */
    std::vector<std::int32_t> leaf_of_point_;
    /** Concatenated per-leaf ancestor paths (deepest plane first);
     *  path_begin_/path_count_ are indexed by leaf node id. */
    std::vector<PathEntry> path_entries_;
    std::vector<std::uint32_t> path_begin_;
    std::vector<std::uint32_t> path_count_;

    /** Leaf size trades scan width against tree depth: with the leaf
     *  scan inlined over SoA doubles the compiler vectorizes it, so
     *  wide leaves are nearly free while every level removed shortens
     *  both the cold descent and the warm-start replay path. 16
     *  measured fastest on the ICP workload (≈15% over 8; 32 is flat). */
    static constexpr std::uint32_t kLeafSize = 16;
};

} // namespace sov
