/**
 * @file
 * 3-D kd-tree for neighbor search — the irregular kernel at the heart
 * of LiDAR processing (Sec. III-D: "LiDAR processing relies on
 * irregular kernels (e.g., neighbor search)").
 *
 * All queries optionally report the points and tree nodes they touch
 * to a MemTrace, which is how Fig. 4a (reuse irregularity) and Fig. 4b
 * (off-chip traffic) are measured.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "memsim/mem_trace.h"
#include "pointcloud/point_cloud.h"

namespace sov {

/** Result of a nearest-neighbor query. */
struct Neighbor
{
    std::uint32_t index;
    double squared_distance;
};

/** Static kd-tree over a point cloud (median split, leaf size 8). */
class KdTree
{
  public:
    /**
     * Build from a cloud. The cloud must outlive the tree.
     * @param tree_id Identifier for address-trace purposes.
     */
    KdTree(const PointCloud &cloud, std::uint32_t tree_id = 0);

    /** Nearest neighbor of @p query; nullopt on an empty cloud. */
    std::optional<Neighbor> nearest(const Vec3 &query,
                                    MemTrace *trace = nullptr) const;

    /** All points within @p radius of @p query (unsorted). */
    std::vector<Neighbor> radiusSearch(const Vec3 &query, double radius,
                                       MemTrace *trace = nullptr) const;

    /** The k nearest neighbors, closest first. */
    std::vector<Neighbor> kNearest(const Vec3 &query, std::size_t k,
                                   MemTrace *trace = nullptr) const;

    std::size_t numNodes() const { return nodes_.size(); }

    /** The cloud this tree indexes (results index into it). */
    const PointCloud &cloud() const { return cloud_; }

  private:
    struct Node
    {
        // Internal node: split dimension/value and children.
        // Leaf: begin/end range into indices_.
        std::int32_t left = -1;
        std::int32_t right = -1;
        std::uint32_t begin = 0;
        std::uint32_t end = 0;
        float split = 0.0f;
        std::uint8_t dim = 0;
        bool leaf = false;
    };

    std::int32_t build(std::uint32_t begin, std::uint32_t end, int depth);

    void searchNearest(std::int32_t node, const Vec3 &query,
                       Neighbor &best, MemTrace *trace) const;
    void searchRadius(std::int32_t node, const Vec3 &query, double radius2,
                      std::vector<Neighbor> &out, MemTrace *trace) const;
    void searchKNearest(std::int32_t node, const Vec3 &query, std::size_t k,
                        std::vector<Neighbor> &heap, MemTrace *trace) const;

    const PointCloud &cloud_;
    std::uint32_t tree_id_;
    std::vector<std::uint32_t> indices_;
    std::vector<Node> nodes_;
    std::int32_t root_ = -1;

    static constexpr std::uint32_t kLeafSize = 8;
};

} // namespace sov
