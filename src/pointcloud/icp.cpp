/**
 * @file
 * Point-to-point ICP in three tiers (IcpConfig::backend).
 *
 * Reference replays the original Matrix-based accumulation rounding
 * for rounding — per correspondence it forms J = [−skew(p) | I] in a
 * stack array and walks JᵀJ / Jᵀr in exactly the order (and with the
 * zero-skip) Matrix::operator* used, so results are bit-identical to
 * the historical implementation without its two heap-allocating
 * small-matrix multiplies per correspondence.
 *
 * Fast exploits the structure instead: with A = −skew(p),
 *   JᵀJ = [[ (pᵀp)I − ppᵀ , skew(p) ], [ skew(p)ᵀ, n·I ]],
 *   Jᵀr = [ p × r , r ],
 * so one pass of sufficient statistics (Σ p_a p_b, Σ p, Σ p×r, Σ r —
 * simd::IcpStats) replaces the 3×6 Jacobian products entirely, and
 * correspondences come from KdTree::nearestFast (iterative,
 * leaf-ordered SoA scans). Simd runs the same pass with the AVX2
 * bodies. Both are an epsilon away from Reference (reassociated
 * sums); tests/pointcloud/test_icp_fast.cpp gates the transforms
 * against each other.
 */
#include "pointcloud/icp.h"

#include <cmath>
#include <vector>

#include "core/logging.h"
#include "core/simd.h"
#include "math/matrix.h"
#include "math/simd_kernels.h"

namespace sov {

namespace {

/**
 * Solve the damped 6×6 normal equations and apply the pose update.
 * Shared verbatim by every tier so the tiers differ only in how the
 * normal equations were accumulated.
 * @return true when the update norm signals convergence.
 */
bool
solveAndApply(const double jtj[6][6], const double jtr[6],
              const IcpConfig &config, IcpResult &result)
{
    Matrix m = Matrix::zero(6, 6);
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 6; ++c)
            m(r, c) = jtj[r][c];
    // Levenberg damping keeps the solve well-conditioned when the
    // geometry is thin (e.g., planar ground scans).
    for (std::size_t d = 0; d < 6; ++d)
        m(d, d) += 1e-6;

    Matrix rhs = Matrix::zero(6, 1);
    for (std::size_t d = 0; d < 6; ++d)
        rhs(d, 0) = jtr[d] * -1.0;

    const Matrix x = m.choleskySolve(rhs);
    const Vec3 theta(x.at(0), x.at(1), x.at(2));
    const Vec3 dt(x.at(3), x.at(4), x.at(5));

    result.transform.rotation =
        (Quat::fromAxisAngle(theta) * result.transform.rotation)
            .normalized();
    result.transform.translation += dt;
    return x.norm() < config.convergence_threshold;
}

IcpResult
icpAlignReference(const PointCloud &source, const PointCloud &target,
                  const KdTree &target_tree,
                  const RigidTransform &initial_guess,
                  const IcpConfig &config, MemTrace *trace)
{
    IcpResult result;
    result.transform = initial_guess;

    const double max_d2 = config.max_correspondence_distance *
        config.max_correspondence_distance;

    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
        result.iterations = iter + 1;

        // Accumulate the normal equations J^T J x = -J^T r over all
        // correspondences; x = [theta(3); t(3)].
        double jtj[6][6] = {};
        double jtr[6] = {};
        double error_sum = 0.0;
        std::size_t inliers = 0;

        for (std::size_t i = 0; i < source.size(); ++i) {
            if (trace)
                trace->touchPoint(source.id(),
                                  static_cast<std::uint32_t>(i));
            const Vec3 p = result.transform.apply(source[i]);
            const auto nn = target_tree.nearest(p, trace);
            if (!nn || nn->squared_distance > max_d2)
                continue;
            const Vec3 q = target[nn->index];
            const Vec3 r = p - q;
            error_sum += std::sqrt(nn->squared_distance);
            ++inliers;

            // J = [-skew(p) | I] on the stack; the loops below retrace
            // the historical jt*j / jt*r Matrix products — same k
            // order, same zero-operand skip, same per-term rounding —
            // minus their allocations.
            const double j[3][6] = {
                {0.0, p.z(), -p.y(), 1.0, 0.0, 0.0},
                {-p.z(), 0.0, p.x(), 0.0, 1.0, 0.0},
                {p.y(), -p.x(), 0.0, 0.0, 0.0, 1.0},
            };
            const double rv[3] = {r.x(), r.y(), r.z()};
            double prod[6][6] = {};
            double prodr[6] = {};
            for (std::size_t row = 0; row < 6; ++row) {
                for (std::size_t k = 0; k < 3; ++k) {
                    const double a = j[k][row];
                    if (a == 0.0)
                        continue;
                    for (std::size_t c = 0; c < 6; ++c)
                        prod[row][c] += a * j[k][c];
                    prodr[row] += a * rv[k];
                }
            }
            for (std::size_t row = 0; row < 6; ++row) {
                for (std::size_t c = 0; c < 6; ++c)
                    jtj[row][c] += prod[row][c];
                jtr[row] += prodr[row];
            }
        }

        if (inliers < 3)
            break; // degenerate; keep the current estimate
        result.mean_error = error_sum / static_cast<double>(inliers);

        if (solveAndApply(jtj, jtr, config, result)) {
            result.converged = true;
            break;
        }
    }
    return result;
}

IcpResult
icpAlignFast(const PointCloud &source, const PointCloud &target,
             const KdTree &target_tree,
             const RigidTransform &initial_guess,
             const IcpConfig &config, SimdLevel level)
{
    IcpResult result;
    result.transform = initial_guess;

    const double max_d2 = config.max_correspondence_distance *
        config.max_correspondence_distance;

    const std::size_t n = source.size();

    // Transformed source points (SoA) — the batch query input — and
    // the correspondence batch (SoA) that feeds icpAccum: inlier
    // points p and residuals r = p − q. Sized once, reused across
    // iterations.
    std::vector<double> tx(n), ty(n), tz(n);
    std::vector<std::uint32_t> nn_index(n);
    std::vector<double> nn_d2(n);
    std::vector<double> px(n), py(n), pz(n), rx(n), ry(n), rz(n);

    // Warm-start seeds: each point's previous-iteration nearest
    // neighbor. The pose moves a little per iteration, so the old
    // correspondence is almost always within an ulp of optimal and
    // the seeded query prunes nearly the whole tree (kdtree.h).
    std::vector<std::uint32_t> seeds(n, KdTree::kNoSeed);

    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
        result.iterations = iter + 1;

        double error_sum = 0.0;

        // One rotation matrix per iteration instead of a quaternion
        // rotate per point (Reference keeps the per-point rotate; the
        // ulp-level difference is inside the tiers' documented
        // reassociation epsilon).
        const Quat &qr = result.transform.rotation;
        const double qw = qr.w(), qx = qr.x(), qy = qr.y(),
                     qz = qr.z();
        const double R[3][3] = {
            {1.0 - 2.0 * (qy * qy + qz * qz), 2.0 * (qx * qy - qw * qz),
             2.0 * (qx * qz + qw * qy)},
            {2.0 * (qx * qy + qw * qz), 1.0 - 2.0 * (qx * qx + qz * qz),
             2.0 * (qy * qz - qw * qx)},
            {2.0 * (qx * qz - qw * qy), 2.0 * (qy * qz + qw * qx),
             1.0 - 2.0 * (qx * qx + qy * qy)}};
        const Vec3 &tr = result.transform.translation;

        for (std::size_t i = 0; i < n; ++i) {
            const Vec3 &s0 = source[i];
            tx[i] = R[0][0] * s0.x() + R[0][1] * s0.y() +
                R[0][2] * s0.z() + tr.x();
            ty[i] = R[1][0] * s0.x() + R[1][1] * s0.y() +
                R[1][2] * s0.z() + tr.y();
            tz[i] = R[2][0] * s0.x() + R[2][1] * s0.y() +
                R[2][2] * s0.z() + tr.z();
        }

        // All correspondences in one interleaved-traversal call;
        // results are bitwise what per-point nearestFast would return
        // (kdtree.h).
        target_tree.nearestBatch(tx.data(), ty.data(), tz.data(), n,
                                 seeds.data(), nn_index.data(),
                                 nn_d2.data(), level,
                                 config.approx_nn_epsilon);

        std::size_t m = 0;
        for (std::size_t i = 0; i < n; ++i) {
            if (nn_index[i] == KdTree::kNoSeed)
                continue;
            seeds[i] = nn_index[i];
            if (nn_d2[i] > max_d2)
                continue;
            const Vec3 q = target[nn_index[i]];
            error_sum += std::sqrt(nn_d2[i]);
            px[m] = tx[i];
            py[m] = ty[i];
            pz[m] = tz[i];
            rx[m] = tx[i] - q.x();
            ry[m] = ty[i] - q.y();
            rz[m] = tz[i] - q.z();
            ++m;
        }

        const std::size_t inliers = m;
        if (inliers < 3)
            break; // degenerate; keep the current estimate
        result.mean_error =
            error_sum / static_cast<double>(inliers);

        simd::IcpStats s;
        simd::icpAccum(px.data(), py.data(), pz.data(), rx.data(),
                       ry.data(), rz.data(), inliers, s, level);

        // Closed-form assembly (see file comment): top-left
        // (pᵀp)I − ppᵀ, top-right Σ skew(p), bottom-right n·I.
        const double n = static_cast<double>(inliers);
        const double jtj[6][6] = {
            {s.syy + s.szz, -s.sxy, -s.sxz, 0.0, -s.spz, s.spy},
            {-s.sxy, s.sxx + s.szz, -s.syz, s.spz, 0.0, -s.spx},
            {-s.sxz, -s.syz, s.sxx + s.syy, -s.spy, s.spx, 0.0},
            {0.0, s.spz, -s.spy, n, 0.0, 0.0},
            {-s.spz, 0.0, s.spx, 0.0, n, 0.0},
            {s.spy, -s.spx, 0.0, 0.0, 0.0, n},
        };
        const double jtr[6] = {s.scx, s.scy, s.scz,
                               s.srx, s.sry, s.srz};

        if (solveAndApply(jtj, jtr, config, result)) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace

IcpResult
icpAlign(const PointCloud &source, const PointCloud &target,
         const KdTree &target_tree, const RigidTransform &initial_guess,
         const IcpConfig &config, MemTrace *trace)
{
    SOV_ASSERT(!source.empty() && !target.empty());
    // MemTrace instrumentation lives on the Reference traversal only
    // (Fig. 4 measures the canonical access pattern), so traced runs
    // always go there.
    if (config.backend == KernelBackend::Reference || trace)
        return icpAlignReference(source, target, target_tree,
                                 initial_guess, config, trace);
    const SimdLevel level = config.backend == KernelBackend::Simd
        ? detectSimdLevel()
        : SimdLevel::None;
    return icpAlignFast(source, target, target_tree, initial_guess,
                        config, level);
}

} // namespace sov
