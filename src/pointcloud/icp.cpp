#include "pointcloud/icp.h"

#include <cmath>

#include "core/logging.h"
#include "math/matrix.h"

namespace sov {

IcpResult
icpAlign(const PointCloud &source, const PointCloud &target,
         const KdTree &target_tree, const RigidTransform &initial_guess,
         const IcpConfig &config, MemTrace *trace)
{
    SOV_ASSERT(!source.empty() && !target.empty());
    IcpResult result;
    result.transform = initial_guess;

    const double max_d2 = config.max_correspondence_distance *
        config.max_correspondence_distance;

    for (std::size_t iter = 0; iter < config.max_iterations; ++iter) {
        result.iterations = iter + 1;

        // Accumulate the normal equations J^T J x = -J^T r over all
        // correspondences; x = [theta(3); t(3)].
        Matrix jtj = Matrix::zero(6, 6);
        Matrix jtr = Matrix::zero(6, 1);
        double error_sum = 0.0;
        std::size_t inliers = 0;

        for (std::size_t i = 0; i < source.size(); ++i) {
            if (trace)
                trace->touchPoint(source.id(),
                                  static_cast<std::uint32_t>(i));
            const Vec3 p = result.transform.apply(source[i]);
            const auto nn = target_tree.nearest(p, trace);
            if (!nn || nn->squared_distance > max_d2)
                continue;
            const Vec3 q = target[nn->index];
            const Vec3 r = p - q;
            error_sum += std::sqrt(nn->squared_distance);
            ++inliers;

            // J = [-skew(p) | I]; accumulate J^T J and J^T r directly.
            const Matrix skew_p = Matrix::skew(p);
            Matrix j(3, 6);
            j.setBlock(0, 0, skew_p * -1.0);
            j.setBlock(0, 3, Matrix::identity(3));
            const Matrix jt = j.transpose();
            jtj += jt * j;
            jtr += jt * Matrix::columnVector({r.x(), r.y(), r.z()});
        }

        if (inliers < 3)
            break; // degenerate; keep the current estimate
        result.mean_error = error_sum / static_cast<double>(inliers);

        // Levenberg damping keeps the solve well-conditioned when the
        // geometry is thin (e.g., planar ground scans).
        for (std::size_t d = 0; d < 6; ++d)
            jtj(d, d) += 1e-6;

        const Matrix x = jtj.choleskySolve(jtr * -1.0);
        const Vec3 theta(x.at(0), x.at(1), x.at(2));
        const Vec3 dt(x.at(3), x.at(4), x.at(5));

        result.transform.rotation =
            (Quat::fromAxisAngle(theta) * result.transform.rotation)
                .normalized();
        result.transform.translation += dt;

        if (x.norm() < config.convergence_threshold) {
            result.converged = true;
            break;
        }
    }
    return result;
}

} // namespace sov
