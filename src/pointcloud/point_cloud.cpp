#include "pointcloud/point_cloud.h"

#include <algorithm>

#include "core/logging.h"

namespace sov {

Vec3
PointCloud::centroid() const
{
    if (points_.empty())
        return Vec3::zero();
    Vec3 sum = Vec3::zero();
    for (const auto &p : points_)
        sum += p;
    return sum / static_cast<double>(points_.size());
}

PointCloud
PointCloud::transformed(const Quat &rotation, const Vec3 &translation) const
{
    PointCloud out(id_);
    out.reserve(points_.size());
    for (const auto &p : points_)
        out.add(rotation.rotate(p) + translation);
    return out;
}

std::pair<Vec3, Vec3>
PointCloud::bounds() const
{
    SOV_ASSERT(!points_.empty());
    Vec3 lo = points_.front();
    Vec3 hi = points_.front();
    for (const auto &p : points_) {
        for (std::size_t d = 0; d < 3; ++d) {
            lo[d] = std::min(lo[d], p[d]);
            hi[d] = std::max(hi[d], p[d]);
        }
    }
    return {lo, hi};
}

PointCloud
PointCloud::downsampled(std::size_t stride) const
{
    SOV_ASSERT(stride >= 1);
    PointCloud out(id_);
    out.reserve(points_.size() / stride + 1);
    for (std::size_t i = 0; i < points_.size(); i += stride)
        out.add(points_[i]);
    return out;
}

} // namespace sov
