/**
 * @file
 * Runtime health monitoring on the discrete-event simulator.
 *
 * The HealthMonitor is the glue between raw supervision signals and
 * the DegradationManager:
 *
 *  - it implements runtime::DataflowHealthListener, so every stage
 *    crash, watchdog timeout, retry and abandoned frame of the
 *    DataflowExecutor lands here;
 *  - it tracks per-sensor heartbeats (a sensor that stops producing
 *    samples goes stale after its configured silence budget);
 *  - once per planning cycle, evaluate() folds the events since the
 *    last call into a sliding window, checks staleness and pipeline
 *    stall, and drives the degradation state machine.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "health/degradation.h"
#include "runtime/dataflow.h"

namespace sov::health {

/** Liveness expectations for one sensor stream. */
struct HeartbeatSpec
{
    /** Nominal sample period (documentation; staleness only uses the
     *  budget below). */
    Duration expected_period = Duration::millisF(100.0);
    /** Silence longer than this marks the sensor stale. */
    Duration stale_after = Duration::millisF(500.0);
    /** Guards the reactive path (radar/sonar): staleness escalates to
     *  SAFE_STOP instead of REACTIVE_ONLY. */
    bool reactive_critical = false;
};

/** The monitor. */
class HealthMonitor final : public runtime::DataflowHealthListener
{
  public:
    explicit HealthMonitor(const DegradationPolicy &policy = {})
        : manager_(policy) {}

    /** Register a sensor stream. @p now anchors the silence budget so
     *  a sensor that never beats still goes stale. */
    void watchSensor(const std::string &name, const HeartbeatSpec &spec,
                     Timestamp now = Timestamp::origin());

    /** Note one delivered sample of @p name at @p t. */
    void noteHeartbeat(const std::string &name, Timestamp t);

    /** True if @p name has been silent beyond its budget at @p now.
     *  Unwatched sensors are never stale. */
    bool sensorStale(const std::string &name, Timestamp now) const;

    // runtime::DataflowHealthListener
    void onStageAttempt(runtime::StageId stage, std::size_t frame,
                        runtime::StageOutcome outcome,
                        bool timed_out) override;
    void onFrameFailed(const runtime::FrameTrace &trace) override;
    void onFrameCompleted(const runtime::FrameTrace &trace) override;

    /**
     * One supervision cycle: fold events since the last call into the
     * sliding fault window, evaluate sensor staleness and pipeline
     * stall, and step the degradation state machine.
     * @param frames_in_flight Released-but-unresolved pipeline frames
     *        (stall detection); 0 disables stall checking.
     */
    DegradationLevel evaluate(Timestamp now,
                              std::uint64_t frames_in_flight = 0);

    DegradationManager &degradation() { return manager_; }
    const DegradationManager &degradation() const { return manager_; }

    /** No frame resolved for this long while frames were in flight =
     *  pipeline stalled (default 1 s). */
    void setPipelineStallAfter(Duration d) { stall_after_ = d; }

    std::uint64_t stageCrashes() const { return stage_crashes_; }
    std::uint64_t stageTimeouts() const { return stage_timeouts_; }
    std::uint64_t framesFailed() const { return frames_failed_; }
    std::uint64_t framesCompleted() const { return frames_completed_; }

  private:
    DegradationManager manager_;
    std::map<std::string, HeartbeatSpec> specs_;
    std::map<std::string, Timestamp> last_beat_;
    std::deque<std::uint32_t> window_; //!< per-cycle fault counts
    std::uint32_t pending_faults_ = 0;
    Duration stall_after_ = Duration::seconds(1.0);
    Timestamp last_frame_activity_ = Timestamp::origin();
    std::uint64_t stage_crashes_ = 0;
    std::uint64_t stage_timeouts_ = 0;
    std::uint64_t frames_failed_ = 0;
    std::uint64_t frames_completed_ = 0;
};

} // namespace sov::health
