/**
 * @file
 * Supervised degradation state machine (Sec. III-C, Sec. IV).
 *
 * The paper's production answer to misbehaving components is not to
 * fix them mid-drive but to shed capability in controlled steps until
 * what remains is trustworthy:
 *
 *   NOMINAL        full proactive pipeline at cruise speed
 *   DEGRADED       proactive still drives, speed capped — latency
 *                  faults make commands stale, so shrink the kinetic
 *                  energy the stale command controls
 *   REACTIVE_ONLY  the proactive path is untrusted (perception silent
 *                  or persistently failing); only the radar->ECU
 *                  reactive path drives, which can only brake
 *   SAFE_STOP      the reactive path itself is untrusted; stop now
 *
 * Escalation is immediate; recovery steps down one level at a time
 * after a clean-cycle streak (hysteresis, so a flapping component
 * can't oscillate the vehicle), and SAFE_STOP is terminal.
 */
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/time.h"

namespace sov::health {

/** Capability levels, ordered from full to none. */
enum class DegradationLevel
{
    Nominal = 0,
    Degraded = 1,
    ReactiveOnly = 2,
    SafeStop = 3,
};

const char *toString(DegradationLevel level);

/** Escalation thresholds and recovery hysteresis. */
struct DegradationPolicy
{
    /** Sliding window, in planning cycles, over which pipeline faults
     *  (crashes, watchdog timeouts, abandoned frames) are counted. */
    std::uint32_t window_cycles = 20;
    /** Faults in the window that force DEGRADED. */
    std::uint32_t degrade_threshold = 2;
    /** Faults in the window that force REACTIVE_ONLY. */
    std::uint32_t reactive_only_threshold = 6;
    /** Speed cap while DEGRADED (m/s; half the 5.6 m/s cruise). */
    double degraded_speed_cap = 2.8;
    /** Consecutive clean cycles required to step one level up. */
    std::uint32_t recovery_cycles = 40;
    /** Allow stepping back up at all (SAFE_STOP never recovers). */
    bool allow_recovery = true;
};

/** One evaluation of system health, fed to the state machine. */
struct HealthSample
{
    /** Pipeline fault events inside the sliding window. */
    std::uint32_t pipeline_faults_in_window = 0;
    /** A proactive-critical sensor (camera/IMU/GPS) went silent. */
    bool proactive_sensors_stale = false;
    /** A reactive-critical sensor (radar/sonar) went silent. */
    bool reactive_sensors_stale = false;
    /** Frames are in flight but none has resolved for too long (an
     *  unsupervised hang is wedging the pipeline). */
    bool pipeline_stalled = false;
};

/** The state machine. */
class DegradationManager
{
  public:
    explicit DegradationManager(const DegradationPolicy &policy = {})
        : policy_(policy) {}

    /** Fold one health sample; returns the level after the update. */
    DegradationLevel update(const HealthSample &sample, Timestamp now);

    DegradationLevel level() const { return level_; }
    DegradationLevel worstLevel() const { return worst_; }

    /** Speed limit the planner must respect at the current level. */
    double speedCap(double nominal_speed) const;

    /** The proactive pipeline may drive (NOMINAL or DEGRADED). */
    bool
    proactiveEnabled() const
    {
        return level_ <= DegradationLevel::Degraded;
    }

    bool
    safeStopRequested() const
    {
        return level_ == DegradationLevel::SafeStop;
    }

    const DegradationPolicy &policy() const { return policy_; }

    /** Every transition taken, in order (for reports and tests). */
    const std::vector<std::pair<Timestamp, DegradationLevel>> &
    transitions() const
    {
        return transitions_;
    }

  private:
    void transitionTo(DegradationLevel level, Timestamp now);

    DegradationPolicy policy_;
    DegradationLevel level_ = DegradationLevel::Nominal;
    DegradationLevel worst_ = DegradationLevel::Nominal;
    std::uint32_t clean_streak_ = 0;
    std::vector<std::pair<Timestamp, DegradationLevel>> transitions_;
};

} // namespace sov::health
