#include "health/health_monitor.h"

#include <algorithm>

namespace sov::health {

void
HealthMonitor::watchSensor(const std::string &name,
                           const HeartbeatSpec &spec, Timestamp now)
{
    specs_[name] = spec;
    // Anchor the silence budget at registration so a sensor that
    // never produces a single sample still goes stale.
    auto it = last_beat_.find(name);
    if (it == last_beat_.end())
        last_beat_[name] = now;
}

void
HealthMonitor::noteHeartbeat(const std::string &name, Timestamp t)
{
    auto it = last_beat_.find(name);
    if (it == last_beat_.end() || it->second < t)
        last_beat_[name] = t;
}

bool
HealthMonitor::sensorStale(const std::string &name, Timestamp now) const
{
    const auto spec = specs_.find(name);
    if (spec == specs_.end())
        return false;
    const auto beat = last_beat_.find(name);
    if (beat == last_beat_.end())
        return true;
    return now - beat->second > spec->second.stale_after;
}

void
HealthMonitor::onStageAttempt(runtime::StageId stage, std::size_t frame,
                              runtime::StageOutcome outcome,
                              bool timed_out)
{
    (void)stage;
    (void)frame;
    if (outcome == runtime::StageOutcome::Crash) {
        ++stage_crashes_;
        ++pending_faults_;
    }
    if (timed_out) {
        ++stage_timeouts_;
        ++pending_faults_;
    }
}

void
HealthMonitor::onFrameFailed(const runtime::FrameTrace &trace)
{
    ++frames_failed_;
    ++pending_faults_;
    last_frame_activity_ = std::max(last_frame_activity_, trace.finish);
}

void
HealthMonitor::onFrameCompleted(const runtime::FrameTrace &trace)
{
    ++frames_completed_;
    last_frame_activity_ = std::max(last_frame_activity_, trace.finish);
}

DegradationLevel
HealthMonitor::evaluate(Timestamp now, std::uint64_t frames_in_flight)
{
    window_.push_back(pending_faults_);
    pending_faults_ = 0;
    while (window_.size() > manager_.policy().window_cycles)
        window_.pop_front();

    HealthSample sample;
    for (const std::uint32_t count : window_)
        sample.pipeline_faults_in_window += count;
    for (const auto &[name, spec] : specs_) {
        if (!sensorStale(name, now))
            continue;
        if (spec.reactive_critical)
            sample.reactive_sensors_stale = true;
        else
            sample.proactive_sensors_stale = true;
    }
    sample.pipeline_stalled = frames_in_flight > 0 &&
        now - last_frame_activity_ > stall_after_;
    return manager_.update(sample, now);
}

} // namespace sov::health
