#include "health/degradation.h"

#include <algorithm>

namespace sov::health {

const char *
toString(DegradationLevel level)
{
    switch (level) {
    case DegradationLevel::Nominal: return "NOMINAL";
    case DegradationLevel::Degraded: return "DEGRADED";
    case DegradationLevel::ReactiveOnly: return "REACTIVE_ONLY";
    case DegradationLevel::SafeStop: return "SAFE_STOP";
    }
    return "?";
}

DegradationLevel
DegradationManager::update(const HealthSample &sample, Timestamp now)
{
    // The level the evidence calls for right now.
    DegradationLevel target = DegradationLevel::Nominal;
    if (sample.reactive_sensors_stale) {
        // The last line of defense is blind: stop immediately.
        target = DegradationLevel::SafeStop;
    } else if (sample.proactive_sensors_stale || sample.pipeline_stalled ||
               sample.pipeline_faults_in_window >=
                   policy_.reactive_only_threshold) {
        target = DegradationLevel::ReactiveOnly;
    } else if (sample.pipeline_faults_in_window >=
               policy_.degrade_threshold) {
        target = DegradationLevel::Degraded;
    }

    if (level_ == DegradationLevel::SafeStop)
        return level_; // terminal

    if (target > level_) {
        // Escalate immediately; safety never waits for hysteresis.
        transitionTo(target, now);
        clean_streak_ = 0;
    } else if (target < level_ && policy_.allow_recovery) {
        // Recover one level at a time after a clean streak.
        if (++clean_streak_ >= policy_.recovery_cycles) {
            transitionTo(
                static_cast<DegradationLevel>(
                    static_cast<int>(level_) - 1),
                now);
            clean_streak_ = 0;
        }
    } else {
        clean_streak_ = 0;
    }
    return level_;
}

double
DegradationManager::speedCap(double nominal_speed) const
{
    switch (level_) {
    case DegradationLevel::Nominal:
        return nominal_speed;
    case DegradationLevel::Degraded:
        return std::min(nominal_speed, policy_.degraded_speed_cap);
    case DegradationLevel::ReactiveOnly:
    case DegradationLevel::SafeStop:
        return 0.0;
    }
    return 0.0;
}

void
DegradationManager::transitionTo(DegradationLevel level, Timestamp now)
{
    if (level == level_)
        return;
    level_ = level;
    worst_ = std::max(worst_, level);
    transitions_.emplace_back(now, level);
}

} // namespace sov::health
