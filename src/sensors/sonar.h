/**
 * @file
 * Ultrasonic (sonar) ranger — the short-range complement of radar on
 * the reactive path (Sec. IV). Reports the distance to the nearest
 * surface inside a wide cone, with a short maximum range.
 */
#pragma once

#include <functional>
#include <optional>

#include "core/rng.h"
#include "core/time.h"
#include "math/geometry.h"
#include "world/world.h"

namespace sov {

/** Sonar configuration. */
struct SonarConfig
{
    double rate_hz = 20.0;
    double max_range = 5.0;     //!< meters (short-range sensor)
    double cone_half_angle = 0.35; //!< radians
    double range_noise = 0.02;  //!< meters
    double mount_yaw = 0.0;     //!< beam direction relative to body +x
};

/** One sonar reading. */
struct SonarReading
{
    Timestamp trigger_time;
    std::optional<double> range; //!< nullopt = nothing in range
};

/** Simulated sonar unit. */
class SonarModel
{
  public:
    SonarModel(const SonarConfig &config, Rng rng)
        : config_(config), rng_(std::move(rng)) {}

    /** Ping from the vehicle at @p body, time @p t. */
    SonarReading ping(const WorldSnapshot &world, const Pose2 &body, Timestamp t);

    /** Fault hook: when set and returning true at a ping time, the
     *  unit returns an empty reading (transducer dropout). */
    void
    setDropoutFilter(std::function<bool(Timestamp)> filter)
    {
        dropout_filter_ = std::move(filter);
    }

    Duration period() const
    {
        return Duration::seconds(1.0 / config_.rate_hz);
    }

    const SonarConfig &config() const { return config_; }

  private:
    SonarConfig config_;
    Rng rng_;
    std::function<bool(Timestamp)> dropout_filter_;
};

} // namespace sov
