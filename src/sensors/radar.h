/**
 * @file
 * Automotive radar model.
 *
 * Object-level detections (range, azimuth, radial velocity) of
 * obstacles in the field of view — the sensor that (1) replaces
 * compute-intensive visual tracking (Sec. VI-B) and (2) drives the
 * reactive safety path (Sec. IV).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "math/geometry.h"
#include "world/world.h"

namespace sov {

/** One radar detection (sensor frame: bearing relative to boresight). */
struct RadarDetection
{
    Timestamp trigger_time;
    double range = 0.0;            //!< meters
    double azimuth = 0.0;          //!< radians, left positive
    double radial_velocity = 0.0;  //!< m/s, positive = receding
    ObstacleId truth_id = 0;       //!< ground-truth link (tests only)
};

/** Radar configuration (77 GHz automotive-style defaults). */
struct RadarConfig
{
    double rate_hz = 20.0;
    double max_range = 60.0;
    double fov = 1.2;              //!< full field of view, radians
    double range_noise = 0.15;     //!< meters
    double azimuth_noise = 0.01;   //!< radians
    double velocity_noise = 0.1;   //!< m/s
    double detection_probability = 0.95;
    double mount_yaw = 0.0;        //!< boresight relative to body +x
};

/** Simulated radar unit. */
class RadarModel
{
  public:
    RadarModel(const RadarConfig &config, Rng rng)
        : config_(config), rng_(std::move(rng)) {}

    /**
     * One scan from the vehicle at @p body, time @p t, moving with
     * planar velocity @p ego_velocity (for relative radial velocity).
     */
    std::vector<RadarDetection> scan(const WorldSnapshot &world, const Pose2 &body,
                                     const Vec2 &ego_velocity, Timestamp t);

    /**
     * Distance to the nearest obstacle in the vehicle's forward path
     * corridor — the reactive path's input (Sec. IV). Bypasses object
     * detection entirely.
     * @param corridor_half_width Lateral half-width of the checked
     *        corridor, typically half the vehicle width plus margin.
     */
    std::optional<double> nearestInPath(const WorldSnapshot &world,
                                        const Pose2 &body,
                                        double corridor_half_width,
                                        Timestamp t) const;

    /**
     * Fault hook: when set and returning true at a scan time, the unit
     * produces no data for that scan (RF blanking, power glitch). The
     * fault layer adapts a dropout FaultChannel to this signature.
     */
    void
    setDropoutFilter(std::function<bool(Timestamp)> filter)
    {
        dropout_filter_ = std::move(filter);
    }

    Duration period() const
    {
        return Duration::seconds(1.0 / config_.rate_hz);
    }

    const RadarConfig &config() const { return config_; }

  private:
    RadarConfig config_;
    Rng rng_;
    std::function<bool(Timestamp)> dropout_filter_;
};

} // namespace sov
