/**
 * @file
 * GNSS receiver model: noisy absolute position fixes, signal outages
 * (tunnels), and multipath bias bursts (Sec. VI-B's GPS-VIO hybrid
 * depends on all three behaviours).
 */
#pragma once

#include <optional>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "math/vec.h"
#include "world/trajectory.h"

namespace sov {

/** One GNSS fix. */
struct GpsFix
{
    Timestamp trigger_time;
    Vec2 position;          //!< world frame, meters
    double horizontal_accuracy; //!< reported 1-sigma, meters
    bool multipath = false; //!< fix corrupted by multipath reflection
};

/** GNSS model parameters. */
struct GpsConfig
{
    double rate_hz = 10.0;
    double noise_sigma = 0.5;         //!< nominal horizontal noise
    double multipath_bias = 8.0;      //!< bias magnitude during bursts
    double multipath_probability = 0.0; //!< per-fix burst start chance
    double multipath_duration_s = 2.0;
};

/** An interval with no GNSS reception. */
struct GpsOutage
{
    Timestamp begin;
    Timestamp end;
};

/** Simulated GNSS receiver. */
class GpsModel
{
  public:
    GpsModel(const GpsConfig &config, Rng rng)
        : config_(config), rng_(std::move(rng)) {}

    /** Declare an outage window (e.g. an underground passage). */
    void addOutage(Timestamp begin, Timestamp end);

    /**
     * Sample a fix at time @p t; nullopt while in an outage.
     * Multipath bursts add a slowly-rotating bias and flag the fix.
     */
    std::optional<GpsFix> sample(const Trajectory &trajectory, Timestamp t);

    Duration period() const
    {
        return Duration::seconds(1.0 / config_.rate_hz);
    }

    bool inOutage(Timestamp t) const;

  private:
    GpsConfig config_;
    Rng rng_;
    std::vector<GpsOutage> outages_;
    Timestamp multipath_until_ = Timestamp::origin();
    Vec2 multipath_offset_{0.0, 0.0};
};

} // namespace sov
