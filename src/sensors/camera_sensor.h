/**
 * @file
 * Camera sensor: the renderer-backed image source with exposure time
 * and rolling trigger semantics. Also provides the "simulated feature
 * front-end": landmark observations projected with pixel noise, used
 * by the VIO sync study where thousands of trials make full rendering
 * impractical (the rendered path is exercised separately).
 */
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "vision/camera_model.h"
#include "vision/renderer.h"
#include "world/trajectory.h"
#include "world/world.h"

namespace sov {

/** One captured camera frame. */
struct CameraFrame
{
    Timestamp trigger_time; //!< true exposure start
    RenderedFrame frame;
};

/** One projected landmark observation (simulated feature matching). */
struct FeatureObservation
{
    std::uint32_t landmark_id;
    Pixel pixel;
    double depth; //!< true z-depth; consumers may ignore or noise it
};

/** Camera sensor parameters. */
struct CameraSensorConfig
{
    double rate_hz = 30.0;          //!< paper: cameras at 30 FPS
    Duration exposure = Duration::millisF(8.0);
    Duration transmission = Duration::millisF(12.0); //!< readout + MIPI
    double pixel_noise = 0.4;       //!< feature observation noise (px)
};

/** Renderer-backed camera sensor. */
class CameraSensor
{
  public:
    CameraSensor(const CameraModel &model, const CameraSensorConfig &config,
                 Rng rng)
        : model_(model), config_(config), rng_(std::move(rng)) {}

    /** Render a frame with the vehicle at its time-@p t pose. */
    CameraFrame capture(const WorldSnapshot &world, const Trajectory &trajectory,
                        Timestamp t) const;

    /**
     * Project all visible landmarks with pixel noise — the simulated
     * feature front-end.
     */
    std::vector<FeatureObservation>
    observeLandmarks(const WorldSnapshot &world, const Trajectory &trajectory,
                     Timestamp t);

    /** World-frame camera pose at time t. */
    CameraPose poseAt(const Trajectory &trajectory, Timestamp t) const;

    Duration period() const
    {
        return Duration::seconds(1.0 / config_.rate_hz);
    }

    const CameraModel &model() const { return model_; }
    const CameraSensorConfig &config() const { return config_; }

    /** Fixed sensor-side delay: exposure + transmission (Sec. VI-A2,
     *  the constant the application layer compensates). */
    Duration
    constantDelay() const
    {
        return config_.exposure + config_.transmission;
    }

  private:
    CameraModel model_;
    CameraSensorConfig config_;
    Rng rng_;
    Renderer renderer_;
};

} // namespace sov
