/**
 * @file
 * Sensor-processing-pipeline latency model (Fig. 12b).
 *
 * Between the physical trigger and the application, a camera sample
 * traverses exposure -> transmission -> sensor interface -> ISP ->
 * DRAM/kernel -> application. Exposure and transmission are constant;
 * the ISP and the software stack contribute *variable* latency (~10 ms
 * at the ISP, up to ~100 ms at the application layer), which is what
 * breaks software-only synchronization (Sec. VI-A1).
 */
#pragma once

#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "obs/trace.h"

namespace sov {

/** One stage of a sensor processing pipeline. */
struct PipelineStage
{
    std::string name;
    Duration fixed;          //!< deterministic component
    Duration jitter_median;  //!< median of the variable component
    double jitter_sigma = 0.0; //!< log-normal sigma of the variable part
};

/** Latency contributions of one traversal. */
struct PipelineTraversal
{
    Timestamp trigger_time;
    Timestamp arrival_time;  //!< when the sample reaches the consumer
    std::vector<Duration> stage_delays;

    Duration total() const { return arrival_time - trigger_time; }
};

/** A chain of pipeline stages with stochastic delays. */
class SensorPipelineModel
{
  public:
    SensorPipelineModel(std::vector<PipelineStage> stages, Rng rng)
        : stages_(std::move(stages)), rng_(std::move(rng)) {}

    /** Simulate one traversal for a sample triggered at @p trigger. */
    PipelineTraversal traverse(Timestamp trigger);

    /**
     * Emit every traversal into @p recorder as a chain of spans — one
     * per pipeline hop (exposure, transmission, ISP, ...) on the lane
     * named @p track — plus a trigger instant. nullptr detaches.
     * Observational only; the delay draws are unchanged.
     */
    void setTraceRecorder(obs::TraceRecorder *recorder,
                          const std::string &track);

    /** Sum of the fixed (compensatable) components. */
    Duration fixedDelay() const;

    const std::vector<PipelineStage> &stages() const { return stages_; }

    /**
     * The camera pipeline of Fig. 12b: exposure and transmission are
     * fixed; sensor interface, ISP, DRAM/kernel, and application add
     * variable latency (ISP ~ 10 ms variation; application ~100 ms).
     */
    static SensorPipelineModel cameraPipeline(Rng rng);

    /** The IMU pipeline: fixed transmission, variable CPU-side code. */
    static SensorPipelineModel imuPipeline(Rng rng);

  private:
    std::vector<PipelineStage> stages_;
    Rng rng_;
    obs::TraceRecorder *recorder_ = nullptr;
    obs::NameId trace_track_ = 0;
    obs::NameId trace_category_ = 0;
    obs::NameId trace_trigger_ = 0;
    std::vector<obs::NameId> trace_stage_names_;
    std::uint64_t traversals_ = 0;
};

} // namespace sov
