#include "sensors/camera_sensor.h"

namespace sov {

CameraPose
CameraSensor::poseAt(const Trajectory &trajectory, Timestamp t) const
{
    const TrajectorySample s = trajectory.sample(t);
    return model_.poseAt(s.pose2());
}

CameraFrame
CameraSensor::capture(const WorldSnapshot &world, const Trajectory &trajectory,
                      Timestamp t) const
{
    CameraFrame out;
    out.trigger_time = t;
    out.frame = renderer_.render(world, model_, poseAt(trajectory, t), t);
    return out;
}

std::vector<FeatureObservation>
CameraSensor::observeLandmarks(const WorldSnapshot &world,
                               const Trajectory &trajectory, Timestamp t)
{
    const CameraPose pose = poseAt(trajectory, t);
    std::vector<FeatureObservation> observations;
    for (const auto &lm : world.landmarks()) {
        const auto proj = model_.project(pose, lm.position);
        if (!proj)
            continue;
        FeatureObservation obs;
        obs.landmark_id = lm.id;
        obs.pixel.u =
            proj->first.u + rng_.gaussian(0.0, config_.pixel_noise);
        obs.pixel.v =
            proj->first.v + rng_.gaussian(0.0, config_.pixel_noise);
        obs.depth = proj->second;
        observations.push_back(obs);
    }
    return observations;
}

} // namespace sov
