#include "sensors/sonar.h"

#include <cmath>

namespace sov {

SonarReading
SonarModel::ping(const WorldSnapshot &world, const Pose2 &body, Timestamp t)
{
    SonarReading reading;
    reading.trigger_time = t;
    if (dropout_filter_ && dropout_filter_(t))
        return reading;

    // Sweep a few rays across the cone; nearest return wins.
    const double beam = body.heading + config_.mount_yaw;
    std::optional<double> best;
    for (int i = -2; i <= 2; ++i) {
        const double angle =
            beam + config_.cone_half_angle * static_cast<double>(i) / 2.0;
        const Vec2 dir(std::cos(angle), std::sin(angle));
        const auto hit =
            world.raycast(body.position, dir, config_.max_range, t);
        if (hit && (!best || *hit < *best))
            best = hit;
    }
    if (best) {
        reading.range =
            std::max(0.0, *best + rng_.gaussian(0.0, config_.range_noise));
    }
    return reading;
}

} // namespace sov
