#include "sensors/radar.h"

#include <cmath>

namespace sov {

std::vector<RadarDetection>
RadarModel::scan(const WorldSnapshot &world, const Pose2 &body,
                 const Vec2 &ego_velocity, Timestamp t)
{
    std::vector<RadarDetection> detections;
    if (dropout_filter_ && dropout_filter_(t))
        return detections;
    const double boresight = body.heading + config_.mount_yaw;

    for (const auto &obs : world.obstacles()) {
        const Vec2 rel = obs.positionAt(t) - body.position;
        const double range = rel.norm();
        if (range < 0.3 || range > config_.max_range)
            continue;
        const double bearing =
            wrapAngle(std::atan2(rel.y(), rel.x()) - boresight);
        if (std::fabs(bearing) > config_.fov / 2.0)
            continue;
        if (!rng_.bernoulli(config_.detection_probability))
            continue;

        // Radial velocity of the target relative to the ego vehicle.
        const Vec2 rel_vel = obs.velocity - ego_velocity;
        const Vec2 los = rel / range;
        const double vr = rel_vel.dot(los);

        RadarDetection det;
        det.trigger_time = t;
        det.range = range + rng_.gaussian(0.0, config_.range_noise);
        det.azimuth = bearing + rng_.gaussian(0.0, config_.azimuth_noise);
        det.radial_velocity =
            vr + rng_.gaussian(0.0, config_.velocity_noise);
        det.truth_id = obs.id;
        detections.push_back(det);
    }
    return detections;
}

std::optional<double>
RadarModel::nearestInPath(const WorldSnapshot &world, const Pose2 &body,
                          double corridor_half_width, Timestamp t) const
{
    if (dropout_filter_ && dropout_filter_(t))
        return std::nullopt;
    // Three parallel rays across the corridor approximate the beam.
    const Vec2 dir = body.direction();
    const Vec2 normal(-dir.y(), dir.x());
    std::optional<double> best;
    for (const double lateral :
         {-corridor_half_width, 0.0, corridor_half_width}) {
        const Vec2 origin = body.position + normal * lateral;
        const auto hit = world.raycast(origin, dir, config_.max_range, t);
        if (hit && (!best || *hit < *best))
            best = hit;
    }
    return best;
}

} // namespace sov
