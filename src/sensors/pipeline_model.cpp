#include "sensors/pipeline_model.h"

namespace sov {

PipelineTraversal
SensorPipelineModel::traverse(Timestamp trigger)
{
    PipelineTraversal out;
    out.trigger_time = trigger;
    Timestamp t = trigger;
    const std::uint64_t sample = traversals_++;
    if (recorder_)
        recorder_->instant(trace_trigger_, trace_category_, trace_track_,
                           trigger, sample);
    for (std::size_t i = 0; i < stages_.size(); ++i) {
        const auto &stage = stages_[i];
        Duration d = stage.fixed;
        if (stage.jitter_median > Duration::zero()) {
            d += Duration::millisF(rng_.logNormal(
                stage.jitter_median.toMillis(), stage.jitter_sigma));
        }
        out.stage_delays.push_back(d);
        if (recorder_)
            recorder_->span(trace_stage_names_[i], trace_category_,
                            trace_track_, t, t + d, sample);
        t += d;
    }
    out.arrival_time = t;
    return out;
}

void
SensorPipelineModel::setTraceRecorder(obs::TraceRecorder *recorder,
                                      const std::string &track)
{
    recorder_ = recorder;
    trace_stage_names_.clear();
    if (!recorder_)
        return;
    trace_track_ = recorder_->intern(track);
    trace_category_ = recorder_->intern("sensor");
    trace_trigger_ = recorder_->intern("trigger");
    for (const auto &stage : stages_)
        trace_stage_names_.push_back(recorder_->intern(stage.name));
}

Duration
SensorPipelineModel::fixedDelay() const
{
    Duration d = Duration::zero();
    for (const auto &stage : stages_)
        d += stage.fixed;
    return d;
}

SensorPipelineModel
SensorPipelineModel::cameraPipeline(Rng rng)
{
    // Medians chosen so ISP variation ~ 10 ms and the full software
    // stack varies by up to ~100 ms, matching Sec. VI-A1's numbers.
    std::vector<PipelineStage> stages{
        {"exposure", Duration::millisF(8.0), Duration::zero(), 0.0},
        {"transmission", Duration::millisF(12.0), Duration::zero(), 0.0},
        {"sensor-interface", Duration::millisF(1.0),
         Duration::millisF(1.0), 0.3},
        {"isp", Duration::millisF(6.0), Duration::millisF(8.0), 0.45},
        {"kernel-driver", Duration::millisF(2.0), Duration::millisF(5.0),
         0.6},
        {"application", Duration::millisF(3.0), Duration::millisF(18.0),
         0.8},
    };
    return SensorPipelineModel(std::move(stages), std::move(rng));
}

SensorPipelineModel
SensorPipelineModel::imuPipeline(Rng rng)
{
    std::vector<PipelineStage> stages{
        {"transmission", Duration::millisF(0.5), Duration::zero(), 0.0},
        {"kernel-driver", Duration::millisF(0.5), Duration::millisF(2.0),
         0.5},
        {"application", Duration::millisF(0.5), Duration::millisF(6.0),
         0.8},
    };
    return SensorPipelineModel(std::move(stages), std::move(rng));
}

} // namespace sov
