#include "sensors/gps.h"

#include <cmath>

namespace sov {

void
GpsModel::addOutage(Timestamp begin, Timestamp end)
{
    outages_.push_back(GpsOutage{begin, end});
}

bool
GpsModel::inOutage(Timestamp t) const
{
    for (const auto &o : outages_) {
        if (t >= o.begin && t <= o.end)
            return true;
    }
    return false;
}

std::optional<GpsFix>
GpsModel::sample(const Trajectory &trajectory, Timestamp t)
{
    if (inOutage(t))
        return std::nullopt;

    // Multipath burst bookkeeping.
    if (t >= multipath_until_ &&
        rng_.bernoulli(config_.multipath_probability)) {
        multipath_until_ =
            t + Duration::seconds(config_.multipath_duration_s);
        const double angle = rng_.uniform(0.0, 2.0 * M_PI);
        multipath_offset_ = Vec2(std::cos(angle), std::sin(angle)) *
            config_.multipath_bias;
    }
    const bool multipath = t < multipath_until_;

    const TrajectorySample truth = trajectory.sample(t);
    GpsFix fix;
    fix.trigger_time = t;
    fix.position = Vec2(truth.position.x(), truth.position.y()) +
        Vec2(rng_.gaussian(0.0, config_.noise_sigma),
             rng_.gaussian(0.0, config_.noise_sigma));
    if (multipath)
        fix.position += multipath_offset_;
    fix.horizontal_accuracy =
        multipath ? config_.multipath_bias : config_.noise_sigma;
    fix.multipath = multipath;
    return fix;
}

} // namespace sov
