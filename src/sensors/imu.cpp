#include "sensors/imu.h"

#include <cmath>

namespace sov {

ImuSample
ImuModel::sample(const Trajectory &trajectory, Timestamp t)
{
    // Advance the bias random walks.
    double dt = 1.0 / config_.rate_hz;
    if (!first_)
        dt = std::max((t - last_sample_).toSeconds(), 0.0);
    first_ = false;
    last_sample_ = t;
    const double sqrt_dt = std::sqrt(std::max(dt, 1e-6));
    for (std::size_t i = 0; i < 3; ++i) {
        gyro_bias_[i] +=
            rng_.gaussian(0.0, config_.gyro_bias_walk * sqrt_dt);
        accel_bias_[i] +=
            rng_.gaussian(0.0, config_.accel_bias_walk * sqrt_dt);
    }

    const TrajectorySample truth = trajectory.sample(t);

    ImuSample out;
    out.trigger_time = t;

    // Gyro: body-frame angular velocity.
    out.angular_velocity = truth.angular_velocity + gyro_bias_ +
        Vec3(rng_.gaussian(0.0, config_.gyro_noise),
             rng_.gaussian(0.0, config_.gyro_noise),
             rng_.gaussian(0.0, config_.gyro_noise));

    // Accelerometer: specific force f = R^T (a - g), g = (0,0,-9.81).
    const Vec3 a_minus_g =
        truth.acceleration - Vec3(0.0, 0.0, -config_.gravity);
    out.acceleration =
        truth.orientation.conjugate().rotate(a_minus_g) + accel_bias_ +
        Vec3(rng_.gaussian(0.0, config_.accel_noise),
             rng_.gaussian(0.0, config_.accel_noise),
             rng_.gaussian(0.0, config_.accel_noise));
    return out;
}

} // namespace sov
