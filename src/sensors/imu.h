/**
 * @file
 * Inertial measurement unit model.
 *
 * Samples the ground-truth trajectory and produces gyro/accelerometer
 * readings with bias random-walk and white noise — the IMU half of the
 * VIO localization input (Table III) and of the synchronization
 * study (Sec. VI-A, 240 FPS trigger).
 */
#pragma once

#include "core/rng.h"
#include "core/time.h"
#include "math/vec.h"
#include "world/trajectory.h"

namespace sov {

/** One IMU reading (body frame). */
struct ImuSample
{
    Timestamp trigger_time;  //!< true capture instant
    Vec3 angular_velocity;   //!< rad/s
    Vec3 acceleration;       //!< specific force, m/s^2 (gravity incl.)
};

/** IMU noise parameters (consumer-grade MEMS defaults). */
struct ImuConfig
{
    double rate_hz = 240.0;            //!< paper: IMU at 240 FPS
    double gyro_noise = 0.002;         //!< rad/s white noise (1 sigma)
    double gyro_bias_walk = 1e-5;      //!< rad/s per sqrt(s)
    double accel_noise = 0.03;         //!< m/s^2 white noise
    double accel_bias_walk = 1e-4;     //!< m/s^2 per sqrt(s)
    double gravity = 9.80665;
};

/** Simulated IMU with persistent bias state. */
class ImuModel
{
  public:
    ImuModel(const ImuConfig &config, Rng rng)
        : config_(config), rng_(std::move(rng)) {}

    /** Sample the IMU at time @p t along @p trajectory. */
    ImuSample sample(const Trajectory &trajectory, Timestamp t);

    /** Sampling period implied by the configured rate. */
    Duration period() const
    {
        return Duration::seconds(1.0 / config_.rate_hz);
    }

    const ImuConfig &config() const { return config_; }
    const Vec3 &gyroBias() const { return gyro_bias_; }
    const Vec3 &accelBias() const { return accel_bias_; }

  private:
    ImuConfig config_;
    Rng rng_;
    Vec3 gyro_bias_{0.0, 0.0, 0.0};
    Vec3 accel_bias_{0.0, 0.0, 0.0};
    Timestamp last_sample_ = Timestamp::origin();
    bool first_ = true;
};

} // namespace sov
