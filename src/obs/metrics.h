/**
 * @file
 * Named metrics: the aggregate half of the observability spine.
 *
 * A MetricRegistry holds three metric families keyed by name:
 *
 *   counters   — monotonically increasing u64 (merge = sum)
 *   gauges     — last-known level (merge = max, documented below)
 *   histograms — latency/value distributions; every sample is retained
 *                for exact interpolated percentiles (the Fig. 10
 *                best/mean/p99 numbers must not move when a bench
 *                migrates onto the registry) AND folded into a
 *                core/stats QuantileDigest whose integer bucket counts
 *                merge order-independently for fleet-scale aggregation
 *
 * This replaces the pre-spine sim/LatencyTracer: record(name, Duration)
 * stores milliseconds exactly as the tracer did, and mean/min/max/
 * percentile/stddev reproduce its arithmetic sample for sample.
 *
 * Merge semantics (the fleet determinism contract): merging per-shard
 * registries IN CANONICAL ORDER (scenario index order, not completion
 * order) makes the merged registry — and fingerprint() — a pure
 * function of the shard contents, independent of thread count.
 * fingerprint() itself only hashes merge-order-independent state
 * (counts, sorted samples, digest buckets, counters), so even
 * differently-grouped merges of the same samples fingerprint
 * identically.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/time.h"

namespace sov::obs {

/** Named counters, gauges and histograms; copyable and mergeable. */
class MetricRegistry
{
  public:
    // Counters.
    /** Add @p delta to counter @p name (creating it at zero). */
    void incr(const std::string &name, std::uint64_t delta = 1);
    /** Current value; 0 for a counter never incremented. */
    std::uint64_t counter(const std::string &name) const;
    std::vector<std::string> counterNames() const;

    // Gauges.
    void setGauge(const std::string &name, double value);
    /** Last set value; 0 for a gauge never set. */
    double gauge(const std::string &name) const;
    std::vector<std::string> gaugeNames() const;

    // Histograms.
    /** Record one latency sample in milliseconds of model time. */
    void record(const std::string &name, Duration latency);
    /** Record an end-to-end sample (histogram "total"). */
    void recordTotal(Duration latency) { record("total", latency); }
    /** Record a raw value (units are the caller's). */
    void recordValue(const std::string &name, double value);

    /** Distinct histogram names seen so far, sorted. */
    std::vector<std::string> histogramNames() const;
    /** Samples recorded for @p name; 0 if absent. */
    std::size_t count(const std::string &name) const;
    double mean(const std::string &name) const;
    double min(const std::string &name) const;
    double max(const std::string &name) const;
    /** Exact linear-interpolated percentile, @p p in [0, 100]. */
    double percentile(const std::string &name, double p) const;
    double stddev(const std::string &name) const;
    /** Digest-backed quantile, @p q in [0, 1] — the mergeable
     *  fleet-scale estimate (within the digest's relative accuracy). */
    double quantile(const std::string &name, double q) const;

    /**
     * Fold @p other into this registry: counters add, gauges keep the
     * max (a deterministic, order-independent "high-water" reading),
     * histograms concatenate samples and add digest buckets. Call in
     * canonical shard order for a deterministic merged registry.
     */
    void merge(const MetricRegistry &other);

    /** FNV-1a over canonical, merge-order-independent content. */
    std::uint64_t fingerprint() const;

    /** Multi-line "name: best/mean/p99" table for bench output. */
    std::string summary() const;

    /** Stable-ordered JSON object {counters, gauges, histograms}. */
    void toJson(std::ostream &os) const;

    bool empty() const;
    void clear();

  private:
    /** One histogram: retained samples + mergeable digest. */
    struct Hist
    {
        std::vector<double> samples;
        bool sorted = false;
        QuantileDigest digest{0.01};

        void add(double x);
        double mean() const;
        double percentile(double p); //!< sorts on demand
    };

    Hist *findHist(const std::string &name) const;

    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, double> gauges_;
    // mutable: percentile queries sort lazily, as PercentileBuffer did.
    mutable std::map<std::string, Hist> hists_;
};

} // namespace sov::obs
