#include "obs/metrics.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "core/logging.h"

namespace sov::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void
fnvBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

template <typename T>
void
fnvPod(std::uint64_t &h, const T &v)
{
    fnvBytes(h, &v, sizeof(v));
}

void
fnvString(std::uint64_t &h, const std::string &s)
{
    fnvBytes(h, s.data(), s.size());
    const char nul = '\0';
    fnvBytes(h, &nul, 1);
}

template <typename Map>
std::vector<std::string>
keysOf(const Map &map)
{
    std::vector<std::string> names;
    names.reserve(map.size());
    for (const auto &kv : map)
        names.push_back(kv.first);
    return names;
}

} // namespace

void
MetricRegistry::Hist::add(double x)
{
    samples.push_back(x);
    sorted = false;
    digest.add(x);
}

double
MetricRegistry::Hist::mean() const
{
    if (samples.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples)
        s += x;
    return s / static_cast<double>(samples.size());
}

double
MetricRegistry::Hist::percentile(double p)
{
    SOV_ASSERT(p >= 0.0 && p <= 100.0);
    if (samples.empty())
        return 0.0;
    if (!sorted) {
        std::sort(samples.begin(), samples.end());
        sorted = true;
    }
    if (samples.size() == 1)
        return samples.front();
    const double rank = p / 100.0 * static_cast<double>(samples.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples.size())
        return samples.back();
    return samples[lo] * (1.0 - frac) + samples[lo + 1] * frac;
}

void
MetricRegistry::incr(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

std::uint64_t
MetricRegistry::counter(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

std::vector<std::string>
MetricRegistry::counterNames() const
{
    return keysOf(counters_);
}

void
MetricRegistry::setGauge(const std::string &name, double value)
{
    gauges_[name] = value;
}

double
MetricRegistry::gauge(const std::string &name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

std::vector<std::string>
MetricRegistry::gaugeNames() const
{
    return keysOf(gauges_);
}

void
MetricRegistry::record(const std::string &name, Duration latency)
{
    hists_[name].add(latency.toMillis());
}

void
MetricRegistry::recordValue(const std::string &name, double value)
{
    hists_[name].add(value);
}

std::vector<std::string>
MetricRegistry::histogramNames() const
{
    return keysOf(hists_);
}

MetricRegistry::Hist *
MetricRegistry::findHist(const std::string &name) const
{
    const auto it = hists_.find(name);
    return it == hists_.end() ? nullptr : &it->second;
}

std::size_t
MetricRegistry::count(const std::string &name) const
{
    const Hist *h = findHist(name);
    return h ? h->samples.size() : 0;
}

double
MetricRegistry::mean(const std::string &name) const
{
    const Hist *h = findHist(name);
    SOV_ASSERT(h != nullptr);
    return h->mean();
}

double
MetricRegistry::min(const std::string &name) const
{
    Hist *h = findHist(name);
    SOV_ASSERT(h != nullptr);
    return h->percentile(0.0);
}

double
MetricRegistry::max(const std::string &name) const
{
    Hist *h = findHist(name);
    SOV_ASSERT(h != nullptr);
    return h->percentile(100.0);
}

double
MetricRegistry::percentile(const std::string &name, double p) const
{
    Hist *h = findHist(name);
    SOV_ASSERT(h != nullptr);
    return h->percentile(p);
}

double
MetricRegistry::stddev(const std::string &name) const
{
    const Hist *h = findHist(name);
    SOV_ASSERT(h != nullptr);
    RunningStats rs;
    for (double x : h->samples)
        rs.add(x);
    return rs.stddev();
}

double
MetricRegistry::quantile(const std::string &name, double q) const
{
    const Hist *h = findHist(name);
    SOV_ASSERT(h != nullptr);
    return h->digest.quantile(q);
}

void
MetricRegistry::merge(const MetricRegistry &other)
{
    for (const auto &[name, value] : other.counters_)
        counters_[name] += value;
    for (const auto &[name, value] : other.gauges_) {
        const auto it = gauges_.find(name);
        if (it == gauges_.end())
            gauges_[name] = value;
        else
            it->second = std::max(it->second, value);
    }
    for (const auto &[name, hist] : other.hists_) {
        Hist &mine = hists_[name];
        mine.samples.insert(mine.samples.end(), hist.samples.begin(),
                            hist.samples.end());
        mine.sorted = false;
        mine.digest.merge(hist.digest);
    }
}

std::uint64_t
MetricRegistry::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    for (const auto &[name, value] : counters_) {
        fnvString(h, name);
        fnvPod(h, value);
    }
    for (const auto &[name, value] : gauges_) {
        fnvString(h, name);
        fnvPod(h, value);
    }
    for (auto &[name, hist] : hists_) {
        fnvString(h, name);
        const std::uint64_t n = hist.samples.size();
        fnvPod(h, n);
        // Sorted samples: insertion order (completion order under a
        // thread pool) must not leak into the fingerprint.
        if (!hist.sorted) {
            std::sort(hist.samples.begin(), hist.samples.end());
            hist.sorted = true;
        }
        for (double x : hist.samples)
            fnvPod(h, x);
        for (const auto &[index, weight] : hist.digest.buckets()) {
            fnvPod(h, index);
            fnvPod(h, weight);
        }
    }
    return h;
}

std::string
MetricRegistry::summary() const
{
    std::ostringstream os;
    for (auto &kv : hists_) {
        Hist &hist = kv.second;
        os << kv.first << ": best=" << hist.percentile(0.0)
           << "ms mean=" << hist.mean()
           << "ms p99=" << hist.percentile(99.0) << "ms\n";
    }
    return os.str();
}

void
MetricRegistry::toJson(std::ostream &os) const
{
    os << "{\"counters\":{";
    bool first = true;
    for (const auto &[name, value] : counters_) {
        os << (first ? "" : ",") << "\"" << name << "\":" << value;
        first = false;
    }
    os << "},\"gauges\":{";
    first = true;
    for (const auto &[name, value] : gauges_) {
        os << (first ? "" : ",") << "\"" << name << "\":" << value;
        first = false;
    }
    os << "},\"histograms\":{";
    first = true;
    for (auto &[name, hist] : hists_) {
        os << (first ? "" : ",") << "\"" << name << "\":{"
           << "\"count\":" << hist.samples.size()
           << ",\"mean\":" << hist.mean()
           << ",\"min\":" << hist.percentile(0.0)
           << ",\"max\":" << hist.percentile(100.0)
           << ",\"p50\":" << hist.percentile(50.0)
           << ",\"p99\":" << hist.percentile(99.0) << "}";
        first = false;
    }
    os << "}}";
}

bool
MetricRegistry::empty() const
{
    return counters_.empty() && gauges_.empty() && hists_.empty();
}

void
MetricRegistry::clear()
{
    counters_.clear();
    gauges_.clear();
    hists_.clear();
}

} // namespace sov::obs
