/**
 * @file
 * Structured trace recording: the event half of the observability
 * spine (DESIGN.md "The observability spine").
 *
 * A TraceRecorder collects span / instant / counter events from every
 * subsystem — dataflow stage executions, closed-loop frame lifecycles,
 * fault injections, degradation transitions, sensor pipeline hops —
 * time-stamped in SIMULATION time (the deterministic nanosecond clock
 * of sov::Simulator). Wall-clock stamps are optional, opt-in, and never
 * mix into the sim-time fields: sim time is part of the determinism
 * contract, wall time is diagnostics.
 *
 * Hot-path design: each producing thread owns a fixed-capacity ring of
 * POD TraceEvents carved once from a per-thread FrameArena. emit() is
 * a cached-pointer bump — no locks, no allocation, no cross-thread
 * writes — so tracing a steady-state closed-loop frame performs zero
 * system allocations (asserted in tests via systemAllocations()). The
 * ring overwrites its oldest events when full (droppedEvents() counts
 * them); post-run consumers snapshot(), fingerprint() or export the
 * surviving window.
 *
 * Determinism: snapshot() orders events by content (time, kind,
 * category, name, track, frame, duration, value), not by which thread
 * or ring happened to hold them, so fingerprint() is identical for any
 * thread count as long as the producers emitted the same events — the
 * same canonical-order contract the fleet layer uses for outcomes.
 *
 * Export is the Chrome trace-event JSON format: load the file in
 * Perfetto (https://ui.perfetto.dev) or chrome://tracing. Tracks map
 * to threads, spans to "X" duration events, instants to "i", counters
 * to "C".
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/arena.h"
#include "core/time.h"

namespace sov::obs {

/** Interned string handle; 0 is the empty string. */
using NameId = std::uint32_t;

/** What shape of event a TraceEvent is. */
enum class EventKind : std::uint8_t
{
    Span = 0,    //!< an interval [ts, ts + dur)
    Instant = 1, //!< a point event at ts
    Counter = 2, //!< a sampled value at ts
};

/** One recorded event. POD; lives in the per-thread rings. */
struct TraceEvent
{
    NameId name = 0;
    NameId category = 0; //!< e.g. "stage", "frame", "fault", "health"
    NameId track = 0;    //!< timeline lane (resource, subsystem)
    EventKind kind = EventKind::Instant;
    std::int64_t ts_ns = 0;  //!< SIMULATION time (never wall clock)
    std::int64_t dur_ns = 0; //!< spans only
    std::uint64_t frame = 0; //!< producing frame index (0 if n/a)
    double value = 0.0;      //!< counters only
    /** Wall-clock stamp (steady_clock ns); 0 unless
     *  TraceConfig::wall_clock. Excluded from fingerprints and from
     *  every sim-time field of the export. */
    std::int64_t wall_ns = 0;
};

/** Recorder settings. */
struct TraceConfig
{
    /** Events retained per producing thread (oldest overwritten). */
    std::size_t ring_capacity = std::size_t{1} << 15;
    /** Also stamp events with wall-clock time (diagnostics only). */
    bool wall_clock = false;
};

/** Collects events from any number of threads; exports post-run. */
class TraceRecorder
{
  public:
    explicit TraceRecorder(TraceConfig config = {});
    ~TraceRecorder();

    TraceRecorder(const TraceRecorder &) = delete;
    TraceRecorder &operator=(const TraceRecorder &) = delete;

    /**
     * Intern @p s, returning a stable id (same string, same id).
     * Takes a lock: producers intern once up front and cache ids;
     * never intern per event on a hot path.
     */
    NameId intern(std::string_view s);

    /** The string behind @p id (copies; export/test use). */
    std::string name(NameId id) const;

    /** Record a [start, finish) span. Lock-free after interning. */
    void
    span(NameId name, NameId category, NameId track, Timestamp start,
         Timestamp finish, std::uint64_t frame = 0)
    {
        TraceEvent e;
        e.name = name;
        e.category = category;
        e.track = track;
        e.kind = EventKind::Span;
        e.ts_ns = start.ns();
        e.dur_ns = (finish - start).ns();
        e.frame = frame;
        emit(e);
    }

    /** Record a point event. */
    void
    instant(NameId name, NameId category, NameId track, Timestamp at,
            std::uint64_t frame = 0)
    {
        TraceEvent e;
        e.name = name;
        e.category = category;
        e.track = track;
        e.kind = EventKind::Instant;
        e.ts_ns = at.ns();
        e.frame = frame;
        emit(e);
    }

    /** Record a sampled counter value. */
    void
    counter(NameId name, NameId track, Timestamp at, double value)
    {
        TraceEvent e;
        e.name = name;
        e.track = track;
        e.kind = EventKind::Counter;
        e.ts_ns = at.ns();
        e.value = value;
        emit(e);
    }

    /** Events currently retained across all rings. */
    std::size_t eventCount() const;

    /** Events overwritten because a ring wrapped. */
    std::uint64_t droppedEvents() const;

    /** Lifetime system allocations of the ring storage — constant in
     *  steady state once every producing thread has registered. */
    std::size_t systemAllocations() const;

    /**
     * All retained events in canonical content order (independent of
     * thread count and ring layout). Call only while producers are
     * quiescent (after the run / pool join).
     */
    std::vector<TraceEvent> snapshot() const;

    /** FNV-1a over the canonical snapshot, names resolved — identical
     *  for identical event content regardless of threading. Wall-clock
     *  stamps are excluded. */
    std::uint64_t fingerprint() const;

    /** Write Chrome trace-event JSON (Perfetto / chrome://tracing).
     *  Deterministic: canonical event order, fixed key order, sim-time
     *  ts/dur only (wall time appears solely as an args annotation). */
    void writeChromeTrace(std::ostream &os) const;

    /** writeChromeTrace() to @p path; false if the file can't open. */
    bool writeChromeTraceFile(const std::string &path) const;

    /** Drop all events (rings keep their storage; names survive). */
    void clear();

    const TraceConfig &config() const { return config_; }

    /** Most recent sim-time stamp emitted (for post-mortem capture). */
    Timestamp lastEventTime() const
    {
        return Timestamp::nanos(last_ts_.load(std::memory_order_relaxed));
    }

    /**
     * Process-wide active recorder. setActive() also installs the
     * core/logging sink that lands a final instant (category "log")
     * in the active recorder when SOV_ASSERT / SOV_PANIC / SOV_FATAL
     * fire, and — if setCrashDumpPath() was set — dumps the trace
     * before the process dies, so a fault-matrix abort still leaves a
     * readable timeline.
     */
    static void setActive(TraceRecorder *recorder);
    static TraceRecorder *active();

    /** Where the panic hook writes the trace (empty = don't dump). */
    void setCrashDumpPath(std::string path);

    /** Write the trace to the crash-dump path now (no-op if unset).
     *  Called from the logging sink on fatal/panic. */
    void dumpCrashTrace() const;

  private:
    struct ThreadBuffer
    {
        FrameArena arena;
        TraceEvent *ring = nullptr;
        std::size_t capacity = 0;
        std::size_t head = 0;        //!< next write slot
        std::uint64_t written = 0;   //!< lifetime events
        std::thread::id owner;
    };

    /** The calling thread's ring (registers it on first use). */
    ThreadBuffer &localBuffer();

    void emit(const TraceEvent &event);

    /** Copy one ring oldest-first into @p out (caller holds mu_). */
    void drainBuffer(const ThreadBuffer &buffer,
                     std::vector<TraceEvent> &out) const;

    TraceConfig config_;
    const std::uint64_t id_; //!< process-unique, guards the TLS cache

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
    std::vector<std::string> names_;
    std::map<std::string, NameId, std::less<>> ids_;
    std::string crash_dump_path_;

    std::atomic<std::int64_t> last_ts_{0};
};

} // namespace sov::obs
