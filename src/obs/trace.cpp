#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <ostream>
#include <tuple>

#include "core/logging.h"

namespace sov::obs {

namespace {

/** Process-unique recorder ids so the TLS cache can never alias a
 *  destroyed recorder that was reallocated at the same address. */
std::atomic<std::uint64_t> next_recorder_id{1};

/** TLS fast path: the last recorder this thread emitted into. */
thread_local std::uint64_t tls_recorder_id = 0;
thread_local void *tls_buffer = nullptr;

std::atomic<TraceRecorder *> active_recorder{nullptr};

std::int64_t
wallNowNs()
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

void
fnvBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

template <typename T>
void
fnvPod(std::uint64_t &h, const T &v)
{
    fnvBytes(h, &v, sizeof(v));
}

void
fnvString(std::uint64_t &h, const std::string &s)
{
    fnvBytes(h, s.data(), s.size());
    const char nul = '\0';
    fnvBytes(h, &nul, 1);
}

/** Logging sink: land the dying message as a final instant in the
 *  active recorder, then dump its trace if a crash path is set. */
void
logCaptureSink(LogLevel level, const char *msg, const char *file, int line)
{
    (void)file;
    (void)line;
    if (level != LogLevel::Fatal && level != LogLevel::Panic)
        return;
    TraceRecorder *rec = TraceRecorder::active();
    if (!rec)
        return;
    const NameId name = rec->intern(msg ? msg : "");
    const NameId cat =
        rec->intern(level == LogLevel::Panic ? "panic" : "fatal");
    const NameId track = rec->intern("log");
    rec->instant(name, cat, track, rec->lastEventTime());
    rec->dumpCrashTrace();
}

/** Escape for a JSON string literal (control chars, quote, bslash). */
void
writeJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (const char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

/** Nanoseconds as a decimal microsecond literal with ns precision. */
void
writeMicros(std::ostream &os, std::int64_t ns)
{
    const bool neg = ns < 0;
    const std::uint64_t mag =
        neg ? static_cast<std::uint64_t>(-(ns + 1)) + 1
            : static_cast<std::uint64_t>(ns);
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%s%" PRIu64 ".%03" PRIu64,
                  neg ? "-" : "", mag / 1000, mag % 1000);
    os << buf;
}

void
writeDouble(std::ostream &os, double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
}

} // namespace

TraceRecorder::TraceRecorder(TraceConfig config)
    : config_(config),
      id_(next_recorder_id.fetch_add(1, std::memory_order_relaxed))
{
    SOV_ASSERT(config_.ring_capacity > 0);
    names_.push_back(std::string());
    ids_.emplace(std::string(), 0);
}

TraceRecorder::~TraceRecorder()
{
    TraceRecorder *self = this;
    active_recorder.compare_exchange_strong(self, nullptr);
}

NameId
TraceRecorder::intern(std::string_view s)
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = ids_.find(s);
    if (it != ids_.end())
        return it->second;
    const NameId id = static_cast<NameId>(names_.size());
    names_.emplace_back(s);
    ids_.emplace(names_.back(), id);
    return id;
}

std::string
TraceRecorder::name(NameId id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    SOV_ASSERT(id < names_.size());
    return names_[id];
}

TraceRecorder::ThreadBuffer &
TraceRecorder::localBuffer()
{
    if (tls_recorder_id == id_)
        return *static_cast<ThreadBuffer *>(tls_buffer);

    std::lock_guard<std::mutex> lock(mu_);
    const std::thread::id self = std::this_thread::get_id();
    ThreadBuffer *buffer = nullptr;
    for (const auto &b : buffers_) {
        if (b->owner == self) {
            buffer = b.get();
            break;
        }
    }
    if (!buffer) {
        auto fresh = std::make_unique<ThreadBuffer>();
        fresh->arena =
            FrameArena(config_.ring_capacity * sizeof(TraceEvent));
        fresh->owner = self;
        fresh->capacity = config_.ring_capacity;
        fresh->ring = fresh->arena.alloc<TraceEvent>(fresh->capacity);
        buffer = fresh.get();
        buffers_.push_back(std::move(fresh));
    }
    tls_recorder_id = id_;
    tls_buffer = buffer;
    return *buffer;
}

void
TraceRecorder::emit(const TraceEvent &event)
{
    ThreadBuffer &b = localBuffer();
    TraceEvent &slot = b.ring[b.head];
    slot = event;
    if (config_.wall_clock)
        slot.wall_ns = wallNowNs();
    b.head = b.head + 1 == b.capacity ? 0 : b.head + 1;
    ++b.written;
    last_ts_.store(event.ts_ns, std::memory_order_relaxed);
}

std::size_t
TraceRecorder::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &b : buffers_)
        n += std::min<std::uint64_t>(b->written, b->capacity);
    return n;
}

std::uint64_t
TraceRecorder::droppedEvents() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto &b : buffers_)
        n += b->written > b->capacity ? b->written - b->capacity : 0;
    return n;
}

std::size_t
TraceRecorder::systemAllocations() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &b : buffers_)
        n += b->arena.systemAllocations();
    return n;
}

void
TraceRecorder::drainBuffer(const ThreadBuffer &buffer,
                           std::vector<TraceEvent> &out) const
{
    if (buffer.written <= buffer.capacity) {
        out.insert(out.end(), buffer.ring, buffer.ring + buffer.written);
        return;
    }
    // Wrapped: oldest surviving event sits at head.
    out.insert(out.end(), buffer.ring + buffer.head,
               buffer.ring + buffer.capacity);
    out.insert(out.end(), buffer.ring, buffer.ring + buffer.head);
}

std::vector<TraceEvent>
TraceRecorder::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<TraceEvent> events;
    std::size_t total = 0;
    for (const auto &b : buffers_)
        total += std::min<std::uint64_t>(b->written, b->capacity);
    events.reserve(total);
    for (const auto &b : buffers_)
        drainBuffer(*b, events);

    // Canonical content order: which thread's ring held an event must
    // not influence the exported timeline or the fingerprint.
    const auto &names = names_;
    std::stable_sort(
        events.begin(), events.end(),
        [&names](const TraceEvent &a, const TraceEvent &b) {
            return std::tie(a.ts_ns, a.kind, names[a.category],
                            names[a.name], names[a.track], a.frame,
                            a.dur_ns, a.value) <
                   std::tie(b.ts_ns, b.kind, names[b.category],
                            names[b.name], names[b.track], b.frame,
                            b.dur_ns, b.value);
        });
    return events;
}

std::uint64_t
TraceRecorder::fingerprint() const
{
    const std::vector<TraceEvent> events = snapshot();
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t h = kFnvOffset;
    for (const TraceEvent &e : events) {
        fnvPod(h, static_cast<std::uint8_t>(e.kind));
        fnvString(h, names_[e.name]);
        fnvString(h, names_[e.category]);
        fnvString(h, names_[e.track]);
        fnvPod(h, e.ts_ns);
        fnvPod(h, e.dur_ns);
        fnvPod(h, e.frame);
        fnvPod(h, e.value);
        // wall_ns deliberately excluded: wall time is diagnostics,
        // never part of the determinism contract.
    }
    return h;
}

void
TraceRecorder::writeChromeTrace(std::ostream &os) const
{
    const std::vector<TraceEvent> events = snapshot();

    std::vector<std::string> names;
    {
        std::lock_guard<std::mutex> lock(mu_);
        names = names_;
    }

    // Stable track -> tid mapping, sorted by track name.
    std::map<std::string, int> tids;
    for (const TraceEvent &e : events)
        tids.emplace(names[e.track], 0);
    int next_tid = 0;
    for (auto &kv : tids)
        kv.second = next_tid++;

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto &[track, tid] : tids) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,"
              "\"tid\":"
           << tid << ",\"args\":{\"name\":";
        writeJsonString(os, track.empty() ? std::string("main") : track);
        os << "}}";
    }
    for (const TraceEvent &e : events) {
        if (!first)
            os << ",";
        first = false;
        os << "\n{\"name\":";
        writeJsonString(os, names[e.name]);
        if (e.category != 0) {
            os << ",\"cat\":";
            writeJsonString(os, names[e.category]);
        }
        switch (e.kind) {
          case EventKind::Span:
            os << ",\"ph\":\"X\",\"ts\":";
            writeMicros(os, e.ts_ns);
            os << ",\"dur\":";
            writeMicros(os, e.dur_ns);
            break;
          case EventKind::Instant:
            os << ",\"ph\":\"i\",\"s\":\"t\",\"ts\":";
            writeMicros(os, e.ts_ns);
            break;
          case EventKind::Counter:
            os << ",\"ph\":\"C\",\"ts\":";
            writeMicros(os, e.ts_ns);
            break;
        }
        os << ",\"pid\":0,\"tid\":" << tids.at(names[e.track])
           << ",\"args\":{";
        if (e.kind == EventKind::Counter) {
            os << "\"value\":";
            writeDouble(os, e.value);
        } else {
            os << "\"frame\":" << e.frame;
        }
        if (e.wall_ns != 0) {
            // Wall time rides along as an annotation only; ts/dur
            // above are pure sim time.
            os << ",\"wall_us\":";
            writeMicros(os, e.wall_ns);
        }
        os << "}}";
    }
    os << "\n]}\n";
}

bool
TraceRecorder::writeChromeTraceFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeChromeTrace(out);
    return out.good();
}

void
TraceRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &b : buffers_) {
        b->head = 0;
        b->written = 0;
    }
    last_ts_.store(0, std::memory_order_relaxed);
}

void
TraceRecorder::setActive(TraceRecorder *recorder)
{
    active_recorder.store(recorder, std::memory_order_release);
    if (recorder)
        setLogSink(&logCaptureSink);
}

TraceRecorder *
TraceRecorder::active()
{
    return active_recorder.load(std::memory_order_acquire);
}

void
TraceRecorder::setCrashDumpPath(std::string path)
{
    std::lock_guard<std::mutex> lock(mu_);
    crash_dump_path_ = std::move(path);
}

void
TraceRecorder::dumpCrashTrace() const
{
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mu_);
        path = crash_dump_path_;
    }
    if (!path.empty())
        writeChromeTraceFile(path);
}

} // namespace sov::obs
