#include "sync/synchronizer.h"

#include "core/logging.h"

namespace sov {

TriggerSchedule
HardwareSynchronizer::schedule(Duration horizon) const
{
    TriggerSchedule out;
    const Duration imu_period =
        Duration::seconds(1.0 / config_.imu_rate_hz);
    std::uint32_t tick = 0;
    for (Timestamp t = Timestamp::origin();
         t <= Timestamp::origin() + horizon; t += imu_period, ++tick) {
        out.imu_triggers.push_back(t);
        // Camera trigger = IMU trigger downsampled 8x, so every camera
        // sample is always associated with an IMU sample (Sec. VI-A2).
        if (tick % config_.camera_downsample == 0)
            out.camera_triggers.push_back(t);
    }
    return out;
}

StampedSample
HardwareSynchronizer::stampImu(Timestamp trigger,
                               SensorPipelineModel &pipeline,
                               Rng &rng) const
{
    StampedSample s;
    s.trigger_time = trigger;
    // The synchronizer itself records the trigger; only quantization
    // of its timer remains as error.
    s.stamped_time = trigger + Duration::nanos(static_cast<std::int64_t>(
        rng.uniform(0.0,
                    static_cast<double>(
                        config_.stamp_quantization.ns()))));
    s.arrival_time = pipeline.traverse(trigger).arrival_time;
    return s;
}

StampedSample
HardwareSynchronizer::stampCamera(Timestamp trigger, Duration constant_delay,
                                  SensorPipelineModel &pipeline,
                                  Rng &rng) const
{
    const PipelineTraversal traversal = pipeline.traverse(trigger);
    SOV_ASSERT(traversal.stage_delays.size() >= 3);

    StampedSample s;
    s.trigger_time = trigger;
    // The sensor interface stamps when the frame reaches it: after
    // exposure + transmission (the first two stages) plus interface
    // quantization; software then subtracts the datasheet constant.
    const Timestamp at_interface = trigger + traversal.stage_delays[0] +
        traversal.stage_delays[1];
    const Timestamp stamped_raw = at_interface +
        Duration::nanos(static_cast<std::int64_t>(
            rng.uniform(0.0,
                        static_cast<double>(
                            config_.stamp_quantization.ns()))));
    s.stamped_time = stamped_raw - constant_delay;
    s.arrival_time = traversal.arrival_time;
    return s;
}

StampedSample
SoftwareSync::stamp(Timestamp trigger, SensorPipelineModel &pipeline) const
{
    const PipelineTraversal traversal =
        pipeline.traverse(trigger + clock_skew_);
    StampedSample s;
    s.trigger_time = trigger;
    s.stamped_time = traversal.arrival_time;
    s.arrival_time = traversal.arrival_time;
    return s;
}

} // namespace sov
