/**
 * @file
 * Sensor synchronization (Sec. VI-A, Fig. 12).
 *
 * Two strategies are modelled end-to-end:
 *
 *  - SoftwareSync (Fig. 12a): sensors free-run on their own clocks
 *    (with skew), samples are timestamped when they *arrive at the
 *    application* after the variable-latency pipeline. Timestamp error
 *    = clock skew + whole-pipeline jitter (tens of ms).
 *
 *  - HardwareSync (Fig. 12c): a hardware synchronizer triggers all
 *    sensors from one GPS-initialized timer (camera trigger is the IMU
 *    trigger downsampled 8x); IMU samples are stamped in the
 *    synchronizer, camera frames are stamped at the sensor interface
 *    and the constant exposure+transmission delay is compensated in
 *    software. Timestamp error < 1 ms.
 */
#pragma once

#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "sensors/pipeline_model.h"

namespace sov {

/** A delivered sensor sample with true and believed capture times. */
struct StampedSample
{
    Timestamp trigger_time;  //!< ground truth capture instant
    Timestamp stamped_time;  //!< what the consumer believes
    Timestamp arrival_time;  //!< when the consumer received it

    /** Signed timestamp error (stamped - true). */
    Duration error() const { return stamped_time - trigger_time; }
};

/** Hardware synchronizer configuration (Sec. VI-A2). */
struct SynchronizerConfig
{
    double imu_rate_hz = 240.0;   //!< master trigger rate
    std::uint32_t camera_downsample = 8; //!< 240/8 = 30 FPS cameras
    std::uint32_t num_cameras = 4;
    /** Residual stamping error of the near-sensor path. */
    Duration stamp_quantization = Duration::micros(100);
};

/** Resource footprint reported for the FPGA synchronizer (Sec VI-A3). */
struct SynchronizerFootprint
{
    std::uint32_t luts = 1443;
    std::uint32_t registers = 1587;
    double power_mw = 5.0;
    Duration added_latency = Duration::millisF(1.0);
};

/** Trigger schedule produced by the common-timer design. */
struct TriggerSchedule
{
    std::vector<Timestamp> imu_triggers;
    std::vector<Timestamp> camera_triggers;
};

/** The hardware synchronizer model. */
class HardwareSynchronizer
{
  public:
    explicit HardwareSynchronizer(const SynchronizerConfig &config = {})
        : config_(config) {}

    /** Trigger schedule over @p horizon from the common timer. */
    TriggerSchedule schedule(Duration horizon) const;

    /**
     * Stamp an IMU sample: the synchronizer records the trigger time
     * directly (packed with the 20-byte sample).
     */
    StampedSample stampImu(Timestamp trigger,
                           SensorPipelineModel &pipeline, Rng &rng) const;

    /**
     * Stamp a camera frame: the sensor interface stamps on arrival and
     * software subtracts the constant exposure+transmission delay.
     * @param constant_delay The camera's datasheet delay.
     */
    StampedSample stampCamera(Timestamp trigger, Duration constant_delay,
                              SensorPipelineModel &pipeline,
                              Rng &rng) const;

    const SynchronizerConfig &config() const { return config_; }
    SynchronizerFootprint footprint() const { return {}; }

  private:
    SynchronizerConfig config_;
};

/** The software-only baseline: stamp at application arrival. */
class SoftwareSync
{
  public:
    /**
     * @param clock_skew Fixed skew of this sensor's own timer relative
     *        to the reference clock (sensors are triggered
     *        individually, Sec. VI-A1).
     */
    explicit SoftwareSync(Duration clock_skew = Duration::zero())
        : clock_skew_(clock_skew) {}

    /** Stamp a sample: believed time = arrival time at application. */
    StampedSample stamp(Timestamp trigger,
                        SensorPipelineModel &pipeline) const;

  private:
    Duration clock_skew_;
};

} // namespace sov
