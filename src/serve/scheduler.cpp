#include "serve/scheduler.h"

#include "core/logging.h"

namespace sov::serve {

DrrScheduler::Tenant *
DrrScheduler::find(const std::string &name)
{
    for (Tenant &t : tenants_)
        if (t.name == name)
            return &t;
    return nullptr;
}

void
DrrScheduler::addTenant(const std::string &name, std::uint32_t weight)
{
    SOV_ASSERT(weight >= 1);
    SOV_ASSERT(find(name) == nullptr);
    Tenant t;
    t.name = name;
    t.weight = weight;
    tenants_.push_back(std::move(t));
}

void
DrrScheduler::enqueue(const std::string &tenant, JobId job,
                      std::uint32_t first_slot, std::uint32_t count)
{
    Tenant *t = find(tenant);
    SOV_ASSERT(t != nullptr);
    for (std::uint32_t i = 0; i < count; ++i)
        t->queue.push_back(Shard{job, first_slot + i});
    queued_ += count;
}

std::optional<Shard>
DrrScheduler::next()
{
    if (queued_ == 0 || tenants_.empty())
        return std::nullopt;
    // One full round always reaches a backlogged tenant and grants it
    // weight >= 1 deficit, so <= size()+1 visits suffice.
    for (std::size_t visits = 0; visits <= tenants_.size(); ++visits) {
        Tenant &t = tenants_[cursor_];
        if (t.queue.empty()) {
            // No banking while idle: credit earned against an empty
            // queue would let a returning tenant burst past its share.
            t.deficit = 0.0;
            cursor_ = (cursor_ + 1) % tenants_.size();
            continue;
        }
        if (t.deficit < 1.0)
            t.deficit += static_cast<double>(t.weight); // fresh turn
        t.deficit -= 1.0;
        const Shard shard = t.queue.front();
        t.queue.pop_front();
        --queued_;
        if (t.queue.empty())
            t.deficit = 0.0;
        if (t.deficit < 1.0)
            cursor_ = (cursor_ + 1) % tenants_.size(); // turn is over
        return shard;
    }
    SOV_PANIC("DrrScheduler: queued shards but no dispatchable tenant");
}

std::size_t
DrrScheduler::removeJob(JobId job)
{
    std::size_t removed = 0;
    for (Tenant &t : tenants_) {
        auto &q = t.queue;
        for (auto it = q.begin(); it != q.end();) {
            if (it->job == job) {
                it = q.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
        if (q.empty())
            t.deficit = 0.0;
    }
    queued_ -= removed;
    return removed;
}

std::size_t
DrrScheduler::queuedFor(const std::string &tenant) const
{
    for (const Tenant &t : tenants_)
        if (t.name == tenant)
            return t.queue.size();
    return 0;
}

} // namespace sov::serve
