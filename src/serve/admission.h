/**
 * @file
 * Batched admission control: per-tenant token buckets + backlog caps.
 *
 * The serving layer's first line of defense against overload (the
 * paper's availability envelope argument, applied to the fleet
 * service): a tenant submitting faster than its provisioned rate is
 * rejected at the door, not queued into an unbounded backlog that
 * would erode every other tenant's time-to-first-result.
 *
 * Admission is batched: a job of N scenarios needs N tokens at once
 * (no partial admission — a half-admitted sweep is useless to the
 * tenant) and is additionally bounced while the tenant already has
 * max_queued_scenarios waiting, which bounds the per-tenant backlog
 * and therefore the worst-case queueing delay of everyone else.
 *
 * Time is supplied by the caller (monotonic seconds), never sampled
 * here — the unit tests drive the clock explicitly.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace sov::serve {

/** Provisioning of one tenant. */
struct TenantConfig
{
    std::string name;
    /** Sustained admission rate, scenarios per second. */
    double rate_scenarios_per_s = 100.0;
    /** Bucket capacity: the largest burst admissible at once. */
    double burst_scenarios = 200.0;
    /** Max scenarios queued (admitted, not yet dispatched) before
     *  further jobs are rejected with "over_backlog". */
    std::size_t max_queued_scenarios = 1000;
    /** DRR quantum: relative share of the worker pool under
     *  contention (scenarios granted per scheduler round). */
    std::uint32_t weight = 1;
};

/** Rejection codes (the line protocol's ERR reasons). */
inline constexpr const char *kRejectUnknownTenant = "unknown_tenant";
inline constexpr const char *kRejectOverRate = "over_rate";
inline constexpr const char *kRejectOverBacklog = "over_backlog";
inline constexpr const char *kRejectEmptyJob = "empty_job";
inline constexpr const char *kRejectOverBurst = "over_burst";

/** Classic token bucket over a caller-supplied clock. */
class TokenBucket
{
  public:
    TokenBucket() = default;
    TokenBucket(double rate_per_s, double burst);

    /** Refill for the elapsed time, then take @p n tokens if — and
     *  only if — all n are available. @p now_s must not go backwards. */
    bool tryTake(double n, double now_s);

    /** Tokens available at @p now_s (refilled, not consumed). */
    double available(double now_s);

  private:
    void refill(double now_s);

    double rate_per_s_ = 0.0;
    double burst_ = 0.0;
    double tokens_ = 0.0;
    double last_s_ = 0.0;
};

/** Admission decisions across the configured tenant set. */
class AdmissionController
{
  public:
    explicit AdmissionController(std::vector<TenantConfig> tenants = {});

    /**
     * Decide one submission of @p scenarios scenarios by @p tenant,
     * given its current backlog of @p queued_scenarios, at monotonic
     * time @p now_s. Returns std::nullopt on admission (tokens are
     * consumed) or a rejection code (nothing is consumed).
     */
    std::optional<std::string> decide(const std::string &tenant,
                                      std::size_t scenarios,
                                      std::size_t queued_scenarios,
                                      double now_s);

    const TenantConfig *find(const std::string &tenant) const;
    const std::vector<TenantConfig> &tenants() const { return tenants_; }

  private:
    std::vector<TenantConfig> tenants_;
    std::vector<TokenBucket> buckets_; //!< parallel to tenants_
};

} // namespace sov::serve
