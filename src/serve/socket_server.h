/**
 * @file
 * Socket front end for the ScenarioService.
 *
 * Serves the line protocol (serve/line_protocol.h) over a Unix-domain
 * socket and/or a TCP listener. The transport layer is deliberately
 * thin: one accept-loop thread per listener, one thread per accepted
 * connection, every request handled by the pure dispatch below —
 * protocol semantics live in ScenarioService + LineProtocol and are
 * tested without sockets; this file only moves bytes.
 *
 * Lifecycle: start() binds + spawns the accept loops; stop() (or the
 * destructor) closes the listening and connection fds, which unblocks
 * the blocking reads, then joins every thread. Pass tcp_port 0 for an
 * ephemeral port (query the bound one with tcpPort()).
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/catalog.h"
#include "serve/service.h"

namespace sov::serve {

/** Transport provisioning; empty/negative fields disable a listener. */
struct SocketServerConfig
{
    /** Unix-domain socket path; empty disables (unlinked on bind+stop). */
    std::string unix_path;
    /** TCP port on 127.0.0.1; 0 = ephemeral, negative disables. */
    int tcp_port = -1;
};

/** Line-protocol server over a ScenarioService (not owned). */
class SocketServer
{
  public:
    SocketServer(ScenarioService &service, ScenarioCatalog catalog,
                 SocketServerConfig config);
    ~SocketServer();

    SocketServer(const SocketServer &) = delete;
    SocketServer &operator=(const SocketServer &) = delete;

    /** Bind + listen + spawn accept loops. False on bind failure. */
    bool start();

    /** Close every fd, join every thread; idempotent. */
    void stop();

    /** The bound TCP port (0 until start() with tcp_port >= 0). */
    int tcpPort() const { return tcp_port_; }

    /**
     * Handle one request line, appending protocol response lines to
     * @p out (ROWS/CATALOG append a stream before the terminal OK).
     * Returns false when the connection should close (QUIT). Public —
     * this is the whole protocol engine, tested without a socket.
     */
    bool handleLine(const std::string &line, std::vector<std::string> &out);

  private:
    void acceptLoop(int listen_fd);
    void connectionLoop(int fd);
    int registerConnection(int fd);

    ScenarioService &service_;
    ScenarioCatalog catalog_;
    SocketServerConfig config_;

    int unix_fd_ = -1;
    int tcp_fd_ = -1;
    int tcp_port_ = 0;
    std::atomic<bool> stopping_{false};
    bool started_ = false;

    std::mutex mutex_; //!< guards conn_fds_ / threads_
    std::map<int, int> conn_fds_;
    std::vector<std::thread> threads_;
};

} // namespace sov::serve
