#include "serve/line_protocol.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

namespace sov::serve {

namespace {

std::vector<std::string> tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::istringstream in(line);
    std::string token;
    while (in >> token)
        tokens.push_back(std::move(token));
    return tokens;
}

/** Fold "key=value" trailing tokens into request.params. */
bool parseParams(const std::vector<std::string> &tokens, std::size_t first,
                 Request &request)
{
    for (std::size_t i = first; i < tokens.size(); ++i) {
        const std::size_t eq = tokens[i].find('=');
        if (eq == std::string::npos || eq == 0) {
            request.error = "malformed option '" + tokens[i] + "'";
            return false;
        }
        request.params[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
    }
    return true;
}

bool parseJobId(const std::string &token, JobId &out)
{
    char *end = nullptr;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0' || value == 0)
        return false;
    out = static_cast<JobId>(value);
    return true;
}

/** Verbs of the form "<VERB> <job> [k=v ...]". */
Request parseJobVerb(Verb verb, const std::vector<std::string> &tokens)
{
    Request request;
    if (tokens.size() < 2) {
        request.error = "missing job id";
        return request;
    }
    if (!parseJobId(tokens[1], request.job)) {
        request.error = "bad job id '" + tokens[1] + "'";
        return request;
    }
    if (!parseParams(tokens, 2, request))
        return request;
    request.verb = verb;
    return request;
}

std::string formatDouble(double value)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6g", value);
    return buf;
}

std::string formatHex64(std::uint64_t value)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(value));
    return buf;
}

} // namespace

Request parseRequest(const std::string &line)
{
    Request request;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) {
        request.error = "empty request";
        return request;
    }
    const std::string &verb = tokens[0];
    if (verb == "SUBMIT") {
        if (tokens.size() < 3) {
            request.error = "usage: SUBMIT <tenant> <set> [k=v ...]";
            return request;
        }
        request.tenant = tokens[1];
        request.set = tokens[2];
        if (!parseParams(tokens, 3, request))
            return request;
        request.verb = Verb::Submit;
        return request;
    }
    if (verb == "STATUS")
        return parseJobVerb(Verb::Status, tokens);
    if (verb == "CANCEL")
        return parseJobVerb(Verb::Cancel, tokens);
    if (verb == "WAIT")
        return parseJobVerb(Verb::Wait, tokens);
    if (verb == "ROWS")
        return parseJobVerb(Verb::Rows, tokens);
    if (verb == "STATS" || verb == "CATALOG" || verb == "PING" ||
        verb == "QUIT") {
        if (tokens.size() != 1) {
            request.error = verb + " takes no arguments";
            return request;
        }
        request.verb = verb == "STATS"     ? Verb::Stats
                       : verb == "CATALOG" ? Verb::Catalog
                       : verb == "PING"    ? Verb::Ping
                                           : Verb::Quit;
        return request;
    }
    request.error = "unknown verb '" + verb + "'";
    return request;
}

double paramDouble(const Request &request, const std::string &key,
                   double fallback)
{
    const auto it = request.params.find(key);
    if (it == request.params.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        return fallback;
    return value;
}

std::uint64_t paramU64(const Request &request, const std::string &key,
                       std::uint64_t fallback)
{
    const auto it = request.params.find(key);
    if (it == request.params.end())
        return fallback;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        return fallback;
    return static_cast<std::uint64_t>(value);
}

std::string formatSnapshot(const JobSnapshot &snapshot)
{
    std::ostringstream out;
    out << "job=" << snapshot.id << " tenant=" << snapshot.tenant
        << " state=" << toString(snapshot.state)
        << " total=" << snapshot.total
        << " completed=" << snapshot.completed
        << " cache_hits=" << snapshot.cache_hits
        << " revoked=" << snapshot.revoked
        << " ttfr_ms=" << formatDouble(snapshot.ttfr_ms)
        << " wall_ms=" << formatDouble(snapshot.wall_ms)
        << " fingerprint=" << formatHex64(snapshot.fingerprint);
    if (!snapshot.label.empty())
        out << " label=" << snapshot.label;
    return out.str();
}

std::string formatRow(JobId job, std::size_t seq,
                      const fleet::ScenarioOutcome &row)
{
    std::ostringstream out;
    out << "ROW " << job << ' ' << seq << " name=" << row.name
        << " index=" << row.index << " seed=" << row.seed
        << " collided=" << (row.collided ? 1 : 0)
        << " stopped=" << (row.stopped ? 1 : 0)
        << " min_gap=" << formatDouble(row.min_gap)
        << " availability=" << formatDouble(row.availability)
        << " deadline_misses=" << row.deadline_misses
        << " worst_level=" << static_cast<int>(row.worst_level);
    return out.str();
}

} // namespace sov::serve
