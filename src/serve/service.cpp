#include "serve/service.h"

#include <algorithm>
#include <utility>

#include "core/logging.h"

namespace sov::serve {

const char *
toString(JobState state)
{
    switch (state) {
      case JobState::Queued: return "queued";
      case JobState::Running: return "running";
      case JobState::Completed: return "completed";
      case JobState::Cancelled: return "cancelled";
      case JobState::TimedOut: return "timed_out";
    }
    return "?";
}

bool
isTerminal(JobState state)
{
    return state == JobState::Completed ||
           state == JobState::Cancelled || state == JobState::TimedOut;
}

ScenarioService::ScenarioService(ServiceConfig config)
    : config_(std::move(config)),
      max_inflight_(0),
      epoch_(std::chrono::steady_clock::now()),
      admission_(config_.tenants),
      cache_(config_.cache_capacity),
      runner_(fleet::FleetConfig{1, config_.master_seed}),
      pool_(config_.workers)
{
    max_inflight_ = config_.max_inflight != 0 ? config_.max_inflight
                                              : pool_.numThreads();
    for (const TenantConfig &t : config_.tenants)
        scheduler_.addTenant(t.name, t.weight);
}

ScenarioService::~ScenarioService()
{
    std::vector<JobId> ids;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        for (auto &[id, job] : jobs_) {
            ids.push_back(id);
            if (!isTerminal(job->state)) {
                finalizeLocked(*job, JobState::Cancelled);
                metrics_.incr("serve.jobs_cancelled");
            }
        }
    }
    cv_.notify_all();
    // The shutdown handshake: drop every queued serve task, then wait
    // for the running remainder — after this, no pool task references
    // the members the destructor is about to tear down.
    for (JobId id : ids)
        pool_.cancelTag(id);
    for (JobId id : ids)
        pool_.drainTag(id);
}

double
ScenarioService::nowSeconds() const
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

double
ScenarioService::elapsedMsLocked(const Job &job) const
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - job.submitted)
        .count();
}

SubmitResult
ScenarioService::submit(JobRequest request)
{
    std::lock_guard<std::mutex> lock(mutex_);
    metrics_.incr("serve.jobs_submitted");
    if (stopping_) {
        metrics_.incr("serve.jobs_rejected");
        return SubmitResult{false, 0, "shutting_down"};
    }
    const std::size_t n = request.scenarios.size();
    const auto backlog_it = backlog_.find(request.tenant);
    const std::size_t backlog =
        backlog_it == backlog_.end() ? 0 : backlog_it->second;
    if (const auto reason =
            admission_.decide(request.tenant, n, backlog, nowSeconds())) {
        metrics_.incr("serve.jobs_rejected");
        metrics_.incr("serve.tenant." + request.tenant + ".rejected");
        return SubmitResult{false, 0, *reason};
    }

    auto job = std::make_shared<Job>();
    job->id = next_id_++;
    job->tenant = std::move(request.tenant);
    job->label = std::move(request.label);
    job->scenarios = std::move(request.scenarios);
    // Row indices are the job's private report order; re-indexing by
    // position makes them unique by construction (mergeRow asserts
    // uniqueness) without changing matrix-enumerated jobs, which
    // already arrive as 0..n-1.
    for (std::size_t i = 0; i < job->scenarios.size(); ++i)
        job->scenarios[i].index = i;
    job->submitted = std::chrono::steady_clock::now();
    if (request.deadline_s) {
        job->deadline = job->submitted +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                *request.deadline_s));
    }

    jobs_.emplace(job->id, job);
    backlog_[job->tenant] += n;
    scheduler_.enqueue(job->tenant, job->id, 0,
                       static_cast<std::uint32_t>(n));
    metrics_.incr("serve.jobs_admitted");
    metrics_.incr("serve.tenant." + job->tenant + ".admitted");
    metrics_.incr("serve.scenarios_admitted", n);

    const JobId id = job->id;
    pumpLocked();
    return SubmitResult{true, id, ""};
}

void
ScenarioService::finalizeLocked(Job &job, JobState state)
{
    SOV_ASSERT(!isTerminal(job.state));
    job.state = state;
    job.wall_ms = elapsedMsLocked(job);
    // The revoke idiom: every dispatch carried the old serial, so any
    // shard still running (or queued in the pool) discards itself on
    // completion instead of merging into a terminal job.
    ++job.revoke_serial;
    const std::size_t dropped = scheduler_.removeJob(job.id);
    job.revoked += dropped;
    auto it = backlog_.find(job.tenant);
    SOV_ASSERT(it != backlog_.end() && it->second >= dropped);
    it->second -= dropped;
}

bool
ScenarioService::enforceDeadlineLocked(Job &job)
{
    if (isTerminal(job.state) || !job.deadline)
        return false;
    if (std::chrono::steady_clock::now() < *job.deadline)
        return false;
    finalizeLocked(job, JobState::TimedOut);
    metrics_.incr("serve.jobs_timed_out");
    return true;
}

void
ScenarioService::pumpLocked()
{
    while (inflight_ < max_inflight_) {
        const auto shard = scheduler_.next();
        if (!shard)
            break;
        const auto it = jobs_.find(shard->job);
        SOV_ASSERT(it != jobs_.end());
        const JobPtr &job = it->second;
        // finalizeLocked drops a job's queued shards, so a scheduled
        // shard always belongs to a live job.
        SOV_ASSERT(!isTerminal(job->state));
        auto backlog_it = backlog_.find(job->tenant);
        SOV_ASSERT(backlog_it != backlog_.end() &&
                   backlog_it->second >= 1);
        --backlog_it->second;
        if (enforceDeadlineLocked(*job))
            continue;
        if (job->state == JobState::Queued)
            job->state = JobState::Running;
        ++inflight_;
        pool_.submitTagged(
            job->id,
            [this, job, slot = shard->slot,
             serial = job->revoke_serial] { runShard(job, slot, serial); });
    }
}

void
ScenarioService::runShard(JobPtr job, std::uint32_t slot,
                          std::uint64_t serial)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ || serial != job->revoke_serial ||
            isTerminal(job->state)) {
            ++job->revoked;
            metrics_.incr("serve.shards_revoked");
            --inflight_;
            pumpLocked();
            cv_.notify_all();
            return;
        }
    }

    const fleet::ScenarioSpec &spec = job->scenarios[slot];
    const std::uint64_t key =
        cache_.enabled() ? scenarioFingerprint(spec, config_.master_seed)
                         : 0;
    std::optional<CachedResult> cached;
    if (cache_.enabled()) {
        std::lock_guard<std::mutex> lock(mutex_);
        cached = cache_.lookup(key);
    }
    const bool hit = cached.has_value();
    CachedResult result;
    if (hit) {
        result = std::move(*cached);
    } else {
        // The 99%: one closed-loop simulation, outside every lock.
        result.row = runner_.runScenario(spec, &result.metrics);
        if (cache_.enabled()) {
            std::lock_guard<std::mutex> lock(mutex_);
            cache_.insert(key, result);
        }
    }
    // Patch the scenario's position in THIS job's matrix; everything
    // else about the row is position-independent (pure function of
    // the scenario identity), which is what makes the cache replay
    // bit-identical.
    result.row.index = spec.index;
    result.row.name = spec.name;

    std::unique_lock<std::mutex> lock(mutex_);
    --inflight_;
    if (stopping_ || serial != job->revoke_serial ||
        isTerminal(job->state)) {
        // Revoked mid-flight: discard before touching the merge state
        // (cancellation leaves the registry merge-consistent).
        ++job->revoked;
        metrics_.incr("serve.shards_revoked");
    } else {
        job->partial.mergeRow(result.row);
        job->metrics.merge(result.metrics);
        job->stream.push_back(std::move(result.row));
        ++job->completed;
        if (job->ttfr_ms < 0.0) {
            job->ttfr_ms = elapsedMsLocked(*job);
            metrics_.recordValue("serve.ttfr_ms", job->ttfr_ms);
        }
        if (hit) {
            ++job->cache_hits;
        }
        metrics_.incr("serve.scenarios_completed");
        metrics_.incr("serve.tenant." + job->tenant + ".completed");
        if (job->completed == job->scenarios.size()) {
            job->state = JobState::Completed;
            job->wall_ms = elapsedMsLocked(*job);
            metrics_.incr("serve.jobs_completed");
            metrics_.recordValue("serve.job_wall_ms", job->wall_ms);
        }
    }
    pumpLocked();
    lock.unlock();
    cv_.notify_all();
}

JobSnapshot
ScenarioService::snapshotLocked(const Job &job) const
{
    JobSnapshot s;
    s.id = job.id;
    s.tenant = job.tenant;
    s.label = job.label;
    s.state = job.state;
    s.total = job.scenarios.size();
    s.completed = job.completed;
    s.cache_hits = job.cache_hits;
    s.revoked = job.revoked;
    s.ttfr_ms = job.ttfr_ms;
    s.wall_ms = isTerminal(job.state) ? job.wall_ms
                                      : elapsedMsLocked(job);
    s.fingerprint = job.partial.fingerprint();
    return s;
}

std::optional<JobSnapshot>
ScenarioService::status(JobId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    enforceDeadlineLocked(*it->second);
    return snapshotLocked(*it->second);
}

bool
ScenarioService::cancel(JobId id)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = jobs_.find(id);
        if (it == jobs_.end() || isTerminal(it->second->state))
            return false;
        finalizeLocked(*it->second, JobState::Cancelled);
        metrics_.incr("serve.jobs_cancelled");
    }
    cv_.notify_all();
    return true;
}

std::optional<JobSnapshot>
ScenarioService::wait(JobId id, double timeout_s)
{
    using clock = std::chrono::steady_clock;
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    const JobPtr job = it->second;
    const auto forever = clock::time_point::max();
    const auto until =
        timeout_s < 0.0
            ? forever
            : clock::now() + std::chrono::duration_cast<clock::duration>(
                                 std::chrono::duration<double>(timeout_s));
    for (;;) {
        enforceDeadlineLocked(*job);
        if (isTerminal(job->state))
            break;
        const auto now = clock::now();
        if (now >= until)
            break;
        // Bounded nap: a job deadline must fire even when no shard
        // completion ever wakes the cv (e.g. an idle, empty pool).
        auto next = std::min(until, now + std::chrono::milliseconds(50));
        if (job->deadline)
            next = std::min(next, *job->deadline);
        cv_.wait_until(lock, next);
    }
    return snapshotLocked(*job);
}

std::vector<fleet::ScenarioOutcome>
ScenarioService::fetchRows(JobId id, std::size_t from)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return {};
    const auto &stream = it->second->stream;
    if (from >= stream.size())
        return {};
    return {stream.begin() + static_cast<std::ptrdiff_t>(from),
            stream.end()};
}

std::optional<fleet::FleetReport>
ScenarioService::report(JobId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second->partial;
}

std::optional<obs::MetricRegistry>
ScenarioService::jobMetrics(JobId id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end())
        return std::nullopt;
    return it->second->metrics;
}

obs::MetricRegistry
ScenarioService::metricsSnapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    obs::MetricRegistry out = metrics_;
    out.incr("serve.cache.hits", cache_.hits());
    out.incr("serve.cache.misses", cache_.misses());
    out.incr("serve.cache.evictions", cache_.evictions());
    out.setGauge("serve.cache.size",
                 static_cast<double>(cache_.size()));
    out.setGauge("serve.inflight", static_cast<double>(inflight_));
    out.setGauge("serve.queued_shards",
                 static_cast<double>(scheduler_.queued()));
    return out;
}

} // namespace sov::serve
