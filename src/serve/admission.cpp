#include "serve/admission.h"

#include <algorithm>

#include "core/logging.h"

namespace sov::serve {

TokenBucket::TokenBucket(double rate_per_s, double burst)
    : rate_per_s_(rate_per_s), burst_(burst), tokens_(burst)
{
    SOV_ASSERT(rate_per_s >= 0.0 && burst >= 0.0);
}

void
TokenBucket::refill(double now_s)
{
    if (now_s > last_s_) {
        tokens_ = std::min(burst_,
                           tokens_ + rate_per_s_ * (now_s - last_s_));
        last_s_ = now_s;
    }
}

bool
TokenBucket::tryTake(double n, double now_s)
{
    refill(now_s);
    if (tokens_ < n)
        return false;
    tokens_ -= n;
    return true;
}

double
TokenBucket::available(double now_s)
{
    refill(now_s);
    return tokens_;
}

AdmissionController::AdmissionController(std::vector<TenantConfig> tenants)
    : tenants_(std::move(tenants))
{
    buckets_.reserve(tenants_.size());
    for (const TenantConfig &t : tenants_)
        buckets_.emplace_back(t.rate_scenarios_per_s, t.burst_scenarios);
}

const TenantConfig *
AdmissionController::find(const std::string &tenant) const
{
    for (const TenantConfig &t : tenants_)
        if (t.name == tenant)
            return &t;
    return nullptr;
}

std::optional<std::string>
AdmissionController::decide(const std::string &tenant,
                            std::size_t scenarios,
                            std::size_t queued_scenarios, double now_s)
{
    const TenantConfig *config = nullptr;
    std::size_t slot = 0;
    for (; slot < tenants_.size(); ++slot) {
        if (tenants_[slot].name == tenant) {
            config = &tenants_[slot];
            break;
        }
    }
    if (config == nullptr)
        return kRejectUnknownTenant;
    if (scenarios == 0)
        return kRejectEmptyJob;
    const auto n = static_cast<double>(scenarios);
    // A job larger than the bucket can ever hold would starve forever
    // on the rate check; reject it with a distinct code so the tenant
    // learns to split the sweep instead of retrying.
    if (n > config->burst_scenarios)
        return kRejectOverBurst;
    // Backlog check first: it consumes nothing, so an over-backlog
    // retry storm cannot drain the tenant's own tokens.
    if (queued_scenarios + scenarios > config->max_queued_scenarios)
        return kRejectOverBacklog;
    if (!buckets_[slot].tryTake(n, now_s))
        return kRejectOverRate;
    return std::nullopt;
}

} // namespace sov::serve
