/**
 * @file
 * Line protocol of the socket front end.
 *
 * One request per line, whitespace-separated tokens, key=value
 * options; one response per line except ROWS/CATALOG, which stream
 * prefixed lines and end with a terminal OK. Grammar (DESIGN.md has
 * the full version):
 *
 *   request  := SUBMIT <tenant> <set> [seed=N] [seeds=N]
 *                      [horizon_s=X] [deadline_s=X] [label=S]
 *             | STATUS <job> | CANCEL <job>
 *             | WAIT <job> [timeout_s=X]
 *             | ROWS <job> [from=N]
 *             | STATS | CATALOG | PING | QUIT
 *   response := OK <verb-specific fields>
 *             | ERR <code> [detail]
 *             | ROW <job> <seq> <k=v ...>     (ROWS stream lines)
 *             | SET <name> <description>      (CATALOG stream lines)
 *
 * Parsing and formatting are pure functions so tests cover the
 * protocol without a socket in sight.
 */
#pragma once

#include <map>
#include <string>

#include "fleet/fleet_report.h"
#include "serve/job.h"

namespace sov::serve {

enum class Verb
{
    Submit,
    Status,
    Cancel,
    Wait,
    Rows,
    Stats,
    Catalog,
    Ping,
    Quit,
    Invalid,
};

/** One parsed request line. */
struct Request
{
    Verb verb = Verb::Invalid;
    std::string tenant;  //!< SUBMIT
    std::string set;     //!< SUBMIT (catalog entry)
    JobId job = 0;       //!< STATUS / CANCEL / WAIT / ROWS
    std::map<std::string, std::string> params; //!< key=value options
    std::string error;   //!< parse failure reason (verb == Invalid)
};

/** Parse one request line (no trailing newline). */
Request parseRequest(const std::string &line);

/** Typed option access with fallbacks (malformed -> fallback). */
double paramDouble(const Request &request, const std::string &key,
                   double fallback);
std::uint64_t paramU64(const Request &request, const std::string &key,
                       std::uint64_t fallback);

/** "job=<id> state=<s> total=... fingerprint=<hex16>" fields. */
std::string formatSnapshot(const JobSnapshot &snapshot);

/** One "ROW <job> <seq> name=... collided=..." stream line. */
std::string formatRow(JobId job, std::size_t seq,
                      const fleet::ScenarioOutcome &row);

} // namespace sov::serve
