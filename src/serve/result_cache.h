/**
 * @file
 * Fingerprint-keyed result cache for scenario evaluations.
 *
 * The fleet determinism contract makes scenario results cacheable at
 * all: a ScenarioOutcome is a pure function of (master seed, scenario
 * identity, stack semantics), so a row computed once can be replayed
 * bit-identically for every later job that asks for the same
 * scenario — the serving layer's cheapest scenarios/sec are the ones
 * it never re-simulates.
 *
 * The key is an FNV-1a fingerprint over the scenario's *semantic*
 * identity: master seed, per-scenario seed, world preset (name,
 * horizon, route geometry), every FaultSpec field, and the stack
 * preset name plus the loop knobs that vary across the registry's
 * stacks. Preset names stand in for their closures (a WorldPreset's
 * build lambda is not hashable) — the same registry discipline the
 * scenario Rng forking already relies on: a preset's name IS its
 * semantics. Two presets sharing a name but not behavior would alias;
 * that is a registry bug, not a cache bug.
 *
 * Replay detail: the cached row stores the outcome of the *scenario*;
 * its position in the asking job's matrix (index, composed name) is
 * patched at replay so a hit is bit-identical to what a cold run at
 * that position would have produced.
 *
 * Not thread-safe; the ScenarioService serializes access.
 */
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <utility>

#include "fleet/fleet_report.h"
#include "fleet/scenario.h"
#include "obs/metrics.h"

namespace sov::serve {

/** Semantic identity hash of one scenario under @p master_seed. */
std::uint64_t scenarioFingerprint(const fleet::ScenarioSpec &spec,
                                  std::uint64_t master_seed);

/** Everything a shard evaluation produces (row + its registry). */
struct CachedResult
{
    fleet::ScenarioOutcome row;
    obs::MetricRegistry metrics;
};

/** LRU map fingerprint -> CachedResult with hit/miss counters. */
class ResultCache
{
  public:
    /** @param capacity Max entries; 0 disables the cache entirely. */
    explicit ResultCache(std::size_t capacity);

    bool enabled() const { return capacity_ > 0; }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /** Copy-out lookup; a hit refreshes the entry's LRU position. */
    std::optional<CachedResult> lookup(std::uint64_t key);

    /** Insert (or refresh) @p key, evicting the LRU tail if full. */
    void insert(std::uint64_t key, CachedResult value);

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    std::uint64_t evictions() const { return evictions_; }

  private:
    using Entry = std::pair<std::uint64_t, CachedResult>;

    std::size_t capacity_;
    std::list<Entry> lru_; //!< front = most recent
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> entries_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace sov::serve
