/**
 * @file
 * Named scenario sets for the service front end.
 *
 * A socket client cannot ship a C++ WorldPreset closure over the
 * wire; it names a catalog entry instead. Each entry is a builder
 * from (seed, seeds, horizon) to a concrete scenario list — the same
 * preset-registry discipline fleet/scenario.h established, lifted to
 * whole matrices. The in-process API accepts raw scenario lists; the
 * catalog is the serializable subset.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fleet/scenario.h"

namespace sov::serve {

/** Parameters a client may vary per submission. */
struct CatalogParams
{
    std::uint64_t seed = 1;
    std::size_t seeds = 1;    //!< seed, seed+1, ..., seed+seeds-1
    double horizon_s = 12.0;  //!< per-scenario sim horizon
};

/** Registry of named scenario-set builders. */
class ScenarioCatalog
{
  public:
    using Builder =
        std::function<std::vector<fleet::ScenarioSpec>(const CatalogParams &)>;

    void add(std::string name, std::string description, Builder builder);

    /** Build @p name with @p params; nullopt for an unknown set. */
    std::optional<std::vector<fleet::ScenarioSpec>>
    build(const std::string &name, const CatalogParams &params) const;

    bool has(const std::string &name) const;
    /** (name, description) pairs in registration order. */
    std::vector<std::pair<std::string, std::string>> entries() const;

    /**
     * The stock catalog:
     *   open_road     — obstacle-free baseline, bare stack
     *   sudden_wall   — Sec. IV wall at 30/40/50 m, bare + supervised
     *   crossing      — crossing pedestrian, bare + supervised
     *   traffic       — 6-vehicle corridor, bare + supervised
     *   fault_smoke   — the reduced (smoke) fault matrix
     *   fault_matrix  — all 11 Sec. III-C faults x bare/supervised
     *   scenario_fuzz — procedurally fuzzed agent worlds; params map
     *                   to (base seed, world count, horizon), and each
     *                   world replays from its own fuzz seed
     */
    static ScenarioCatalog standard();

  private:
    struct Entry
    {
        std::string name;
        std::string description;
        Builder builder;
    };

    std::vector<Entry> entries_;
};

} // namespace sov::serve
