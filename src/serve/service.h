/**
 * @file
 * ScenarioService: fleet-as-a-service over the FleetRunner.
 *
 * Turns the one-shot batch sweep engine into a long-running,
 * multi-tenant serving system — the ROADMAP's "heavy traffic from
 * millions of users" step, architected the way the SDV microservice
 * evaluation (arxiv 2412.09995) layers a service API over a shared
 * compute substrate:
 *
 *   submit -> admission (token bucket + backlog cap, serve/admission)
 *          -> per-tenant queue -> DRR fair share (serve/scheduler)
 *          -> tagged dispatch onto core/ThreadPool
 *          -> shard evaluation (FleetRunner::runScenario), short-
 *             circuited by the fingerprint-keyed LRU result cache
 *          -> streamed FleetReport::mergeRow / MetricRegistry::merge
 *
 * Determinism carries through the service layer: a job's final
 * FleetReport fingerprint is a pure function of (master seed, its
 * scenario list) — independent of worker count, of the other tenants'
 * traffic, and of whether rows came from the simulator or the cache.
 *
 * Cancellation reuses the PR 7 revoke idiom at job granularity: every
 * dispatch carries the job's revoke serial (cf. SchedulerCore::
 * beginDispatch); cancel/timeout bumps the serial and cancels the
 * job's queued pool tag, and a shard that finishes with a stale
 * serial is discarded before touching the job's report — the merge
 * state stays consistent, exactly like a revoked in-flight frame
 * never reaches the downstream lanes.
 *
 * Threading: one mutex guards all bookkeeping (jobs, scheduler,
 * cache, counters); the only work done under it is O(rows) merge
 * bookkeeping. Simulation — the 99% — runs on pool workers outside
 * the lock.
 */
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/thread_pool.h"
#include "fleet/fleet_runner.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/job.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"

namespace sov::serve {

/** Service provisioning. */
struct ServiceConfig
{
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t workers = 0;
    /** Max shards in flight; 0 = workers (keeps the DRR scheduler,
     *  not the pool's FIFO, in charge of what runs next). */
    std::size_t max_inflight = 0;
    /** Master seed of every scenario evaluation (the determinism
     *  root; also part of every cache key). */
    std::uint64_t master_seed = 1;
    /** Result cache entries; 0 disables caching. */
    std::size_t cache_capacity = 4096;
    /** The tenant universe; submissions from others are rejected. */
    std::vector<TenantConfig> tenants;
};

/** Long-running multi-tenant scenario-serving engine. */
class ScenarioService
{
  public:
    explicit ScenarioService(ServiceConfig config);

    /** Cancels every live job, drains the pool, then tears down. */
    ~ScenarioService();

    ScenarioService(const ScenarioService &) = delete;
    ScenarioService &operator=(const ScenarioService &) = delete;

    /** Admission decision + enqueue; never blocks on simulation. */
    SubmitResult submit(JobRequest request);

    /** Snapshot a job; nullopt for an unknown id. Lazily enforces an
     *  expired deadline (the job flips to TimedOut on observation if
     *  no dispatch got there first). */
    std::optional<JobSnapshot> status(JobId id);

    /** Cancel a live job: queued shards are revoked immediately,
     *  running shards are discarded on completion (stale revoke
     *  serial). False if unknown or already terminal. */
    bool cancel(JobId id);

    /** Block until @p id is terminal or @p timeout_s elapses
     *  (negative = wait forever); returns the final snapshot, or the
     *  live snapshot on timeout. nullopt for an unknown id. */
    std::optional<JobSnapshot> wait(JobId id, double timeout_s = -1.0);

    /**
     * The streaming read: completed rows of @p id in completion
     * order, starting at stream position @p from. A client polling
     * fetchRows(id, n.next) sees every row exactly once, as shards
     * finish — partial results long before the job completes.
     */
    std::vector<fleet::ScenarioOutcome> fetchRows(JobId id,
                                                  std::size_t from);

    /** The job's (partial or final) deterministic report. */
    std::optional<fleet::FleetReport> report(JobId id);

    /** The job's merged per-stage metric registry (streamed merge of
     *  its completed shards; fingerprint is merge-order independent). */
    std::optional<obs::MetricRegistry> jobMetrics(JobId id);

    /** Service-level counters (admissions, rejections, cache hits,
     *  TTFR histogram, per-tenant completions), copied out. */
    obs::MetricRegistry metricsSnapshot() const;

    /** Monotonic seconds since service start (the admission clock). */
    double nowSeconds() const;

    std::size_t workers() const { return pool_.numThreads(); }
    const ServiceConfig &config() const { return config_; }

  private:
    struct Job
    {
        JobId id = 0;
        std::string tenant;
        std::string label;
        std::vector<fleet::ScenarioSpec> scenarios;
        JobState state = JobState::Queued;
        std::size_t completed = 0;
        std::size_t cache_hits = 0;
        std::size_t revoked = 0;
        /** Dispatches carry this; cancel/timeout bumps it, and a
         *  completion with a stale serial is discarded (the PR 7
         *  revokeInFlight idiom at job granularity). */
        std::uint64_t revoke_serial = 0;
        fleet::FleetReport partial; //!< mergeRow-streamed
        obs::MetricRegistry metrics;
        std::vector<fleet::ScenarioOutcome> stream; //!< completion order
        std::chrono::steady_clock::time_point submitted;
        std::optional<std::chrono::steady_clock::time_point> deadline;
        double ttfr_ms = -1.0;
        double wall_ms = 0.0; //!< set at the terminal transition
    };

    using JobPtr = std::shared_ptr<Job>;

    JobSnapshot snapshotLocked(const Job &job) const;
    double elapsedMsLocked(const Job &job) const;
    /** Flip @p job to terminal @p state: bump the revoke serial, drop
     *  its queued shards from the scheduler and the pool. */
    void finalizeLocked(Job &job, JobState state);
    /** True (and finalizes) if the deadline already passed. */
    bool enforceDeadlineLocked(Job &job);
    /** Dispatch shards while capacity allows and the DRR has work. */
    void pumpLocked();
    /** Worker-side shard evaluation + streamed merge. */
    void runShard(JobPtr job, std::uint32_t slot,
                  std::uint64_t serial);

    ServiceConfig config_;
    std::size_t max_inflight_;
    std::chrono::steady_clock::time_point epoch_;

    mutable std::mutex mutex_;
    std::condition_variable cv_; //!< job completion / wait() wakeups
    AdmissionController admission_;
    DrrScheduler scheduler_;
    ResultCache cache_;
    std::map<JobId, JobPtr> jobs_;
    std::map<std::string, std::size_t> backlog_; //!< queued scen/tenant
    obs::MetricRegistry metrics_;
    std::size_t inflight_ = 0;
    JobId next_id_ = 1;
    bool stopping_ = false;

    fleet::FleetRunner runner_;
    /** Last member: destroyed first, so workers quiesce while every
     *  field above is still alive (no orphaned-task teardown race). */
    ThreadPool pool_;
};

} // namespace sov::serve
