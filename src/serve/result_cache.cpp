#include "serve/result_cache.h"

#include <cstring>

#include "core/logging.h"

namespace sov::serve {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
hashBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
hashU64(std::uint64_t &h, std::uint64_t v)
{
    hashBytes(h, &v, sizeof(v));
}

void
hashDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    hashU64(h, bits);
}

void
hashString(std::uint64_t &h, const std::string &s)
{
    hashU64(h, s.size());
    hashBytes(h, s.data(), s.size());
}

} // namespace

std::uint64_t
scenarioFingerprint(const fleet::ScenarioSpec &spec,
                    std::uint64_t master_seed)
{
    std::uint64_t h = kFnvOffset;
    hashU64(h, master_seed);
    hashU64(h, spec.seed);

    // World preset: name stands for the build closure (registry
    // discipline); horizon and route geometry are hashed outright
    // because the registry parameterizes them per entry.
    hashString(h, spec.world.name);
    hashDouble(h, spec.world.horizon_s);
    hashU64(h, spec.world.route.size());
    for (const Vec2 &p : spec.world.route.points()) {
        hashDouble(h, p.x());
        hashDouble(h, p.y());
    }

    // Fault preset: every spec field is a value; hash them all.
    hashString(h, spec.faults.name);
    hashU64(h, spec.faults.specs.size());
    for (const fault::FaultSpec &f : spec.faults.specs) {
        hashString(h, f.name);
        hashU64(h, static_cast<std::uint64_t>(f.target));
        hashU64(h, static_cast<std::uint64_t>(f.mode));
        hashString(h, f.stage);
        hashU64(h, static_cast<std::uint64_t>(f.window_start.ns()));
        hashU64(h, static_cast<std::uint64_t>(f.window_end.ns()));
        hashDouble(h, f.probability);
        hashU64(h, static_cast<std::uint64_t>(f.latency.ns()));
        hashDouble(h, f.multiplier);
        hashDouble(h, f.corruption_sigma);
    }

    // Stack preset: name for the registry identity, plus the loop
    // knobs the registry actually varies — a second line of defense
    // should two same-named stacks ever diverge on these.
    hashString(h, spec.stack.name);
    hashU64(h, spec.stack.loop.max_frames_in_flight);
    hashU64(h, static_cast<std::uint64_t>(spec.stack.loop.pipeline_mode));
    hashU64(h, spec.stack.loop.enable_health ? 1 : 0);
    hashU64(h, spec.stack.loop.enable_reactive ? 1 : 0);
    hashU64(h, spec.stack.loop.enable_proactive ? 1 : 0);
    hashDouble(h, spec.stack.loop.cruise_speed);
    hashDouble(h, spec.stack.loop.planner_rate_hz);
    return h;
}

ResultCache::ResultCache(std::size_t capacity) : capacity_(capacity) {}

std::optional<CachedResult>
ResultCache::lookup(std::uint64_t key)
{
    if (capacity_ == 0)
        return std::nullopt;
    const auto it = entries_.find(key);
    if (it == entries_.end()) {
        ++misses_;
        return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second); // refresh recency
    ++hits_;
    return it->second->second;
}

void
ResultCache::insert(std::uint64_t key, CachedResult value)
{
    if (capacity_ == 0)
        return;
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second->second = std::move(value);
        lru_.splice(lru_.begin(), lru_, it->second);
        return;
    }
    if (entries_.size() >= capacity_) {
        SOV_ASSERT(!lru_.empty());
        entries_.erase(lru_.back().first);
        lru_.pop_back();
        ++evictions_;
    }
    lru_.emplace_front(key, std::move(value));
    entries_.emplace(key, lru_.begin());
}

} // namespace sov::serve
