/**
 * @file
 * Job model of the scenario-serving layer.
 *
 * A job is one tenant's request to evaluate a list of scenarios. The
 * service decomposes it into shards (one scenario each), schedules
 * the shards fair-share across tenants, and streams completed rows
 * back as they finish. Everything a client can observe about a job is
 * captured by a JobSnapshot — a value copy, safe to hand across the
 * service boundary (and over the wire).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fleet/scenario.h"

namespace sov::serve {

/** Service-unique job handle (monotonically allocated, never 0). */
using JobId = std::uint64_t;

/** Job lifecycle; Completed/Cancelled/TimedOut are terminal. */
enum class JobState
{
    Queued,    //!< admitted, no shard dispatched yet
    Running,   //!< at least one shard dispatched
    Completed, //!< every row merged
    Cancelled, //!< revoked by the tenant
    TimedOut,  //!< wall-clock deadline expired first
};

const char *toString(JobState state);
bool isTerminal(JobState state);

/** One tenant submission: a scenario list plus options. */
struct JobRequest
{
    std::string tenant;
    /** Free-form label echoed in snapshots and reports. */
    std::string label;
    std::vector<fleet::ScenarioSpec> scenarios;
    /** Wall-clock budget from admission to completion; unset = none.
     *  Expiry cancels the remaining shards (state TimedOut); rows
     *  merged before expiry stay visible. */
    std::optional<double> deadline_s;
};

/** Client-visible state of a job at one instant. */
struct JobSnapshot
{
    JobId id = 0;
    std::string tenant;
    std::string label;
    JobState state = JobState::Queued;
    std::size_t total = 0;       //!< scenarios in the job
    std::size_t completed = 0;   //!< rows merged so far
    std::size_t cache_hits = 0;  //!< rows replayed from the cache
    std::size_t revoked = 0;     //!< shards revoked by cancel/timeout
    /** Wall milliseconds from admission to the first merged row;
     *  negative until one lands (the bench's TTFR sample). */
    double ttfr_ms = -1.0;
    /** Wall milliseconds from admission to now (terminal: to the
     *  terminal transition). */
    double wall_ms = 0.0;
    /** FleetReport fingerprint over the rows merged so far. */
    std::uint64_t fingerprint = 0;
};

/** Admission verdict for one submission. */
struct SubmitResult
{
    bool admitted = false;
    JobId id = 0;             //!< valid only when admitted
    std::string reason;       //!< rejection reason (admission code)
};

} // namespace sov::serve
