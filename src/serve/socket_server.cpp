#include "serve/socket_server.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "core/logging.h"
#include "serve/line_protocol.h"

namespace sov::serve {

namespace {

/** write() the whole buffer, ignoring SIGPIPE via MSG_NOSIGNAL. */
bool sendAll(int fd, const std::string &data)
{
    std::size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                                 MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

int listenUnix(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof addr.sun_path)
        return -1;
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    ::unlink(path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 16) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int listenTcp(int port, int &bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(fd, reinterpret_cast<sockaddr *>(&addr), sizeof addr) != 0 ||
        ::listen(fd, 16) != 0) {
        ::close(fd);
        return -1;
    }
    socklen_t len = sizeof addr;
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) != 0) {
        ::close(fd);
        return -1;
    }
    bound_port = ntohs(addr.sin_port);
    return fd;
}

} // namespace

SocketServer::SocketServer(ScenarioService &service, ScenarioCatalog catalog,
                           SocketServerConfig config)
    : service_(service), catalog_(std::move(catalog)),
      config_(std::move(config))
{
}

SocketServer::~SocketServer() { stop(); }

bool SocketServer::start()
{
    SOV_ASSERT(!started_);
    if (!config_.unix_path.empty()) {
        unix_fd_ = listenUnix(config_.unix_path);
        if (unix_fd_ < 0)
            return false;
    }
    if (config_.tcp_port >= 0) {
        tcp_fd_ = listenTcp(config_.tcp_port, tcp_port_);
        if (tcp_fd_ < 0) {
            stop();
            return false;
        }
    }
    started_ = true;
    std::lock_guard<std::mutex> lock(mutex_);
    if (unix_fd_ >= 0)
        threads_.emplace_back([this] { acceptLoop(unix_fd_); });
    if (tcp_fd_ >= 0)
        threads_.emplace_back([this] { acceptLoop(tcp_fd_); });
    return true;
}

void SocketServer::stop()
{
    if (stopping_.exchange(true)) {
        // Second caller (destructor after explicit stop()): nothing to
        // close, but threads_ may still need joining below.
    }
    if (unix_fd_ >= 0) {
        ::shutdown(unix_fd_, SHUT_RDWR);
        ::close(unix_fd_);
        unix_fd_ = -1;
    }
    if (tcp_fd_ >= 0) {
        ::shutdown(tcp_fd_, SHUT_RDWR);
        ::close(tcp_fd_);
        tcp_fd_ = -1;
    }
    std::vector<std::thread> threads;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (const auto &[id, fd] : conn_fds_)
            ::shutdown(fd, SHUT_RDWR); // unblocks the connection reads
        threads.swap(threads_);
    }
    for (std::thread &t : threads)
        t.join();
    if (!config_.unix_path.empty())
        ::unlink(config_.unix_path.c_str());
}

void SocketServer::acceptLoop(int listen_fd)
{
    while (!stopping_.load()) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener closed by stop()
        }
        std::lock_guard<std::mutex> lock(mutex_);
        // Re-check under the lock: once stop() swapped the thread list
        // a late registration would never be joined or shut down.
        if (stopping_.load()) {
            ::close(fd);
            return;
        }
        const int id = registerConnection(fd);
        threads_.emplace_back([this, fd, id] {
            connectionLoop(fd);
            ::close(fd);
            std::lock_guard<std::mutex> lock2(mutex_);
            conn_fds_.erase(id);
        });
    }
}

int SocketServer::registerConnection(int fd)
{
    static_cast<void>(this);
    const int id = fd; // fds are unique while the connection is open
    conn_fds_[id] = fd;
    return id;
}

void SocketServer::connectionLoop(int fd)
{
    std::string buffer;
    char chunk[4096];
    while (!stopping_.load()) {
        const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return; // peer closed or stop() shut the fd down
        }
        buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline;
        while ((newline = buffer.find('\n')) != std::string::npos) {
            std::string line = buffer.substr(0, newline);
            buffer.erase(0, newline + 1);
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            std::vector<std::string> responses;
            const bool keep = handleLine(line, responses);
            std::string out;
            for (const std::string &r : responses) {
                out += r;
                out += '\n';
            }
            if (!sendAll(fd, out) || !keep)
                return;
        }
    }
}

bool SocketServer::handleLine(const std::string &line,
                              std::vector<std::string> &out)
{
    const Request request = parseRequest(line);
    switch (request.verb) {
    case Verb::Invalid:
        out.push_back("ERR bad_request " + request.error);
        return true;
    case Verb::Ping:
        out.push_back("OK pong");
        return true;
    case Verb::Quit:
        out.push_back("OK bye");
        return false;
    case Verb::Catalog: {
        for (const auto &[name, description] : catalog_.entries())
            out.push_back("SET " + name + " " + description);
        out.push_back("OK sets=" + std::to_string(catalog_.entries().size()));
        return true;
    }
    case Verb::Stats: {
        const obs::MetricRegistry metrics = service_.metricsSnapshot();
        std::ostringstream line_out;
        line_out << "OK submitted=" << metrics.counter("serve.jobs_submitted")
                 << " admitted=" << metrics.counter("serve.jobs_admitted")
                 << " rejected=" << metrics.counter("serve.jobs_rejected")
                 << " completed=" << metrics.counter("serve.jobs_completed")
                 << " cancelled=" << metrics.counter("serve.jobs_cancelled")
                 << " timed_out=" << metrics.counter("serve.jobs_timed_out")
                 << " cache_hits=" << metrics.counter("serve.cache.hits")
                 << " cache_misses=" << metrics.counter("serve.cache.misses");
        out.push_back(line_out.str());
        return true;
    }
    case Verb::Submit: {
        CatalogParams params;
        params.seed = paramU64(request, "seed", params.seed);
        params.seeds = static_cast<std::size_t>(
            paramU64(request, "seeds", params.seeds));
        params.horizon_s =
            paramDouble(request, "horizon_s", params.horizon_s);
        auto scenarios = catalog_.build(request.set, params);
        if (!scenarios) {
            out.push_back("ERR unknown_set " + request.set);
            return true;
        }
        const std::size_t n_scenarios = scenarios->size();
        JobRequest job;
        job.tenant = request.tenant;
        job.scenarios = std::move(*scenarios);
        const auto label = request.params.find("label");
        if (label != request.params.end())
            job.label = label->second;
        const double deadline = paramDouble(request, "deadline_s", -1.0);
        if (deadline > 0.0)
            job.deadline_s = deadline;
        const SubmitResult result = service_.submit(std::move(job));
        if (!result.admitted) {
            out.push_back("ERR " + result.reason + " tenant=" +
                          request.tenant);
            return true;
        }
        out.push_back("OK job=" + std::to_string(result.id) +
                      " scenarios=" + std::to_string(n_scenarios));
        return true;
    }
    case Verb::Status: {
        const auto snapshot = service_.status(request.job);
        if (!snapshot) {
            out.push_back("ERR unknown_job " + std::to_string(request.job));
            return true;
        }
        out.push_back("OK " + formatSnapshot(*snapshot));
        return true;
    }
    case Verb::Cancel: {
        const auto snapshot = service_.status(request.job);
        if (!snapshot) {
            out.push_back("ERR unknown_job " + std::to_string(request.job));
            return true;
        }
        const bool cancelled = service_.cancel(request.job);
        out.push_back("OK cancelled=" + std::to_string(cancelled ? 1 : 0));
        return true;
    }
    case Verb::Wait: {
        const double timeout = paramDouble(request, "timeout_s", -1.0);
        const auto snapshot = service_.wait(request.job, timeout);
        if (!snapshot) {
            out.push_back("ERR unknown_job " + std::to_string(request.job));
            return true;
        }
        out.push_back("OK " + formatSnapshot(*snapshot));
        return true;
    }
    case Verb::Rows: {
        const auto snapshot = service_.status(request.job);
        if (!snapshot) {
            out.push_back("ERR unknown_job " + std::to_string(request.job));
            return true;
        }
        const std::size_t from =
            static_cast<std::size_t>(paramU64(request, "from", 0));
        const auto rows = service_.fetchRows(request.job, from);
        for (std::size_t i = 0; i < rows.size(); ++i)
            out.push_back(formatRow(request.job, from + i, rows[i]));
        out.push_back("OK rows=" + std::to_string(rows.size()) +
                      " next=" + std::to_string(from + rows.size()));
        return true;
    }
    }
    out.push_back("ERR bad_request unhandled verb");
    return true;
}

} // namespace sov::serve
