#include "serve/catalog.h"

#include <utility>

#include "fleet/fuzzer.h"

namespace sov::serve {

namespace {

using fleet::ScenarioMatrix;
using fleet::ScenarioSpec;
using fleet::WorldPreset;

/** Enumerate @p matrix with the catalog params applied. */
std::vector<ScenarioSpec>
enumerateWith(ScenarioMatrix matrix, const CatalogParams &params)
{
    ScenarioMatrix out;
    for (WorldPreset w : matrix.worlds()) {
        w.horizon_s = params.horizon_s;
        out.addWorld(std::move(w));
    }
    out.addFaults(matrix.faults());
    for (const fleet::StackPreset &s : matrix.stacks())
        out.addStack(s);
    out.addSeeds(params.seed, params.seeds);
    return out.enumerate();
}

} // namespace

void
ScenarioCatalog::add(std::string name, std::string description,
                     Builder builder)
{
    entries_.push_back(
        Entry{std::move(name), std::move(description), std::move(builder)});
}

bool
ScenarioCatalog::has(const std::string &name) const
{
    for (const Entry &e : entries_)
        if (e.name == name)
            return true;
    return false;
}

std::optional<std::vector<ScenarioSpec>>
ScenarioCatalog::build(const std::string &name,
                       const CatalogParams &params) const
{
    for (const Entry &e : entries_)
        if (e.name == name)
            return e.builder(params);
    return std::nullopt;
}

std::vector<std::pair<std::string, std::string>>
ScenarioCatalog::entries() const
{
    std::vector<std::pair<std::string, std::string>> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.emplace_back(e.name, e.description);
    return out;
}

ScenarioCatalog
ScenarioCatalog::standard()
{
    ScenarioCatalog catalog;
    catalog.add("open_road", "obstacle-free baseline, bare stack",
                [](const CatalogParams &p) {
                    ScenarioMatrix m;
                    m.addWorld(fleet::openRoadWorld());
                    m.addFault(fleet::noFaultPreset());
                    m.addStack(fleet::bareStack());
                    return enumerateWith(std::move(m), p);
                });
    catalog.add("sudden_wall",
                "Sec. IV wall at 30/40/50 m, bare + supervised",
                [](const CatalogParams &p) {
                    ScenarioMatrix m;
                    for (double wall_x : {30.0, 40.0, 50.0})
                        m.addWorld(fleet::suddenWallWorld(wall_x));
                    m.addFault(fleet::noFaultPreset());
                    m.addStack(fleet::bareStack());
                    m.addStack(fleet::supervisedStack());
                    return enumerateWith(std::move(m), p);
                });
    catalog.add("crossing", "crossing pedestrian, bare + supervised",
                [](const CatalogParams &p) {
                    ScenarioMatrix m;
                    m.addWorld(fleet::crossingPedestrianWorld(150.0, 0.5));
                    m.addFault(fleet::noFaultPreset());
                    m.addStack(fleet::bareStack());
                    m.addStack(fleet::supervisedStack());
                    return enumerateWith(std::move(m), p);
                });
    catalog.add("traffic", "6-vehicle corridor, bare + supervised",
                [](const CatalogParams &p) {
                    ScenarioMatrix m;
                    m.addWorld(fleet::trafficWorld(6));
                    m.addFault(fleet::noFaultPreset());
                    m.addStack(fleet::bareStack());
                    m.addStack(fleet::supervisedStack());
                    return enumerateWith(std::move(m), p);
                });
    catalog.add("fault_smoke", "reduced fault matrix (CI smoke slice)",
                [](const CatalogParams &p) {
                    ScenarioMatrix m;
                    m.addWorld(fleet::suddenWallWorld(40.0));
                    m.addWorld(fleet::openRoadWorld());
                    m.addFaults(fleet::faultMatrixPresets());
                    m.addStack(fleet::bareStack());
                    m.addStack(fleet::supervisedStack());
                    m.smokeOnly();
                    return enumerateWith(std::move(m), p);
                });
    catalog.add("fault_matrix",
                "all 11 Sec. III-C faults x bare/supervised",
                [](const CatalogParams &p) {
                    ScenarioMatrix m;
                    m.addWorld(fleet::suddenWallWorld(40.0));
                    m.addWorld(fleet::openRoadWorld());
                    m.addFaults(fleet::faultMatrixPresets());
                    m.addStack(fleet::bareStack());
                    m.addStack(fleet::supervisedStack());
                    return enumerateWith(std::move(m), p);
                });
    catalog.add("scenario_fuzz",
                "procedurally fuzzed agent worlds (seed, seeds, horizon "
                "map to base seed, world count, per-world horizon)",
                [](const CatalogParams &p) {
                    // Fuzz presets set their own horizon and are keyed
                    // by seed; the catalog params are the campaign
                    // knobs, so enumerateWith's overrides don't apply.
                    fleet::FuzzConfig cfg;
                    cfg.base_seed = p.seed;
                    cfg.worlds = p.seeds;
                    cfg.horizon_s = p.horizon_s;
                    ScenarioMatrix m;
                    for (WorldPreset &w : fleet::fuzzWorlds(cfg))
                        m.addWorld(std::move(w));
                    m.addFault(fleet::noFaultPreset());
                    m.addStack(fleet::bareStack());
                    m.addSeed(p.seed);
                    return m.enumerate();
                });
    return catalog;
}

} // namespace sov::serve
