/**
 * @file
 * Deficit-round-robin fair-share scheduler over tenant shard queues.
 *
 * The serving layer's answer to "millions of users on one compute
 * substrate": tenants enqueue shards (one scenario each) into
 * per-tenant FIFOs, and the dispatcher pulls the next shard to run
 * via classic DRR — each visit to a backlogged tenant grants it
 * `weight` deficit; a shard costs 1. Consequence: over any contended
 * window, tenant throughput converges to the weight ratio regardless
 * of how skewed the submit rates are, and an idle tenant's unused
 * share redistributes to the backlogged ones (work conservation). A
 * tenant rejoining after idling gets no banked credit — its deficit
 * restarts at zero, so bursts cannot mortgage the future.
 *
 * Not thread-safe by design: the ScenarioService serializes access
 * under its own mutex (the scheduler is pure bookkeeping; all the
 * blocking lives in the pool).
 */
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "serve/job.h"

namespace sov::serve {

/** One schedulable unit: scenario @p slot of job @p job. */
struct Shard
{
    JobId job = 0;
    std::uint32_t slot = 0;
};

/** DRR scheduler; tenants are registered once, queues ebb and flow. */
class DrrScheduler
{
  public:
    /** Register a tenant (once, before any enqueue). */
    void addTenant(const std::string &name, std::uint32_t weight);

    /** Append shards slot..slot+count-1 of @p job to @p tenant. */
    void enqueue(const std::string &tenant, JobId job,
                 std::uint32_t first_slot, std::uint32_t count);

    /** Pop the next shard by DRR order; nullopt when all idle. */
    std::optional<Shard> next();

    /** Drop every queued shard of @p job; returns how many. */
    std::size_t removeJob(JobId job);

    std::size_t queued() const { return queued_; }
    bool empty() const { return queued_ == 0; }
    /** Queued shards of one tenant (admission backlog accounting). */
    std::size_t queuedFor(const std::string &tenant) const;

  private:
    struct Tenant
    {
        std::string name;
        std::uint32_t weight = 1;
        double deficit = 0.0;
        std::deque<Shard> queue;
    };

    Tenant *find(const std::string &name);

    std::vector<Tenant> tenants_;
    std::size_t cursor_ = 0; //!< round-robin position
    std::size_t queued_ = 0;
};

} // namespace sov::serve
