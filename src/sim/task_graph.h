/**
 * @file
 * Forwarding header: TaskGraph moved to the sov::runtime dataflow
 * layer (src/runtime/task_graph.h), where it is a thin analytic
 * front-end over StageGraph + DataflowExecutor. Kept so existing
 * `#include "sim/task_graph.h"` call sites keep compiling; targets
 * using it must link sov_runtime.
 */
#pragma once

#include "runtime/task_graph.h"
