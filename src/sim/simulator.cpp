#include "sim/simulator.h"

#include <memory>

#include "core/logging.h"

namespace sov {

void
Simulator::schedule(Duration delay, Callback fn)
{
    SOV_ASSERT(delay >= Duration::zero());
    scheduleAt(now_ + delay, std::move(fn));
}

void
Simulator::scheduleAt(Timestamp when, Callback fn)
{
    SOV_ASSERT(when >= now_);
    queue_.push(Item{when, seq_++, std::move(fn)});
}

void
Simulator::schedulePeriodic(Duration period, Duration phase, Callback fn)
{
    SOV_ASSERT(period > Duration::zero());
    // The repeating wrapper copies itself into the next event, so the
    // pending event is the only owner of the chain (a self-capturing
    // shared_ptr lambda would leak the cycle).
    struct Repeater
    {
        Simulator *sim;
        Duration period;
        std::shared_ptr<Callback> user;
        void operator()() const
        {
            (*user)();
            sim->schedule(period, *this);
        }
    };
    schedule(phase, Repeater{this, period,
                             std::make_shared<Callback>(std::move(fn))});
}

void
Simulator::runUntil(Timestamp horizon)
{
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
        const Item &top = queue_.top();
        if (top.when > horizon)
            break;
        // Move the callback out before popping; executing may push.
        Item item{top.when, top.seq, std::move(const_cast<Item &>(top).fn)};
        queue_.pop();
        now_ = item.when;
        ++executed_;
        item.fn();
    }
    if (queue_.empty() || stopped_) {
        // Clock still advances to the horizon on a drained queue so
        // periodic statistics windows stay well-defined.
        if (!stopped_ && horizon > now_ && horizon != Timestamp::never())
            now_ = horizon;
    } else {
        now_ = horizon;
    }
}

void
Simulator::run()
{
    runUntil(Timestamp::never());
}

} // namespace sov
