/**
 * @file
 * Discrete-event simulation engine.
 *
 * The SoV is modelled as components exchanging timestamped events:
 * sensor triggers, pipeline-stage completions, CAN transmissions,
 * actuator activations. The engine maintains a single global clock and
 * executes callbacks in (time, insertion-order) sequence so runs are
 * fully deterministic.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/time.h"

namespace sov {

/** Deterministic discrete-event simulator. */
class Simulator
{
  public:
    using Callback = std::function<void()>;

    Simulator() = default;

    // Event callbacks capture references into the owning components;
    // copying the engine would dangle them.
    Simulator(const Simulator &) = delete;
    Simulator &operator=(const Simulator &) = delete;

    /** Current simulation time. */
    Timestamp now() const { return now_; }

    /** Schedule @p fn to run @p delay after the current time. */
    void schedule(Duration delay, Callback fn);

    /** Schedule @p fn at an absolute time (must not be in the past). */
    void scheduleAt(Timestamp when, Callback fn);

    /**
     * Schedule @p fn every @p period, starting at now + phase.
     * The callback keeps repeating until the simulation stops or the
     * horizon passes.
     */
    void schedulePeriodic(Duration period, Duration phase, Callback fn);

    /** Run until the event queue drains or the horizon is reached. */
    void runUntil(Timestamp horizon);

    /** Run until the queue drains completely. */
    void run();

    /** Request that the run loop stop after the current event. */
    void stop() { stopped_ = true; }

    /** Number of events executed since construction. */
    std::uint64_t eventsExecuted() const { return executed_; }

    /** True if no events are pending. */
    bool idle() const { return queue_.empty(); }

  private:
    struct Item
    {
        Timestamp when;
        std::uint64_t seq; //!< tie-break: FIFO among same-time events
        Callback fn;
    };

    struct Later
    {
        bool
        operator()(const Item &a, const Item &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Item, std::vector<Item>, Later> queue_;
    Timestamp now_ = Timestamp::origin();
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
    bool stopped_ = false;
};

} // namespace sov
