#include "sim/task_graph.h"

#include <algorithm>

#include "core/logging.h"

namespace sov {

Timestamp
ScheduleResult::frameFinish(std::size_t f) const
{
    SOV_ASSERT(f < spans.size());
    Timestamp last = Timestamp::origin();
    for (const auto &s : spans[f])
        last = std::max(last, s.finish);
    return last;
}

double
ScheduleResult::steadyStateThroughputHz() const
{
    if (spans.size() < 4)
        return 0.0;
    const std::size_t half = spans.size() / 2;
    const Timestamp first = frameFinish(half);
    const Timestamp last = frameFinish(spans.size() - 1);
    const double seconds = (last - first).toSeconds();
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(spans.size() - 1 - half) / seconds;
}

TaskId
TaskGraph::addTask(std::string name, ResourceId resource,
                   std::function<Duration(std::size_t)> duration,
                   std::vector<TaskId> deps)
{
    const TaskId id = nodes_.size();
    for (TaskId d : deps)
        SOV_ASSERT(d < id); // insertion order is topological
    SOV_ASSERT(by_name_.count(name) == 0);
    by_name_[name] = id;
    nodes_.push_back(TaskNode{std::move(name), std::move(resource),
                              std::move(duration), std::move(deps)});
    return id;
}

TaskId
TaskGraph::addFixedTask(std::string name, ResourceId resource,
                        Duration duration, std::vector<TaskId> deps)
{
    return addTask(std::move(name), std::move(resource),
                   [duration](std::size_t) { return duration; },
                   std::move(deps));
}

TaskId
TaskGraph::findTask(const std::string &name) const
{
    const auto it = by_name_.find(name);
    if (it == by_name_.end())
        SOV_PANIC("unknown task: " + name);
    return it->second;
}

ScheduleResult
TaskGraph::schedule(std::size_t frames, Duration period) const
{
    SOV_ASSERT(!nodes_.empty());
    ScheduleResult result;
    result.spans.resize(frames);
    result.frame_latency.resize(frames);
    result.frame_release.resize(frames);

    // Earliest time each resource becomes free.
    std::map<ResourceId, Timestamp> resource_free;

    for (std::size_t f = 0; f < frames; ++f) {
        const Timestamp release =
            Timestamp::origin() + period * static_cast<double>(f);
        result.frame_release[f] = release;
        result.spans[f].reserve(nodes_.size());

        // Tasks are stored in topological order; greedy list scheduling.
        std::vector<Timestamp> finish(nodes_.size());
        for (TaskId t = 0; t < nodes_.size(); ++t) {
            const TaskNode &n = nodes_[t];
            Timestamp ready = release;
            for (TaskId d : n.deps)
                ready = std::max(ready, finish[d]);
            Timestamp &free_at = resource_free[n.resource];
            const Timestamp start = std::max(ready, free_at);
            const Timestamp end = start + n.duration(f);
            free_at = end;
            finish[t] = end;
            result.spans[f].push_back(TaskSpan{t, f, start, end});
        }
        result.frame_latency[f] = result.frameFinish(f) - release;
    }
    return result;
}

Duration
TaskGraph::criticalPathLatency(std::size_t frame) const
{
    std::vector<Duration> finish(nodes_.size(), Duration::zero());
    Duration longest = Duration::zero();
    for (TaskId t = 0; t < nodes_.size(); ++t) {
        const TaskNode &n = nodes_[t];
        Duration start = Duration::zero();
        for (TaskId d : n.deps)
            start = std::max(start, finish[d]);
        finish[t] = start + n.duration(frame);
        longest = std::max(longest, finish[t]);
    }
    return longest;
}

std::vector<std::string>
TaskGraph::taskNames() const
{
    std::vector<std::string> names;
    names.reserve(nodes_.size());
    for (const auto &n : nodes_)
        names.push_back(n.name);
    return names;
}

} // namespace sov
