/**
 * @file
 * Records named latency spans per end-to-end iteration so benches can
 * report the stage breakdown of Fig. 10a (sensing / perception /
 * planning, best-case vs mean vs 99th percentile).
 */
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/time.h"

namespace sov {

/** Accumulates per-stage latency samples across pipeline iterations. */
class LatencyTracer
{
  public:
    /** Record one latency sample for a named stage. */
    void record(const std::string &stage, Duration latency);

    /** Record an end-to-end sample (stage name "total"). */
    void recordTotal(Duration latency) { record("total", latency); }

    /** Distinct stage names seen so far, sorted. */
    std::vector<std::string> stages() const;

    /** Number of samples recorded for @p stage. */
    std::size_t count(const std::string &stage) const;

    double meanMs(const std::string &stage) const;
    double minMs(const std::string &stage) const;
    double maxMs(const std::string &stage) const;
    /** Percentile in [0,100] of a stage's samples, in milliseconds. */
    double percentileMs(const std::string &stage, double p) const;
    double stddevMs(const std::string &stage) const;

    /** Drop all samples. */
    void clear();

    /** Multi-line "stage: best/mean/p99" table for bench output. */
    std::string summary() const;

  private:
    mutable std::map<std::string, PercentileBuffer> buffers_;
};

} // namespace sov
