#include "sim/latency_tracer.h"

#include <sstream>

#include "core/logging.h"

namespace sov {

void
LatencyTracer::record(const std::string &stage, Duration latency)
{
    buffers_[stage].add(latency.toMillis());
}

std::vector<std::string>
LatencyTracer::stages() const
{
    std::vector<std::string> names;
    names.reserve(buffers_.size());
    for (const auto &kv : buffers_)
        names.push_back(kv.first);
    return names;
}

std::size_t
LatencyTracer::count(const std::string &stage) const
{
    const auto it = buffers_.find(stage);
    return it == buffers_.end() ? 0 : it->second.count();
}

double
LatencyTracer::meanMs(const std::string &stage) const
{
    const auto it = buffers_.find(stage);
    SOV_ASSERT(it != buffers_.end());
    return it->second.mean();
}

double
LatencyTracer::minMs(const std::string &stage) const
{
    const auto it = buffers_.find(stage);
    SOV_ASSERT(it != buffers_.end());
    return it->second.min();
}

double
LatencyTracer::maxMs(const std::string &stage) const
{
    const auto it = buffers_.find(stage);
    SOV_ASSERT(it != buffers_.end());
    return it->second.max();
}

double
LatencyTracer::percentileMs(const std::string &stage, double p) const
{
    const auto it = buffers_.find(stage);
    SOV_ASSERT(it != buffers_.end());
    return it->second.percentile(p);
}

double
LatencyTracer::stddevMs(const std::string &stage) const
{
    const auto it = buffers_.find(stage);
    SOV_ASSERT(it != buffers_.end());
    RunningStats rs;
    for (double x : it->second.samples())
        rs.add(x);
    return rs.stddev();
}

void
LatencyTracer::clear()
{
    buffers_.clear();
}

std::string
LatencyTracer::summary() const
{
    std::ostringstream os;
    for (auto &kv : buffers_) {
        auto &buf = kv.second;
        os << kv.first << ": best=" << buf.percentile(0.0)
           << "ms mean=" << buf.mean()
           << "ms p99=" << buf.percentile(99.0) << "ms\n";
    }
    return os.str();
}

} // namespace sov
