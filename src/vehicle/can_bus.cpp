#include "vehicle/can_bus.h"

#include "core/logging.h"

namespace sov {

void
CanBus::transmit(const ControlCommand &command)
{
    SOV_ASSERT(receiver_ != nullptr);
    ++frames_sent_;
    if (loss_filter_ && loss_filter_(sim_.now())) {
        ++frames_lost_;
        return;
    }
    sim_.schedule(latency_, [this, command] { receiver_(command); });
}

} // namespace sov
