#include "vehicle/can_bus.h"

#include "core/logging.h"

namespace sov {

void
CanBus::transmit(const ControlCommand &command)
{
    SOV_ASSERT(receiver_ != nullptr);
    ++frames_sent_;
    sim_.schedule(latency_, [this, command] { receiver_(command); });
}

} // namespace sov
