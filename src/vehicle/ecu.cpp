#include "vehicle/ecu.h"

namespace sov {

void
Ecu::onCommand(const ControlCommand &command)
{
    sim_.schedule(mechanical_latency_, [this, command] {
        if (emergency_)
            return; // reactive override wins (Sec. IV)
        ActuatorState state;
        state.acceleration = command.acceleration;
        state.curvature = command.steer_curvature;
        state.emergency_brake = command.emergency_brake;
        vehicle_.applyActuator(state);
    });
}

void
Ecu::emergencyBrake()
{
    emergency_ = true;
    sim_.schedule(mechanical_latency_, [this] {
        if (!emergency_)
            return;
        ActuatorState state;
        state.emergency_brake = true;
        vehicle_.applyActuator(state);
    });
}

void
Ecu::releaseEmergencyBrake()
{
    emergency_ = false;
}

} // namespace sov
