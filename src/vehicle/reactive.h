/**
 * @file
 * Reactive safety path (Sec. IV): radar/sonar distance readings enter
 * the ECU directly, bypassing sensing->perception->planning. Total
 * reaction latency is ~30 ms versus the proactive path's 149 ms+
 * best case, letting the vehicle stop for objects first seen at
 * 4.1 m — near the 4 m braking-distance limit.
 */
#pragma once

#include <optional>

#include "core/time.h"
#include "sensors/radar.h"
#include "sensors/sonar.h"
#include "sim/simulator.h"
#include "vehicle/ecu.h"
#include "world/world.h"

namespace sov {

/** Reactive-path tuning. */
struct ReactiveConfig
{
    /** Clearance left between the front bumper and the obstacle. */
    double margin = 0.15;
    /** Distance from the vehicle reference point (center) to the
     *  front bumper; the trigger must stop the *front* in time. */
    double ego_front_overhang = 1.3;
    /** Lateral half-width of the monitored corridor. */
    double corridor_half_width = 0.8;
    /** Sensor-to-ECU latency of the reactive path (~30 ms total,
     *  Sec. IV). */
    Duration path_latency = Duration::millisF(30.0) -
        Duration::millisF(19.0); // minus T_mech applied by the ECU
    /** Release the brake when the path clears beyond this distance. */
    double release_distance = 6.0;
};

/** Watches radar/sonar and fires the ECU override. */
class ReactivePath
{
  public:
    ReactivePath(Simulator &sim, Ecu &ecu, const RadarModel &radar,
                 const ReactiveConfig &config = {})
        : sim_(sim), ecu_(ecu), radar_(radar), config_(config) {}

    /**
     * Evaluate one radar/sonar cycle with the vehicle at @p body
     * moving at @p speed. Triggers or releases the emergency brake.
     * @return The measured nearest in-path distance, if any.
     */
    std::optional<double> evaluate(const WorldSnapshot &world, const Pose2 &body,
                                   double speed, Timestamp t);

    std::uint64_t triggerCount() const { return triggers_; }
    bool active() const { return ecu_.emergencyLatched(); }

    /** The center-to-obstacle distance below which braking fires, at
     *  speed @p v with deceleration @p decel. */
    double
    triggerDistance(double v, double decel) const
    {
        const double reaction =
            (config_.path_latency + ecu_.mechanicalLatency()).toSeconds();
        return v * reaction + v * v / (2.0 * decel) + config_.margin +
            config_.ego_front_overhang;
    }

  private:
    Simulator &sim_;
    Ecu &ecu_;
    const RadarModel &radar_;
    ReactiveConfig config_;
    std::uint64_t triggers_ = 0;
};

} // namespace sov
