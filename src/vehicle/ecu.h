/**
 * @file
 * Engine Control Unit: receives commands from the CAN bus (proactive
 * path) and direct safety overrides (reactive path, which "bypasses
 * the processing system and directly controls the actuator",
 * Sec. III-A) and drives the actuator after the vehicle's mechanical
 * reaction latency (~19 ms, T_mech).
 */
#pragma once

#include "core/time.h"
#include "planning/planner_types.h"
#include "sim/simulator.h"
#include "vehicle/dynamics.h"

namespace sov {

/** ECU + actuator with mechanical latency. */
class Ecu
{
  public:
    /**
     * @param sim Event engine for the mechanical delay.
     * @param vehicle The plant the actuator drives.
     * @param mechanical_latency T_mech (default 19 ms, Sec. III-A).
     */
    Ecu(Simulator &sim, VehicleDynamics &vehicle,
        Duration mechanical_latency = Duration::millisF(19.0))
        : sim_(sim), vehicle_(vehicle),
          mechanical_latency_(mechanical_latency) {}

    /** Normal (proactive path) command entry, via the CAN bus. */
    void onCommand(const ControlCommand &command);

    /**
     * Reactive-path safety override: emergency brake that reaches the
     * actuator with the same mechanical latency but without traversing
     * the computing pipeline. Overrides proactive commands until
     * released.
     */
    void emergencyBrake();

    /** Release a previously latched emergency brake. */
    void releaseEmergencyBrake();

    bool emergencyLatched() const { return emergency_; }
    Duration mechanicalLatency() const { return mechanical_latency_; }

  private:
    Simulator &sim_;
    VehicleDynamics &vehicle_;
    Duration mechanical_latency_;
    bool emergency_ = false;
};

} // namespace sov
