#include "vehicle/reactive.h"

namespace sov {

std::optional<double>
ReactivePath::evaluate(const WorldSnapshot &world, const Pose2 &body, double speed,
                       Timestamp t)
{
    const auto distance = radar_.nearestInPath(
        world, body, config_.corridor_half_width, t);

    if (distance) {
        const double trigger =
            triggerDistance(speed, 4.0 /* max brake decel */);
        if (*distance <= trigger && !ecu_.emergencyLatched()) {
            ++triggers_;
            // The reactive signal reaches the ECU after the short
            // direct-path latency; the ECU adds T_mech itself.
            sim_.schedule(config_.path_latency,
                          [this] { ecu_.emergencyBrake(); });
        }
    }

    // Release once the path is clear again and the vehicle stopped.
    if (ecu_.emergencyLatched() && speed <= 1e-6 &&
        (!distance || *distance > config_.release_distance)) {
        ecu_.releaseEmergencyBrake();
    }
    return distance;
}

} // namespace sov
