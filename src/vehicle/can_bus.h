/**
 * @file
 * Controller Area Network model: delivers control commands from the
 * computing platform to the ECU with the ~1 ms latency the paper
 * measures (T_data, Sec. III-A).
 */
#pragma once

#include <functional>

#include "core/time.h"
#include "planning/planner_types.h"
#include "sim/simulator.h"

namespace sov {

/** CAN bus with fixed transmission latency. */
class CanBus
{
  public:
    using Receiver = std::function<void(const ControlCommand &)>;

    /**
     * @param sim Event engine used for delayed delivery.
     * @param latency One-way transmission latency (default 1 ms).
     */
    CanBus(Simulator &sim, Duration latency = Duration::millisF(1.0))
        : sim_(sim), latency_(latency) {}

    /** Register the ECU-side receiver. */
    void connect(Receiver receiver) { receiver_ = std::move(receiver); }

    /** Transmit a command; delivered after the bus latency. */
    void transmit(const ControlCommand &command);

    /**
     * Fault hook: when set and returning true at a transmit time, the
     * frame is counted sent but never delivered (bus error / arbitration
     * loss). The fault layer adapts a FaultChannel to this signature.
     */
    void
    setLossFilter(std::function<bool(Timestamp)> filter)
    {
        loss_filter_ = std::move(filter);
    }

    Duration latency() const { return latency_; }
    std::uint64_t framesSent() const { return frames_sent_; }
    /** Frames eaten by the loss filter. */
    std::uint64_t framesLost() const { return frames_lost_; }

  private:
    Simulator &sim_;
    Duration latency_;
    Receiver receiver_;
    std::function<bool(Timestamp)> loss_filter_;
    std::uint64_t frames_sent_ = 0;
    std::uint64_t frames_lost_ = 0;
};

} // namespace sov
