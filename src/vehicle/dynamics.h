/**
 * @file
 * Longitudinal + kinematic-steering vehicle dynamics.
 *
 * Parameters follow the paper's 2-seater pod: 20 mph top speed,
 * 4 m/s^2 braking deceleration (Sec. III-A), which yields the 4 m
 * braking distance at the 5.6 m/s typical speed.
 */
#pragma once

#include "core/time.h"
#include "math/geometry.h"

namespace sov {

/** Physical limits of the vehicle. */
struct VehicleParams
{
    double max_speed = 8.94;        //!< 20 mph (Sec. II-A)
    double max_accel = 1.5;         //!< m/s^2
    double max_brake_decel = 4.0;   //!< m/s^2 (Sec. III-A)
    double max_curvature = 0.5;     //!< 1/m steering limit
};

/** Applied actuator setpoints. */
struct ActuatorState
{
    double acceleration = 0.0;   //!< commanded accel (clamped)
    double curvature = 0.0;      //!< commanded path curvature
    bool emergency_brake = false;
};

/** The simulated vehicle plant. */
class VehicleDynamics
{
  public:
    explicit VehicleDynamics(const VehicleParams &params = {})
        : params_(params) {}

    /** Set actuator commands (already past CAN + mechanical delay). */
    void applyActuator(const ActuatorState &state);

    /** Advance the plant by @p dt. */
    void step(Duration dt);

    const Pose2 &pose() const { return pose_; }
    double speed() const { return speed_; }
    void setPose(const Pose2 &pose) { pose_ = pose; }
    void setSpeed(double speed) { speed_ = speed; }
    const VehicleParams &params() const { return params_; }

    /** Distance covered since construction. */
    double odometer() const { return odometer_; }

    /** True once the vehicle has fully stopped. */
    bool stopped() const { return speed_ <= 1e-6; }

    /** Analytic braking distance from speed @p v at full braking. */
    double
    brakingDistance(double v) const
    {
        return v * v / (2.0 * params_.max_brake_decel);
    }

  private:
    VehicleParams params_;
    Pose2 pose_;
    double speed_ = 0.0;
    double odometer_ = 0.0;
    ActuatorState actuator_;
};

} // namespace sov
