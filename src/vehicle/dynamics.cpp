#include "vehicle/dynamics.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sov {

void
VehicleDynamics::applyActuator(const ActuatorState &state)
{
    actuator_ = state;
    actuator_.acceleration =
        std::clamp(actuator_.acceleration, -params_.max_brake_decel,
                   params_.max_accel);
    actuator_.curvature =
        std::clamp(actuator_.curvature, -params_.max_curvature,
                   params_.max_curvature);
}

void
VehicleDynamics::step(Duration dt)
{
    const double h = dt.toSeconds();
    SOV_ASSERT(h >= 0.0);

    double accel = actuator_.acceleration;
    if (actuator_.emergency_brake)
        accel = -params_.max_brake_decel;

    const double v0 = speed_;
    double v1 = std::clamp(v0 + accel * h, 0.0, params_.max_speed);

    // Distance under (possibly clamped) constant acceleration.
    double dist;
    if (accel < 0.0 && v1 == 0.0 && v0 > 0.0) {
        // Stopped partway through the step.
        const double t_stop = v0 / -accel;
        dist = 0.5 * v0 * t_stop;
    } else {
        dist = 0.5 * (v0 + v1) * h;
    }

    // Kinematic steering: heading changes with curvature * distance.
    const double dtheta = actuator_.curvature * dist;
    const double heading_mid = pose_.heading + 0.5 * dtheta;
    pose_.position += Vec2(std::cos(heading_mid), std::sin(heading_mid))
        * dist;
    pose_.heading = wrapAngle(pose_.heading + dtheta);

    speed_ = v1;
    odometer_ += dist;
}

} // namespace sov
