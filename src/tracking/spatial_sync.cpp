#include "tracking/spatial_sync.h"

#include <cmath>
#include <limits>

namespace sov {

std::vector<FusedObject>
spatialSync(const CameraModel &camera, const CameraPose &pose,
            const std::vector<RadarTrack> &tracks,
            const std::vector<Detection> &detections,
            const SpatialSyncConfig &config)
{
    std::vector<FusedObject> fused;
    std::vector<bool> det_used(detections.size(), false);

    for (const auto &track : tracks) {
        // Project the track's assumed object center into the image.
        const auto proj = camera.project(
            pose, Vec3(track.position.x(), track.position.y(),
                       config.assumed_height));
        if (!proj)
            continue;

        double best = std::numeric_limits<double>::max();
        std::size_t best_idx = detections.size();
        for (std::size_t i = 0; i < detections.size(); ++i) {
            if (det_used[i])
                continue;
            const double d =
                std::hypot(detections[i].box.centerX() - proj->first.u,
                           detections[i].box.centerY() - proj->first.v);
            if (d < best) {
                best = d;
                best_idx = i;
            }
        }
        if (best_idx >= detections.size() ||
            best > config.max_pixel_distance) {
            continue;
        }
        det_used[best_idx] = true;

        FusedObject obj;
        obj.track_id = track.id;
        obj.position = track.position;
        obj.velocity = track.velocity;
        obj.cls = detections[best_idx].cls;
        obj.confidence = detections[best_idx].confidence;
        obj.box = detections[best_idx].box;
        fused.push_back(obj);
    }
    return fused;
}

} // namespace sov
