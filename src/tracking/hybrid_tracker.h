/**
 * @file
 * Hybrid radar/visual tracking (Sec. IV + Sec. VI-B).
 *
 * "Tracking is mostly done by a Radar ... but we use the Kernelized
 * Correlation Filter (KCF) as the baseline tracking algorithm when
 * Radar signals are unstable."
 *
 * The HybridTracker watches radar health per cycle: while confirmed
 * radar tracks exist, objects come from radar + spatial sync (cheap).
 * When the radar goes quiet for a few cycles (interference, clutter),
 * it seeds KCF trackers from the latest vision detections and tracks
 * in the image until radar recovers.
 */
#pragma once

#include <memory>
#include <vector>

#include "tracking/radar_tracker.h"
#include "tracking/spatial_sync.h"
#include "vision/kcf.h"

namespace sov {

/** Which tracking source produced this cycle's objects. */
enum class TrackingMode { Radar, KcfFallback };

/** One tracked object from either source. */
struct HybridTrack
{
    std::uint32_t id = 0;
    TrackingMode source = TrackingMode::Radar;
    ObjectClass cls = ObjectClass::Static;
    /** World position (radar mode) — not available in KCF mode. */
    Vec2 position;
    Vec2 velocity;
    /** Image position (both modes). */
    double pixel_u = 0.0;
    double pixel_v = 0.0;
};

/** Hybrid tracker configuration. */
struct HybridTrackerConfig
{
    /** Radar counts as unstable after this many scans with no
     *  confirmed track while vision still sees objects. */
    std::uint32_t unstable_after = 3;
    SpatialSyncConfig spatial_sync;
    KcfConfig kcf;
};

/** The radar-first, KCF-fallback tracker. */
class HybridTracker
{
  public:
    explicit HybridTracker(const HybridTrackerConfig &config = {})
        : config_(config), radar_tracker_() {}

    /**
     * One tracking cycle.
     * @param frame Current camera frame (used only in fallback mode).
     * @param detections Current vision detections.
     * @param radar_detections This cycle's radar scan output.
     * @param camera / pose Projection for spatial sync.
     * @param body Vehicle pose (radar polar -> world).
     * @param t Cycle timestamp.
     */
    std::vector<HybridTrack> update(
        const Image &frame, const std::vector<Detection> &detections,
        const std::vector<RadarDetection> &radar_detections,
        const CameraModel &camera, const CameraPose &pose,
        const Pose2 &body, Timestamp t);

    TrackingMode mode() const { return mode_; }
    const RadarTracker &radarTracker() const { return radar_tracker_; }
    std::size_t kcfTrackerCount() const { return kcf_trackers_.size(); }

  private:
    HybridTrackerConfig config_;
    RadarTracker radar_tracker_;
    TrackingMode mode_ = TrackingMode::Radar;
    std::uint32_t quiet_scans_ = 0;

    struct KcfSlot
    {
        std::uint32_t id;
        ObjectClass cls;
        std::unique_ptr<KcfTracker> tracker;
    };
    std::vector<KcfSlot> kcf_trackers_;
    std::uint32_t next_kcf_id_ = 1000;
};

} // namespace sov
