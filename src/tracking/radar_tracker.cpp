#include "tracking/radar_tracker.h"

#include <cmath>
#include <limits>

namespace sov {

void
RadarTracker::update(const Pose2 &body,
                     const std::vector<RadarDetection> &detections,
                     Timestamp t, const Vec2 &ego_velocity)
{
    // Convert detections into world-frame points.
    std::vector<Vec2> points;
    points.reserve(detections.size());
    for (const auto &det : detections) {
        const double angle = body.heading + det.azimuth;
        points.push_back(body.position +
                         Vec2(std::cos(angle), std::sin(angle)) *
                             det.range);
    }

    // Predict all tracks to the scan time.
    for (auto &track : tracks_) {
        const double dt = (t - track.last_update).toSeconds();
        track.position += track.velocity * dt;
    }

    // Greedy nearest-neighbor association inside the gate.
    std::vector<bool> det_used(points.size(), false);
    for (auto &track : tracks_) {
        double best = std::numeric_limits<double>::max();
        std::size_t best_idx = points.size();
        for (std::size_t i = 0; i < points.size(); ++i) {
            if (det_used[i])
                continue;
            const double d = track.position.distanceTo(points[i]);
            if (d < best) {
                best = d;
                best_idx = i;
            }
        }
        if (best_idx < points.size() && best <= config_.gate_distance) {
            det_used[best_idx] = true;
            const double dt =
                std::max((t - track.last_update).toSeconds(), 1e-3);
            const Vec2 residual = points[best_idx] - track.position;
            track.position += residual * config_.alpha;
            track.velocity += residual * (config_.beta / dt);
            // Doppler: correct the radial velocity component with the
            // direct measurement (relative vr + ego along the LOS).
            const Vec2 rel = points[best_idx] - body.position;
            if (rel.norm() > 1e-6) {
                const Vec2 los = rel.normalized();
                const double vr_world =
                    detections[best_idx].radial_velocity +
                    ego_velocity.dot(los);
                const double vr_track = track.velocity.dot(los);
                track.velocity +=
                    los * ((vr_world - vr_track) * config_.doppler_gain);
            }
            track.last_update = t;
            ++track.hits;
            track.misses = 0;
            track.truth_id = detections[best_idx].truth_id;
        } else {
            ++track.misses;
        }
    }

    // Spawn tracks for unassociated detections.
    for (std::size_t i = 0; i < points.size(); ++i) {
        if (det_used[i])
            continue;
        RadarTrack track;
        track.id = next_id_++;
        track.position = points[i];
        track.velocity = Vec2(0.0, 0.0);
        track.last_update = t;
        track.truth_id = detections[i].truth_id;
        tracks_.push_back(track);
    }

    // Drop stale tracks.
    std::erase_if(tracks_, [this](const RadarTrack &track) {
        return track.misses > config_.max_misses;
    });
}

std::vector<RadarTrack>
RadarTracker::confirmedTracks() const
{
    std::vector<RadarTrack> out;
    for (const auto &track : tracks_) {
        if (track.confirmed())
            out.push_back(track);
    }
    return out;
}

} // namespace sov
