#include "tracking/hybrid_tracker.h"

namespace sov {

std::vector<HybridTrack>
HybridTracker::update(const Image &frame,
                      const std::vector<Detection> &detections,
                      const std::vector<RadarDetection> &radar_detections,
                      const CameraModel &camera, const CameraPose &pose,
                      const Pose2 &body, Timestamp t)
{
    radar_tracker_.update(body, radar_detections, t);
    const auto confirmed = radar_tracker_.confirmedTracks();

    // Radar health is judged from the raw returns: no echoes while
    // vision still sees objects means the radar is unstable (coasting
    // tracks would mask the outage until they expire).
    if (radar_detections.empty() && !detections.empty()) {
        ++quiet_scans_;
    } else if (!radar_detections.empty()) {
        quiet_scans_ = 0;
    }

    const bool fallback = quiet_scans_ >= config_.unstable_after;
    std::vector<HybridTrack> tracks;

    if (!fallback) {
        if (mode_ == TrackingMode::KcfFallback)
            kcf_trackers_.clear(); // radar recovered
        mode_ = TrackingMode::Radar;

        for (const auto &fused :
             spatialSync(camera, pose, confirmed, detections,
                         config_.spatial_sync)) {
            HybridTrack track;
            track.id = fused.track_id;
            track.source = TrackingMode::Radar;
            track.cls = fused.cls;
            track.position = fused.position;
            track.velocity = fused.velocity;
            track.pixel_u = fused.box.centerX();
            track.pixel_v = fused.box.centerY();
            tracks.push_back(track);
        }
        return tracks;
    }

    // --------------------------- KCF fallback (Sec. IV, Table III)
    if (mode_ != TrackingMode::KcfFallback) {
        // Entering fallback: seed one KCF per current detection.
        mode_ = TrackingMode::KcfFallback;
        kcf_trackers_.clear();
        for (const auto &det : detections) {
            KcfSlot slot;
            slot.id = next_kcf_id_++;
            slot.cls = det.cls;
            slot.tracker = std::make_unique<KcfTracker>(config_.kcf);
            slot.tracker->init(frame, det.box.centerX(),
                               det.box.centerY());
            kcf_trackers_.push_back(std::move(slot));
        }
    }

    for (auto &slot : kcf_trackers_) {
        const KcfStatus status = slot.tracker->update(frame);
        if (!status.confident)
            continue;
        HybridTrack track;
        track.id = slot.id;
        track.source = TrackingMode::KcfFallback;
        track.cls = slot.cls;
        track.pixel_u = status.x;
        track.pixel_v = status.y;
        tracks.push_back(track);
    }
    return tracks;
}

} // namespace sov
