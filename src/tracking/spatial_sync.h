/**
 * @file
 * Spatial synchronization of radar tracks and vision detections
 * (Sec. VI-B).
 *
 * Radar tracks positions and velocities but does not classify; vision
 * detects and classifies but tracking visually (KCF) is ~100x more
 * expensive than this matcher. The algorithm projects each radar
 * track into the camera and greedily matches projected positions to
 * detection boxes, producing classified, velocity-annotated objects.
 */
#pragma once

#include <optional>
#include <vector>

#include "tracking/radar_tracker.h"
#include "vision/camera_model.h"
#include "vision/detector.h"

namespace sov {

/** A fused (radar + vision) object. */
struct FusedObject
{
    std::uint32_t track_id = 0;
    Vec2 position;      //!< world frame (radar)
    Vec2 velocity;      //!< world frame (radar)
    ObjectClass cls = ObjectClass::Static; //!< from vision
    double confidence = 0.0;               //!< detector confidence
    BoundingBox box;    //!< matched image box
};

/** Matching tuning. */
struct SpatialSyncConfig
{
    /** Maximum pixel distance between a projected track and a box
     *  center for a match. */
    double max_pixel_distance = 60.0;
    /** Assumed object center height for projection, meters. */
    double assumed_height = 0.9;
};

/**
 * Match radar tracks with vision detections.
 * @param camera The camera the detections came from.
 * @param pose Camera pose at the detection frame's capture time.
 * @param tracks Confirmed radar tracks.
 * @param detections Vision detections in that frame.
 */
std::vector<FusedObject> spatialSync(const CameraModel &camera,
                                     const CameraPose &pose,
                                     const std::vector<RadarTrack> &tracks,
                                     const std::vector<Detection> &detections,
                                     const SpatialSyncConfig &config = {});

} // namespace sov
