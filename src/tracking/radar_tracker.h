/**
 * @file
 * Radar-based object tracking (Sec. VI-B).
 *
 * "We replace compute-intensive visual tracking algorithms with Radar
 * sensors, which directly measure the relative radial velocity of an
 * object and combine consecutive observations of the same target into
 * a trajectory." Detections are associated to tracks by gated nearest-
 * neighbor matching; each track runs an alpha-beta filter on position
 * and velocity.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/time.h"
#include "math/geometry.h"
#include "sensors/radar.h"

namespace sov {

/** One maintained radar track. */
struct RadarTrack
{
    std::uint32_t id = 0;
    Vec2 position;      //!< world frame
    Vec2 velocity;      //!< world frame, m/s
    Timestamp last_update;
    std::uint32_t hits = 1;     //!< associated detections so far
    std::uint32_t misses = 0;   //!< consecutive unassociated scans
    ObstacleId truth_id = 0;    //!< ground-truth link (tests only)

    bool confirmed() const { return hits >= 3; }
};

/** Tracker tuning. */
struct RadarTrackerConfig
{
    double gate_distance = 2.5;  //!< association gate, meters
    double alpha = 0.5;          //!< position correction gain
    double beta = 0.15;          //!< velocity correction gain
    /** Doppler correction gain: the radar measures radial velocity
     *  directly ("Radar ... directly measure[s] the relative radial
     *  velocity of an object", Sec. VI-B), which is far less noisy
     *  than differentiating positions. */
    double doppler_gain = 0.6;
    std::uint32_t max_misses = 5; //!< drop a track after this
};

/** Multi-object alpha-beta tracker over radar detections. */
class RadarTracker
{
  public:
    explicit RadarTracker(const RadarTrackerConfig &config = {})
        : config_(config) {}

    /**
     * Feed one radar scan.
     * @param body Vehicle pose at scan time (detections are in the
     *        sensor polar frame and converted to world positions).
     * @param detections The scan's detections.
     * @param t Scan timestamp.
     */
    void update(const Pose2 &body,
                const std::vector<RadarDetection> &detections, Timestamp t,
                const Vec2 &ego_velocity = Vec2(0.0, 0.0));

    const std::vector<RadarTrack> &tracks() const { return tracks_; }

    /** Only tracks that have been confirmed by repeated association. */
    std::vector<RadarTrack> confirmedTracks() const;

  private:
    RadarTrackerConfig config_;
    std::vector<RadarTrack> tracks_;
    std::uint32_t next_id_ = 1;
};

} // namespace sov
