#include "fault/sensor_faults.h"

namespace sov::fault {

SensorDisposition
SensorFaultHub::evaluate(FaultTarget sensor, Timestamp t)
{
    SensorDisposition disposition;
    if (plan_ == nullptr)
        return disposition;
    for (FaultChannel *channel : plan_->channelsFor(sensor)) {
        if (!channel->shouldInject(t))
            continue;
        switch (channel->spec().mode) {
        case FaultMode::Dropout:
            disposition.drop = true;
            break;
        case FaultMode::Freeze:
            disposition.freeze = true;
            break;
        case FaultMode::LatencySpike:
            disposition.extra_latency += channel->spec().latency;
            break;
        case FaultMode::Corruption:
            disposition.corruption = channel;
            break;
        default:
            break; // stage/CAN/RPR modes don't apply to sensor samples
        }
    }
    return disposition;
}

std::function<bool(Timestamp)>
makeDropoutFilter(FaultChannel *channel)
{
    if (channel == nullptr)
        return {};
    return [channel](Timestamp t) { return channel->shouldInject(t); };
}

} // namespace sov::fault
