/**
 * @file
 * Sensor-side fault evaluation: folds every channel of a FaultPlan
 * aimed at one sensor into a per-sample disposition (drop it, freeze
 * it, delay it, corrupt it). Consumers keep their own last-good state
 * for Freeze; the hub only decides.
 *
 * The radar and sonar models additionally expose a dropout filter
 * hook (sensors/radar.h, sensors/sonar.h) for code paths that talk to
 * the sensor object directly; makeDropoutFilter() adapts a channel to
 * that hook.
 */
#pragma once

#include <functional>

#include "fault/fault_plan.h"

namespace sov::fault {

/** What to do with one sensor sample. */
struct SensorDisposition
{
    bool drop = false;   //!< the sample never arrives
    bool freeze = false; //!< deliver the previous good sample again
    Duration extra_latency = Duration::zero();
    /** Channel to draw corruption noise from; nullptr = clean. */
    FaultChannel *corruption = nullptr;

    bool
    any() const
    {
        return drop || freeze || extra_latency > Duration::zero() ||
            corruption != nullptr;
    }
};

/** Per-sensor view over a FaultPlan. */
class SensorFaultHub
{
  public:
    /** @param plan May be nullptr (fault-free: every disposition is
     *  clean and nothing ever draws). Not owned. */
    explicit SensorFaultHub(FaultPlan *plan = nullptr) : plan_(plan) {}

    /**
     * Evaluate all channels targeting @p sensor for one sample at
     * @p t. Dropout wins over Freeze when both fire.
     */
    SensorDisposition evaluate(FaultTarget sensor, Timestamp t);

    bool active() const { return plan_ != nullptr && !plan_->empty(); }

  private:
    FaultPlan *plan_;
};

/** Adapt @p channel to the sensors' dropout-filter hook. The channel
 *  must outlive the filter. */
std::function<bool(Timestamp)> makeDropoutFilter(FaultChannel *channel);

} // namespace sov::fault
