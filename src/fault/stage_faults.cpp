#include "fault/stage_faults.h"

#include <map>

#include "core/logging.h"

namespace sov::fault {

void
StageFaultInjector::addChannel(FaultChannel *channel)
{
    SOV_ASSERT(channel != nullptr);
    channels_.push_back(channel);
}

Duration
StageFaultInjector::execute(std::size_t frame)
{
    // Always run the inner executor: its sampler stream must advance
    // exactly as in a fault-free run, firing or not.
    Duration duration = inner_->execute(frame);
    outcome_ = inner_->lastOutcome();
    if (outcome_ != runtime::StageOutcome::Ok)
        return duration; // a nested injector already failed the attempt

    const Timestamp t = clock_ ? clock_() : Timestamp::origin();
    for (FaultChannel *channel : channels_) {
        if (!channel->shouldInject(t))
            continue;
        const FaultSpec &spec = channel->spec();
        switch (spec.mode) {
        case FaultMode::Crash:
            // The returned duration is the crash-detection time.
            outcome_ = runtime::StageOutcome::Crash;
            return spec.latency;
        case FaultMode::Hang:
            // Without a watchdog the stage occupies its lane for the
            // hang time (effectively forever unless the spec says
            // otherwise); a watchdog truncates it at the timeout.
            outcome_ = runtime::StageOutcome::Hang;
            return spec.latency > Duration::zero()
                ? spec.latency
                : Duration::seconds(3600.0);
        case FaultMode::LatencyMultiplier:
            duration = duration * spec.multiplier;
            break;
        case FaultMode::LatencySpike:
            duration += spec.latency;
            break;
        default:
            break; // sensor modes don't apply to stages
        }
    }
    return duration;
}

std::size_t
installStageFaults(runtime::StageGraph &graph, FaultPlan &plan,
                   StageFaultInjector::Clock clock)
{
    std::map<runtime::StageId, StageFaultInjector *> installed;
    for (FaultChannel *channel :
         plan.channelsFor(FaultTarget::PipelineStage)) {
        const runtime::StageId id =
            graph.findStage(channel->spec().stage);
        auto it = installed.find(id);
        if (it == installed.end()) {
            // Two-step swap: park a placeholder to free the original,
            // then install the injector wrapping it.
            std::unique_ptr<runtime::StageExecutor> original =
                graph.replaceExecutor(
                    id, std::make_unique<runtime::FixedExecutor>(
                            Duration::zero()));
            auto injector = std::make_unique<StageFaultInjector>(
                std::move(original), clock);
            StageFaultInjector *raw = injector.get();
            graph.replaceExecutor(id, std::move(injector));
            it = installed.emplace(id, raw).first;
        }
        it->second->addChannel(channel);
    }
    return installed.size();
}

} // namespace sov::fault
