#include "fault/fault_plan.h"

#include "core/logging.h"

namespace sov::fault {

const char *
toString(FaultTarget target)
{
    switch (target) {
    case FaultTarget::Camera: return "camera";
    case FaultTarget::Imu: return "imu";
    case FaultTarget::Gps: return "gps";
    case FaultTarget::Radar: return "radar";
    case FaultTarget::Sonar: return "sonar";
    case FaultTarget::Perception: return "perception";
    case FaultTarget::PipelineStage: return "stage";
    case FaultTarget::CanBus: return "can";
    case FaultTarget::Rpr: return "rpr";
    }
    return "?";
}

const char *
toString(FaultMode mode)
{
    switch (mode) {
    case FaultMode::Dropout: return "dropout";
    case FaultMode::Freeze: return "freeze";
    case FaultMode::LatencySpike: return "latency-spike";
    case FaultMode::Corruption: return "corruption";
    case FaultMode::Crash: return "crash";
    case FaultMode::Hang: return "hang";
    case FaultMode::LatencyMultiplier: return "latency-multiplier";
    }
    return "?";
}

bool
FaultChannel::shouldInject(Timestamp t)
{
    if (t < spec_.window_start || t >= spec_.window_end)
        return false;
    if (spec_.probability <= 0.0)
        return false;
    // p == 1 decides without drawing so deterministic windows leave
    // the channel stream untouched.
    const bool fire =
        spec_.probability >= 1.0 || rng_.bernoulli(spec_.probability);
    if (fire) {
        ++injections_;
        if (recorder_)
            recorder_->instant(trace_name_, trace_category_, trace_track_,
                               t);
    }
    return fire;
}

void
FaultChannel::setTraceRecorder(obs::TraceRecorder *recorder)
{
    recorder_ = recorder;
    if (!recorder_)
        return;
    trace_name_ = recorder_->intern(spec_.name);
    trace_category_ = recorder_->intern("fault");
    trace_track_ = recorder_->intern(toString(spec_.target));
}

double
FaultChannel::corrupt(double value)
{
    if (spec_.corruption_sigma <= 0.0)
        return value;
    return value + rng_.gaussian(0.0, spec_.corruption_sigma);
}

FaultChannel &
FaultPlan::add(const FaultSpec &spec)
{
    SOV_ASSERT(!spec.name.empty());
    SOV_ASSERT(spec.probability >= 0.0 && spec.probability <= 1.0);
    for (const auto &existing : channels_)
        SOV_ASSERT(existing->spec().name != spec.name);
    channels_.push_back(std::make_unique<FaultChannel>(
        spec, rng_.fork("fault/" + spec.name)));
    channels_.back()->setTraceRecorder(recorder_);
    return *channels_.back();
}

void
FaultPlan::setTraceRecorder(obs::TraceRecorder *recorder)
{
    recorder_ = recorder;
    for (const auto &channel : channels_)
        channel->setTraceRecorder(recorder);
}

FaultChannel *
FaultPlan::find(FaultTarget target, FaultMode mode,
                const std::string &stage)
{
    for (const auto &channel : channels_) {
        const FaultSpec &s = channel->spec();
        if (s.target != target || s.mode != mode)
            continue;
        if (target == FaultTarget::PipelineStage && !stage.empty() &&
            s.stage != stage)
            continue;
        return channel.get();
    }
    return nullptr;
}

std::vector<FaultChannel *>
FaultPlan::channelsFor(FaultTarget target)
{
    std::vector<FaultChannel *> out;
    for (const auto &channel : channels_) {
        if (channel->spec().target == target)
            out.push_back(channel.get());
    }
    return out;
}

std::uint64_t
FaultPlan::totalInjections() const
{
    std::uint64_t total = 0;
    for (const auto &channel : channels_)
        total += channel->injections();
    return total;
}

FaultSpec
perceptionMiss(double probability)
{
    FaultSpec spec;
    spec.name = "perception-miss";
    spec.target = FaultTarget::Perception;
    spec.mode = FaultMode::Dropout;
    spec.probability = probability;
    return spec;
}

} // namespace sov::fault
