/**
 * @file
 * Deterministic, seed-driven fault injection (Sec. III-C).
 *
 * The paper's safety argument rests on the vehicle staying safe when
 * components misbehave: sensors go silent or lie, pipeline stages
 * crash, hang or blow their latency budget, the CAN link drops frames,
 * the FPGA fails to reconfigure. A FaultPlan describes such scenarios
 * as a set of FaultSpecs — each an injection window, a per-event
 * probability, and mode-specific magnitudes — and materializes one
 * FaultChannel per spec.
 *
 * Determinism rules:
 *  - every channel forks its own Rng stream from the plan seed keyed
 *    by the spec name, so adding a fault never perturbs another
 *    fault's (or the simulation's) stream;
 *  - a channel whose window excludes the query time, or whose
 *    probability is 0 or 1, decides without drawing — a plan that is
 *    constructed but never fires leaves every random stream
 *    bit-identical to a run without the plan.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "obs/trace.h"

namespace sov::fault {

/** What component the fault targets. */
enum class FaultTarget
{
    Camera,
    Imu,
    Gps,
    Radar,
    Sonar,
    Perception,    //!< algorithm-level: the detector misses an object
    PipelineStage, //!< a StageExecutor of the dataflow graph
    CanBus,        //!< command frame loss on the CAN link
    Rpr,           //!< FPGA partial-reconfiguration failure
};

/** How the fault manifests. */
enum class FaultMode
{
    Dropout,           //!< the event produces nothing
    Freeze,            //!< the sensor repeats its last good sample
    LatencySpike,      //!< the event is delayed by FaultSpec::latency
    Corruption,        //!< values get FaultSpec::corruption_sigma noise
    Crash,             //!< stage fails after FaultSpec::latency detect time
    Hang,              //!< stage never completes (latency = hang time)
    LatencyMultiplier, //!< stage duration scaled by FaultSpec::multiplier
};

const char *toString(FaultTarget target);
const char *toString(FaultMode mode);

/** One injected fault: where, how, when, how often, how hard. */
struct FaultSpec
{
    /** Unique tag; keys the channel's forked Rng stream. */
    std::string name;
    FaultTarget target = FaultTarget::Camera;
    FaultMode mode = FaultMode::Dropout;
    /** Stage name in the graph (PipelineStage targets only). */
    std::string stage;
    /** Injection window [start, end). */
    Timestamp window_start = Timestamp::origin();
    Timestamp window_end = Timestamp::never();
    /** Per-event injection chance inside the window. */
    double probability = 1.0;
    /** LatencySpike extra delay / Crash detection time / Hang time. */
    Duration latency = Duration::zero();
    /** LatencyMultiplier scale factor. */
    double multiplier = 1.0;
    /** Corruption noise sigma (value units, e.g. meters). */
    double corruption_sigma = 0.0;
};

/** Runtime state of one FaultSpec. */
class FaultChannel
{
  public:
    FaultChannel(FaultSpec spec, Rng rng)
        : spec_(std::move(spec)), rng_(std::move(rng)) {}

    /**
     * Decide one injection opportunity at time @p t. Draws from the
     * channel stream only for 0 < probability < 1 inside the window.
     */
    bool shouldInject(Timestamp t);

    /** Corruption draw: @p value plus gaussian spec sigma noise. */
    double corrupt(double value);

    const FaultSpec &spec() const { return spec_; }
    /** Injections decided so far (for reports and tests). */
    std::uint64_t injections() const { return injections_; }

    /** Emit an instant (category "fault", named after the spec) into
     *  @p recorder for every injection decided from now on. Purely
     *  observational: never touches the channel's Rng stream. */
    void setTraceRecorder(obs::TraceRecorder *recorder);

  private:
    FaultSpec spec_;
    Rng rng_;
    std::uint64_t injections_ = 0;
    obs::TraceRecorder *recorder_ = nullptr;
    obs::NameId trace_name_ = 0;
    obs::NameId trace_category_ = 0;
    obs::NameId trace_track_ = 0;
};

/** A fault scenario: owned channels, stable addresses. */
class FaultPlan
{
  public:
    /** @param rng Master stream; each channel forks from it by name. */
    explicit FaultPlan(Rng rng = Rng(0xFA017ULL)) : rng_(std::move(rng)) {}

    FaultPlan(const FaultPlan &) = delete;
    FaultPlan &operator=(const FaultPlan &) = delete;

    /** Register @p spec; the returned channel lives as long as the
     *  plan. Spec names must be unique within the plan. */
    FaultChannel &add(const FaultSpec &spec);

    /** First channel matching target/mode (and stage name for
     *  PipelineStage targets); nullptr if absent. */
    FaultChannel *find(FaultTarget target, FaultMode mode,
                       const std::string &stage = std::string());

    /** All channels aimed at @p target. */
    std::vector<FaultChannel *> channelsFor(FaultTarget target);

    bool empty() const { return channels_.empty(); }
    std::size_t size() const { return channels_.size(); }

    /** Sum of injections across all channels. */
    std::uint64_t totalInjections() const;

    /** Trace every channel's injections into @p recorder (applies to
     *  channels added later too; nullptr detaches). */
    void setTraceRecorder(obs::TraceRecorder *recorder);

  private:
    Rng rng_;
    std::vector<std::unique_ptr<FaultChannel>> channels_;
    obs::TraceRecorder *recorder_ = nullptr;
};

/** The legacy ClosedLoopConfig::perception_miss_probability knob as a
 *  FaultSpec (Sec. III-C scenario 2: the detector misses an object). */
FaultSpec perceptionMiss(double probability);

} // namespace sov::fault
