/**
 * @file
 * Pipeline-stage fault injection: wraps any runtime::StageExecutor and
 * turns FaultPlan channels into crash / hang / latency outcomes that
 * the DataflowExecutor's watchdog policies supervise.
 *
 * The wrapper always invokes the inner executor first, so the inner
 * sampler's random stream advances exactly as in a fault-free run —
 * a plan whose channels never fire reproduces the baseline schedule
 * bit for bit.
 */
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fault/fault_plan.h"
#include "runtime/stage_graph.h"

namespace sov::fault {

/** Fault-injecting decorator over a stage executor. */
class StageFaultInjector final : public runtime::StageExecutor
{
  public:
    /** Supplies the current model time for window checks; an unset
     *  clock pins evaluation to the origin (always-open windows). */
    using Clock = std::function<Timestamp()>;

    StageFaultInjector(std::unique_ptr<runtime::StageExecutor> inner,
                       Clock clock)
        : inner_(std::move(inner)), clock_(std::move(clock)) {}

    /** Attach a Crash / Hang / LatencyMultiplier / LatencySpike
     *  channel; evaluated in attachment order, first crash or hang
     *  wins. Channel not owned, must outlive the injector. */
    void addChannel(FaultChannel *channel);

    Duration execute(std::size_t frame) override;
    runtime::StageOutcome lastOutcome() const override { return outcome_; }
    const char *kind() const override { return "fault-injected"; }

    runtime::StageExecutor &inner() { return *inner_; }

  private:
    std::unique_ptr<runtime::StageExecutor> inner_;
    Clock clock_;
    std::vector<FaultChannel *> channels_;
    runtime::StageOutcome outcome_ = runtime::StageOutcome::Ok;
};

/**
 * Wrap every stage named by a PipelineStage channel of @p plan with a
 * StageFaultInjector (in place, via StageGraph::replaceExecutor) and
 * attach the channels. Stages named by several channels get one
 * injector with all of them.
 * @return Number of stages wrapped.
 */
std::size_t installStageFaults(runtime::StageGraph &graph, FaultPlan &plan,
                               StageFaultInjector::Clock clock);

} // namespace sov::fault
