/**
 * @file
 * Visual-Inertial Odometry (Table III: VIO localization).
 *
 * A dead-reckoning estimator in the VIO class: gyro integration gives
 * heading, frame-to-frame visual odometry gives body-frame
 * displacement and delta-yaw, and the two are fused — VO delta-yaw
 * observes the gyro bias, gyro heading orients the VO displacement.
 * Like all odometry it accumulates error with distance (Sec. VI-B),
 * which the GPS-VIO fusion corrects.
 *
 * Timestamps matter: the filter looks up its heading *at the stamped
 * capture time* of each camera frame. Unsynchronized camera/IMU
 * timestamps therefore rotate displacements by stale headings — the
 * Fig. 11b failure mode.
 */
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "math/geometry.h"
#include "math/vec.h"
#include "sensors/imu.h"
#include "vision/visual_odometry.h"
#include "world/trajectory.h"

namespace sov {

/** Frame-to-frame visual odometry measurement. */
struct VoMeasurement
{
    Timestamp t0; //!< stamped time of the earlier frame
    Timestamp t1; //!< stamped time of the later frame
    Vec2 body_displacement; //!< in the body frame at the earlier frame
    double delta_yaw = 0.0; //!< radians
};

/**
 * Generate a ground-truth-based VO measurement between two *actual*
 * capture instants, with additive noise. The caller decides what
 * stamped times the estimator will see (sync experiments).
 */
VoMeasurement makeVoMeasurement(const Trajectory &trajectory,
                                Timestamp t0_actual, Timestamp t1_actual,
                                Rng &rng, double translation_noise = 0.01,
                                double yaw_noise = 0.002);

/**
 * Wrap a valid image-based front-end estimate (vision/visual_odometry)
 * as the measurement the VIO consumes; nullopt for invalid estimates.
 */
std::optional<VoMeasurement> toVoMeasurement(const VoEstimate &estimate,
                                             Timestamp t0, Timestamp t1);

/** VIO tuning parameters. */
struct VioConfig
{
    double gyro_noise = 0.002;       //!< rad/s
    /** Per-VO-update feedback of the delta-yaw innovation into the
     *  gyro-bias estimate (rad/s of bias per rad of innovation). */
    double bias_gain = 0.002;
    /** Physical bound on the MEMS gyro bias estimate (rad/s); keeps
     *  the feedback loop stable when measurements are inconsistent
     *  (e.g. unsynchronized timestamps, Sec. VI-A). */
    double max_gyro_bias = 0.01;
    double position_noise_per_meter = 0.01; //!< odometry noise model
};

/** Estimated state of the VIO filter. */
struct VioState
{
    Vec2 position{0.0, 0.0};
    double yaw = 0.0;
    double speed = 0.0;        //!< latest VO-derived speed estimate
    double gyro_bias = 0.0;
    double position_sigma = 0.0; //!< 1-sigma position uncertainty
    double distance_travelled = 0.0;
};

/** The VIO estimator. */
class VioOdometry
{
  public:
    explicit VioOdometry(const VioConfig &config = {});

    /** Initialize the pose (e.g. from the map / first GPS fix). */
    void initialize(const Vec2 &position, double yaw);

    /**
     * Integrate one gyro sample stamped at @p stamped_time. Only the
     * z-rate is used on our planar vehicles.
     */
    void propagateImu(const ImuSample &imu, Timestamp stamped_time);

    /** Apply one visual odometry measurement (stamped times inside). */
    void applyVo(const VoMeasurement &vo);

    /**
     * Externally correct the position (GPS fusion, Sec. VI-B); resets
     * the odometric uncertainty to @p sigma.
     */
    void correctPosition(const Vec2 &position, double sigma);

    const VioState &state() const { return state_; }

    /** Estimated heading at a past stamped time (history lookup). */
    double yawAt(Timestamp stamped_time) const;

  private:
    VioConfig config_;
    VioState state_;
    Timestamp last_imu_ = Timestamp::origin();
    bool have_imu_ = false;

    /** Recent (stamped time, yaw) pairs for VO orientation lookup. */
    std::deque<std::pair<Timestamp, double>> yaw_history_;
    static constexpr std::size_t kMaxHistory = 512;
};

} // namespace sov
