#include "localization/gps_fusion.h"

#include <cmath>

namespace sov {

bool
GpsVioFusion::applyGps(const GpsFix &fix)
{
    if (fix.multipath ||
        fix.horizontal_accuracy > config_.max_accepted_accuracy) {
        gnss_healthy_ = false;
        return false;
    }
    gnss_healthy_ = true;

    // Scalar-gain EKF update on the position: K = P / (P + R).
    const double p_var = vio_.state().position_sigma *
        vio_.state().position_sigma;
    const double r_var = config_.gps_sigma * config_.gps_sigma;
    // A fresh filter (sigma 0) still takes the first fix as its
    // initialization.
    double k = 1.0;
    if (p_var + r_var > 1e-12)
        k = std::max(p_var / (p_var + r_var), config_.min_gain);
    if (vio_.state().distance_travelled == 0.0 &&
        vio_.state().position_sigma == 0.0) {
        k = 1.0;
    }

    const Vec2 innovation = fix.position - vio_.state().position;
    const Vec2 corrected = vio_.state().position + innovation * k;
    const double new_sigma = std::sqrt((1.0 - k) * p_var + 1e-6);
    vio_.correctPosition(corrected, new_sigma);
    return true;
}

} // namespace sov
