/**
 * @file
 * GPS-VIO hybrid localization (Sec. VI-B).
 *
 * When the GNSS signal is strong, fixes are used directly as the
 * vehicle's position and simultaneously correct the VIO's cumulative
 * drift via an EKF position update. When GNSS degrades (outage,
 * multipath), the corrected VIO carries the estimate. The fusion
 * update is ~1 ms of compute versus ~24 ms for the VIO front-end
 * (Sec. VI-B) — sensing replacing computing.
 */
#pragma once

#include "localization/vio.h"
#include "sensors/gps.h"

namespace sov {

/** Fusion tuning. */
struct GpsVioConfig
{
    /** Fixes flagged multipath or worse than this are rejected. */
    double max_accepted_accuracy = 2.0;
    /** Measurement sigma used in the EKF update. */
    double gps_sigma = 0.5;
    /** Floor on the correction gain: odometry error is partially
     *  systematic, so the filter never fully trusts its own sigma. */
    double min_gain = 0.15;
};

/** EKF fusing VIO dead reckoning with GNSS fixes. */
class GpsVioFusion
{
  public:
    explicit GpsVioFusion(const GpsVioConfig &config = {})
        : config_(config) {}

    /** Access the inner VIO (feed IMU / VO through this). */
    VioOdometry &vio() { return vio_; }
    const VioOdometry &vio() const { return vio_; }

    /**
     * Apply one GNSS fix. Rejected fixes (multipath / poor accuracy)
     * leave the estimate untouched.
     * @return True if the fix was accepted.
     */
    bool applyGps(const GpsFix &fix);

    /** Fused position estimate. */
    Vec2 position() const { return vio_.state().position; }
    /** Current 1-sigma position uncertainty. */
    double positionSigma() const { return vio_.state().position_sigma; }
    /** True if the last fix was accepted (GNSS currently trusted). */
    bool gnssHealthy() const { return gnss_healthy_; }

  private:
    GpsVioConfig config_;
    VioOdometry vio_;
    bool gnss_healthy_ = false;
};

} // namespace sov
