#include "localization/vio.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sov {

VoMeasurement
makeVoMeasurement(const Trajectory &trajectory, Timestamp t0_actual,
                  Timestamp t1_actual, Rng &rng, double translation_noise,
                  double yaw_noise)
{
    SOV_ASSERT(t1_actual > t0_actual);
    const TrajectorySample s0 = trajectory.sample(t0_actual);
    const TrajectorySample s1 = trajectory.sample(t1_actual);

    const Vec2 world_disp(s1.position.x() - s0.position.x(),
                          s1.position.y() - s0.position.y());
    const double yaw0 = s0.orientation.yaw();
    const double c = std::cos(yaw0), s = std::sin(yaw0);

    VoMeasurement vo;
    vo.t0 = t0_actual;
    vo.t1 = t1_actual;
    vo.body_displacement =
        Vec2(c * world_disp.x() + s * world_disp.y(),
             -s * world_disp.x() + c * world_disp.y()) +
        Vec2(rng.gaussian(0.0, translation_noise),
             rng.gaussian(0.0, translation_noise));
    vo.delta_yaw = wrapAngle(s1.orientation.yaw() - yaw0) +
        rng.gaussian(0.0, yaw_noise);
    return vo;
}

std::optional<VoMeasurement>
toVoMeasurement(const VoEstimate &estimate, Timestamp t0, Timestamp t1)
{
    if (!estimate.valid)
        return std::nullopt;
    VoMeasurement vo;
    vo.t0 = t0;
    vo.t1 = t1;
    vo.body_displacement = estimate.body_displacement;
    vo.delta_yaw = estimate.delta_yaw;
    return vo;
}

VioOdometry::VioOdometry(const VioConfig &config) : config_(config)
{
}

void
VioOdometry::initialize(const Vec2 &position, double yaw)
{
    state_.position = position;
    state_.yaw = yaw;
    state_.position_sigma = 0.0;
    state_.distance_travelled = 0.0;
    yaw_history_.clear();
}

void
VioOdometry::propagateImu(const ImuSample &imu, Timestamp stamped_time)
{
    if (have_imu_) {
        const double dt = (stamped_time - last_imu_).toSeconds();
        if (dt > 0.0 && dt < 1.0) {
            state_.yaw = wrapAngle(
                state_.yaw +
                (imu.angular_velocity.z() - state_.gyro_bias) * dt);
        }
    }
    have_imu_ = true;
    last_imu_ = stamped_time;

    yaw_history_.emplace_back(stamped_time, state_.yaw);
    if (yaw_history_.size() > kMaxHistory)
        yaw_history_.pop_front();
}

double
VioOdometry::yawAt(Timestamp stamped_time) const
{
    if (yaw_history_.empty())
        return state_.yaw;
    // Find the first entry at or after the query and interpolate.
    const auto it = std::lower_bound(
        yaw_history_.begin(), yaw_history_.end(), stamped_time,
        [](const auto &entry, Timestamp t) { return entry.first < t; });
    if (it == yaw_history_.begin())
        return it->second;
    if (it == yaw_history_.end())
        return yaw_history_.back().second;
    const auto &[t1, y1] = *it;
    const auto &[t0, y0] = *(it - 1);
    const double span = (t1 - t0).toSeconds();
    if (span <= 0.0)
        return y1;
    const double f = (stamped_time - t0).toSeconds() / span;
    return wrapAngle(y0 + f * wrapAngle(y1 - y0));
}

void
VioOdometry::applyVo(const VoMeasurement &vo)
{
    SOV_ASSERT(vo.t1 > vo.t0);
    const double dt = (vo.t1 - vo.t0).toSeconds();

    // Rotate the body-frame displacement by the heading the filter
    // believes it had at the (stamped) earlier frame time.
    const double yaw0 = yawAt(vo.t0);
    const double c = std::cos(yaw0), s = std::sin(yaw0);
    const Vec2 world_disp(
        c * vo.body_displacement.x() - s * vo.body_displacement.y(),
        s * vo.body_displacement.x() + c * vo.body_displacement.y());
    state_.position += world_disp;

    const double dist = vo.body_displacement.norm();
    state_.distance_travelled += dist;
    state_.speed = dist / dt;

    // Odometry uncertainty grows with distance.
    const double step_sigma = config_.position_noise_per_meter * dist;
    state_.position_sigma = std::sqrt(
        state_.position_sigma * state_.position_sigma +
        step_sigma * step_sigma);

    // VO delta-yaw observes the gyro bias: the gyro-integrated yaw
    // change over the same (stamped) interval should match.
    const double gyro_delta = wrapAngle(yawAt(vo.t1) - yaw0);
    const double innovation = wrapAngle(vo.delta_yaw - gyro_delta);
    state_.gyro_bias = std::clamp(
        state_.gyro_bias - config_.bias_gain * innovation,
        -config_.max_gyro_bias, config_.max_gyro_bias);
    // Small proportional heading pull toward VO keeps yaw bounded.
    state_.yaw = wrapAngle(state_.yaw + 0.05 * innovation);
}

void
VioOdometry::correctPosition(const Vec2 &position, double sigma)
{
    state_.position = position;
    state_.position_sigma = sigma;
}

} // namespace sov
