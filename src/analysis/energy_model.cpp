#include "analysis/energy_model.h"

#include <algorithm>

#include "core/logging.h"

namespace sov {

double
drivingHours(const EnergyModelParams &params, Power p_ad)
{
    const Power total = params.vehicle_power + p_ad;
    SOV_ASSERT(total.toWatts() > 0.0);
    return params.battery.hoursAt(total);
}

double
drivingTimeReduction(const EnergyModelParams &params, Power p_ad)
{
    return drivingHours(params, Power::zero()) -
        drivingHours(params, p_ad);
}

double
revenueLossFraction(const EnergyModelParams &params, Power base,
                    Power with_extra, double shift_hours)
{
    SOV_ASSERT(shift_hours > 0.0);
    const double hours_base =
        std::min(drivingHours(params, base), shift_hours);
    const double hours_extra =
        std::min(drivingHours(params, with_extra), shift_hours);
    return (hours_base - hours_extra) / shift_hours;
}

} // namespace sov
