#include "analysis/latency_model.h"

namespace sov {

Duration
stoppingTime(const LatencyModelParams &params)
{
    return Duration::seconds(params.speed.toMetersPerSecond() /
                             params.brake_decel);
}

double
brakingDistance(const LatencyModelParams &params)
{
    const double v = params.speed.toMetersPerSecond();
    return v * v / (2.0 * params.brake_decel);
}

Duration
computeLatencyBudget(const LatencyModelParams &params,
                     double object_distance)
{
    const double v = params.speed.toMetersPerSecond();
    const double reaction_budget =
        (object_distance - brakingDistance(params)) / v;
    return Duration::seconds(reaction_budget) - params.t_data -
        params.t_mech;
}

double
minimumAvoidableDistance(const LatencyModelParams &params, Duration t_comp)
{
    const double v = params.speed.toMetersPerSecond();
    const double reaction =
        (t_comp + params.t_data + params.t_mech).toSeconds();
    return reaction * v + brakingDistance(params);
}

bool
canAvoid(const LatencyModelParams &params, Duration t_comp, double distance)
{
    return minimumAvoidableDistance(params, t_comp) <= distance;
}

} // namespace sov
