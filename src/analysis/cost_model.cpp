#include "analysis/cost_model.h"

#include <sstream>

#include "core/logging.h"

namespace sov {

void
CostBreakdown::add(std::string name, Money unit_cost, unsigned quantity)
{
    components_.push_back(
        CostComponent{std::move(name), unit_cost, quantity});
}

Money
CostBreakdown::total() const
{
    Money sum = Money::zero();
    for (const auto &c : components_)
        sum += c.total();
    return sum;
}

CostBreakdown
CostBreakdown::paperSensorSuite()
{
    // Table II, camera-based vehicle.
    CostBreakdown b;
    b.add("cameras-x4-plus-imu", Money::dollars(1000));
    b.add("radar", Money::dollars(500), 6);
    b.add("sonar", Money::dollars(200), 8);
    b.add("gps", Money::dollars(1000));
    return b;
}

CostBreakdown
CostBreakdown::lidarSensorSuite()
{
    // Table II, LiDAR-based vehicle.
    CostBreakdown b;
    b.add("long-range-lidar", Money::dollars(80000));
    b.add("short-range-lidar", Money::dollars(4000), 4);
    return b;
}

std::string
CostBreakdown::toString() const
{
    std::ostringstream os;
    for (const auto &c : components_) {
        os << c.name << " x" << c.quantity << ": $"
           << c.total().toDollars() << "\n";
    }
    os << "total: $" << total().toDollars() << "\n";
    return os.str();
}

Money
tcoPerYear(const TcoParams &params)
{
    SOV_ASSERT(params.amortization_years > 0.0);
    return Money::dollars(params.vehicle_price.toDollars() /
                          params.amortization_years) +
        params.cloud_service_per_year + params.maintenance_per_year;
}

Money
costPerTrip(const TcoParams &params)
{
    const double trips_per_year =
        params.operating_days_per_year * params.trips_per_day;
    SOV_ASSERT(trips_per_year > 0.0);
    return Money::dollars(tcoPerYear(params).toDollars() / trips_per_year);
}

} // namespace sov
