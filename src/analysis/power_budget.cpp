#include "analysis/power_budget.h"

#include <sstream>

namespace sov {

void
PowerBudget::add(std::string name, Power unit_power, unsigned quantity)
{
    components_.push_back(
        PowerComponent{std::move(name), unit_power, quantity});
}

Power
PowerBudget::total() const
{
    Power sum = Power::zero();
    for (const auto &c : components_)
        sum += c.total();
    return sum;
}

PowerBudget
PowerBudget::paperVehicle()
{
    // Table I. The paper's "Total for AD" is 175 W; the itemized rows
    // (118 + 11 + 6x13 + 8x2 = 223 W) reflect worst-case dynamic server
    // power, while 175 W is the operating total they measure. We carry
    // the itemized rows and expose both.
    PowerBudget b;
    b.add("main-computing-server (dynamic)", Power::watts(118));
    b.add("embedded-vision-module", Power::watts(11));
    b.add("radar", Power::watts(13), 6);
    b.add("sonar", Power::watts(2), 8);
    return b;
}

PowerBudget
PowerBudget::paperVehicleIdleServer()
{
    PowerBudget b;
    b.add("main-computing-server (idle)", Power::watts(31));
    b.add("embedded-vision-module", Power::watts(11));
    b.add("radar", Power::watts(13), 6);
    b.add("sonar", Power::watts(2), 8);
    return b;
}

PowerBudget
PowerBudget::lidarSuite()
{
    // Sec. III-D: Waymo-style 1 long-range (60 W) + 4 short-range
    // (8 W each) = 92 W.
    PowerBudget b;
    b.add("long-range-lidar", Power::watts(60));
    b.add("short-range-lidar", Power::watts(8), 4);
    return b;
}

std::string
PowerBudget::toString() const
{
    std::ostringstream os;
    for (const auto &c : components_) {
        os << c.name << " x" << c.quantity << ": "
           << c.total().toWatts() << " W\n";
    }
    os << "total: " << total().toWatts() << " W\n";
    return os.str();
}

} // namespace sov
