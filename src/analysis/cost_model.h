/**
 * @file
 * The cost breakdown of Table II plus the TCO-style model the paper
 * sketches in Sec. VII ("'TCO' Model for Autonomous Vehicles"): sensor
 * bill of materials, vehicle price, and per-trip economics.
 */
#pragma once

#include <string>
#include <vector>

#include "core/units.h"

namespace sov {

/** One bill-of-materials row. */
struct CostComponent
{
    std::string name;
    Money unit_cost;
    unsigned quantity = 1;

    Money total() const { return unit_cost * quantity; }
};

/** A sensor/vehicle bill of materials. */
class CostBreakdown
{
  public:
    void add(std::string name, Money unit_cost, unsigned quantity = 1);

    const std::vector<CostComponent> &components() const
    {
        return components_;
    }
    Money total() const;

    /** Table II: the paper's camera-based sensor suite. */
    static CostBreakdown paperSensorSuite();

    /** Table II: a Waymo-style LiDAR suite. */
    static CostBreakdown lidarSensorSuite();

    std::string toString() const;

  private:
    std::vector<CostComponent> components_;
};

/** TCO-style operating model (Sec. VII). */
struct TcoParams
{
    Money vehicle_price = Money::dollars(70000); //!< Table II
    double amortization_years = 5.0;
    Money cloud_service_per_year = Money::dollars(2000);
    Money maintenance_per_year = Money::dollars(3000);
    double operating_days_per_year = 330.0;
    double trips_per_day = 100.0;
};

/** Total cost of ownership per year. */
Money tcoPerYear(const TcoParams &params);

/** Break-even cost per trip. */
Money costPerTrip(const TcoParams &params);

} // namespace sov
