/**
 * @file
 * The end-to-end latency model of Sec. III-A (Fig. 2, Eq. 1):
 *
 *   (T_comp + T_data + T_mech) * v + v^2 / (2a) <= D
 *
 * where v is vehicle speed, a the brake deceleration, and D the
 * distance at which an object is sensed. These helpers answer both
 * directions: the T_comp budget for a given distance (Fig. 3a) and
 * the minimum avoidable distance for a given T_comp.
 */
#pragma once

#include "core/time.h"
#include "core/units.h"

namespace sov {

/** Parameters of the Eq. 1 latency model. */
struct LatencyModelParams
{
    Speed speed = Speed::metersPerSecond(5.6); //!< typical v (Sec. III-A)
    double brake_decel = 4.0;                  //!< a, m/s^2
    Duration t_data = Duration::millisF(1.0);  //!< CAN bus
    Duration t_mech = Duration::millisF(19.0); //!< mechanical reaction
};

/** Eq. 1b: time to fully stop from speed v at deceleration a. */
Duration stoppingTime(const LatencyModelParams &params);

/** Braking distance v^2 / (2a) — the theoretical avoidance floor. */
double brakingDistance(const LatencyModelParams &params);

/**
 * Eq. 1a solved for T_comp: the computing-latency budget to avoid an
 * object first sensed at distance @p object_distance. Negative results
 * mean the object is inside the braking envelope (unavoidable by any
 * computing system).
 */
Duration computeLatencyBudget(const LatencyModelParams &params,
                              double object_distance);

/**
 * Eq. 1a solved for D: the minimum distance at which an object must
 * be sensed to be avoidable with computing latency @p t_comp.
 */
double minimumAvoidableDistance(const LatencyModelParams &params,
                                Duration t_comp);

/** True if an object at @p distance is avoidable under @p t_comp. */
bool canAvoid(const LatencyModelParams &params, Duration t_comp,
              double distance);

} // namespace sov
