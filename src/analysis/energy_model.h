/**
 * @file
 * The energy model of Sec. III-B (Eq. 2):
 *
 *   T_reduced = E / P_V  -  E / (P_V + P_AD)
 *
 * with E the battery capacity, P_V the base vehicle power, and P_AD
 * the autonomous-driving power. Drives Fig. 3b and the "+1 server
 * costs 3% of daily revenue" analysis.
 */
#pragma once

#include "core/units.h"

namespace sov {

/** Vehicle energy parameters (paper defaults: 6 kWh, 0.6 kW). */
struct EnergyModelParams
{
    Energy battery = Energy::kilowattHours(6.0);
    Power vehicle_power = Power::kilowatts(0.6); //!< P_V (without AD)
};

/** Driving hours on one charge with AD power @p p_ad (0 = no AD). */
double drivingHours(const EnergyModelParams &params, Power p_ad);

/** Eq. 2: hours of driving time lost to AD power @p p_ad. */
double drivingTimeReduction(const EnergyModelParams &params, Power p_ad);

/**
 * Fraction of a @p shift_hours operating day lost when the AD load
 * rises from @p base to @p with_extra (the 3%-revenue-loss analysis).
 */
double revenueLossFraction(const EnergyModelParams &params, Power base,
                           Power with_extra, double shift_hours);

} // namespace sov
