/**
 * @file
 * The power breakdown of Table I, as structured data benches print
 * and tests check. All values are the paper's measurements.
 */
#pragma once

#include <string>
#include <vector>

#include "core/units.h"

namespace sov {

/** One row of the power budget. */
struct PowerComponent
{
    std::string name;
    Power unit_power;
    unsigned quantity = 1;

    Power total() const { return unit_power * quantity; }
};

/** A named collection of power components. */
class PowerBudget
{
  public:
    void add(std::string name, Power unit_power, unsigned quantity = 1);

    const std::vector<PowerComponent> &components() const
    {
        return components_;
    }

    Power total() const;

    /** The paper's vehicle (Table I): server + vision module + radars
     *  + sonars = 175 W operating (dynamic server figure). */
    static PowerBudget paperVehicle();

    /** The same vehicle with the server idle (31 W instead of 118 W). */
    static PowerBudget paperVehicleIdleServer();

    /** Waymo-style LiDAR suite: 1 long-range + 4 short-range (~92 W). */
    static PowerBudget lidarSuite();

    /** Render as a Table-I-style text table. */
    std::string toString() const;

  private:
    std::vector<PowerComponent> components_;
};

} // namespace sov
