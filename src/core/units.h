/**
 * @file
 * Lightweight SI-unit helper types for the analytical models of Sec. III.
 *
 * The analytical models (Eq. 1, Eq. 2, the power and cost breakdowns)
 * mix quantities whose units are easy to confuse (watts vs kilowatts,
 * m/s vs mph). Thin wrappers keep the units explicit at API boundaries
 * while compiling down to bare doubles.
 */
#pragma once

#include <compare>

namespace sov {

/** Electrical power. Stored in watts. */
class Power
{
  public:
    constexpr Power() = default;
    static constexpr Power watts(double w) { return Power(w); }
    static constexpr Power kilowatts(double kw) { return Power(kw * 1e3); }
    static constexpr Power milliwatts(double mw) { return Power(mw * 1e-3); }
    static constexpr Power zero() { return Power(0.0); }

    constexpr double toWatts() const { return w_; }
    constexpr double toKilowatts() const { return w_ * 1e-3; }

    constexpr auto operator<=>(const Power &) const = default;
    constexpr Power operator+(Power o) const { return Power(w_ + o.w_); }
    constexpr Power operator-(Power o) const { return Power(w_ - o.w_); }
    constexpr Power operator*(double k) const { return Power(w_ * k); }
    Power &operator+=(Power o) { w_ += o.w_; return *this; }

  private:
    constexpr explicit Power(double w) : w_(w) {}
    double w_ = 0.0;
};

/** Energy. Stored in joules. */
class Energy
{
  public:
    constexpr Energy() = default;
    static constexpr Energy joules(double j) { return Energy(j); }
    static constexpr Energy millijoules(double mj) { return Energy(mj * 1e-3); }
    /** Battery capacities are quoted in kilowatt-hours. */
    static constexpr Energy
    kilowattHours(double kwh)
    {
        return Energy(kwh * 3.6e6);
    }
    static constexpr Energy zero() { return Energy(0.0); }

    constexpr double toJoules() const { return j_; }
    constexpr double toMillijoules() const { return j_ * 1e3; }
    constexpr double toKilowattHours() const { return j_ / 3.6e6; }

    constexpr auto operator<=>(const Energy &) const = default;
    constexpr Energy operator+(Energy o) const { return Energy(j_ + o.j_); }
    constexpr Energy operator-(Energy o) const { return Energy(j_ - o.j_); }
    constexpr Energy operator*(double k) const { return Energy(j_ * k); }
    Energy &operator+=(Energy o) { j_ += o.j_; return *this; }

    /** Hours this energy sustains a given continuous draw. */
    constexpr double
    hoursAt(Power p) const
    {
        return j_ / (p.toWatts() * 3600.0);
    }

  private:
    constexpr explicit Energy(double j) : j_(j) {}
    double j_ = 0.0;
};

/** Speed. Stored in meters/second. */
class Speed
{
  public:
    constexpr Speed() = default;
    static constexpr Speed metersPerSecond(double v) { return Speed(v); }
    static constexpr Speed milesPerHour(double mph) { return Speed(mph * 0.44704); }
    static constexpr Speed zero() { return Speed(0.0); }

    constexpr double toMetersPerSecond() const { return v_; }
    constexpr double toMilesPerHour() const { return v_ / 0.44704; }

    constexpr auto operator<=>(const Speed &) const = default;
    constexpr Speed operator+(Speed o) const { return Speed(v_ + o.v_); }
    constexpr Speed operator-(Speed o) const { return Speed(v_ - o.v_); }
    constexpr Speed operator*(double k) const { return Speed(v_ * k); }

  private:
    constexpr explicit Speed(double v) : v_(v) {}
    double v_ = 0.0;
};

/** Money. Stored in US dollars (the paper quotes USD throughout). */
class Money
{
  public:
    constexpr Money() = default;
    static constexpr Money dollars(double d) { return Money(d); }
    static constexpr Money zero() { return Money(0.0); }

    constexpr double toDollars() const { return d_; }

    constexpr auto operator<=>(const Money &) const = default;
    constexpr Money operator+(Money o) const { return Money(d_ + o.d_); }
    constexpr Money operator-(Money o) const { return Money(d_ - o.d_); }
    constexpr Money operator*(double k) const { return Money(d_ * k); }
    Money &operator+=(Money o) { d_ += o.d_; return *this; }

  private:
    constexpr explicit Money(double d) : d_(d) {}
    double d_ = 0.0;
};

} // namespace sov
