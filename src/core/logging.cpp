#include "core/logging.h"

#include <atomic>

namespace sov {

namespace {
std::atomic<bool> inform_enabled{true};
std::atomic<LogSink> log_sink{nullptr};

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Inform: return "info";
      case LogLevel::Warn: return "warn";
      case LogLevel::Fatal: return "fatal";
      case LogLevel::Panic: return "panic";
    }
    return "?";
}
} // namespace

namespace detail {

void
logRecord(LogLevel level, const std::string &msg, const char *file, int line)
{
    if (const LogSink sink = log_sink.load(std::memory_order_acquire))
        sink(level, msg.c_str(), file, line);
    FILE *out = (level == LogLevel::Inform || level == LogLevel::Warn)
        ? stdout : stderr;
    if (file) {
        std::fprintf(out, "[%s] %s (%s:%d)\n", levelName(level), msg.c_str(),
                     file, line);
    } else {
        std::fprintf(out, "[%s] %s\n", levelName(level), msg.c_str());
    }
    std::fflush(out);
}

} // namespace detail

void
inform(const std::string &msg)
{
    if (inform_enabled.load(std::memory_order_relaxed))
        detail::logRecord(LogLevel::Inform, msg, nullptr, 0);
}

void
warn(const std::string &msg)
{
    detail::logRecord(LogLevel::Warn, msg, nullptr, 0);
}

void
setInformEnabled(bool enabled)
{
    inform_enabled.store(enabled, std::memory_order_relaxed);
}

LogSink
setLogSink(LogSink sink)
{
    return log_sink.exchange(sink, std::memory_order_acq_rel);
}

void
fatalImpl(const std::string &msg, const char *file, int line)
{
    detail::logRecord(LogLevel::Fatal, msg, file, line);
    std::exit(1);
}

void
panicImpl(const std::string &msg, const char *file, int line)
{
    detail::logRecord(LogLevel::Panic, msg, file, line);
    std::abort();
}

} // namespace sov
