/**
 * @file
 * Runtime SIMD capability probe for the KernelBackend::Simd tier.
 *
 * The Simd kernels are compiled per-function with
 * __attribute__((target("avx2"))) (and friends), so the binary itself
 * stays runnable on a baseline x86-64 — but a vector body must only
 * be *called* when the host actually supports the instruction set.
 * detectSimdLevel() answers that question once (cached, thread-safe
 * via static init) and every Simd dispatch site routes through it.
 *
 * Two independent gates:
 *  - compile time: SOV_SIMD_ENABLED (CMake option SOV_SIMD, default
 *    ON) and an x86-64 target. When either is missing the vector
 *    bodies are not compiled at all and detectSimdLevel() reports
 *    None, so KernelBackend::Simd degrades to the Fast scalar loops.
 *  - run time: __builtin_cpu_supports, so a binary built with the
 *    tier enabled still runs (scalar) on a pre-AVX2 host.
 */
#pragma once

namespace sov {

/** Best vector instruction set usable on this host, in this build. */
enum class SimdLevel
{
    None, //!< scalar only (non-x86, SOV_SIMD=OFF, or ancient host)
    Sse2, //!< 128-bit: 4 x f32 / 2 x f64 lanes
    Avx2, //!< 256-bit: 8 x f32 / 4 x f64 lanes
};

/** Canonical lowercase name ("none" / "sse2" / "avx2"). */
const char *simdLevelName(SimdLevel level);

/** True when the SIMD tier was compiled in (SOV_SIMD=ON on x86-64). */
bool simdCompiledIn();

/**
 * Probe the host CPU once and cache the answer. Reports None whenever
 * simdCompiledIn() is false, so callers can branch on the level alone.
 */
SimdLevel detectSimdLevel();

} // namespace sov
