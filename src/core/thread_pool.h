/**
 * @file
 * Work-stealing thread pool — the repo's first threading primitive.
 *
 * Built for the fleet-scale scenario sweeps (src/fleet): thousands of
 * independent closed-loop simulations, each a few milliseconds of CPU,
 * sharded across hardware threads. Tasks are distributed round-robin
 * over per-worker deques; a worker drains its own deque from the front
 * and steals from the back of a victim's deque when it runs dry, so an
 * unlucky shard (one worker handed all the slow scenarios) cannot
 * serialize the sweep.
 *
 * Determinism contract: the pool schedules *when* a task runs, never
 * *what it computes* — tasks must not share mutable state (each fleet
 * scenario owns a forked Rng stream and writes its own result slot),
 * and then any thread count, including 1, yields bit-identical
 * results. Exceptions thrown by a task are captured into its future
 * and rethrown at get(); parallelFor() rethrows the lowest-index
 * failure so even error reporting is thread-count independent.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sov {

/** Fixed-size work-stealing task pool. */
class ThreadPool
{
  public:
    /**
     * Spawn the workers.
     * @param threads Worker count; 0 = hardware concurrency (>= 1).
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return workers_.size(); }

    /**
     * Enqueue @p task. The returned future becomes ready when the task
     * finishes; if the task throws, get() rethrows the exception.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Run body(0..count-1) across the workers and block until all
     * complete. If any invocation throws, the exception of the
     * lowest failing index is rethrown (deterministic across thread
     * counts); remaining iterations still run to completion.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** Default worker count: hardware concurrency, at least 1. */
    static std::size_t defaultThreads();

  private:
    /** One worker's deque; owner pops the front, thieves the back. */
    struct Shard
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);
    /** Pop own work or steal; true if a task was run. */
    bool runOne(std::size_t self);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> workers_;

    /** Guards sleep/wake; pending_ mutates under it so a submit racing
     *  a worker's sleep check cannot lose the wakeup. */
    std::mutex wake_mutex_;
    std::condition_variable wake_;
    std::size_t pending_ = 0; //!< queued, not yet popped
    bool stop_ = false;

    std::atomic<std::size_t> next_shard_{0};
};

} // namespace sov
