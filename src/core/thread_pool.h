/**
 * @file
 * Work-stealing thread pool — the repo's first threading primitive.
 *
 * Built for the fleet-scale scenario sweeps (src/fleet): thousands of
 * independent closed-loop simulations, each a few milliseconds of CPU,
 * sharded across hardware threads. Tasks are distributed round-robin
 * over per-worker deques; a worker drains its own deque from the front
 * and steals from the back of a victim's deque when it runs dry, so an
 * unlucky shard (one worker handed all the slow scenarios) cannot
 * serialize the sweep.
 *
 * Determinism contract: the pool schedules *when* a task runs, never
 * *what it computes* — tasks must not share mutable state (each fleet
 * scenario owns a forked Rng stream and writes its own result slot),
 * and then any thread count, including 1, yields bit-identical
 * results. Exceptions thrown by a task are captured into its future
 * and rethrown at get(); parallelFor() rethrows the lowest-index
 * failure so even error reporting is thread-count independent.
 *
 * Tagged submission (the serving layer's cancellation substrate): a
 * long-running owner (sov::serve jobs) tags its tasks with a nonzero
 * id. cancelTag() removes every still-queued task with that tag, and
 * drainTag() blocks until no queued *or running* task carries it — so
 * an owner can guarantee, before tearing its own state down, that the
 * pool holds no orphaned task that would race the teardown.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sov {

/** Fixed-size work-stealing task pool. */
class ThreadPool
{
  public:
    /**
     * Spawn the workers.
     * @param threads Worker count; 0 = hardware concurrency (>= 1).
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Drains every queued task, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::size_t numThreads() const { return workers_.size(); }

    /**
     * Enqueue @p task. The returned future becomes ready when the task
     * finishes; if the task throws, get() rethrows the exception.
     */
    std::future<void> submit(std::function<void()> task);

    /**
     * Enqueue @p task under @p tag (nonzero; 0 is reserved for
     * untagged submissions). No future: completion is tracked by the
     * tag's outstanding count — see drainTag(). The task must handle
     * its own errors; an escaping exception terminates the process.
     */
    void submitTagged(std::uint64_t tag, std::function<void()> task);

    /**
     * Remove every still-queued task carrying @p tag from the worker
     * deques (already-running tasks are not interrupted) and return
     * how many were removed. The owner decides what removal means —
     * sov::serve revokes the corresponding job shards.
     */
    std::size_t cancelTag(std::uint64_t tag);

    /**
     * Block until no queued or running task carries @p tag. Combined
     * with cancelTag() this is the shutdown handshake: cancel the
     * queued tail, drain the running remainder, then tear down the
     * state those tasks referenced — nothing can race the teardown.
     */
    void drainTag(std::uint64_t tag);

    /** Outstanding (queued + running) tasks under @p tag. */
    std::size_t taggedOutstanding(std::uint64_t tag) const;

    /**
     * Run body(0..count-1) across the workers and block until all
     * complete. If any invocation throws, the exception of the
     * lowest failing index is rethrown (deterministic across thread
     * counts); remaining iterations still run to completion.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body);

    /** Default worker count: hardware concurrency, at least 1. */
    static std::size_t defaultThreads();

  private:
    /** One queued task plus its owner tag (0 = untagged). */
    struct Entry
    {
        std::function<void()> fn;
        std::uint64_t tag = 0;
    };

    /** One worker's deque; owner pops the front, thieves the back. */
    struct Shard
    {
        std::mutex mutex;
        std::deque<Entry> tasks;
    };

    void enqueue(Entry entry);
    void finishTagged(std::uint64_t tag, std::size_t n);
    void workerLoop(std::size_t self);
    /** Pop own work or steal; true if a task was run. */
    bool runOne(std::size_t self);

    std::vector<std::unique_ptr<Shard>> shards_;
    std::vector<std::thread> workers_;

    /** Guards sleep/wake; pending_ mutates under it so a submit racing
     *  a worker's sleep check cannot lose the wakeup. Signed: a worker
     *  may pop (and count down) a task whose submit has pushed it but
     *  not yet counted it up, so the count can dip below zero
     *  transiently; the sleep predicate treats <= 0 as "no work",
     *  which is correct because the only uncounted task was already
     *  taken. (An unsigned count would wrap and spin the workers.) */
    mutable std::mutex wake_mutex_;
    std::condition_variable wake_;
    std::condition_variable drain_cv_; //!< drainTag() waiters
    std::int64_t pending_ = 0;         //!< queued, not yet popped
    /** Queued-or-running count per nonzero tag; erased at zero. */
    std::map<std::uint64_t, std::size_t> tag_outstanding_;
    bool stop_ = false;

    std::atomic<std::size_t> next_shard_{0};
};

} // namespace sov
