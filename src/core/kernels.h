/**
 * @file
 * Kernel backend selection for the perception hot path.
 *
 * Every optimized perception kernel (sliding-window stereo SAD,
 * im2col GEMM convolution, closed-form ICP accumulation, planned FFT)
 * keeps its naive scalar implementation as a reference oracle. The
 * backend switch selects between them at the algorithm-config level
 * so benchmarks, tests and the KernelExecutor-driven pipelines can
 * run either side of the comparison on the same inputs.
 *
 * Three tiers:
 *  - Reference — the naive scalar oracle. Never deleted; every other
 *    tier is gated against it.
 *  - Fast — algorithmically restructured scalar code (sliding
 *    windows, im2col, closed-form accumulation, precomputed FFT
 *    plans, FrameArena scratch).
 *  - Simd — the Fast structure with explicitly vectorized (SSE2 /
 *    AVX2) inner loops, dispatched at runtime via core/simd.h. On a
 *    host (or build: SOV_SIMD=OFF) without vector support the Simd
 *    tier silently degrades to the Fast scalar loops — safe, because
 *    every Simd loop is gated bit-identical (or documented-epsilon
 *    where vectorization reassociates a reduction) against Reference.
 *
 * Determinism contract (Fast and Simd backends): outputs depend only
 * on the inputs and the kernel configuration — never on the thread
 * count of the ThreadPool executing it. Parallel kernels partition
 * work into fixed-size blocks (config-derived, not thread-derived)
 * and reduce results in block order. bench_kernels and
 * tests/vision/test_kernels enforce this with cross-thread-count
 * fingerprints.
 */
#pragma once

#include <string>

namespace sov {

/** Which implementation of a perception kernel runs. */
enum class KernelBackend
{
    Reference, //!< naive scalar oracle
    Fast,      //!< optimized scalar (sliding-window / im2col / plan)
    Simd,      //!< Fast structure + vectorized inner loops
};

/** Canonical lowercase name ("reference" / "fast" / "simd"). */
const char *kernelBackendName(KernelBackend backend);

/** Parse a backend name; fatal on anything else. */
KernelBackend kernelBackendFromName(const std::string &name);

/**
 * The production default tier: Simd. Closed-loop stacks and sweep
 * configs start here (runtime dispatch falls back to the Fast scalar
 * loops on hosts without vector support, so the default is safe
 * everywhere); per-kernel configs that exist to *gate* the tiers
 * (StereoConfig, DetectorConfig, ...) keep Reference as their default
 * so the oracle comparisons stay explicit.
 */
KernelBackend defaultKernelBackend();

} // namespace sov
