#include "core/simd.h"

#if defined(SOV_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
#define SOV_SIMD_X86 1
#else
#define SOV_SIMD_X86 0
#endif

namespace sov {

const char *
simdLevelName(SimdLevel level)
{
    switch (level) {
    case SimdLevel::Sse2:
        return "sse2";
    case SimdLevel::Avx2:
        return "avx2";
    case SimdLevel::None:
        break;
    }
    return "none";
}

bool
simdCompiledIn()
{
    return SOV_SIMD_X86 != 0;
}

namespace {

SimdLevel
probe()
{
#if SOV_SIMD_X86
    __builtin_cpu_init();
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
    if (__builtin_cpu_supports("sse2"))
        return SimdLevel::Sse2;
#endif
    return SimdLevel::None;
}

} // namespace

SimdLevel
detectSimdLevel()
{
    static const SimdLevel level = probe();
    return level;
}

} // namespace sov
