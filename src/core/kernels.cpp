#include "core/kernels.h"

#include "core/logging.h"

namespace sov {

const char *
kernelBackendName(KernelBackend backend)
{
    switch (backend) {
    case KernelBackend::Reference:
        return "reference";
    case KernelBackend::Fast:
        return "fast";
    case KernelBackend::Simd:
        return "simd";
    }
    SOV_PANIC("unknown kernel backend");
}

KernelBackend
kernelBackendFromName(const std::string &name)
{
    if (name == "reference" || name == "ref")
        return KernelBackend::Reference;
    if (name == "fast")
        return KernelBackend::Fast;
    if (name == "simd")
        return KernelBackend::Simd;
    SOV_PANIC(("unknown kernel backend name: " + name).c_str());
}

KernelBackend
defaultKernelBackend()
{
    return KernelBackend::Simd;
}

} // namespace sov
