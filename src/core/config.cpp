#include "core/config.h"

#include <cstdlib>

#include "core/logging.h"

namespace sov {

Config
Config::fromArgs(int argc, const char *const *argv)
{
    Config cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos || eq == 0)
            continue;
        cfg.set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    return cfg;
}

void
Config::set(const std::string &key, const std::string &value)
{
    values_[key] = value;
}

bool
Config::has(const std::string &key) const
{
    return values_.count(key) != 0;
}

double
Config::getDouble(const std::string &key, double fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        SOV_FATAL("config key '" + key + "' is not a number: " + it->second);
    return v;
}

std::int64_t
Config::getInt(const std::string &key, std::int64_t fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    char *end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        SOV_FATAL("config key '" + key + "' is not an integer: " + it->second);
    return v;
}

bool
Config::getBool(const std::string &key, bool fallback) const
{
    auto it = values_.find(key);
    if (it == values_.end())
        return fallback;
    const std::string &v = it->second;
    if (v == "1" || v == "true" || v == "yes" || v == "on")
        return true;
    if (v == "0" || v == "false" || v == "no" || v == "off")
        return false;
    SOV_FATAL("config key '" + key + "' is not a boolean: " + v);
}

std::string
Config::getString(const std::string &key, const std::string &fallback) const
{
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
}

std::vector<std::string>
Config::keys() const
{
    std::vector<std::string> out;
    out.reserve(values_.size());
    for (const auto &kv : values_)
        out.push_back(kv.first);
    return out;
}

} // namespace sov
