/**
 * @file
 * Model-time primitives for the SoV simulation.
 *
 * All simulation components share a single notion of time: an integral
 * nanosecond count since simulation start. Integral ticks keep event
 * ordering exact and reproducible; helpers convert to/from seconds and
 * milliseconds for model parameters expressed in SI units.
 */
#pragma once

#include <cstdint>
#include <compare>
#include <limits>
#include <string>

namespace sov {

/** Signed duration in nanoseconds of model time. */
class Duration
{
  public:
    constexpr Duration() = default;

    /** Construct from raw nanoseconds. */
    static constexpr Duration nanos(std::int64_t ns) { return Duration(ns); }
    /** Construct from microseconds. */
    static constexpr Duration
    micros(std::int64_t us)
    {
        return Duration(us * 1000);
    }
    /** Construct from integral milliseconds. */
    static constexpr Duration
    millis(std::int64_t ms)
    {
        return Duration(ms * 1'000'000);
    }
    /** Construct from (possibly fractional) seconds. */
    static constexpr Duration
    seconds(double s)
    {
        return Duration(static_cast<std::int64_t>(s * 1e9));
    }
    /** Construct from (possibly fractional) milliseconds. */
    static constexpr Duration
    millisF(double ms)
    {
        return Duration(static_cast<std::int64_t>(ms * 1e6));
    }
    /** The zero duration. */
    static constexpr Duration zero() { return Duration(0); }
    /** Largest representable duration; used as "never". */
    static constexpr Duration
    max()
    {
        return Duration(std::numeric_limits<std::int64_t>::max());
    }

    constexpr std::int64_t ns() const { return ns_; }
    constexpr double toSeconds() const { return static_cast<double>(ns_) * 1e-9; }
    constexpr double toMillis() const { return static_cast<double>(ns_) * 1e-6; }
    constexpr double toMicros() const { return static_cast<double>(ns_) * 1e-3; }

    constexpr auto operator<=>(const Duration &) const = default;

    constexpr Duration operator+(Duration o) const { return Duration(ns_ + o.ns_); }
    constexpr Duration operator-(Duration o) const { return Duration(ns_ - o.ns_); }
    constexpr Duration operator-() const { return Duration(-ns_); }
    constexpr Duration
    operator*(double k) const
    {
        return Duration(static_cast<std::int64_t>(static_cast<double>(ns_) * k));
    }
    constexpr Duration
    operator/(std::int64_t k) const
    {
        return Duration(ns_ / k);
    }
    constexpr double operator/(Duration o) const
    {
        return static_cast<double>(ns_) / static_cast<double>(o.ns_);
    }
    Duration &operator+=(Duration o) { ns_ += o.ns_; return *this; }
    Duration &operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  private:
    constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
    std::int64_t ns_ = 0;
};

/** Absolute model time: nanoseconds since simulation start. */
class Timestamp
{
  public:
    constexpr Timestamp() = default;

    /** Construct from raw nanoseconds since simulation start. */
    static constexpr Timestamp nanos(std::int64_t ns) { return Timestamp(ns); }
    /** Construct from (possibly fractional) seconds since start. */
    static constexpr Timestamp
    seconds(double s)
    {
        return Timestamp(static_cast<std::int64_t>(s * 1e9));
    }
    /** Construct from (possibly fractional) milliseconds since start. */
    static constexpr Timestamp
    millisF(double ms)
    {
        return Timestamp(static_cast<std::int64_t>(ms * 1e6));
    }
    /** Simulation start. */
    static constexpr Timestamp origin() { return Timestamp(0); }
    /** A timestamp later than every real event. */
    static constexpr Timestamp
    never()
    {
        return Timestamp(std::numeric_limits<std::int64_t>::max());
    }

    constexpr std::int64_t ns() const { return ns_; }
    constexpr double toSeconds() const { return static_cast<double>(ns_) * 1e-9; }
    constexpr double toMillis() const { return static_cast<double>(ns_) * 1e-6; }
    constexpr bool isNever() const { return *this == never(); }

    constexpr auto operator<=>(const Timestamp &) const = default;

    constexpr Timestamp operator+(Duration d) const { return Timestamp(ns_ + d.ns()); }
    constexpr Timestamp operator-(Duration d) const { return Timestamp(ns_ - d.ns()); }
    constexpr Duration operator-(Timestamp o) const { return Duration::nanos(ns_ - o.ns_); }
    Timestamp &operator+=(Duration d) { ns_ += d.ns(); return *this; }

  private:
    constexpr explicit Timestamp(std::int64_t ns) : ns_(ns) {}
    std::int64_t ns_ = 0;
};

/** Render a duration as a human-readable string, e.g. "164.2 ms". */
inline std::string
toString(Duration d)
{
    const double ms = d.toMillis();
    if (ms >= 1000.0 || ms <= -1000.0)
        return std::to_string(ms / 1000.0) + " s";
    if (ms >= 1.0 || ms <= -1.0)
        return std::to_string(ms) + " ms";
    return std::to_string(d.toMicros()) + " us";
}

} // namespace sov
