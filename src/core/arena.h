/**
 * @file
 * FrameArena: a reusable bump allocator for per-frame kernel scratch.
 *
 * The perception hot path (sliding-window stereo tables, im2col
 * matrices) needs large short-lived buffers every frame. Heap-allocating
 * them per frame dominates small-kernel runtimes and fragments the
 * allocator; the arena instead reserves blocks once and hands out
 * pointer-bumped slices. reset() rewinds the arena without returning
 * memory to the system, so a steady-state frame performs zero system
 * allocations — systemAllocations() makes that testable.
 *
 * Not thread-safe: allocate from one thread (typically before fanning
 * work out over a ThreadPool into disjoint pre-allocated slices).
 * Allocated memory is uninitialized; types must be trivially
 * destructible because the arena never runs destructors.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <vector>

namespace sov {

/** Bump allocator with frame-granular reuse. */
class FrameArena
{
  public:
    /** @param first_block_bytes Size of the first reserved block;
     *         later blocks double until an allocation exceeds that. */
    explicit FrameArena(std::size_t first_block_bytes = 1u << 16)
        : first_block_bytes_(first_block_bytes ? first_block_bytes : 1)
    {
    }

    FrameArena(const FrameArena &) = delete;
    FrameArena &operator=(const FrameArena &) = delete;
    FrameArena(FrameArena &&) = default;
    FrameArena &operator=(FrameArena &&) = default;

    /** Rewind to empty, keeping every reserved block for reuse. */
    void reset();

    /** Return all blocks to the system (arena becomes empty). */
    void release();

    /**
     * Allocate @p bytes with the given power-of-two @p alignment.
     * Never returns nullptr (allocation failure is fatal, as
     * everywhere else in the repo). Zero-byte requests return a
     * valid pointer.
     */
    void *allocate(std::size_t bytes, std::size_t alignment);

    /** Typed allocation of @p count elements (uninitialized). */
    template <typename T>
    T *alloc(std::size_t count)
    {
        static_assert(std::is_trivially_destructible_v<T>,
                      "FrameArena never runs destructors");
        return static_cast<T *>(allocate(count * sizeof(T), alignof(T)));
    }

    /** Bytes handed out since the last reset(). */
    std::size_t bytesInUse() const;

    /** Bytes reserved from the system across all blocks. */
    std::size_t bytesReserved() const;

    /** Number of blocks currently reserved. */
    std::size_t blockCount() const { return blocks_.size(); }

    /** Lifetime count of system (new[]) allocations — constant across
     *  steady-state frames once the arena has warmed up. */
    std::size_t systemAllocations() const { return system_allocations_; }

  private:
    struct Block
    {
        std::unique_ptr<std::byte[]> data;
        std::size_t size = 0;
        std::size_t used = 0;
    };

    /** Append a fresh block of at least @p min_bytes. */
    Block &addBlock(std::size_t min_bytes);

    std::vector<Block> blocks_;
    std::size_t current_ = 0; //!< index of the block being bumped
    std::size_t first_block_bytes_;
    std::size_t system_allocations_ = 0;
};

} // namespace sov
