/**
 * @file
 * Minimal typed key-value configuration store.
 *
 * Examples and benches accept "key=value" command-line overrides so
 * parameter sweeps don't require recompilation.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sov {

/** String-keyed configuration with typed accessors and defaults. */
class Config
{
  public:
    Config() = default;

    /** Parse "key=value" tokens (e.g. from argv); others are ignored. */
    static Config fromArgs(int argc, const char *const *argv);

    /** Set a raw string value, overwriting any previous one. */
    void set(const std::string &key, const std::string &value);

    bool has(const std::string &key) const;

    /** Typed getters returning @p fallback when the key is absent.
     *  A present-but-malformed value is a user error (fatal). */
    double getDouble(const std::string &key, double fallback) const;
    std::int64_t getInt(const std::string &key, std::int64_t fallback) const;
    bool getBool(const std::string &key, bool fallback) const;
    std::string getString(const std::string &key,
                          const std::string &fallback) const;

    /** All keys, sorted (for help/debug dumps). */
    std::vector<std::string> keys() const;

  private:
    std::map<std::string, std::string> values_;
};

} // namespace sov
