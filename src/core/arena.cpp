#include "core/arena.h"

#include <algorithm>
#include <cstdint>

#include "core/logging.h"

namespace sov {

void
FrameArena::reset()
{
    for (Block &b : blocks_)
        b.used = 0;
    current_ = 0;
}

void
FrameArena::release()
{
    blocks_.clear();
    current_ = 0;
}

FrameArena::Block &
FrameArena::addBlock(std::size_t min_bytes)
{
    std::size_t size = blocks_.empty() ? first_block_bytes_
                                       : blocks_.back().size * 2;
    size = std::max(size, min_bytes);
    Block b;
    b.data = std::make_unique<std::byte[]>(size);
    b.size = size;
    ++system_allocations_;
    blocks_.push_back(std::move(b));
    return blocks_.back();
}

void *
FrameArena::allocate(std::size_t bytes, std::size_t alignment)
{
    SOV_ASSERT(alignment > 0 &&
               (alignment & (alignment - 1)) == 0); // power of two

    // Find (or create) a block with room, starting from the current
    // one; blocks before current_ are already full for this frame.
    for (std::size_t i = current_; i < blocks_.size(); ++i) {
        Block &b = blocks_[i];
        const std::uintptr_t addr =
            reinterpret_cast<std::uintptr_t>(b.data.get()) + b.used;
        const std::size_t pad =
            (alignment - addr % alignment) % alignment;
        if (b.used + pad + bytes <= b.size) {
            current_ = i;
            b.used += pad;
            void *p = b.data.get() + b.used;
            b.used += bytes;
            return p;
        }
    }
    Block &b = addBlock(bytes + alignment);
    const std::uintptr_t addr =
        reinterpret_cast<std::uintptr_t>(b.data.get());
    const std::size_t pad = (alignment - addr % alignment) % alignment;
    b.used = pad + bytes;
    current_ = blocks_.size() - 1;
    return b.data.get() + pad;
}

std::size_t
FrameArena::bytesInUse() const
{
    std::size_t n = 0;
    for (const Block &b : blocks_)
        n += b.used;
    return n;
}

std::size_t
FrameArena::bytesReserved() const
{
    std::size_t n = 0;
    for (const Block &b : blocks_)
        n += b.size;
    return n;
}

} // namespace sov
