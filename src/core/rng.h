/**
 * @file
 * Deterministic random number generation for reproducible simulation.
 *
 * Every stochastic component receives its own Rng forked from a master
 * seed, so adding a component never perturbs the random stream of the
 * others. The generator is SplitMix64-seeded xoshiro256++ — fast, high
 * quality, and trivially portable.
 */
#pragma once

#include <cstdint>
#include <string>

namespace sov {

/** A deterministic pseudo-random stream. */
class Rng
{
  public:
    /** Construct from a 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x5eed5eedULL);

    /**
     * Fork a statistically independent child stream.
     * @param tag Distinguishes children forked from the same parent;
     *            the same (parent seed, tag) pair always yields the
     *            same child stream.
     */
    Rng fork(const std::string &tag) const;

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal via Box–Muller (cached pair). */
    double gaussian();

    /** Normal with mean @p mu and standard deviation @p sigma. */
    double gaussian(double mu, double sigma);

    /** Exponential with rate lambda (mean 1/lambda). */
    double exponential(double lambda);

    /** Bernoulli trial with success probability p. */
    bool bernoulli(double p);

    /**
     * Log-normal latency jitter: returns a value whose median is
     * @p median and whose spread is controlled by @p sigma_log (the
     * standard deviation of the underlying normal). Used to model the
     * heavy-tailed software stack delays of Sec. VI-A.
     */
    double logNormal(double median, double sigma_log);

  private:
    std::uint64_t s_[4];
    bool has_cached_gauss_ = false;
    double cached_gauss_ = 0.0;
};

} // namespace sov
