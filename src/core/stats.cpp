#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/logging.h"

namespace sov {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
PercentileBuffer::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

void
PercentileBuffer::ensureSorted()
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
PercentileBuffer::percentile(double p)
{
    SOV_ASSERT(p >= 0.0 && p <= 100.0);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0)
{
    SOV_ASSERT(bins >= 1);
    SOV_ASSERT(hi > lo);
}

void
Histogram::add(double x, std::uint64_t weight)
{
    double idx = (x - lo_) / width_;
    std::size_t bin;
    if (idx < 0.0) {
        bin = 0;
    } else if (idx >= static_cast<double>(counts_.size())) {
        bin = counts_.size() - 1;
    } else {
        bin = static_cast<std::size_t>(idx);
    }
    counts_[bin] += weight;
    total_ += weight;
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + static_cast<double>(i) * width_;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        os << binLow(i) << ".." << binLow(i) + width_ << ": "
           << counts_[i] << "\n";
    }
    return os.str();
}

} // namespace sov
