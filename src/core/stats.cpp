#include "core/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "core/logging.h"

namespace sov {

void
RunningStats::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

void
RunningStats::merge(const RunningStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(other.n_);
    const double delta = other.mean_ - mean_;
    const double nt = na + nb;
    mean_ += delta * nb / nt;
    m2_ += other.m2_ + delta * delta * na * nb / nt;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    n_ += other.n_;
}

double
RunningStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
PercentileBuffer::mean() const
{
    if (samples_.empty())
        return 0.0;
    double s = 0.0;
    for (double x : samples_)
        s += x;
    return s / static_cast<double>(samples_.size());
}

void
PercentileBuffer::ensureSorted()
{
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
}

double
PercentileBuffer::percentile(double p)
{
    SOV_ASSERT(p >= 0.0 && p <= 100.0);
    if (samples_.empty())
        return 0.0;
    ensureSorted();
    if (samples_.size() == 1)
        return samples_.front();
    const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(lo);
    if (lo + 1 >= samples_.size())
        return samples_.back();
    return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

namespace {
/** Values below this are indistinguishable from zero in the sketch. */
constexpr double kDigestMinValue = 1e-12;
/** Reserved bucket index for the zero/sub-minimum bucket. */
constexpr std::int32_t kZeroBucket =
    std::numeric_limits<std::int32_t>::min();
} // namespace

QuantileDigest::QuantileDigest(double relative_accuracy)
    : alpha_(relative_accuracy),
      log_gamma_(std::log((1.0 + relative_accuracy) /
                          (1.0 - relative_accuracy)))
{
    SOV_ASSERT(relative_accuracy > 0.0 && relative_accuracy < 1.0);
}

std::int32_t
QuantileDigest::bucketIndex(double x) const
{
    if (!(x >= kDigestMinValue)) // negatives, zeros, NaN -> zero bucket
        return kZeroBucket;
    return static_cast<std::int32_t>(std::ceil(std::log(x) / log_gamma_));
}

double
QuantileDigest::bucketValue(std::int32_t index) const
{
    if (index == kZeroBucket)
        return 0.0;
    // Midpoint of (gamma^(i-1), gamma^i] in relative terms: within
    // alpha of every value that maps to bucket i.
    const double gamma_i = std::exp(static_cast<double>(index) * log_gamma_);
    return 2.0 * gamma_i / (1.0 + std::exp(log_gamma_));
}

void
QuantileDigest::add(double x, std::uint64_t weight)
{
    if (weight == 0)
        return;
    buckets_[bucketIndex(x)] += weight;
    count_ += weight;
}

void
QuantileDigest::merge(const QuantileDigest &other)
{
    SOV_ASSERT(alpha_ == other.alpha_);
    for (const auto &[index, weight] : other.buckets_)
        buckets_[index] += weight;
    count_ += other.count_;
}

double
QuantileDigest::quantile(double q) const
{
    SOV_ASSERT(q >= 0.0 && q <= 1.0);
    if (count_ == 0)
        return 0.0;
    // 1-based rank of the requested quantile.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_)));
    if (rank == 0)
        rank = 1;
    std::uint64_t seen = 0;
    for (const auto &[index, weight] : buckets_) {
        seen += weight;
        if (seen >= rank)
            return bucketValue(index);
    }
    return bucketValue(buckets_.rbegin()->first); // unreachable
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0)
{
    SOV_ASSERT(bins >= 1);
    SOV_ASSERT(hi > lo);
}

void
Histogram::add(double x, std::uint64_t weight)
{
    double idx = (x - lo_) / width_;
    std::size_t bin;
    if (idx < 0.0) {
        bin = 0;
    } else if (idx >= static_cast<double>(counts_.size())) {
        bin = counts_.size() - 1;
    } else {
        bin = static_cast<std::size_t>(idx);
    }
    counts_[bin] += weight;
    total_ += weight;
}

double
Histogram::binCenter(std::size_t i) const
{
    return lo_ + (static_cast<double>(i) + 0.5) * width_;
}

double
Histogram::binLow(std::size_t i) const
{
    return lo_ + static_cast<double>(i) * width_;
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        os << binLow(i) << ".." << binLow(i) + width_ << ": "
           << counts_[i] << "\n";
    }
    return os.str();
}

} // namespace sov
