#include "core/thread_pool.h"

#include <utility>

#include "core/logging.h"

namespace sov {

std::size_t
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreads();
    shards_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        shards_.push_back(std::make_unique<Shard>());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(Entry entry)
{
    const std::size_t shard =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    {
        std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
        shards_[shard]->tasks.push_back(std::move(entry));
    }
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        ++pending_;
    }
    wake_.notify_one();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> future = packaged->get_future();
    enqueue(Entry{[packaged] { (*packaged)(); }, 0});
    return future;
}

void
ThreadPool::submitTagged(std::uint64_t tag, std::function<void()> task)
{
    SOV_ASSERT(tag != 0);
    // Count the task up *before* it becomes poppable so drainTag()
    // can never observe a moment where the task exists but is not
    // reflected in the outstanding count.
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        ++tag_outstanding_[tag];
    }
    enqueue(Entry{std::move(task), tag});
}

std::size_t
ThreadPool::cancelTag(std::uint64_t tag)
{
    SOV_ASSERT(tag != 0);
    std::size_t removed = 0;
    for (const std::unique_ptr<Shard> &shard : shards_) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        auto &q = shard->tasks;
        for (auto it = q.begin(); it != q.end();) {
            if (it->tag == tag) {
                it = q.erase(it);
                ++removed;
            } else {
                ++it;
            }
        }
    }
    if (removed > 0) {
        {
            std::lock_guard<std::mutex> lock(wake_mutex_);
            pending_ -= static_cast<std::int64_t>(removed);
        }
        finishTagged(tag, removed);
    }
    return removed;
}

void
ThreadPool::finishTagged(std::uint64_t tag, std::size_t n)
{
    bool drained = false;
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        auto it = tag_outstanding_.find(tag);
        SOV_ASSERT(it != tag_outstanding_.end() && it->second >= n);
        it->second -= n;
        if (it->second == 0) {
            tag_outstanding_.erase(it);
            drained = true;
        }
    }
    if (drained)
        drain_cv_.notify_all();
}

void
ThreadPool::drainTag(std::uint64_t tag)
{
    std::unique_lock<std::mutex> lock(wake_mutex_);
    drain_cv_.wait(lock, [this, tag] {
        return tag_outstanding_.find(tag) == tag_outstanding_.end();
    });
}

std::size_t
ThreadPool::taggedOutstanding(std::uint64_t tag) const
{
    std::lock_guard<std::mutex> lock(wake_mutex_);
    const auto it = tag_outstanding_.find(tag);
    return it == tag_outstanding_.end() ? 0 : it->second;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(submit([&body, i] { body(i); }));

    // Wait for everything, then rethrow the lowest-index failure so
    // the surfaced error does not depend on completion order.
    std::exception_ptr first;
    for (std::future<void> &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

bool
ThreadPool::runOne(std::size_t self)
{
    Entry entry;
    {
        Shard &own = *shards_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            entry = std::move(own.tasks.front());
            own.tasks.pop_front();
        }
    }
    if (!entry.fn) {
        // Steal from the back of the first non-empty victim.
        for (std::size_t off = 1; off < shards_.size() && !entry.fn;
             ++off) {
            Shard &victim = *shards_[(self + off) % shards_.size()];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                entry = std::move(victim.tasks.back());
                victim.tasks.pop_back();
            }
        }
    }
    if (!entry.fn)
        return false;
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --pending_;
    }
    entry.fn(); // packaged_task path: exceptions land in the future
    if (entry.tag != 0)
        finishTagged(entry.tag, 1);
    return true;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        if (runOne(self))
            continue;
        std::unique_lock<std::mutex> lock(wake_mutex_);
        wake_.wait(lock, [this] { return stop_ || pending_ > 0; });
        if (stop_ && pending_ <= 0)
            return;
    }
}

} // namespace sov
