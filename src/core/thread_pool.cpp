#include "core/thread_pool.h"

#include <utility>

namespace sov {

std::size_t
ThreadPool::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    if (threads == 0)
        threads = defaultThreads();
    shards_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        shards_.push_back(std::make_unique<Shard>());
    workers_.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

std::future<void>
ThreadPool::submit(std::function<void()> task)
{
    auto packaged = std::make_shared<std::packaged_task<void()>>(
        std::move(task));
    std::future<void> future = packaged->get_future();

    const std::size_t shard =
        next_shard_.fetch_add(1, std::memory_order_relaxed) % shards_.size();
    {
        std::lock_guard<std::mutex> lock(shards_[shard]->mutex);
        shards_[shard]->tasks.emplace_back(
            [packaged] { (*packaged)(); });
    }
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        ++pending_;
    }
    wake_.notify_one();
    return future;
}

void
ThreadPool::parallelFor(std::size_t count,
                        const std::function<void(std::size_t)> &body)
{
    std::vector<std::future<void>> futures;
    futures.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        futures.push_back(submit([&body, i] { body(i); }));

    // Wait for everything, then rethrow the lowest-index failure so
    // the surfaced error does not depend on completion order.
    std::exception_ptr first;
    for (std::future<void> &f : futures) {
        try {
            f.get();
        } catch (...) {
            if (!first)
                first = std::current_exception();
        }
    }
    if (first)
        std::rethrow_exception(first);
}

bool
ThreadPool::runOne(std::size_t self)
{
    std::function<void()> task;
    {
        Shard &own = *shards_[self];
        std::lock_guard<std::mutex> lock(own.mutex);
        if (!own.tasks.empty()) {
            task = std::move(own.tasks.front());
            own.tasks.pop_front();
        }
    }
    if (!task) {
        // Steal from the back of the first non-empty victim.
        for (std::size_t off = 1; off < shards_.size() && !task; ++off) {
            Shard &victim = *shards_[(self + off) % shards_.size()];
            std::lock_guard<std::mutex> lock(victim.mutex);
            if (!victim.tasks.empty()) {
                task = std::move(victim.tasks.back());
                victim.tasks.pop_back();
            }
        }
    }
    if (!task)
        return false;
    {
        std::lock_guard<std::mutex> lock(wake_mutex_);
        --pending_;
    }
    task(); // packaged_task: exceptions land in the future
    return true;
}

void
ThreadPool::workerLoop(std::size_t self)
{
    for (;;) {
        if (runOne(self))
            continue;
        std::unique_lock<std::mutex> lock(wake_mutex_);
        wake_.wait(lock, [this] { return stop_ || pending_ > 0; });
        if (stop_ && pending_ == 0)
            return;
    }
}

} // namespace sov
