/**
 * @file
 * Streaming statistics, percentile buffers, and histograms used by the
 * latency/energy characterization benches (Figs. 3, 4a, 10).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace sov {

/** Welford streaming mean/variance plus min/max. */
class RunningStats
{
  public:
    /** Add one observation. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const RunningStats &other);

    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /** Sample variance (n-1 denominator); 0 for fewer than 2 samples. */
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return mean_ * static_cast<double>(n_); }

  private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Stores every sample to answer arbitrary percentile queries.
 * Used for the best/mean/p99 latency characterization of Fig. 10a.
 */
class PercentileBuffer
{
  public:
    void add(double x) { samples_.push_back(x); sorted_ = false; }
    std::size_t count() const { return samples_.size(); }
    double mean() const;
    double min() { return percentile(0.0); }
    double max() { return percentile(100.0); }

    /**
     * Linear-interpolated percentile.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p);

    const std::vector<double> &samples() const { return samples_; }

  private:
    void ensureSorted();
    std::vector<double> samples_;
    bool sorted_ = false;
};

/**
 * Mergeable quantile sketch over non-negative samples (DDSketch-style
 * logarithmic buckets with relative-accuracy guarantee).
 *
 * Samples land in geometric buckets index = ceil(log_gamma(x)) with
 * gamma = (1+a)/(1-a); any reported quantile is within relative error
 * a of a true sample value. State is integer bucket counts, so
 * merge() is pure count addition: commutative, associative, and
 * bit-identical regardless of merge order or sharding — the property
 * the fleet layer relies on to aggregate thousands of scenario
 * digests from any number of worker threads deterministically.
 *
 * Negative samples are clamped into the zero bucket (the fleet feeds
 * latencies, gaps, and fractions, all non-negative).
 */
class QuantileDigest
{
  public:
    /** @param relative_accuracy Quantile relative error bound in (0,1). */
    explicit QuantileDigest(double relative_accuracy = 0.01);

    /** Add @p weight samples of value @p x. */
    void add(double x, std::uint64_t weight = 1);

    /**
     * Fold @p other into this digest (order-independent).
     * Both digests must use the same relative accuracy.
     */
    void merge(const QuantileDigest &other);

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    /**
     * Value at quantile @p q in [0, 1] (0.5 = median, 0.99 = p99),
     * within the configured relative accuracy; 0 for an empty digest.
     */
    double quantile(double q) const;

    double relativeAccuracy() const { return alpha_; }

    /** Non-empty buckets, ascending by index (zero bucket = INT32_MIN). */
    const std::map<std::int32_t, std::uint64_t> &buckets() const
    {
        return buckets_;
    }

  private:
    std::int32_t bucketIndex(double x) const;
    double bucketValue(std::int32_t index) const;

    double alpha_;
    double log_gamma_;
    std::map<std::int32_t, std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
};

/** Fixed-width linear-bin histogram over [lo, hi). */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower edge of the first bin.
     * @param hi Exclusive upper edge of the last bin.
     * @param bins Number of equal-width bins; must be >= 1.
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Add a sample; out-of-range samples land in the edge bins. */
    void add(double x, std::uint64_t weight = 1);

    std::size_t numBins() const { return counts_.size(); }
    std::uint64_t binCount(std::size_t i) const { return counts_.at(i); }
    /** Center of bin i. */
    double binCenter(std::size_t i) const;
    /** Lower edge of bin i. */
    double binLow(std::size_t i) const;
    std::uint64_t totalCount() const { return total_; }

    /** Render as "low..high: count" lines for bench output. */
    std::string toString() const;

  private:
    double lo_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace sov
