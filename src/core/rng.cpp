#include "core/rng.h"

#include <cmath>

#include "core/logging.h"

namespace sov {

namespace {

/** SplitMix64; used only to expand seeds into generator state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

/** FNV-1a over a string, for fork tags. */
std::uint64_t
hashTag(const std::string &tag)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (unsigned char c : tag) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitMix64(x);
}

Rng
Rng::fork(const std::string &tag) const
{
    // Mix the current state (not advanced) with the tag hash so forks
    // are independent of each other and of the parent's future output.
    std::uint64_t mixed = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^ s_[3];
    return Rng(mixed ^ hashTag(tag));
}

std::uint64_t
Rng::next()
{
    // xoshiro256++
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high bits -> double in [0,1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    SOV_ASSERT(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) // full 64-bit range
        return static_cast<std::int64_t>(next());
    return lo + static_cast<std::int64_t>(next() % span);
}

double
Rng::gaussian()
{
    if (has_cached_gauss_) {
        has_cached_gauss_ = false;
        return cached_gauss_;
    }
    // Box–Muller; u1 in (0,1] to avoid log(0).
    double u1 = 1.0 - uniform();
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cached_gauss_ = r * std::sin(theta);
    has_cached_gauss_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mu, double sigma)
{
    return mu + sigma * gaussian();
}

double
Rng::exponential(double lambda)
{
    SOV_ASSERT(lambda > 0.0);
    return -std::log(1.0 - uniform()) / lambda;
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

double
Rng::logNormal(double median, double sigma_log)
{
    SOV_ASSERT(median > 0.0);
    return median * std::exp(sigma_log * gaussian());
}

} // namespace sov
