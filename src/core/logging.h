/**
 * @file
 * gem5-style status and error reporting.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture state.
 * fatal()  — the caller supplied an impossible configuration; exits(1).
 * warn()   — something is degraded but simulation continues.
 * inform() — plain status output.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace sov {

/** Severity of a log record. */
enum class LogLevel { Inform, Warn, Fatal, Panic };

namespace detail {
/** Emit one formatted log record to stderr (Fatal/Panic) or stdout. */
void logRecord(LogLevel level, const std::string &msg,
               const char *file, int line);
} // namespace detail

/** Print an informational message. */
void inform(const std::string &msg);

/** Print a warning; the simulation continues. */
void warn(const std::string &msg);

/** Suppress or re-enable inform() output (benches want clean tables). */
void setInformEnabled(bool enabled);

/**
 * Structured log sink: observes every record (level, message, source
 * location) before the default stream write. Fatal/Panic records are
 * the last thing a dying process produces, so sinks must tolerate
 * being called on the abort path (the obs layer uses this to land a
 * final instant event in the active TraceRecorder before the process
 * dies). @p file is nullptr for records without a source location.
 * A plain function pointer (not std::function) so installing a sink
 * never allocates and the panic path stays re-entrancy-safe.
 */
using LogSink = void (*)(LogLevel level, const char *msg,
                         const char *file, int line);

/** Install a process-wide sink (nullptr uninstalls); returns the
 *  previously installed sink. */
LogSink setLogSink(LogSink sink);

[[noreturn]] void fatalImpl(const std::string &msg, const char *file, int line);
[[noreturn]] void panicImpl(const std::string &msg, const char *file, int line);

} // namespace sov

/** User error: configuration/arguments make it impossible to continue. */
#define SOV_FATAL(msg) ::sov::fatalImpl((msg), __FILE__, __LINE__)

/** Library bug: a condition that must never happen regardless of input. */
#define SOV_PANIC(msg) ::sov::panicImpl((msg), __FILE__, __LINE__)

/** Assert an internal invariant; panics with the condition text on failure. */
#define SOV_ASSERT(cond)                                                    \
    do {                                                                    \
        if (!(cond))                                                        \
            ::sov::panicImpl("assertion failed: " #cond, __FILE__,          \
                             __LINE__);                                     \
    } while (0)
