/**
 * @file
 * Kernelized-correlation-filter visual tracker (Table III: KCF).
 *
 * The frequency-domain correlation tracker used as the baseline when
 * Radar signals are unstable (Sec. IV). Linear-kernel KCF: a ridge-
 * regression filter trained against a Gaussian response, evaluated and
 * updated entirely with 2-D FFTs, with an online learning rate.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "math/fft.h"
#include "vision/image.h"

namespace sov {

/** KCF parameters. */
struct KcfConfig
{
    std::size_t window = 64;     //!< search window edge (power of two)
    double sigma = 2.0;          //!< Gaussian target bandwidth (px)
    double lambda = 1e-4;        //!< ridge regularization
    double learning_rate = 0.08; //!< online model update factor
    double psr_threshold = 4.0;  //!< peak-to-sidelobe quality gate
};

/** Tracker state after an update. */
struct KcfStatus
{
    double x = 0.0;       //!< tracked center (pixels)
    double y = 0.0;
    double psr = 0.0;     //!< peak-to-sidelobe ratio (quality)
    bool confident = false;
};

/** Linear-kernel KCF / DCF tracker. */
class KcfTracker
{
  public:
    explicit KcfTracker(const KcfConfig &config = {});

    /** (Re)initialize on a target centered at (x, y). */
    void init(const Image &frame, double x, double y);

    /**
     * Track into a new frame; searches around the last position and
     * updates the model when the response is confident.
     */
    KcfStatus update(const Image &frame);

    bool initialized() const { return initialized_; }
    double x() const { return x_; }
    double y() const { return y_; }

  private:
    /** Windowed, zero-mean patch centered at (cx, cy) as a spectrum. */
    std::vector<Complex> patchSpectrum(const Image &frame, double cx,
                                       double cy) const;

    KcfConfig config_;
    std::vector<double> hann_;       //!< 2-D Hann window (w*w)
    std::vector<Complex> target_fft_; //!< Gaussian label spectrum
    std::vector<Complex> numerator_;
    std::vector<Complex> denominator_;
    double x_ = 0.0;
    double y_ = 0.0;
    bool initialized_ = false;
};

} // namespace sov
