/**
 * @file
 * Kernelized-correlation-filter visual tracker (Table III: KCF).
 *
 * The frequency-domain correlation tracker used as the baseline when
 * Radar signals are unstable (Sec. IV). Linear-kernel KCF: a ridge-
 * regression filter trained against a Gaussian response, evaluated and
 * updated entirely with 2-D FFTs, with an online learning rate.
 */
#pragma once

#include <cstddef>
#include <vector>

#include "core/kernels.h"
#include "core/simd.h"
#include "math/fft.h"
#include "math/fft_plan.h"
#include "vision/image.h"

namespace sov {

/** KCF parameters. */
struct KcfConfig
{
    std::size_t window = 64;     //!< search window edge (power of two)
    double sigma = 2.0;          //!< Gaussian target bandwidth (px)
    double lambda = 1e-4;        //!< ridge regularization
    double learning_rate = 0.08; //!< online model update factor
    double psr_threshold = 4.0;  //!< peak-to-sidelobe quality gate
    /**
     * Implementation tier (core/kernels.h). Reference runs every
     * transform through the ad-hoc fft2d(); Fast routes them through a
     * precomputed Fft2dPlan with reused patch/response buffers, so
     * steady-state frames perform no heap allocation; Simd additionally
     * runs the butterfly loops vectorized. All three tiers are
     * bit-identical (the plan replays the ad-hoc twiddle rounding and
     * the vector butterflies round like the scalar ones).
     */
    KernelBackend backend = KernelBackend::Reference;
};

/** Tracker state after an update. */
struct KcfStatus
{
    double x = 0.0;       //!< tracked center (pixels)
    double y = 0.0;
    double psr = 0.0;     //!< peak-to-sidelobe ratio (quality)
    bool confident = false;
};

/** Linear-kernel KCF / DCF tracker. */
class KcfTracker
{
  public:
    explicit KcfTracker(const KcfConfig &config = {});

    /** (Re)initialize on a target centered at (x, y). */
    void init(const Image &frame, double x, double y);

    /**
     * Track into a new frame; searches around the last position and
     * updates the model when the response is confident.
     */
    KcfStatus update(const Image &frame);

    bool initialized() const { return initialized_; }
    double x() const { return x_; }
    double y() const { return y_; }

  private:
    /** Windowed, zero-mean patch centered at (cx, cy), written as a
     *  spectrum into @p out (resized to window²). */
    void patchSpectrumInto(const Image &frame, double cx, double cy,
                           std::vector<Complex> &out);

    /** Forward/inverse 2-D transform via the configured tier. */
    void transform(std::vector<Complex> &data, bool inverse);

    KcfConfig config_;
    SimdLevel level_ = SimdLevel::None; //!< resolved once from backend
    Fft2dPlan plan_;                 //!< planned FFT for Fast/Simd
    std::vector<double> hann_;       //!< 2-D Hann window (w*w)
    std::vector<Complex> target_fft_; //!< Gaussian label spectrum
    std::vector<Complex> numerator_;
    std::vector<Complex> denominator_;
    // Scratch reused across frames so Fast/Simd updates are
    // allocation-free in steady state.
    std::vector<double> values_;
    std::vector<Complex> f_;
    std::vector<Complex> f_new_;
    std::vector<Complex> response_;
    double x_ = 0.0;
    double y_ = 0.0;
    bool initialized_ = false;
};

} // namespace sov
