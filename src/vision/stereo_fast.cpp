/**
 * @file
 * Fast backend of the ELAS-style stereo matcher.
 *
 * The reference oracle recomputes the full (2r+1)^2 SAD window for
 * every (pixel, disparity) pair. This backend restructures the same
 * computation around a per-row SAD table W_d(x):
 *
 *  - column sums: colsum_d(x, y) = sum_dy |L(x, y+dy) - R(x-d, y+dy)|
 *    are maintained incrementally down the rows of a block (add the
 *    entering row, subtract the leaving one — O(1) per row per column
 *    instead of O(2r+1));
 *  - window sums: W_d(x) slides along x (add the entering column sum,
 *    subtract the leaving one — O(1) per pixel step);
 *  - one table serves everything: the dense search reads W_d(x), the
 *    subpixel parabola reads its d +/- 1 neighbors, and the left-right
 *    check is the identity SAD_right(x_r, d) == W_d(x_r + d) — the
 *    reference recomputes all three from scratch.
 *
 * Parallelism & determinism: rows are processed in fixed-size blocks
 * (StereoConfig::row_block) fanned out over a core::ThreadPool. The
 * partitioning depends only on the config, every block starts its
 * column sums fresh, blocks write disjoint output rows, and the valid
 * -pixel reduction runs in block order — so the output is bit-identical
 * for any thread count (including none). Scratch slabs are carved out
 * of the matcher's FrameArena before the fan-out; steady-state frames
 * perform no scratch allocation.
 *
 * Numerics: the table accumulates in float. For images whose
 * intensities are multiples of 1/256 (8-bit sensor data) every partial
 * sum is exactly representable, so the fast output is bit-identical to
 * the reference backend; tests/vision/test_kernels.cpp and
 * bench_kernels gate on that.
 */
#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <vector>

#include "core/logging.h"
#include "core/simd.h"
#include "core/thread_pool.h"
#include "math/simd_kernels.h"
#include "vision/stereo.h"

namespace sov {

namespace {

/** Geometry shared by every helper below. */
struct FastParams
{
    int w = 0;    //!< image width
    int h = 0;    //!< image height
    int r = 0;    //!< SAD window radius
    int D = 0;    //!< largest tabulated disparity (max_disparity + margin)
    int span = 0; //!< padded column range: w + 2r
    int n = 0;    //!< window element count (2r+1)^2
    /** Vector level of the SAD inner loop (None for the Fast tier). */
    SimdLevel simd = SimdLevel::None;
};

/** Per-task scratch, carved from the arena before the fan-out. */
struct Scratch
{
    float *colsum; //!< (D+1) x span column sums
    float *sad;    //!< (D+1) x w window sums W_d(x)
    float *pad_l;  //!< span: left row, border-replicated
    float *pad_r;  //!< span + D: right row, border-replicated
};

std::size_t
scratchFloats(const FastParams &p)
{
    const auto d1 = static_cast<std::size_t>(p.D + 1);
    return d1 * static_cast<std::size_t>(p.span) +
        d1 * static_cast<std::size_t>(p.w) +
        static_cast<std::size_t>(p.span) +
        static_cast<std::size_t>(p.span + p.D);
}

Scratch
carveScratch(const FastParams &p, float *slab)
{
    const auto d1 = static_cast<std::size_t>(p.D + 1);
    Scratch s;
    s.colsum = slab;
    s.sad = s.colsum + d1 * static_cast<std::size_t>(p.span);
    s.pad_l = s.sad + d1 * static_cast<std::size_t>(p.w);
    s.pad_r = s.pad_l + static_cast<std::size_t>(p.span);
    return s;
}

/** Fill the border-replicated row buffers for image row @p yc. */
void
fillPaddedRows(const Image &left, const Image &right, const FastParams &p,
               int yc, const Scratch &s)
{
    const float *lrow =
        &left.data()[static_cast<std::size_t>(yc) * left.width()];
    const float *rrow =
        &right.data()[static_cast<std::size_t>(yc) * right.width()];
    for (int xs = 0; xs < p.span; ++xs)
        s.pad_l[xs] = lrow[std::clamp(xs - p.r, 0, p.w - 1)];
    for (int j = 0; j < p.span + p.D; ++j)
        s.pad_r[j] = rrow[std::clamp(j - p.r - p.D, 0, p.w - 1)];
}

/**
 * colsum_d(x) (+/-)= |L(x, yc) - R(x-d, yc)| for the padded row — the
 * SAD hot loop. Dispatches through the shared Simd-tier primitive:
 * p.simd == None runs its scalar body (the Fast tier), SSE2/AVX2 the
 * vector ones, all bit-identical per element.
 */
template <bool Add>
void
accumulateAdRow(const FastParams &p, const Scratch &s)
{
    const auto span = static_cast<std::size_t>(p.span);
    for (int d = 0; d <= p.D; ++d) {
        float *cs = s.colsum + static_cast<std::size_t>(d) * p.span;
        const float *b = s.pad_r + (p.D - d);
        if (Add)
            simd::absDiffAdd(cs, s.pad_l, b, span, p.simd);
        else
            simd::absDiffSub(cs, s.pad_l, b, span, p.simd);
    }
}

/** Column sums of row @p y0, built from scratch. */
void
buildColsums(const Image &left, const Image &right, const FastParams &p,
             int y0, const Scratch &s)
{
    std::fill(s.colsum,
              s.colsum + static_cast<std::size_t>(p.D + 1) * p.span,
              0.0f);
    for (int dy = -p.r; dy <= p.r; ++dy) {
        fillPaddedRows(left, right, p, std::clamp(y0 + dy, 0, p.h - 1), s);
        accumulateAdRow<true>(p, s);
    }
}

/** Slide the column sums from row y-1 to row y. */
void
advanceColsums(const Image &left, const Image &right, const FastParams &p,
               int y, const Scratch &s)
{
    const int enter = std::clamp(y + p.r, 0, p.h - 1);
    const int leave = std::clamp(y - 1 - p.r, 0, p.h - 1);
    if (enter == leave)
        return; // both clamped onto the same border row: no net change
    fillPaddedRows(left, right, p, enter, s);
    accumulateAdRow<true>(p, s);
    fillPaddedRows(left, right, p, leave, s);
    accumulateAdRow<false>(p, s);
}

/** Window sums W_d(x) of the current row via sliding window. */
void
windowSums(const FastParams &p, const Scratch &s)
{
    const int win = 2 * p.r + 1;
    for (int d = 0; d <= p.D; ++d) {
        const float *cs = s.colsum + static_cast<std::size_t>(d) * p.span;
        float *srow = s.sad + static_cast<std::size_t>(d) * p.w;
        float acc = 0.0f;
        for (int i = 0; i < win; ++i)
            acc += cs[i];
        for (int x = 0; x < p.w; ++x) {
            srow[x] = acc;
            if (x + 1 < p.w)
                acc += cs[x + win] - cs[x];
        }
    }
}

/**
 * Table variant of StereoMatcher::matchPixel: identical accept logic,
 * division and subpixel parabola, reading W_d(x) instead of
 * recomputing windows.
 */
double
tableMatchPixel(const FastParams &p, const Scratch &s, double max_sad,
                int x, int d_lo, int d_hi)
{
    d_lo = std::max(d_lo, 0);
    d_hi = std::min(d_hi, x - p.r); // right window must stay in-image
    if (d_hi < d_lo)
        return -1.0;
    SOV_ASSERT(d_hi <= p.D);

    double best_sad = 1e18;
    int best_d = -1;
    for (int d = d_lo; d <= d_hi; ++d) {
        const double sad =
            static_cast<double>(
                s.sad[static_cast<std::size_t>(d) * p.w + x]) /
            p.n;
        if (sad < best_sad) {
            best_sad = sad;
            best_d = d;
        }
    }
    if (best_d < 0 || best_sad > max_sad)
        return -1.0;

    double refined = best_d;
    if (best_d > d_lo && best_d < d_hi) {
        const double c0 =
            static_cast<double>(
                s.sad[static_cast<std::size_t>(best_d - 1) * p.w + x]) /
            p.n;
        const double c1 =
            static_cast<double>(
                s.sad[static_cast<std::size_t>(best_d) * p.w + x]) /
            p.n;
        const double c2 =
            static_cast<double>(
                s.sad[static_cast<std::size_t>(best_d + 1) * p.w + x]) /
            p.n;
        const double denom = c0 - 2.0 * c1 + c2;
        if (denom > 1e-12)
            refined += 0.5 * (c0 - c2) / denom;
    }
    return refined;
}

/**
 * Table variant of matchRightPixel, using the identity
 * SAD_right(x_r, d) == W_d(x_r + d): the right-anchored window over
 * |R(x_r+dx) - L(x_r+d+dx)| is the left-anchored window at x_r + d.
 */
double
tableMatchRight(const FastParams &p, const Scratch &s, double max_sad,
                int rx, int d_lo, int d_hi)
{
    d_lo = std::max(d_lo, 0);
    d_hi = std::min(d_hi, p.w - 1 - p.r - rx); // left window in-image
    if (d_hi < d_lo)
        return -1.0;
    SOV_ASSERT(d_hi <= p.D);

    double best_sad = 1e18;
    int best_d = -1;
    for (int d = d_lo; d <= d_hi; ++d) {
        const double sad =
            static_cast<double>(
                s.sad[static_cast<std::size_t>(d) * p.w + rx + d]) /
            p.n;
        if (sad < best_sad) {
            best_sad = sad;
            best_d = d;
        }
    }
    if (best_d < 0 || best_sad > max_sad)
        return -1.0;
    return best_d;
}

/** pool->parallelFor, or a plain loop when no pool is attached. */
void
runParallel(ThreadPool *pool, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (pool && count > 1) {
        pool->parallelFor(count, body);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
    }
}

FastParams
makeParams(const Image &left, const StereoConfig &config)
{
    FastParams p;
    p.w = static_cast<int>(left.width());
    p.h = static_cast<int>(left.height());
    p.r = config.block_radius;
    // The dense search range is prior +/- margin and the interpolated
    // prior never exceeds max_disparity (support matches are clamped
    // to it; subpixel refinement adds < 1), so the table must cover
    // max_disparity + prior_margin.
    p.D = config.max_disparity + config.prior_margin;
    p.span = p.w + 2 * p.r;
    p.n = (2 * p.r + 1) * (2 * p.r + 1);
    p.simd = config.backend == KernelBackend::Simd ? detectSimdLevel()
                                                   : SimdLevel::None;
    return p;
}

/** Support rows of the coarse grid, in ascending order. */
std::vector<int>
supportRows(const FastParams &p, const StereoConfig &config)
{
    std::vector<int> rows;
    const int step = config.support_grid_step;
    for (int y = p.r + step / 2; y < p.h - p.r; y += step)
        rows.push_back(y);
    return rows;
}

} // namespace

std::vector<SupportPoint>
StereoMatcher::supportPointsFast(const Image &left,
                                 const Image &right) const
{
    const FastParams p = makeParams(left, config_);
    const std::vector<int> rows = supportRows(p, config_);
    if (rows.empty())
        return {};

    arena_.reset();
    const std::size_t slab = scratchFloats(p);
    float *slabs = arena_.alloc<float>(slab * rows.size());

    std::vector<std::vector<SupportPoint>> per_row(rows.size());
    const int step = config_.support_grid_step;
    runParallel(pool_, rows.size(), [&](std::size_t i) {
        const Scratch s = carveScratch(p, slabs + i * slab);
        const int y = rows[i];
        buildColsums(left, right, p, y, s);
        windowSums(p, s);
        for (int x = p.r + step / 2; x < p.w - p.r; x += step) {
            const double d = tableMatchPixel(p, s, config_.max_sad, x, 0,
                                             config_.max_disparity);
            if (d >= 0.0)
                per_row[i].push_back(SupportPoint{x, y, d});
        }
    });

    // Block-ordered reduction: identical to the reference's row-major
    // traversal, independent of which thread ran which row.
    std::vector<SupportPoint> points;
    for (const auto &row : per_row)
        points.insert(points.end(), row.begin(), row.end());
    return points;
}

/**
 * 1/dist² for every integer dist² the support prior can accept
 * (dx² + dy² + 1 under the 40 px cutoff ⇒ 1..1600). Supports and
 * pixels sit on integer grids, so dist² is a sum of small integer
 * squares — exact in double — and looking the reciprocal up is
 * bit-identical to dividing by it.
 */
const double *
invDist2Table()
{
    static const std::vector<double> table = [] {
        std::vector<double> t(1601, 0.0);
        for (int i = 1; i <= 1600; ++i)
            t[i] = 1.0 / static_cast<double>(i);
        return t;
    }();
    return table.data();
}

/**
 * One support row of the Simd tier's windowed prior scan: the
 * supports with a fixed dy, plus the sliding [b, e) range of those
 * inside this pixel's x-window. |dx| <= reach ⇔ dx² + dy² + 1 <= 1600,
 * exactly — integer arithmetic on both sides — so the window admits
 * precisely the candidates the Fast tier's distance test keeps.
 */
struct PriorRow
{
    const SupportPoint *end;
    const SupportPoint *b;
    const SupportPoint *e;
    int dy_sq;
    int reach;
};

DisparityMap
StereoMatcher::matchFast(const Image &left, const Image &right) const
{
    const FastParams p = makeParams(left, config_);
    const auto supports = supportPointsFast(left, right);

    DisparityMap out;
    out.disparity = Image(left.width(), left.height(), -1.0f);
    if (p.w == 0 || p.h == 0)
        return out;

    const int row_block = std::max(config_.row_block, 1);
    const std::size_t blocks =
        (static_cast<std::size_t>(p.h) + row_block - 1) /
        static_cast<std::size_t>(row_block);

    arena_.reset();
    const std::size_t slab = scratchFloats(p);
    float *slabs = arena_.alloc<float>(slab * blocks);
    std::vector<std::size_t> valid_per_block(blocks, 0);

    runParallel(pool_, blocks, [&](std::size_t b) {
        const Scratch s = carveScratch(p, slabs + b * slab);
        const int y0 = static_cast<int>(b) * row_block;
        const int y1 = std::min(y0 + row_block, p.h);
        buildColsums(left, right, p, y0, s);
        std::size_t valid = 0;

        for (int y = y0; y < y1; ++y) {
            if (y > y0)
                advanceColsums(left, right, p, y, s);
            windowSums(p, s);

            // Support candidates for this row: the prior's 40 px
            // cutoff rejects everything with |sp.y - y| >= 40, and
            // supports are sorted by y, so a contiguous index range
            // covers exactly the points the reference loop keeps (in
            // the same order — the weighted sums round identically).
            const auto lo = std::lower_bound(
                supports.begin(), supports.end(), y - 39,
                [](const SupportPoint &sp, int yy) { return sp.y < yy; });
            const auto hi = std::upper_bound(
                supports.begin(), supports.end(), y + 39,
                [](int yy, const SupportPoint &sp) { return yy < sp.y; });

            // Simd tier: the same weighted sums in the same order,
            // but each support row keeps a two-pointer x-window (the
            // circle test degenerates to |dx| <= reach per row) so
            // rejected candidates are never visited, and the integer
            // -valued 1/dist² weight comes from a table. Both
            // restructurings are bit-exact, so the tiers still share
            // one checksum; the Fast tier deliberately keeps the
            // original scan as the gated baseline in bench_kernels.
            const bool windowed =
                config_.backend == KernelBackend::Simd;
            PriorRow prior_rows[80];
            std::size_t nrows = 0;
            if (windowed) {
                const SupportPoint *base = supports.data();
                const SupportPoint *it =
                    base + (lo - supports.begin());
                const SupportPoint *row_hi =
                    base + (hi - supports.begin());
                while (it != row_hi) {
                    const int sy = it->y;
                    const SupportPoint *run = it;
                    while (run != row_hi && run->y == sy)
                        ++run;
                    const int dy = sy - y;
                    const int rem = 1599 - dy * dy;
                    int reach = static_cast<int>(
                        std::sqrt(static_cast<double>(rem)));
                    while ((reach + 1) * (reach + 1) <= rem)
                        ++reach;
                    while (reach > 0 && reach * reach > rem)
                        --reach;
                    prior_rows[nrows++] =
                        PriorRow{run, it, it, dy * dy, reach};
                    it = run;
                }
            }
            const double *inv_dist2 = invDist2Table();

            for (int x = 0; x < p.w; ++x) {
                double prior = -1.0;
                if (windowed) {
                    double wsum = 0.0, dsum = 0.0;
                    for (std::size_t s = 0; s < nrows; ++s) {
                        PriorRow &row = prior_rows[s];
                        const int xlo = x - row.reach;
                        const int xhi = x + row.reach;
                        while (row.b != row.end && row.b->x < xlo)
                            ++row.b;
                        if (row.e < row.b)
                            row.e = row.b;
                        while (row.e != row.end && row.e->x <= xhi)
                            ++row.e;
                        for (const SupportPoint *sp = row.b;
                             sp != row.e; ++sp) {
                            const int dxi = sp->x - x;
                            const double wgt =
                                inv_dist2[dxi * dxi + row.dy_sq + 1];
                            wsum += wgt;
                            dsum += wgt * sp->disparity;
                        }
                    }
                    if (wsum > 0.0)
                        prior = dsum / wsum;
                } else if (!supports.empty()) {
                    double wsum = 0.0, dsum = 0.0;
                    for (auto it = lo; it != hi; ++it) {
                        const double dx =
                            it->x - static_cast<double>(x);
                        const double dy =
                            it->y - static_cast<double>(y);
                        const double dist2 = dx * dx + dy * dy + 1.0;
                        if (dist2 > 40.0 * 40.0)
                            continue;
                        const double wgt = 1.0 / dist2;
                        wsum += wgt;
                        dsum += wgt * it->disparity;
                    }
                    if (wsum > 0.0)
                        prior = dsum / wsum;
                }

                int d_lo = 0, d_hi = config_.max_disparity;
                if (prior >= 0.0) {
                    d_lo = static_cast<int>(prior) - config_.prior_margin;
                    d_hi = static_cast<int>(prior) + config_.prior_margin;
                }

                const double d = tableMatchPixel(p, s, config_.max_sad,
                                                 x, d_lo, d_hi);
                if (d < 0.0)
                    continue;

                if (config_.left_right_check) {
                    const int rx =
                        x - static_cast<int>(std::lround(d));
                    if (rx < 0)
                        continue;
                    const double dr = tableMatchRight(
                        p, s, config_.max_sad, rx, d_lo, d_hi);
                    if (dr < 0.0 ||
                        std::fabs(dr - d) > config_.lr_tolerance)
                        continue;
                }

                out.disparity(static_cast<std::size_t>(x),
                              static_cast<std::size_t>(y)) =
                    static_cast<float>(d);
                ++valid;
            }
        }
        valid_per_block[b] = valid;
    });

    std::size_t valid = 0;
    for (const std::size_t v : valid_per_block)
        valid += v;
    out.density = static_cast<double>(valid) /
        (static_cast<double>(p.w) * static_cast<double>(p.h));
    return out;
}

} // namespace sov
