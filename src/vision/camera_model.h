/**
 * @file
 * Pinhole camera geometry shared by the renderer, stereo matcher, and
 * VIO measurement model.
 *
 * Frames: the *vehicle body* frame is x-forward / y-left / z-up; the
 * *camera* frame is the usual optical convention z-forward / x-right /
 * y-down. A camera is mounted on the body with an extrinsic offset.
 */
#pragma once

#include <optional>

#include "math/geometry.h"
#include "math/quat.h"
#include "math/vec.h"

namespace sov {

/** Pinhole intrinsics (no distortion; our synthetic optics are ideal). */
struct CameraIntrinsics
{
    double fx = 270.0;
    double fy = 270.0;
    double cx = 160.0;
    double cy = 120.0;
    std::size_t width = 320;
    std::size_t height = 240;
};

/** A pixel observation. */
struct Pixel
{
    double u = 0.0;
    double v = 0.0;
};

/** Pose of a camera in the world. */
struct CameraPose
{
    Vec3 position;    //!< optical center in world frame
    Quat world_from_camera; //!< rotates camera-frame vectors into world
};

/** Pinhole camera with body-mounted extrinsics. */
class CameraModel
{
  public:
    CameraModel() = default;
    CameraModel(const CameraIntrinsics &intrinsics,
                const Vec3 &mount_offset, double mount_yaw = 0.0)
        : intrinsics_(intrinsics), mount_offset_(mount_offset),
          mount_yaw_(mount_yaw) {}

    const CameraIntrinsics &intrinsics() const { return intrinsics_; }

    /**
     * World-frame camera pose when the vehicle body is at @p body
     * (planar pose, camera mounted at mount_offset in body frame,
     * looking along body +x rotated by mount_yaw).
     */
    CameraPose poseAt(const Pose2 &body, double mount_height = 1.5) const;

    /**
     * Project a world point.
     * @return Pixel if the point is in front of the camera and inside
     *         the image, plus its depth (z in camera frame).
     */
    std::optional<std::pair<Pixel, double>>
    project(const CameraPose &pose, const Vec3 &world_point) const;

    /** Back-project pixel at depth z into the world frame. */
    Vec3 backproject(const CameraPose &pose, const Pixel &px,
                     double depth) const;

    /** Unit ray direction (world frame) through a pixel. */
    Vec3 rayDirection(const CameraPose &pose, const Pixel &px) const;

  private:
    CameraIntrinsics intrinsics_;
    Vec3 mount_offset_{0.0, 0.0, 0.0};
    double mount_yaw_ = 0.0;
};

/** A stereo pair: two identical cameras separated by a baseline. */
struct StereoRig
{
    CameraModel left;
    CameraModel right;
    double baseline = 0.5; //!< meters

    /**
     * Build a forward-facing rig centered on the body x-axis.
     * Left camera at +baseline/2 on body y (left), right at -baseline/2.
     */
    static StereoRig forwardFacing(const CameraIntrinsics &intrinsics,
                                   double baseline,
                                   double forward_offset = 1.0);

    /** Depth implied by a disparity (left.u - right.u). */
    double
    depthFromDisparity(double disparity) const
    {
        return disparity > 1e-9
            ? left.intrinsics().fx * baseline / disparity : 1e9;
    }

    /** Disparity implied by a depth. */
    double
    disparityFromDepth(double depth) const
    {
        return left.intrinsics().fx * baseline / depth;
    }
};

} // namespace sov
