#include "vision/compression.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sov {

namespace {

/** Map a signed delta to an unsigned code (0, -1, 1, -2, ... order). */
std::uint8_t
zigzag(int delta)
{
    // Deltas of 8-bit values fit in [-255, 255]; encode modulo 256
    // with zigzag so small magnitudes get small codes.
    const int z = delta >= 0 ? 2 * delta : -2 * delta - 1;
    return static_cast<std::uint8_t>(z & 0xff);
}

int
unzigzag(std::uint8_t code)
{
    const int z = code;
    return (z & 1) ? -(z + 1) / 2 : z / 2;
}

constexpr std::uint8_t kRunMarker = 0xff; //!< marker, count, value

} // namespace

CompressedFrame
compressFrame(const Image &frame)
{
    CompressedFrame out;
    out.width = static_cast<std::uint32_t>(frame.width());
    out.height = static_cast<std::uint32_t>(frame.height());
    out.payload.reserve(frame.width() * frame.height() / 2);

    // Quantize + horizontal delta + zigzag into a code stream.
    std::vector<std::uint8_t> codes;
    codes.reserve(frame.width() * frame.height());
    for (std::size_t y = 0; y < frame.height(); ++y) {
        int prev = 0; // each row predicts from 0 at its start
        for (std::size_t x = 0; x < frame.width(); ++x) {
            const int q = static_cast<int>(std::lround(
                std::clamp(static_cast<double>(frame(x, y)), 0.0, 1.0) *
                255.0));
            // Deltas wrap modulo 256; the decoder reverses exactly.
            int delta = q - prev;
            if (delta > 127)
                delta -= 256;
            if (delta < -128)
                delta += 256;
            codes.push_back(zigzag(delta));
            prev = q;
        }
    }

    // Run-length encode the code stream. Literal 0xff is escaped as a
    // run of length 1 so the marker stays unambiguous.
    for (std::size_t i = 0; i < codes.size();) {
        std::size_t run = 1;
        while (i + run < codes.size() && codes[i + run] == codes[i] &&
               run < 255) {
            ++run;
        }
        if (run >= 4 || codes[i] == kRunMarker) {
            out.payload.push_back(kRunMarker);
            out.payload.push_back(static_cast<std::uint8_t>(run));
            out.payload.push_back(codes[i]);
        } else {
            for (std::size_t k = 0; k < run; ++k)
                out.payload.push_back(codes[i]);
        }
        i += run;
    }
    return out;
}

Image
decompressFrame(const CompressedFrame &frame)
{
    // Expand the RLE stream back into codes.
    std::vector<std::uint8_t> codes;
    codes.reserve(static_cast<std::size_t>(frame.width) * frame.height);
    for (std::size_t i = 0; i < frame.payload.size();) {
        if (frame.payload[i] == kRunMarker) {
            SOV_ASSERT(i + 2 < frame.payload.size());
            const std::size_t run = frame.payload[i + 1];
            const std::uint8_t value = frame.payload[i + 2];
            codes.insert(codes.end(), run, value);
            i += 3;
        } else {
            codes.push_back(frame.payload[i]);
            ++i;
        }
    }
    SOV_ASSERT(codes.size() ==
               static_cast<std::size_t>(frame.width) * frame.height);

    Image out(frame.width, frame.height);
    std::size_t idx = 0;
    for (std::size_t y = 0; y < frame.height; ++y) {
        int prev = 0;
        for (std::size_t x = 0; x < frame.width; ++x) {
            int q = prev + unzigzag(codes[idx++]);
            q &= 0xff; // undo the modulo-256 delta wrap
            out(x, y) = static_cast<float>(q) / 255.0f;
            prev = q;
        }
    }
    return out;
}

} // namespace sov
