/**
 * @file
 * Stereo depth estimation (Table III: ELAS).
 *
 * A two-stage matcher in the spirit of ELAS: (1) robust support points
 * on a coarse grid matched over the full disparity range, (2) dense
 * block matching over a narrow range around the disparity prior
 * interpolated from the support points, plus subpixel refinement and a
 * left-right consistency check.
 *
 * Two backends implement the same matcher (vision/kernels.h):
 *
 *  - Reference: the naive oracle — every (pixel, disparity) pair
 *    recomputes its full (2r+1)^2 SAD window.
 *  - Fast: per image row, incremental column sums turn the window
 *    into an O(1)-per-pixel sliding update, one SAD table serves the
 *    dense search, the left-right check AND the subpixel parabola,
 *    and rows are processed in fixed-size blocks fanned out over a
 *    core::ThreadPool. Scratch comes from a FrameArena, so
 *    steady-state frames perform no system allocation.
 *
 * Determinism: Fast output is bit-identical for any thread count
 * (fixed row-block partitioning, block-ordered reduction), and for
 * images whose intensities are multiples of 1/256 (8-bit sensor data)
 * it is bit-identical to the Reference backend — the SAD sums stay
 * exactly representable, so the two summation orders agree.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "core/arena.h"
#include "vision/camera_model.h"
#include "vision/image.h"
#include "vision/kernels.h"

namespace sov {

class ThreadPool;

/** Stereo matcher parameters. */
struct StereoConfig
{
    int max_disparity = 64;
    int block_radius = 3;        //!< SAD window radius
    int support_grid_step = 10;  //!< support-point grid spacing (px)
    int prior_margin = 6;        //!< dense search range around prior
    double max_sad = 0.30;       //!< per-pixel SAD acceptance threshold
    bool left_right_check = true;
    double lr_tolerance = 1.5;   //!< disparity tolerance for LR check
    /** Which implementation runs (vision/kernels.h). */
    KernelBackend backend = KernelBackend::Reference;
    /** Fast backend: rows per parallel work item. Part of the
     *  determinism contract — results depend on this value (block
     *  boundaries reset the incremental column sums) but never on the
     *  thread count executing the blocks. */
    int row_block = 16;
};

/** Dense disparity output. */
struct DisparityMap
{
    Image disparity;  //!< pixels; <= 0 means invalid
    double density = 0.0; //!< fraction of valid pixels

    /** Depth (meters) at a pixel, given the rig geometry. */
    double depthAt(std::size_t x, std::size_t y, const StereoRig &rig) const;
};

/** One matched support point. */
struct SupportPoint
{
    int x, y;
    double disparity;
};

/** ELAS-style stereo matcher. */
class StereoMatcher
{
  public:
    explicit StereoMatcher(const StereoConfig &config = {})
        : config_(config) {}

    /** Compute the dense disparity map of a rectified pair. */
    DisparityMap match(const Image &left, const Image &right) const;

    /** Stage 1 only: the grid of support points (exposed for tests). */
    std::vector<SupportPoint> supportPoints(const Image &left,
                                            const Image &right) const;

    /**
     * Row-parallel execution for the Fast backend (non-owning; must
     * outlive the matcher's use). nullptr = run serially. The output
     * is identical either way.
     */
    void setThreadPool(ThreadPool *pool) { pool_ = pool; }

    const StereoConfig &config() const { return config_; }

    /** Scratch arena of the Fast backend (exposed so tests can assert
     *  steady-state frames stop allocating). */
    const FrameArena &scratchArena() const { return arena_; }

  private:
    /**
     * Reference SAD block match of one pixel over [d_lo, d_hi].
     * @param sads Caller-owned scratch for the per-disparity SAD
     *        curve (hoisted out of the per-pixel loop).
     * @return Best disparity with parabolic subpixel refinement, or a
     *         negative value when no acceptable match exists.
     */
    double matchPixel(const Image &left, const Image &right, int x, int y,
                      int d_lo, int d_hi,
                      std::vector<double> &sads) const;

    /** Match a right-image pixel back into the left image (LR check). */
    double matchRightPixel(const Image &left, const Image &right, int x,
                           int y, int d_lo, int d_hi) const;

    /** The naive oracle implementation of match(). */
    DisparityMap matchReference(const Image &left,
                                const Image &right) const;

    /** Sliding-window implementation of match() (stereo_fast.cpp). */
    DisparityMap matchFast(const Image &left, const Image &right) const;

    /** Fast-path support extraction (stereo_fast.cpp). */
    std::vector<SupportPoint> supportPointsFast(const Image &left,
                                                const Image &right) const;

    StereoConfig config_;
    ThreadPool *pool_ = nullptr;
    /** Fast-backend scratch; mutable because match() is logically
     *  const. A matcher must not run two match() calls concurrently. */
    mutable FrameArena arena_;
};

} // namespace sov
