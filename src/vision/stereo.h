/**
 * @file
 * Stereo depth estimation (Table III: ELAS).
 *
 * A two-stage matcher in the spirit of ELAS: (1) robust support points
 * on a coarse grid matched over the full disparity range, (2) dense
 * block matching over a narrow range around the disparity prior
 * interpolated from the support points, plus subpixel refinement and a
 * left-right consistency check.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "vision/camera_model.h"
#include "vision/image.h"

namespace sov {

/** Stereo matcher parameters. */
struct StereoConfig
{
    int max_disparity = 64;
    int block_radius = 3;        //!< SAD window radius
    int support_grid_step = 10;  //!< support-point grid spacing (px)
    int prior_margin = 6;        //!< dense search range around prior
    double max_sad = 0.30;       //!< per-pixel SAD acceptance threshold
    bool left_right_check = true;
    double lr_tolerance = 1.5;   //!< disparity tolerance for LR check
};

/** Dense disparity output. */
struct DisparityMap
{
    Image disparity;  //!< pixels; <= 0 means invalid
    double density = 0.0; //!< fraction of valid pixels

    /** Depth (meters) at a pixel, given the rig geometry. */
    double depthAt(std::size_t x, std::size_t y, const StereoRig &rig) const;
};

/** One matched support point. */
struct SupportPoint
{
    int x, y;
    double disparity;
};

/** ELAS-style stereo matcher. */
class StereoMatcher
{
  public:
    explicit StereoMatcher(const StereoConfig &config = {})
        : config_(config) {}

    /** Compute the dense disparity map of a rectified pair. */
    DisparityMap match(const Image &left, const Image &right) const;

    /** Stage 1 only: the grid of support points (exposed for tests). */
    std::vector<SupportPoint> supportPoints(const Image &left,
                                            const Image &right) const;

  private:
    /**
     * SAD block match of one pixel over [d_lo, d_hi].
     * @return Best disparity with parabolic subpixel refinement, or a
     *         negative value when no acceptable match exists.
     */
    double matchPixel(const Image &left, const Image &right, int x, int y,
                      int d_lo, int d_hi) const;

    /** Match a right-image pixel back into the left image (LR check). */
    double matchRightPixel(const Image &left, const Image &right, int x,
                           int y, int d_lo, int d_hi) const;

    StereoConfig config_;
};

} // namespace sov
