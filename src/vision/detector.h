/**
 * @file
 * Object detection: region proposals + CNN patch classification.
 *
 * The paper detects objects with a DNN (YOLO / Mask R-CNN, Table III)
 * retrained per deployment site. Our detector mirrors that structure
 * at synthetic scale: a deterministic proposal stage finds candidate
 * regions (obstacles render darker than the textured ground), and the
 * trained patch classifier assigns the object class. The ground-truth
 * projector and dataset builder make per-site training reproducible.
 */
#pragma once

#include <optional>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "vision/camera_model.h"
#include "vision/cnn.h"
#include "vision/image.h"
#include "vision/kernels.h"
#include "world/world.h"

namespace sov {

/** Axis-aligned pixel bounding box. */
struct BoundingBox
{
    double x = 0.0; //!< top-left u
    double y = 0.0; //!< top-left v
    double w = 0.0;
    double h = 0.0;

    double centerX() const { return x + w / 2.0; }
    double centerY() const { return y + h / 2.0; }
    double area() const { return w * h; }

    /** Intersection-over-union with another box. */
    double iou(const BoundingBox &o) const;
};

/** One detection. */
struct Detection
{
    BoundingBox box;
    ObjectClass cls = ObjectClass::Static;
    double confidence = 0.0;
};

/** Detector parameters. */
struct DetectorConfig
{
    double intensity_threshold = 0.33; //!< darker pixels are candidates
    std::size_t min_box_pixels = 25;   //!< reject tiny components
    std::size_t patch_size = 16;       //!< classifier input edge
    double min_confidence = 0.5;
    double nms_iou = 0.4;
    /** Classifier kernel implementation (vision/kernels.h). */
    KernelBackend backend = KernelBackend::Reference;
};

/**
 * Project an obstacle's 3-D extent into the image.
 * @return The bounding box, or nullopt when fully out of view.
 */
std::optional<BoundingBox> projectObstacleBox(const CameraModel &camera,
                                              const CameraPose &pose,
                                              const Obstacle &obstacle,
                                              Timestamp t);

/** Proposal + CNN detector. */
class ObjectDetector
{
  public:
    /**
     * @param classifier Trained patch classifier with 5 outputs:
     *        pedestrian, car, bicycle, static, background.
     */
    ObjectDetector(Network classifier, const DetectorConfig &config = {});

    /** Detect objects in a frame. */
    std::vector<Detection> detect(const Image &frame) const;

    /** Stage 1 only: candidate boxes before classification. */
    std::vector<BoundingBox> proposals(const Image &frame) const;

    /** Resample a box region into the classifier input patch. */
    Image extractPatch(const Image &frame, const BoundingBox &box) const;

    const DetectorConfig &config() const { return config_; }

  private:
    mutable Network classifier_;
    DetectorConfig config_;
};

/** Labelled training example for the patch classifier. */
struct PatchExample
{
    Tensor patch;
    std::size_t label; //!< 0..3 = ObjectClass, 4 = background
};

/** Class label index of an ObjectClass. */
std::size_t classLabel(ObjectClass c);

/**
 * Build a balanced patch dataset by rendering @p views random
 * viewpoints of @p world and cropping ground-truth object boxes plus
 * random background patches (the "deployment-specific training data"
 * of Sec. IV).
 */
std::vector<PatchExample> buildPatchDataset(const WorldSnapshot &world,
                                            const CameraModel &camera,
                                            std::size_t views,
                                            std::size_t patch_size,
                                            Rng &rng);

/**
 * Train a fresh site-specific detector on @p world.
 * @param epochs SGD epochs over the generated dataset.
 */
ObjectDetector trainSiteDetector(const WorldSnapshot &world,
                                 const CameraModel &camera,
                                 std::size_t views, std::size_t epochs,
                                 Rng &rng,
                                 const DetectorConfig &config = {});

} // namespace sov
