#include "vision/image.h"

#include <algorithm>
#include <cmath>

namespace sov {

float
Image::atClamped(long x, long y) const
{
    const long xc = std::clamp<long>(x, 0, static_cast<long>(width_) - 1);
    const long yc = std::clamp<long>(y, 0, static_cast<long>(height_) - 1);
    return data_[static_cast<std::size_t>(yc) * width_ +
                 static_cast<std::size_t>(xc)];
}

float
Image::sampleBilinear(double x, double y) const
{
    const long x0 = static_cast<long>(std::floor(x));
    const long y0 = static_cast<long>(std::floor(y));
    const double fx = x - static_cast<double>(x0);
    const double fy = y - static_cast<double>(y0);
    const double v00 = atClamped(x0, y0);
    const double v10 = atClamped(x0 + 1, y0);
    const double v01 = atClamped(x0, y0 + 1);
    const double v11 = atClamped(x0 + 1, y0 + 1);
    return static_cast<float>(
        v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) +
        v01 * (1 - fx) * fy + v11 * fx * fy);
}

Image
Image::gradientX() const
{
    Image g(width_, height_);
    for (std::size_t y = 0; y < height_; ++y)
        for (std::size_t x = 0; x < width_; ++x)
            g(x, y) = 0.5f * (atClamped(static_cast<long>(x) + 1,
                                        static_cast<long>(y)) -
                              atClamped(static_cast<long>(x) - 1,
                                        static_cast<long>(y)));
    return g;
}

Image
Image::gradientY() const
{
    Image g(width_, height_);
    for (std::size_t y = 0; y < height_; ++y)
        for (std::size_t x = 0; x < width_; ++x)
            g(x, y) = 0.5f * (atClamped(static_cast<long>(x),
                                        static_cast<long>(y) + 1) -
                              atClamped(static_cast<long>(x),
                                        static_cast<long>(y) - 1));
    return g;
}

Image
Image::boxBlur3() const
{
    Image out(width_, height_);
    for (std::size_t y = 0; y < height_; ++y) {
        for (std::size_t x = 0; x < width_; ++x) {
            float sum = 0.0f;
            for (long dy = -1; dy <= 1; ++dy)
                for (long dx = -1; dx <= 1; ++dx)
                    sum += atClamped(static_cast<long>(x) + dx,
                                     static_cast<long>(y) + dy);
            out(x, y) = sum / 9.0f;
        }
    }
    return out;
}

Image
Image::gaussianBlur(double sigma) const
{
    SOV_ASSERT(sigma > 0.0);
    const int radius = std::max(1, static_cast<int>(std::ceil(3.0 * sigma)));
    std::vector<float> kernel(2 * radius + 1);
    float sum = 0.0f;
    for (int i = -radius; i <= radius; ++i) {
        kernel[i + radius] =
            static_cast<float>(std::exp(-0.5 * i * i / (sigma * sigma)));
        sum += kernel[i + radius];
    }
    for (auto &k : kernel)
        k /= sum;

    // Horizontal pass.
    Image tmp(width_, height_);
    for (std::size_t y = 0; y < height_; ++y) {
        for (std::size_t x = 0; x < width_; ++x) {
            float v = 0.0f;
            for (int i = -radius; i <= radius; ++i)
                v += kernel[i + radius] *
                    atClamped(static_cast<long>(x) + i,
                              static_cast<long>(y));
            tmp(x, y) = v;
        }
    }
    // Vertical pass.
    Image out(width_, height_);
    for (std::size_t y = 0; y < height_; ++y) {
        for (std::size_t x = 0; x < width_; ++x) {
            float v = 0.0f;
            for (int i = -radius; i <= radius; ++i)
                v += kernel[i + radius] *
                    tmp.atClamped(static_cast<long>(x),
                                  static_cast<long>(y) + i);
            out(x, y) = v;
        }
    }
    return out;
}

Image
Image::halfSize() const
{
    const std::size_t w = std::max<std::size_t>(1, width_ / 2);
    const std::size_t h = std::max<std::size_t>(1, height_ / 2);
    Image out(w, h);
    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            const std::size_t sx = 2 * x;
            const std::size_t sy = 2 * y;
            float sum = (*this)(sx, sy);
            int n = 1;
            if (sx + 1 < width_) { sum += (*this)(sx + 1, sy); ++n; }
            if (sy + 1 < height_) { sum += (*this)(sx, sy + 1); ++n; }
            if (sx + 1 < width_ && sy + 1 < height_) {
                sum += (*this)(sx + 1, sy + 1);
                ++n;
            }
            out(x, y) = sum / static_cast<float>(n);
        }
    }
    return out;
}

double
Image::mean() const
{
    if (data_.empty())
        return 0.0;
    double s = 0.0;
    for (const float v : data_)
        s += v;
    return s / static_cast<double>(data_.size());
}

double
Image::variance() const
{
    if (data_.empty())
        return 0.0;
    const double m = mean();
    double s = 0.0;
    for (const float v : data_)
        s += (v - m) * (v - m);
    return s / static_cast<double>(data_.size());
}

Image
Image::crop(long x0, long y0, std::size_t w, std::size_t h) const
{
    Image out(w, h);
    for (std::size_t y = 0; y < h; ++y)
        for (std::size_t x = 0; x < w; ++x)
            out(x, y) = atClamped(x0 + static_cast<long>(x),
                                  y0 + static_cast<long>(y));
    return out;
}

} // namespace sov
