/**
 * @file
 * Sparse feature front-end: Shi–Tomasi corner extraction and pyramidal
 * Lucas–Kanade tracking — the key-frame feature-extraction and
 * non-key-frame tracking pair whose two FPGA bitstreams the RPR engine
 * swaps at runtime (Sec. V-B3).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "vision/image.h"

namespace sov {

/** A detected corner. */
struct Corner
{
    double x = 0.0;
    double y = 0.0;
    double score = 0.0; //!< min eigenvalue of the structure tensor
};

/** Corner detection parameters. */
struct CornerConfig
{
    std::size_t max_corners = 200;
    double quality_level = 0.01;  //!< fraction of the best score
    double min_distance = 8.0;    //!< NMS radius in pixels
    int block_radius = 2;         //!< structure-tensor window radius
};

/** Shi–Tomasi ("good features to track") corner extraction. */
std::vector<Corner> detectCorners(const Image &image,
                                  const CornerConfig &config = {});

/** Result of tracking one feature. */
struct TrackResult
{
    double x = 0.0;
    double y = 0.0;
    bool converged = false;
    double residual = 0.0; //!< mean absolute intensity error
};

/** LK tracking parameters. */
struct LkConfig
{
    int window_radius = 7;
    int max_iterations = 30;
    double epsilon = 0.01;    //!< convergence threshold (pixels)
    int pyramid_levels = 3;
    double max_residual = 0.25; //!< reject tracks above this error
};

/**
 * Track feature positions from @p prev to @p next with pyramidal LK.
 * @param points Positions in the previous frame.
 * @return One TrackResult per input point.
 */
std::vector<TrackResult> trackFeatures(const Image &prev, const Image &next,
                                       const std::vector<Corner> &points,
                                       const LkConfig &config = {});

} // namespace sov
