#include "vision/kcf.h"

#include <cmath>

#include "core/logging.h"
#include "core/stats.h"

namespace sov {

KcfTracker::KcfTracker(const KcfConfig &config)
    : config_(config),
      level_(config.backend == KernelBackend::Simd ? detectSimdLevel()
                                                   : SimdLevel::None),
      plan_(config.window, config.window)
{
    SOV_ASSERT(isPowerOfTwo(config.window));
    const std::size_t n = config_.window;

    // Separable Hann window.
    hann_.resize(n * n);
    for (std::size_t y = 0; y < n; ++y) {
        const double wy =
            0.5 * (1.0 - std::cos(2.0 * M_PI * y / (n - 1)));
        for (std::size_t x = 0; x < n; ++x) {
            const double wx =
                0.5 * (1.0 - std::cos(2.0 * M_PI * x / (n - 1)));
            hann_[y * n + x] = wx * wy;
        }
    }

    // Gaussian regression target centered on the window.
    std::vector<Complex> target(n * n);
    const double c = (n - 1) / 2.0;
    for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
            const double d2 = (x - c) * (x - c) + (y - c) * (y - c);
            target[y * n + x] = Complex(
                std::exp(-d2 / (2.0 * config_.sigma * config_.sigma)),
                0.0);
        }
    }
    transform(target, false);
    target_fft_ = std::move(target);

    // Size the per-frame scratch once; update() never grows it.
    values_.resize(n * n);
    f_.resize(n * n);
    f_new_.resize(n * n);
    response_.resize(n * n);
}

void
KcfTracker::transform(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = config_.window;
    if (config_.backend == KernelBackend::Reference) {
        fft2d(data, n, n, inverse);
        return;
    }
    if (inverse)
        plan_.inverse(data.data(), level_);
    else
        plan_.forward(data.data(), level_);
}

void
KcfTracker::patchSpectrumInto(const Image &frame, double cx, double cy,
                              std::vector<Complex> &out)
{
    const std::size_t n = config_.window;
    out.resize(n * n);
    const double half = static_cast<double>(n) / 2.0;

    // Extract, then zero-mean and Hann-window to suppress boundary
    // effects of the circular correlation.
    double mean = 0.0;
    for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
            const double v = frame.sampleBilinear(cx - half + x,
                                                  cy - half + y);
            values_[y * n + x] = v;
            mean += v;
        }
    }
    mean /= static_cast<double>(n * n);
    for (std::size_t i = 0; i < n * n; ++i)
        out[i] = Complex((values_[i] - mean) * hann_[i], 0.0);

    transform(out, false);
}

void
KcfTracker::init(const Image &frame, double x, double y)
{
    const std::size_t n = config_.window;
    x_ = x;
    y_ = y;
    patchSpectrumInto(frame, x_, y_, f_);

    numerator_.assign(n * n, Complex(0, 0));
    denominator_.assign(n * n, Complex(0, 0));
    for (std::size_t i = 0; i < n * n; ++i) {
        numerator_[i] = target_fft_[i] * std::conj(f_[i]);
        denominator_[i] = f_[i] * std::conj(f_[i]) +
            Complex(config_.lambda, 0.0);
    }
    initialized_ = true;
}

KcfStatus
KcfTracker::update(const Image &frame)
{
    SOV_ASSERT(initialized_);
    const std::size_t n = config_.window;

    patchSpectrumInto(frame, x_, y_, f_);

    // Response = IFFT(H ⊙ F), H = numerator / denominator.
    for (std::size_t i = 0; i < n * n; ++i)
        response_[i] = numerator_[i] / denominator_[i] * f_[i];
    transform(response_, true);

    // Peak location.
    double peak = -1e18;
    std::size_t px = 0, py = 0;
    for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
            const double v = response_[y * n + x].real();
            if (v > peak) {
                peak = v;
                px = x;
                py = y;
            }
        }
    }

    // Peak-to-sidelobe ratio, excluding an 11x11 window around the peak.
    RunningStats sidelobe;
    for (std::size_t y = 0; y < n; ++y) {
        for (std::size_t x = 0; x < n; ++x) {
            const long dx = static_cast<long>(x) - static_cast<long>(px);
            const long dy = static_cast<long>(y) - static_cast<long>(py);
            if (std::labs(dx) <= 5 && std::labs(dy) <= 5)
                continue;
            sidelobe.add(response_[y * n + x].real());
        }
    }
    const double psr = sidelobe.stddev() > 1e-12
        ? (peak - sidelobe.mean()) / sidelobe.stddev() : 0.0;

    // The Gaussian label is centered at (n-1)/2, so the peak sits at
    // center + displacement; displacements wrap circularly.
    const double center = (static_cast<double>(n) - 1.0) / 2.0;
    auto wrapped = [n, center](std::size_t v) {
        double d = static_cast<double>(v) - center;
        if (d > static_cast<double>(n) / 2.0)
            d -= static_cast<double>(n);
        if (d < -static_cast<double>(n) / 2.0)
            d += static_cast<double>(n);
        return d;
    };
    const double dx = wrapped(px);
    const double dy = wrapped(py);

    KcfStatus status;
    status.psr = psr;
    status.confident = psr >= config_.psr_threshold;

    if (status.confident) {
        x_ += dx;
        y_ += dy;
        // Online model update at the new location.
        patchSpectrumInto(frame, x_, y_, f_new_);
        const double lr = config_.learning_rate;
        for (std::size_t i = 0; i < n * n; ++i) {
            numerator_[i] = numerator_[i] * (1.0 - lr) +
                target_fft_[i] * std::conj(f_new_[i]) * lr;
            denominator_[i] = denominator_[i] * (1.0 - lr) +
                (f_new_[i] * std::conj(f_new_[i]) +
                 Complex(config_.lambda, 0.0)) * lr;
        }
    }
    status.x = x_;
    status.y = y_;
    return status;
}

} // namespace sov
