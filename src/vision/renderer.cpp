#include "vision/renderer.h"

#include <cmath>

namespace sov {

namespace {

/** Integer lattice hash -> [0,1], deterministic across platforms. */
double
latticeHash(long ix, long iy)
{
    std::uint64_t h = static_cast<std::uint64_t>(ix) * 0x9e3779b97f4a7c15ULL
        ^ static_cast<std::uint64_t>(iy) * 0xc2b2ae3d27d4eb4fULL;
    h ^= h >> 29;
    h *= 0xbf58476d1ce4e5b9ULL;
    h ^= h >> 32;
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double
smoothstep(double t)
{
    return t * t * (3.0 - 2.0 * t);
}

/** Obstacle surface shade: per-object albedo plus a class-specific
 *  stripe pattern, so object faces carry gradient structure and the
 *  patch classifier has a class signature to learn. */
double
obstacleShade(const Obstacle &obs, double along_face, double z)
{
    const double base = 0.10 + 0.08 * latticeHash(obs.id, 17);
    double stripe_freq = 0.0;
    switch (obs.cls) {
      case ObjectClass::Pedestrian: stripe_freq = 22.0; break;
      case ObjectClass::Car: stripe_freq = 3.0; break;
      case ObjectClass::Bicycle: stripe_freq = 10.0; break;
      case ObjectClass::Static: stripe_freq = 0.0; break;
    }
    const double stripe = stripe_freq > 0.0
        ? 0.07 * std::sin(along_face * stripe_freq + obs.id)
        : 0.0;
    // Aperiodic surface noise prevents the stereo matcher from locking
    // onto a stripe period one disparity-cycle off.
    const double noise = 0.10 *
        (Renderer::groundTexture(along_face + obs.id * 37.0, z, 0.3) - 0.5);
    return base + stripe + noise + 0.02 * std::cos(z * 4.0);
}

} // namespace

double
Renderer::groundTexture(double wx, double wy, double scale)
{
    // Two octaves of smoothed value noise.
    double value = 0.0;
    double amplitude = 0.65;
    double freq = 1.0 / scale;
    for (int octave = 0; octave < 2; ++octave) {
        const double x = wx * freq;
        const double y = wy * freq;
        const long ix = static_cast<long>(std::floor(x));
        const long iy = static_cast<long>(std::floor(y));
        const double fx = smoothstep(x - ix);
        const double fy = smoothstep(y - iy);
        const double v00 = latticeHash(ix, iy);
        const double v10 = latticeHash(ix + 1, iy);
        const double v01 = latticeHash(ix, iy + 1);
        const double v11 = latticeHash(ix + 1, iy + 1);
        value += amplitude *
            (v00 * (1 - fx) * (1 - fy) + v10 * fx * (1 - fy) +
             v01 * (1 - fx) * fy + v11 * fx * fy);
        amplitude *= 0.5;
        freq *= 3.1;
    }
    return value;
}

RenderedFrame
Renderer::render(const WorldSnapshot &world, const CameraModel &camera,
                 const CameraPose &pose, Timestamp t) const
{
    const auto &intr = camera.intrinsics();
    RenderedFrame frame;
    frame.intensity = Image(intr.width, intr.height,
                            static_cast<float>(config_.sky_brightness));
    frame.depth = Image(intr.width, intr.height, 0.0f);

    // Pass 1: per-pixel ray vs ground plane and obstacle boxes.
    for (std::size_t v = 0; v < intr.height; ++v) {
        for (std::size_t u = 0; u < intr.width; ++u) {
            const Pixel px{static_cast<double>(u), static_cast<double>(v)};
            const Vec3 ray = camera.rayDirection(pose, px);

            double best_depth = 1e18;
            float shade = static_cast<float>(config_.sky_brightness);

            // Ground plane z = 0.
            if (ray.z() < -1e-9) {
                const double s = -pose.position.z() / ray.z();
                const Vec3 hit = pose.position + ray * s;
                best_depth = s;
                double g = config_.ground_brightness;
                if (config_.render_ground_texture) {
                    g += 0.35 * (groundTexture(hit.x(), hit.y(),
                                               config_.ground_texture_scale)
                                 - 0.5);
                }
                shade = static_cast<float>(g);
            }

            // Obstacle boxes: intersect the vertical faces.
            for (const auto &obs : world.obstacles()) {
                const OrientedBox2 box = obs.footprintAt(t);
                const auto corners = box.corners();
                const Vec2 o2(pose.position.x(), pose.position.y());
                const Vec2 d2(ray.x(), ray.y());
                const double d2n = std::hypot(d2.x(), d2.y());
                if (d2n < 1e-12)
                    continue;
                for (std::size_t e = 0; e < 4; ++e) {
                    const Vec2 a = corners[e];
                    const Vec2 b = corners[(e + 1) % 4];
                    // Solve o2 + s*d2 on segment ab.
                    const Vec2 ab = b - a;
                    const double denom =
                        d2.x() * ab.y() - d2.y() * ab.x();
                    if (std::fabs(denom) < 1e-12)
                        continue;
                    const Vec2 ao = a - o2;
                    const double s =
                        (ao.x() * ab.y() - ao.y() * ab.x()) / denom;
                    const double w =
                        (ao.x() * d2.y() - ao.y() * d2.x()) / denom;
                    if (s <= 1e-6 || w < 0.0 || w > 1.0)
                        continue;
                    const double z = pose.position.z() + ray.z() * s;
                    if (z < 0.0 || z > obs.height)
                        continue;
                    if (s < best_depth) {
                        best_depth = s;
                        shade = static_cast<float>(
                            obstacleShade(obs, w * ab.norm(), z));
                    }
                }
            }

            if (best_depth < 1e17) {
                // Depth buffer stores z-distance along the optical axis
                // (what stereo estimates), not the ray length.
                const Vec3 cam_pt =
                    pose.world_from_camera.conjugate().rotate(
                        ray * best_depth);
                frame.depth(u, v) = static_cast<float>(cam_pt.z());
                frame.intensity(u, v) = shade;
            }
        }
    }

    // Pass 2: landmark blobs (drawn if not occluded).
    for (const auto &lm : world.landmarks()) {
        const auto proj = camera.project(pose, lm.position);
        if (!proj)
            continue;
        const auto [px, depth] = *proj;
        const long cu = static_cast<long>(std::lround(px.u));
        const long cv = static_cast<long>(std::lround(px.v));
        const double r = config_.landmark_radius_px;
        const long ir = static_cast<long>(std::ceil(r)) + 1;
        for (long dv = -ir; dv <= ir; ++dv) {
            for (long du = -ir; du <= ir; ++du) {
                const long x = cu + du;
                const long y = cv + dv;
                if (x < 0 || y < 0 ||
                    x >= static_cast<long>(intr.width) ||
                    y >= static_cast<long>(intr.height)) {
                    continue;
                }
                const auto ux = static_cast<std::size_t>(x);
                const auto uy = static_cast<std::size_t>(y);
                const float existing = frame.depth(ux, uy);
                if (existing > 0.0f && existing < depth - 0.5)
                    continue; // occluded by nearer geometry
                const double d2 = du * du + dv * dv;
                const double w = std::exp(-d2 / (2.0 * r * r / 4.0));
                if (w < 0.05)
                    continue;
                const float blob = static_cast<float>(lm.intensity * w);
                frame.intensity(ux, uy) = std::max(
                    frame.intensity(ux, uy) * (1.0f - static_cast<float>(w))
                        + blob,
                    frame.intensity(ux, uy));
                frame.depth(ux, uy) = static_cast<float>(depth);
            }
        }
    }

    return frame;
}

} // namespace sov
