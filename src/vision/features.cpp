#include "vision/features.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sov {

std::vector<Corner>
detectCorners(const Image &image, const CornerConfig &config)
{
    const Image gx = image.gradientX();
    const Image gy = image.gradientY();
    const std::size_t w = image.width();
    const std::size_t h = image.height();
    const int r = config.block_radius;

    // Min-eigenvalue response per pixel.
    Image response(w, h, 0.0f);
    double best = 0.0;
    for (std::size_t y = r; y + r < h; ++y) {
        for (std::size_t x = r; x + r < w; ++x) {
            double ixx = 0.0, iyy = 0.0, ixy = 0.0;
            for (int dy = -r; dy <= r; ++dy) {
                for (int dx = -r; dx <= r; ++dx) {
                    const double vx = gx(x + dx, y + dy);
                    const double vy = gy(x + dx, y + dy);
                    ixx += vx * vx;
                    iyy += vy * vy;
                    ixy += vx * vy;
                }
            }
            // Smaller eigenvalue of [[ixx, ixy], [ixy, iyy]].
            const double tr = ixx + iyy;
            const double det = ixx * iyy - ixy * ixy;
            const double disc = std::sqrt(
                std::max(0.0, tr * tr / 4.0 - det));
            const double lambda_min = tr / 2.0 - disc;
            response(x, y) = static_cast<float>(lambda_min);
            best = std::max(best, lambda_min);
        }
    }

    // Collect candidates above the quality threshold.
    const double threshold = best * config.quality_level;
    std::vector<Corner> candidates;
    for (std::size_t y = r; y + r < h; ++y) {
        for (std::size_t x = r; x + r < w; ++x) {
            const double s = response(x, y);
            if (s < threshold || s <= 0.0)
                continue;
            // Local 3x3 maximum only.
            bool is_max = true;
            for (int dy = -1; dy <= 1 && is_max; ++dy)
                for (int dx = -1; dx <= 1; ++dx)
                    if (response.atClamped(static_cast<long>(x) + dx,
                                           static_cast<long>(y) + dy) > s) {
                        is_max = false;
                        break;
                    }
            if (is_max) {
                candidates.push_back(Corner{static_cast<double>(x),
                                            static_cast<double>(y), s});
            }
        }
    }

    // Greedy NMS by score with a minimum spacing.
    std::sort(candidates.begin(), candidates.end(),
              [](const Corner &a, const Corner &b) {
                  return a.score > b.score;
              });
    std::vector<Corner> corners;
    const double min_d2 = config.min_distance * config.min_distance;
    for (const auto &c : candidates) {
        if (corners.size() >= config.max_corners)
            break;
        bool ok = true;
        for (const auto &kept : corners) {
            const double dx = kept.x - c.x;
            const double dy = kept.y - c.y;
            if (dx * dx + dy * dy < min_d2) {
                ok = false;
                break;
            }
        }
        if (ok)
            corners.push_back(c);
    }
    return corners;
}

namespace {

/** Single-level LK refinement of one point. */
TrackResult
lkSingleLevel(const Image &prev, const Image &next, const Image &gx,
              const Image &gy, double px, double py, double guess_x,
              double guess_y, const LkConfig &config)
{
    const int r = config.window_radius;

    double x = guess_x;
    double y = guess_y;
    TrackResult result;
    for (int iter = 0; iter < config.max_iterations; ++iter) {
        double a11 = 0.0, a12 = 0.0, a22 = 0.0;
        double b1 = 0.0, b2 = 0.0;
        for (int dy = -r; dy <= r; ++dy) {
            for (int dx = -r; dx <= r; ++dx) {
                const double u0 = px + dx;
                const double v0 = py + dy;
                const double ix = gx.sampleBilinear(u0, v0);
                const double iy = gy.sampleBilinear(u0, v0);
                const double dt = next.sampleBilinear(x + dx, y + dy) -
                    prev.sampleBilinear(u0, v0);
                a11 += ix * ix;
                a12 += ix * iy;
                a22 += iy * iy;
                b1 += ix * dt;
                b2 += iy * dt;
            }
        }
        const double det = a11 * a22 - a12 * a12;
        if (det < 1e-9)
            break; // texture-less window
        const double du = -(a22 * b1 - a12 * b2) / det;
        const double dv = -(-a12 * b1 + a11 * b2) / det;
        x += du;
        y += dv;
        if (std::hypot(du, dv) < config.epsilon) {
            result.converged = true;
            break;
        }
    }

    // Final residual.
    double err = 0.0;
    int n = 0;
    for (int dy = -r; dy <= r; ++dy) {
        for (int dx = -r; dx <= r; ++dx) {
            err += std::fabs(next.sampleBilinear(x + dx, y + dy) -
                             prev.sampleBilinear(px + dx, py + dy));
            ++n;
        }
    }
    result.x = x;
    result.y = y;
    result.residual = err / n;
    if (result.residual > config.max_residual)
        result.converged = false;
    return result;
}

} // namespace

std::vector<TrackResult>
trackFeatures(const Image &prev, const Image &next,
              const std::vector<Corner> &points, const LkConfig &config)
{
    SOV_ASSERT(prev.width() == next.width() &&
               prev.height() == next.height());

    // Build pyramids.
    std::vector<Image> pyr_prev{prev};
    std::vector<Image> pyr_next{next};
    for (int l = 1; l < config.pyramid_levels; ++l) {
        pyr_prev.push_back(pyr_prev.back().halfSize());
        pyr_next.push_back(pyr_next.back().halfSize());
    }
    // Per-level gradients of the previous frame, computed once.
    std::vector<Image> pyr_gx, pyr_gy;
    for (const auto &level : pyr_prev) {
        pyr_gx.push_back(level.gradientX());
        pyr_gy.push_back(level.gradientY());
    }

    std::vector<TrackResult> results(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const double scale0 =
            std::pow(2.0, config.pyramid_levels - 1);
        double gx = points[i].x / scale0;
        double gy = points[i].y / scale0;
        TrackResult r;
        for (int l = config.pyramid_levels - 1; l >= 0; --l) {
            const double scale = std::pow(2.0, l);
            const double px = points[i].x / scale;
            const double py = points[i].y / scale;
            const auto li = static_cast<std::size_t>(l);
            r = lkSingleLevel(pyr_prev[li], pyr_next[li], pyr_gx[li],
                              pyr_gy[li], px, py, gx, gy, config);
            if (l > 0) {
                gx = r.x * 2.0;
                gy = r.y * 2.0;
            }
        }
        results[i] = r;
    }
    return results;
}

} // namespace sov
