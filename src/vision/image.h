/**
 * @file
 * Grayscale float image container plus the filtering primitives the
 * perception front-end builds on (gradients, blur, pyramids).
 */
#pragma once

#include <cstddef>
#include <vector>

#include "core/logging.h"

namespace sov {

/** Row-major single-channel float image; intensities nominally [0,1]. */
class Image
{
  public:
    Image() = default;
    Image(std::size_t width, std::size_t height, float fill = 0.0f)
        : width_(width), height_(height), data_(width * height, fill) {}

    std::size_t width() const { return width_; }
    std::size_t height() const { return height_; }
    bool empty() const { return data_.empty(); }

    float operator()(std::size_t x, std::size_t y) const
    {
        SOV_ASSERT(x < width_ && y < height_);
        return data_[y * width_ + x];
    }
    float &operator()(std::size_t x, std::size_t y)
    {
        SOV_ASSERT(x < width_ && y < height_);
        return data_[y * width_ + x];
    }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Clamped integer access (border replication). */
    float atClamped(long x, long y) const;

    /** Bilinear sample at a fractional position (border clamped). */
    float sampleBilinear(double x, double y) const;

    /** Horizontal central-difference gradient. */
    Image gradientX() const;
    /** Vertical central-difference gradient. */
    Image gradientY() const;

    /** 3x3 box blur. */
    Image boxBlur3() const;

    /** Separable Gaussian blur (sigma > 0). */
    Image gaussianBlur(double sigma) const;

    /** Half-resolution downsample (2x2 average) for pyramids. */
    Image halfSize() const;

    /** Mean intensity. */
    double mean() const;
    /** Intensity variance. */
    double variance() const;

    /** Crop a w x h window with top-left (x0, y0), border clamped. */
    Image crop(long x0, long y0, std::size_t w, std::size_t h) const;

  private:
    std::size_t width_ = 0;
    std::size_t height_ = 0;
    std::vector<float> data_;
};

} // namespace sov
