/**
 * @file
 * Synthetic camera renderer — the camera-sensor substitute.
 *
 * Renders the world into grayscale images with enough structure for
 * the real perception algorithms to operate on: procedurally textured
 * ground (dense stereo matching), landmark blobs (corner features for
 * tracking), and shaded obstacle boxes (object detection). A depth
 * buffer ensures correct occlusion, and the same renderer can emit the
 * ground-truth depth map used to score stereo output.
 */
#pragma once

#include "core/time.h"
#include "vision/camera_model.h"
#include "vision/image.h"
#include "world/world.h"

namespace sov {

/** What the renderer produced for one exposure. */
struct RenderedFrame
{
    Image intensity;
    Image depth; //!< ground-truth depth per pixel (meters; 0 = sky)
};

/** Renderer settings. */
struct RendererConfig
{
    double ground_texture_scale = 1.2;  //!< world-units per noise cell
    double ground_brightness = 0.45;
    double sky_brightness = 0.9;
    double landmark_radius_px = 2.5;
    bool render_ground_texture = true;
};

/** Deterministic procedural renderer. */
class Renderer
{
  public:
    explicit Renderer(const RendererConfig &config = {}) : config_(config) {}

    /**
     * Render the world as seen by @p camera at pose @p pose and time
     * @p t (moving obstacles are advanced to t).
     */
    RenderedFrame render(const WorldSnapshot &world, const CameraModel &camera,
                         const CameraPose &pose, Timestamp t) const;

    /**
     * Deterministic value noise in [0,1] of a world position; exposed
     * so tests can verify view consistency.
     */
    static double groundTexture(double wx, double wy, double scale);

  private:
    RendererConfig config_;
};

} // namespace sov
