#include "vision/visual_odometry.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sov {

std::optional<Vec2>
VisualOdometryFrontEnd::backprojectBody(double u, double v,
                                        const Image &depth) const
{
    const long xi = static_cast<long>(std::lround(u));
    const long yi = static_cast<long>(std::lround(v));
    if (xi < 0 || yi < 0 ||
        xi >= static_cast<long>(depth.width()) ||
        yi >= static_cast<long>(depth.height())) {
        return std::nullopt;
    }
    const double z = depth(static_cast<std::size_t>(xi),
                           static_cast<std::size_t>(yi));
    if (z <= 0.1 || z > config_.max_depth)
        return std::nullopt;

    // Camera posed on an identity body pose: backprojection lands in
    // the body frame directly.
    const CameraPose pose = camera_.poseAt(Pose2{Vec2(0, 0), 0.0});
    const Vec3 world = camera_.backproject(pose, Pixel{u, v}, z);
    return Vec2(world.x(), world.y());
}

VoEstimate
VisualOdometryFrontEnd::estimate(const Image &prev,
                                 const Image &prev_depth,
                                 const Image &next,
                                 const Image &next_depth) const
{
    VoEstimate out;

    const auto corners = detectCorners(prev, config_.corners);
    if (corners.size() < config_.min_matches)
        return out;
    const auto tracks = trackFeatures(prev, next, corners, config_.lk);

    // Matched 3-D (planar) point pairs in each frame's body frame.
    std::vector<Vec2> p; // earlier frame
    std::vector<Vec2> q; // later frame
    for (std::size_t i = 0; i < corners.size(); ++i) {
        if (!tracks[i].converged)
            continue;
        const auto bp = backprojectBody(corners[i].x, corners[i].y,
                                        prev_depth);
        const auto bq = backprojectBody(tracks[i].x, tracks[i].y,
                                        next_depth);
        if (!bp || !bq)
            continue;
        p.push_back(*bp);
        q.push_back(*bq);
    }
    out.matches = p.size();
    if (p.size() < config_.min_matches)
        return out;

    // Closed-form 2-D rigid alignment with outlier-rejection rounds.
    std::vector<bool> inlier(p.size(), true);
    double dyaw = 0.0;
    Vec2 t(0.0, 0.0);
    for (int round = 0; round <= config_.refine_rounds; ++round) {
        Vec2 cp(0, 0), cq(0, 0);
        std::size_t n = 0;
        for (std::size_t i = 0; i < p.size(); ++i) {
            if (!inlier[i])
                continue;
            cp += p[i];
            cq += q[i];
            ++n;
        }
        if (n < config_.min_matches)
            return out;
        cp = cp / static_cast<double>(n);
        cq = cq / static_cast<double>(n);

        // The body rotates by dyaw: q_i = R(-dyaw) (p_i - t), so
        // p-centered and q-centered points satisfy
        // (q - cq) = R(-dyaw) (p - cp). Estimate the rotation from
        // cross/dot sums (Umeyama in 2-D).
        double sin_sum = 0.0, cos_sum = 0.0;
        for (std::size_t i = 0; i < p.size(); ++i) {
            if (!inlier[i])
                continue;
            const Vec2 a = p[i] - cp;
            const Vec2 b = q[i] - cq;
            cos_sum += a.dot(b);
            sin_sum += a.x() * b.y() - a.y() * b.x();
        }
        const double theta = std::atan2(sin_sum, cos_sum); // = -dyaw
        dyaw = -theta;

        // Translation from centroids: cq = R(theta) (cp - t)
        // => t = cp - R(-theta) cq.
        const double c = std::cos(-theta), s = std::sin(-theta);
        t = cp - Vec2(c * cq.x() - s * cq.y(),
                      s * cq.x() + c * cq.y());

        // Residuals -> outliers for the next round. The gate adapts
        // to the residual median so a fit corrupted by bad depth
        // pairs still keeps its better half and recovers.
        std::vector<double> residuals(p.size());
        const double cc = std::cos(theta), ss = std::sin(theta);
        for (std::size_t i = 0; i < p.size(); ++i) {
            const Vec2 shifted = p[i] - t;
            const Vec2 predicted(cc * shifted.x() - ss * shifted.y(),
                                 ss * shifted.x() + cc * shifted.y());
            residuals[i] = predicted.distanceTo(q[i]);
        }
        std::vector<double> sorted = residuals;
        std::nth_element(sorted.begin(),
                         sorted.begin() + sorted.size() / 2,
                         sorted.end());
        const double gate = std::max(config_.outlier_threshold,
                                     2.5 * sorted[sorted.size() / 2]);

        double residual_sum = 0.0;
        std::size_t survivors = 0;
        for (std::size_t i = 0; i < p.size(); ++i) {
            const bool ok = residuals[i] <= gate;
            inlier[i] = ok;
            if (ok) {
                residual_sum += residuals[i];
                ++survivors;
            }
        }
        out.inliers = survivors;
        out.mean_residual =
            survivors ? residual_sum / static_cast<double>(survivors)
                      : 0.0;
        if (survivors < config_.min_matches)
            return out;
    }

    // Body displacement in the earlier body frame is t; the body
    // yawed by dyaw.
    out.body_displacement = t;
    out.delta_yaw = wrapAngle(dyaw);
    out.valid = true;
    return out;
}

} // namespace sov
