#include "vision/detector.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "core/logging.h"
#include "vision/renderer.h"

namespace sov {

double
BoundingBox::iou(const BoundingBox &o) const
{
    const double x1 = std::max(x, o.x);
    const double y1 = std::max(y, o.y);
    const double x2 = std::min(x + w, o.x + o.w);
    const double y2 = std::min(y + h, o.y + o.h);
    if (x2 <= x1 || y2 <= y1)
        return 0.0;
    const double inter = (x2 - x1) * (y2 - y1);
    return inter / (area() + o.area() - inter);
}

std::optional<BoundingBox>
projectObstacleBox(const CameraModel &camera, const CameraPose &pose,
                   const Obstacle &obstacle, Timestamp t)
{
    const OrientedBox2 footprint = obstacle.footprintAt(t);
    const auto corners = footprint.corners();
    double u_min = 1e18, u_max = -1e18, v_min = 1e18, v_max = -1e18;
    bool any = false;
    for (const auto &c : corners) {
        for (const double z : {0.0, obstacle.height}) {
            const auto proj = camera.project(pose, Vec3(c.x(), c.y(), z));
            if (!proj)
                continue;
            any = true;
            u_min = std::min(u_min, proj->first.u);
            u_max = std::max(u_max, proj->first.u);
            v_min = std::min(v_min, proj->first.v);
            v_max = std::max(v_max, proj->first.v);
        }
    }
    if (!any || u_max - u_min < 1.0 || v_max - v_min < 1.0)
        return std::nullopt;
    return BoundingBox{u_min, v_min, u_max - u_min, v_max - v_min};
}

ObjectDetector::ObjectDetector(Network classifier,
                               const DetectorConfig &config)
    : classifier_(std::move(classifier)), config_(config)
{
    classifier_.setBackend(config_.backend);
}

std::vector<BoundingBox>
ObjectDetector::proposals(const Image &frame) const
{
    const std::size_t w = frame.width();
    const std::size_t h = frame.height();

    // Connected components of below-threshold pixels (8-connectivity).
    std::vector<int> labels(w * h, -1);
    std::vector<BoundingBox> boxes;
    int next_label = 0;

    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            if (labels[y * w + x] != -1 ||
                frame(x, y) >= config_.intensity_threshold) {
                continue;
            }
            // BFS flood fill.
            std::size_t count = 0;
            std::size_t x_min = x, x_max = x, y_min = y, y_max = y;
            std::queue<std::pair<std::size_t, std::size_t>> frontier;
            frontier.emplace(x, y);
            labels[y * w + x] = next_label;
            while (!frontier.empty()) {
                const auto [cx, cy] = frontier.front();
                frontier.pop();
                ++count;
                x_min = std::min(x_min, cx);
                x_max = std::max(x_max, cx);
                y_min = std::min(y_min, cy);
                y_max = std::max(y_max, cy);
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        const long nx = static_cast<long>(cx) + dx;
                        const long ny = static_cast<long>(cy) + dy;
                        if (nx < 0 || ny < 0 ||
                            nx >= static_cast<long>(w) ||
                            ny >= static_cast<long>(h)) {
                            continue;
                        }
                        const auto idx = static_cast<std::size_t>(ny) * w +
                            static_cast<std::size_t>(nx);
                        if (labels[idx] != -1 ||
                            frame(static_cast<std::size_t>(nx),
                                  static_cast<std::size_t>(ny)) >=
                                config_.intensity_threshold) {
                            continue;
                        }
                        labels[idx] = next_label;
                        frontier.emplace(static_cast<std::size_t>(nx),
                                         static_cast<std::size_t>(ny));
                    }
                }
            }
            ++next_label;
            if (count >= config_.min_box_pixels) {
                boxes.push_back(BoundingBox{
                    static_cast<double>(x_min), static_cast<double>(y_min),
                    static_cast<double>(x_max - x_min + 1),
                    static_cast<double>(y_max - y_min + 1)});
            }
        }
    }
    return boxes;
}

Image
ObjectDetector::extractPatch(const Image &frame,
                             const BoundingBox &box) const
{
    const std::size_t p = config_.patch_size;
    Image patch(p, p);
    for (std::size_t py = 0; py < p; ++py) {
        for (std::size_t px = 0; px < p; ++px) {
            const double sx = box.x + (px + 0.5) / p * box.w;
            const double sy = box.y + (py + 0.5) / p * box.h;
            patch(px, py) = frame.sampleBilinear(sx, sy);
        }
    }
    return patch;
}

std::vector<Detection>
ObjectDetector::detect(const Image &frame) const
{
    std::vector<Detection> detections;
    for (const auto &box : proposals(frame)) {
        Image patch = extractPatch(frame, box);
        const Tensor logits =
            classifier_.infer(Tensor::fromImage(std::move(patch)));
        const auto probs = Network::softmax(logits);
        SOV_ASSERT(probs.size() == 5);
        std::size_t best = 0;
        for (std::size_t i = 1; i < probs.size(); ++i)
            if (probs[i] > probs[best])
                best = i;
        if (best == 4 || probs[best] < config_.min_confidence)
            continue; // background or low confidence
        Detection det;
        det.box = box;
        det.cls = static_cast<ObjectClass>(best);
        det.confidence = probs[best];
        detections.push_back(det);
    }

    // Greedy non-maximum suppression.
    std::sort(detections.begin(), detections.end(),
              [](const Detection &a, const Detection &b) {
                  return a.confidence > b.confidence;
              });
    std::vector<Detection> kept;
    for (const auto &det : detections) {
        bool suppressed = false;
        for (const auto &k : kept) {
            if (det.box.iou(k.box) > config_.nms_iou) {
                suppressed = true;
                break;
            }
        }
        if (!suppressed)
            kept.push_back(det);
    }
    return kept;
}

std::size_t
classLabel(ObjectClass c)
{
    return static_cast<std::size_t>(c);
}

std::vector<PatchExample>
buildPatchDataset(const WorldSnapshot &world, const CameraModel &camera,
                  std::size_t views, std::size_t patch_size, Rng &rng)
{
    Renderer renderer;
    std::vector<PatchExample> examples;
    DetectorConfig cfg;
    cfg.patch_size = patch_size;
    // A scratch detector only used for its patch resampler.
    Rng net_rng = rng.fork("scratch");
    ObjectDetector resampler(makePatchClassifier(patch_size, 5, net_rng),
                             cfg);

    std::vector<PatchExample> background;
    for (std::size_t v = 0; v < views; ++v) {
        // Aim each viewpoint at a random obstacle so the dataset is not
        // dominated by empty views.
        Pose2 body{Vec2(rng.uniform(-30, 30), rng.uniform(-30, 30)),
                   rng.uniform(-M_PI, M_PI)};
        if (!world.obstacles().empty()) {
            const auto &target = world.obstacles()[static_cast<std::size_t>(
                rng.uniformInt(0,
                               static_cast<std::int64_t>(
                                   world.obstacles().size()) - 1))];
            const double bearing = rng.uniform(-M_PI, M_PI);
            const double dist = rng.uniform(5.0, 22.0);
            const Vec2 tpos = target.footprint.pose.position;
            body.position = tpos +
                Vec2(std::cos(bearing), std::sin(bearing)) * dist;
            const Vec2 to_target = tpos - body.position;
            body.heading = std::atan2(to_target.y(), to_target.x()) +
                rng.uniform(-0.15, 0.15);
        }
        const CameraPose pose = camera.poseAt(body);
        const RenderedFrame frame =
            renderer.render(world, camera, pose, Timestamp::origin());

        // Positive patches from ground-truth boxes.
        for (const auto &obs : world.obstacles()) {
            const auto box = projectObstacleBox(camera, pose, obs,
                                                Timestamp::origin());
            if (!box || box->w < 6.0 || box->h < 6.0)
                continue;
            Image patch = resampler.extractPatch(frame.intensity, *box);
            examples.push_back(
                PatchExample{Tensor::fromImage(std::move(patch)),
                             classLabel(obs.cls)});
        }

        // Background patches (label 4).
        for (int b = 0; b < 2; ++b) {
            const double bw = rng.uniform(12, 50);
            const double bh = rng.uniform(12, 50);
            const BoundingBox box{
                rng.uniform(0.0, camera.intrinsics().width - bw),
                rng.uniform(0.0, camera.intrinsics().height - bh), bw, bh};
            bool overlaps = false;
            for (const auto &obs : world.obstacles()) {
                const auto gt = projectObstacleBox(camera, pose, obs,
                                                   Timestamp::origin());
                if (gt && gt->iou(box) > 0.05) {
                    overlaps = true;
                    break;
                }
            }
            if (overlaps)
                continue;
            Image patch = resampler.extractPatch(frame.intensity, box);
            background.push_back(
                PatchExample{Tensor::fromImage(std::move(patch)), 4});
        }
    }

    // Keep the classes balanced: at most one background example per
    // positive (and at least a handful).
    const std::size_t keep =
        std::max<std::size_t>(4, examples.size());
    for (std::size_t i = 0; i < background.size() && i < keep; ++i)
        examples.push_back(std::move(background[i]));
    return examples;
}

ObjectDetector
trainSiteDetector(const WorldSnapshot &world, const CameraModel &camera,
                  std::size_t views, std::size_t epochs, Rng &rng,
                  const DetectorConfig &config)
{
    Rng net_rng = rng.fork("detector-weights");
    Network net = makePatchClassifier(config.patch_size, 5, net_rng);

    const auto dataset =
        buildPatchDataset(world, camera, views, config.patch_size, rng);
    SOV_ASSERT(!dataset.empty());

    std::vector<Tensor> inputs;
    std::vector<std::size_t> labels;
    inputs.reserve(dataset.size());
    for (const auto &ex : dataset) {
        inputs.push_back(ex.patch);
        labels.push_back(ex.label);
    }
    Rng train_rng = rng.fork("detector-train");
    net.train(inputs, labels, 0.01f, epochs, train_rng);
    return ObjectDetector(std::move(net), config);
}

} // namespace sov
