#include "vision/stereo.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sov {

double
DisparityMap::depthAt(std::size_t x, std::size_t y,
                      const StereoRig &rig) const
{
    const double d = disparity(x, y);
    if (d <= 0.0)
        return -1.0;
    return rig.depthFromDisparity(d);
}

double
StereoMatcher::matchPixel(const Image &left, const Image &right, int x,
                          int y, int d_lo, int d_hi,
                          std::vector<double> &sads) const
{
    const int r = config_.block_radius;
    d_lo = std::max(d_lo, 0);
    d_hi = std::min(d_hi, x - r); // right window must stay in-image
    if (d_hi < d_lo)
        return -1.0;

    const int n = (2 * r + 1) * (2 * r + 1);
    double best_sad = 1e18;
    int best_d = -1;
    sads.resize(static_cast<std::size_t>(d_hi - d_lo + 1));

    for (int d = d_lo; d <= d_hi; ++d) {
        double sad = 0.0;
        for (int dy = -r; dy <= r; ++dy) {
            for (int dx = -r; dx <= r; ++dx) {
                const double a = left.atClamped(x + dx, y + dy);
                const double b = right.atClamped(x - d + dx, y + dy);
                sad += std::fabs(a - b);
            }
        }
        sad /= n;
        sads[static_cast<std::size_t>(d - d_lo)] = sad;
        if (sad < best_sad) {
            best_sad = sad;
            best_d = d;
        }
    }

    if (best_d < 0 || best_sad > config_.max_sad)
        return -1.0;

    // Parabolic subpixel refinement over the SAD curve.
    double refined = best_d;
    if (best_d > d_lo && best_d < d_hi) {
        const double c0 = sads[static_cast<std::size_t>(best_d - 1 - d_lo)];
        const double c1 = sads[static_cast<std::size_t>(best_d - d_lo)];
        const double c2 = sads[static_cast<std::size_t>(best_d + 1 - d_lo)];
        const double denom = c0 - 2.0 * c1 + c2;
        if (denom > 1e-12)
            refined += 0.5 * (c0 - c2) / denom;
    }
    return refined;
}

double
StereoMatcher::matchRightPixel(const Image &left, const Image &right,
                               int x, int y, int d_lo, int d_hi) const
{
    const int r = config_.block_radius;
    const int w = static_cast<int>(left.width());
    d_lo = std::max(d_lo, 0);
    d_hi = std::min(d_hi, w - 1 - r - x); // left window stays in-image
    if (d_hi < d_lo)
        return -1.0;

    const int n = (2 * r + 1) * (2 * r + 1);
    double best_sad = 1e18;
    int best_d = -1;
    for (int d = d_lo; d <= d_hi; ++d) {
        double sad = 0.0;
        for (int dy = -r; dy <= r; ++dy)
            for (int dx = -r; dx <= r; ++dx)
                sad += std::fabs(right.atClamped(x + dx, y + dy) -
                                 left.atClamped(x + d + dx, y + dy));
        sad /= n;
        if (sad < best_sad) {
            best_sad = sad;
            best_d = d;
        }
    }
    if (best_d < 0 || best_sad > config_.max_sad)
        return -1.0;
    return best_d;
}

std::vector<SupportPoint>
StereoMatcher::supportPoints(const Image &left, const Image &right) const
{
    if (config_.backend != KernelBackend::Reference)
        return supportPointsFast(left, right);

    std::vector<SupportPoint> points;
    const int step = config_.support_grid_step;
    const int r = config_.block_radius;
    std::vector<double> sads;
    for (int y = r + step / 2; y < static_cast<int>(left.height()) - r;
         y += step) {
        for (int x = r + step / 2; x < static_cast<int>(left.width()) - r;
             x += step) {
            const double d = matchPixel(left, right, x, y, 0,
                                        config_.max_disparity, sads);
            if (d >= 0.0)
                points.push_back(SupportPoint{x, y, d});
        }
    }
    return points;
}

DisparityMap
StereoMatcher::match(const Image &left, const Image &right) const
{
    SOV_ASSERT(left.width() == right.width() &&
               left.height() == right.height());
    if (config_.backend != KernelBackend::Reference)
        return matchFast(left, right);
    return matchReference(left, right);
}

DisparityMap
StereoMatcher::matchReference(const Image &left, const Image &right) const
{
    const std::size_t w = left.width();
    const std::size_t h = left.height();

    const auto supports = supportPoints(left, right);

    DisparityMap out;
    out.disparity = Image(w, h, -1.0f);
    std::size_t valid = 0;
    std::vector<double> sads;

    for (std::size_t y = 0; y < h; ++y) {
        for (std::size_t x = 0; x < w; ++x) {
            // Disparity prior: inverse-distance-weighted interpolation
            // of nearby support points (cheap ELAS-style prior).
            double prior = -1.0;
            if (!supports.empty()) {
                double wsum = 0.0, dsum = 0.0;
                for (const auto &sp : supports) {
                    const double dx = sp.x - static_cast<double>(x);
                    const double dy = sp.y - static_cast<double>(y);
                    const double dist2 = dx * dx + dy * dy + 1.0;
                    if (dist2 > 40.0 * 40.0)
                        continue;
                    const double wgt = 1.0 / dist2;
                    wsum += wgt;
                    dsum += wgt * sp.disparity;
                }
                if (wsum > 0.0)
                    prior = dsum / wsum;
            }

            int d_lo = 0, d_hi = config_.max_disparity;
            if (prior >= 0.0) {
                d_lo = static_cast<int>(prior) - config_.prior_margin;
                d_hi = static_cast<int>(prior) + config_.prior_margin;
            }

            const double d = matchPixel(left, right,
                                        static_cast<int>(x),
                                        static_cast<int>(y), d_lo, d_hi,
                                        sads);
            if (d < 0.0)
                continue;

            if (config_.left_right_check) {
                // The right pixel at (x - d) must match back to ~x.
                const int rx = static_cast<int>(x) -
                    static_cast<int>(std::lround(d));
                if (rx < 0)
                    continue;
                const double dr = matchRightPixel(
                    left, right, rx, static_cast<int>(y), d_lo, d_hi);
                if (dr < 0.0 || std::fabs(dr - d) > config_.lr_tolerance)
                    continue;
            }

            out.disparity(x, y) = static_cast<float>(d);
            ++valid;
        }
    }
    out.density = static_cast<double>(valid) / static_cast<double>(w * h);
    return out;
}

} // namespace sov
