/**
 * @file
 * Image-based visual odometry front-end.
 *
 * The VIO localization (Table III) consumes frame-to-frame relative
 * motion. This front-end produces it from pixels: Shi–Tomasi corners
 * tracked with pyramidal LK, back-projected to 3-D with the depth map
 * (from the stereo pipeline or, in tests, the renderer's ground
 * truth), then a closed-form 2-D rigid alignment (Umeyama) with
 * residual-based outlier rejection recovers the planar body motion.
 */
#pragma once

#include <optional>

#include "core/time.h"
#include "math/geometry.h"
#include "vision/camera_model.h"
#include "vision/features.h"
#include "vision/image.h"

namespace sov {

/** Front-end configuration. */
struct VoFrontEndConfig
{
    CornerConfig corners;
    LkConfig lk;
    std::size_t min_matches = 8;
    double max_depth = 30.0;        //!< ignore far, noisy points
    double outlier_threshold = 0.25; //!< meters of alignment residual
    int refine_rounds = 2;           //!< outlier-rejection passes
};

/** Estimated planar motion between two frames. */
struct VoEstimate
{
    bool valid = false;
    Vec2 body_displacement;  //!< body frame at the earlier frame
    double delta_yaw = 0.0;
    std::size_t matches = 0; //!< tracked features used
    std::size_t inliers = 0; //!< surviving the rejection rounds
    double mean_residual = 0.0;
};

/** Corners + LK + depth -> planar rigid motion. */
class VisualOdometryFrontEnd
{
  public:
    explicit VisualOdometryFrontEnd(const CameraModel &camera,
                                    const VoFrontEndConfig &config = {})
        : camera_(camera), config_(config) {}

    /**
     * Estimate the body motion from the earlier frame to the later
     * frame.
     * @param prev / prev_depth Earlier intensity + per-pixel depth.
     * @param next / next_depth Later intensity + per-pixel depth.
     */
    VoEstimate estimate(const Image &prev, const Image &prev_depth,
                        const Image &next, const Image &next_depth) const;

  private:
    /** Pixel + depth -> 3-D point in the *body* frame (planar x, y). */
    std::optional<Vec2> backprojectBody(double u, double v,
                                        const Image &depth) const;

    CameraModel camera_;
    VoFrontEndConfig config_;
};

} // namespace sov
