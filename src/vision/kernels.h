/**
 * @file
 * Forwarding header: the kernel backend enum moved to core/kernels.h
 * when the pointcloud layer (ICP) gained a backend switch — vision is
 * no longer the only consumer, and pointcloud does not link vision.
 * Existing includes of "vision/kernels.h" keep compiling.
 */
#pragma once

#include "core/kernels.h"
