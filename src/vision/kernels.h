/**
 * @file
 * Kernel backend selection for the perception hot path.
 *
 * Every optimized perception kernel (sliding-window stereo SAD,
 * im2col GEMM convolution) keeps its naive scalar implementation as a
 * reference oracle. The backend switch selects between them at the
 * algorithm-config level so benchmarks, tests and the
 * KernelExecutor-driven pipelines can run either side of the
 * comparison on the same inputs.
 *
 * Determinism contract (Fast backend): outputs depend only on the
 * inputs and the kernel configuration — never on the thread count of
 * the ThreadPool executing it. Parallel kernels partition work into
 * fixed-size blocks (config-derived, not thread-derived) and reduce
 * results in block order. bench_kernels and tests/vision/test_kernels
 * enforce this with cross-thread-count fingerprints.
 */
#pragma once

#include <string>

namespace sov {

/** Which implementation of a perception kernel runs. */
enum class KernelBackend
{
    Reference, //!< naive scalar oracle
    Fast,      //!< optimized (sliding-window / im2col GEMM / arena)
};

/** Canonical lowercase name ("reference" / "fast"). */
const char *kernelBackendName(KernelBackend backend);

/** Parse a backend name; fatal on anything else. */
KernelBackend kernelBackendFromName(const std::string &name);

} // namespace sov
