/**
 * @file
 * Image signal processor (ISP) stage.
 *
 * The paper identifies the camera sensing pipeline — dominated by the
 * ISP and the kernel/driver stack on the FPGA's embedded SoC — as the
 * single biggest end-to-end latency contributor (Sec. V-C) and a
 * ~10 ms source of timestamp jitter (Sec. VI-A). This module provides
 * the *functional* ISP: the raw sensor frame is denoised, sharpened,
 * vignette-corrected, and exposure-normalized before perception sees
 * it. Its latency behaviour lives in sensors/pipeline_model.
 */
#pragma once

#include "core/rng.h"
#include "vision/image.h"

namespace sov {

/** ISP stage configuration. */
struct IspConfig
{
    bool denoise = true;
    double denoise_sigma = 0.7;     //!< Gaussian pre-filter strength
    bool sharpen = true;
    double sharpen_amount = 0.6;    //!< unsharp-mask gain
    bool vignette_correction = true;
    double vignette_strength = 0.25; //!< assumed lens falloff at corners
    bool auto_exposure = true;
    double target_mean = 0.45;      //!< AE target intensity
    double max_gain = 2.5;          //!< AE gain clamp
};

/** Raw-sensor degradation model (what the ISP has to undo). */
struct SensorDegradation
{
    double read_noise_sigma = 0.02; //!< additive Gaussian read noise
    double vignette_strength = 0.25;
    double exposure_gain = 1.0;     //!< scene under/over-exposure
};

/** Apply the degradations a raw sensor adds (for tests/simulation). */
Image degradeRawFrame(const Image &ideal, const SensorDegradation &d,
                      Rng &rng);

/** The ISP: raw frame in, perception-ready frame out. */
class ImageSignalProcessor
{
  public:
    explicit ImageSignalProcessor(const IspConfig &config = {})
        : config_(config) {}

    /** Process one raw frame. */
    Image process(const Image &raw) const;

    const IspConfig &config() const { return config_; }

  private:
    IspConfig config_;
};

} // namespace sov
