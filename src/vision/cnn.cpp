#include "vision/cnn.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.h"
#include "math/gemm.h"

namespace sov {

Tensor::Tensor(std::size_t channels, std::size_t height, std::size_t width,
               std::vector<float> data)
    : c_(channels), h_(height), w_(width), data_(std::move(data))
{
    SOV_ASSERT(data_.size() == c_ * h_ * w_);
}

Tensor
Tensor::fromImage(const Image &image)
{
    // Row-major image == 1 x H x W CHW tensor: one buffer copy.
    return Tensor(1, image.height(), image.width(), image.data());
}

Tensor
Tensor::fromImage(Image &&image)
{
    const std::size_t h = image.height();
    const std::size_t w = image.width();
    return Tensor(1, h, w, std::move(image.data()));
}

// ---------------------------------------------------------------- Conv2d

namespace {

/** Transpose of im2col: scatter-add col rows back into image space. */
void
col2imAdd(const float *col, std::size_t in_c, std::size_t k, std::size_t h,
          std::size_t w, Tensor &out)
{
    const long pad = static_cast<long>(k / 2);
    const std::size_t n = h * w;
    std::size_t row = 0;
    for (std::size_t i = 0; i < in_c; ++i) {
        for (std::size_t ky = 0; ky < k; ++ky) {
            for (std::size_t kx = 0; kx < k; ++kx, ++row) {
                const float *src = col + row * n;
                for (std::size_t y = 0; y < h; ++y) {
                    const long sy = static_cast<long>(y + ky) - pad;
                    if (sy < 0 || sy >= static_cast<long>(h))
                        continue;
                    for (std::size_t x = 0; x < w; ++x) {
                        const long sx = static_cast<long>(x + kx) - pad;
                        if (sx < 0 || sx >= static_cast<long>(w))
                            continue;
                        out(i, static_cast<std::size_t>(sy),
                            static_cast<std::size_t>(sx)) += src[y * w + x];
                    }
                }
            }
        }
    }
}

} // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, Rng &rng)
    : in_c_(in_channels), out_c_(out_channels), k_(kernel),
      weights_(out_channels * in_channels * kernel * kernel),
      bias_(out_channels, 0.0f),
      grad_weights_(weights_.size(), 0.0f),
      grad_bias_(out_channels, 0.0f)
{
    // He initialization.
    const double scale =
        std::sqrt(2.0 / static_cast<double>(in_c_ * k_ * k_));
    for (auto &w : weights_)
        w = static_cast<float>(rng.gaussian(0.0, scale));
}

float &
Conv2d::weight(std::size_t o, std::size_t i, std::size_t ky, std::size_t kx)
{
    return weights_[((o * in_c_ + i) * k_ + ky) * k_ + kx];
}

Tensor
Conv2d::forward(Tensor input, bool cache_for_backward)
{
    SOV_ASSERT(input.channels() == in_c_);
    Tensor out(out_c_, input.height(), input.width());
    if (backend_ != KernelBackend::Reference)
        forwardFast(input, out);
    else
        forwardReference(input, out);
    if (cache_for_backward)
        cached_input_ = std::move(input);
    return out;
}

void
Conv2d::forwardReference(const Tensor &input, Tensor &out) const
{
    const std::size_t h = input.height();
    const std::size_t w = input.width();
    const long pad = static_cast<long>(k_ / 2);

    for (std::size_t o = 0; o < out_c_; ++o) {
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                float acc = bias_[o];
                for (std::size_t i = 0; i < in_c_; ++i) {
                    for (std::size_t ky = 0; ky < k_; ++ky) {
                        const long sy = static_cast<long>(y + ky) - pad;
                        if (sy < 0 || sy >= static_cast<long>(h))
                            continue;
                        for (std::size_t kx = 0; kx < k_; ++kx) {
                            const long sx =
                                static_cast<long>(x + kx) - pad;
                            if (sx < 0 || sx >= static_cast<long>(w))
                                continue;
                            acc += weights_[((o * in_c_ + i) * k_ + ky) *
                                            k_ + kx] *
                                input(i, static_cast<std::size_t>(sy),
                                      static_cast<std::size_t>(sx));
                        }
                    }
                }
                out(o, y, x) = acc;
            }
        }
    }
}

void
Conv2d::im2colInto(const Tensor &input, float *col) const
{
    const std::size_t h = input.height();
    const std::size_t w = input.width();
    const long pad = static_cast<long>(k_ / 2);
    const std::size_t n = h * w;

    // Row order (i, ky, kx) matches the weight layout, so weights_ can
    // be used as the [out_c x in_c*k*k] GEMM operand unchanged.
    std::size_t row = 0;
    for (std::size_t i = 0; i < in_c_; ++i) {
        for (std::size_t ky = 0; ky < k_; ++ky) {
            for (std::size_t kx = 0; kx < k_; ++kx, ++row) {
                float *dst = col + row * n;
                for (std::size_t y = 0; y < h; ++y) {
                    const long sy = static_cast<long>(y + ky) - pad;
                    if (sy < 0 || sy >= static_cast<long>(h)) {
                        std::fill_n(dst + y * w, w, 0.0f);
                        continue;
                    }
                    const float *srow =
                        input.data().data() +
                        (i * h + static_cast<std::size_t>(sy)) * w;
                    for (std::size_t x = 0; x < w; ++x) {
                        const long sx = static_cast<long>(x + kx) - pad;
                        dst[y * w + x] =
                            (sx < 0 || sx >= static_cast<long>(w))
                                ? 0.0f
                                : srow[static_cast<std::size_t>(sx)];
                    }
                }
            }
        }
    }
}

void
Conv2d::forwardFast(const Tensor &input, Tensor &out)
{
    const std::size_t h = input.height();
    const std::size_t w = input.width();
    const std::size_t n = h * w;
    const std::size_t kk = in_c_ * k_ * k_;

    scratch_.reset();
    float *col = scratch_.alloc<float>(kk * n);
    im2colInto(input, col);

    // Seed every output row with its bias, then out += W * col. The
    // GEMM accumulates each element in ascending k order — the same
    // order as the reference loop nest (zero-padded taps add 0.0f).
    float *od = out.data().data();
    for (std::size_t o = 0; o < out_c_; ++o)
        std::fill_n(od + o * n, n, bias_[o]);
    gemmF32(out_c_, n, kk, weights_.data(), col, od,
            backend_ == KernelBackend::Simd ? detectSimdLevel()
                                            : SimdLevel::None);
}

Tensor
Conv2d::backward(const Tensor &grad_output)
{
    if (backend_ != KernelBackend::Reference)
        return backwardFast(grad_output);
    return backwardReference(grad_output);
}

Tensor
Conv2d::backwardReference(const Tensor &grad_output)
{
    const Tensor &input = cached_input_;
    const std::size_t h = input.height();
    const std::size_t w = input.width();
    const long pad = static_cast<long>(k_ / 2);
    Tensor grad_input(in_c_, h, w);

    for (std::size_t o = 0; o < out_c_; ++o) {
        for (std::size_t y = 0; y < h; ++y) {
            for (std::size_t x = 0; x < w; ++x) {
                const float go = grad_output(o, y, x);
                if (go == 0.0f)
                    continue;
                grad_bias_[o] += go;
                for (std::size_t i = 0; i < in_c_; ++i) {
                    for (std::size_t ky = 0; ky < k_; ++ky) {
                        const long sy = static_cast<long>(y + ky) - pad;
                        if (sy < 0 || sy >= static_cast<long>(h))
                            continue;
                        for (std::size_t kx = 0; kx < k_; ++kx) {
                            const long sx =
                                static_cast<long>(x + kx) - pad;
                            if (sx < 0 || sx >= static_cast<long>(w))
                                continue;
                            const auto sys =
                                static_cast<std::size_t>(sy);
                            const auto sxs =
                                static_cast<std::size_t>(sx);
                            const std::size_t widx =
                                ((o * in_c_ + i) * k_ + ky) * k_ + kx;
                            grad_weights_[widx] +=
                                go * input(i, sys, sxs);
                            grad_input(i, sys, sxs) +=
                                go * weights_[widx];
                        }
                    }
                }
            }
        }
    }
    return grad_input;
}

Tensor
Conv2d::backwardFast(const Tensor &grad_output)
{
    const Tensor &input = cached_input_;
    const std::size_t h = input.height();
    const std::size_t w = input.width();
    const std::size_t n = h * w;
    const std::size_t kk = in_c_ * k_ * k_;

    scratch_.reset();
    float *col = scratch_.alloc<float>(kk * n);
    float *gcol = scratch_.alloc<float>(kk * n);
    im2colInto(input, col);

    const float *go = grad_output.data().data();
    for (std::size_t o = 0; o < out_c_; ++o) {
        float acc = 0.0f;
        const float *row = go + o * n;
        for (std::size_t j = 0; j < n; ++j)
            acc += row[j];
        grad_bias_[o] += acc;
    }

    const SimdLevel level = backend_ == KernelBackend::Simd
        ? detectSimdLevel()
        : SimdLevel::None;

    // dW += dOut [out_c x n] * col^T  (col stored row-major [kk x n]).
    gemmNtF32(out_c_, kk, n, go, col, grad_weights_.data(), level);

    // dCol = W^T [kk x out_c] * dOut  (weights stored [out_c x kk]).
    std::fill_n(gcol, kk * n, 0.0f);
    gemmTnF32(kk, n, out_c_, weights_.data(), go, gcol, level);

    Tensor grad_input(in_c_, h, w);
    col2imAdd(gcol, in_c_, k_, h, w, grad_input);
    return grad_input;
}

void
Conv2d::applyGradients(float lr, std::size_t batch)
{
    const float scale = lr / static_cast<float>(batch);
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        weights_[i] -= scale * grad_weights_[i];
        grad_weights_[i] = 0.0f;
    }
    for (std::size_t i = 0; i < bias_.size(); ++i) {
        bias_[i] -= scale * grad_bias_[i];
        grad_bias_[i] = 0.0f;
    }
}

std::size_t
Conv2d::parameterCount() const
{
    return weights_.size() + bias_.size();
}

std::size_t
Conv2d::macs(std::size_t in_h, std::size_t in_w) const
{
    return out_c_ * in_h * in_w * in_c_ * k_ * k_;
}

// ------------------------------------------------------------------ Relu

Tensor
Relu::forward(Tensor input, bool cache_for_backward)
{
    if (cache_for_backward)
        cached_input_ = input; // copy: backward needs the signs
    for (auto &v : input.data())
        v = std::max(v, 0.0f);
    return input;
}

Tensor
Relu::backward(const Tensor &grad_output)
{
    Tensor grad = grad_output;
    for (std::size_t i = 0; i < grad.data().size(); ++i)
        if (cached_input_.data()[i] <= 0.0f)
            grad.data()[i] = 0.0f;
    return grad;
}

// -------------------------------------------------------------- MaxPool2

Tensor
MaxPool2::forward(Tensor input, bool cache_for_backward)
{
    out_c_ = input.channels();
    in_h_ = input.height();
    in_w_ = input.width();
    out_h_ = in_h_ / 2;
    out_w_ = in_w_ / 2;
    Tensor out(out_c_, out_h_, out_w_);
    if (cache_for_backward)
        argmax_.assign(out.size(), 0);

    for (std::size_t c = 0; c < out_c_; ++c) {
        for (std::size_t y = 0; y < out_h_; ++y) {
            for (std::size_t x = 0; x < out_w_; ++x) {
                float best = -1e30f;
                std::size_t best_idx = 0;
                for (std::size_t dy = 0; dy < 2; ++dy) {
                    for (std::size_t dx = 0; dx < 2; ++dx) {
                        const std::size_t sy = 2 * y + dy;
                        const std::size_t sx = 2 * x + dx;
                        const float v = input(c, sy, sx);
                        if (v > best) {
                            best = v;
                            best_idx = (c * in_h_ + sy) * in_w_ + sx;
                        }
                    }
                }
                out(c, y, x) = best;
                if (cache_for_backward)
                    argmax_[(c * out_h_ + y) * out_w_ + x] = best_idx;
            }
        }
    }
    return out;
}

Tensor
MaxPool2::backward(const Tensor &grad_output)
{
    Tensor grad(out_c_, in_h_, in_w_);
    for (std::size_t i = 0; i < grad_output.size(); ++i)
        grad.data()[argmax_[i]] += grad_output.data()[i];
    return grad;
}

// ----------------------------------------------------------------- Dense

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng &rng)
    : in_f_(in_features), out_f_(out_features),
      weights_(in_features * out_features), bias_(out_features, 0.0f),
      grad_weights_(weights_.size(), 0.0f), grad_bias_(out_features, 0.0f)
{
    const double scale = std::sqrt(2.0 / static_cast<double>(in_f_));
    for (auto &w : weights_)
        w = static_cast<float>(rng.gaussian(0.0, scale));
}

Tensor
Dense::forward(Tensor input, bool cache_for_backward)
{
    SOV_ASSERT(input.size() == in_f_);
    Tensor out(1, 1, out_f_);
    for (std::size_t o = 0; o < out_f_; ++o) {
        float acc = bias_[o];
        for (std::size_t i = 0; i < in_f_; ++i)
            acc += weights_[o * in_f_ + i] * input.data()[i];
        out(0, 0, o) = acc;
    }
    if (cache_for_backward)
        cached_input_ = std::move(input);
    return out;
}

Tensor
Dense::backward(const Tensor &grad_output)
{
    Tensor grad_input(cached_input_.channels(), cached_input_.height(),
                      cached_input_.width());
    for (std::size_t o = 0; o < out_f_; ++o) {
        const float go = grad_output.data()[o];
        grad_bias_[o] += go;
        for (std::size_t i = 0; i < in_f_; ++i) {
            grad_weights_[o * in_f_ + i] += go * cached_input_.data()[i];
            grad_input.data()[i] += go * weights_[o * in_f_ + i];
        }
    }
    return grad_input;
}

void
Dense::applyGradients(float lr, std::size_t batch)
{
    const float scale = lr / static_cast<float>(batch);
    for (std::size_t i = 0; i < weights_.size(); ++i) {
        weights_[i] -= scale * grad_weights_[i];
        grad_weights_[i] = 0.0f;
    }
    for (std::size_t i = 0; i < bias_.size(); ++i) {
        bias_[i] -= scale * grad_bias_[i];
        grad_bias_[i] = 0.0f;
    }
}

std::size_t
Dense::parameterCount() const
{
    return weights_.size() + bias_.size();
}

std::size_t
Dense::macs(std::size_t, std::size_t) const
{
    return in_f_ * out_f_;
}

// --------------------------------------------------------------- Network

void
Network::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

Tensor
Network::forward(const Tensor &input)
{
    Tensor t = input; // keep the caller's tensor (training reuses it)
    for (auto &layer : layers_)
        t = layer->forward(std::move(t), true);
    return t;
}

Tensor
Network::infer(Tensor input)
{
    for (auto &layer : layers_)
        input = layer->forward(std::move(input), false);
    return input;
}

void
Network::setBackend(KernelBackend backend)
{
    for (auto &layer : layers_)
        layer->setBackend(backend);
}

std::vector<double>
Network::softmax(const Tensor &logits)
{
    const auto &d = logits.data();
    double max_logit = -1e30;
    for (const float v : d)
        max_logit = std::max(max_logit, static_cast<double>(v));
    std::vector<double> probs(d.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < d.size(); ++i) {
        probs[i] = std::exp(static_cast<double>(d[i]) - max_logit);
        sum += probs[i];
    }
    for (auto &p : probs)
        p /= sum;
    return probs;
}

std::size_t
Network::predict(Tensor input)
{
    const Tensor logits = infer(std::move(input));
    const auto &d = logits.data();
    return static_cast<std::size_t>(
        std::max_element(d.begin(), d.end()) - d.begin());
}

double
Network::trainStep(const Tensor &input, std::size_t label, float lr)
{
    const Tensor logits = forward(input);
    const auto probs = softmax(logits);
    SOV_ASSERT(label < probs.size());
    const double loss = -std::log(std::max(probs[label], 1e-12));

    // dL/dlogits = probs - onehot(label).
    Tensor grad(1, 1, probs.size());
    for (std::size_t i = 0; i < probs.size(); ++i)
        grad(0, 0, i) = static_cast<float>(probs[i]) -
            (i == label ? 1.0f : 0.0f);

    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        grad = (*it)->backward(grad);
    for (auto &layer : layers_)
        layer->applyGradients(lr, 1);
    return loss;
}

double
Network::train(const std::vector<Tensor> &inputs,
               const std::vector<std::size_t> &labels, float lr,
               std::size_t epochs, Rng &rng)
{
    SOV_ASSERT(inputs.size() == labels.size());
    SOV_ASSERT(!inputs.empty());
    std::vector<std::size_t> order(inputs.size());
    std::iota(order.begin(), order.end(), 0);
    double mean_loss = 0.0;
    for (std::size_t e = 0; e < epochs; ++e) {
        // Fisher-Yates shuffle with our deterministic rng.
        for (std::size_t i = order.size(); i-- > 1;) {
            const auto j = static_cast<std::size_t>(
                rng.uniformInt(0, static_cast<std::int64_t>(i)));
            std::swap(order[i], order[j]);
        }
        mean_loss = 0.0;
        for (const auto idx : order)
            mean_loss += trainStep(inputs[idx], labels[idx], lr);
        mean_loss /= static_cast<double>(inputs.size());
    }
    return mean_loss;
}

double
Network::evaluate(const std::vector<Tensor> &inputs,
                  const std::vector<std::size_t> &labels)
{
    SOV_ASSERT(inputs.size() == labels.size());
    if (inputs.empty())
        return 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < inputs.size(); ++i)
        correct += predict(inputs[i]) == labels[i];
    return static_cast<double>(correct) /
        static_cast<double>(inputs.size());
}

std::size_t
Network::parameterCount() const
{
    std::size_t n = 0;
    for (const auto &layer : layers_)
        n += layer->parameterCount();
    return n;
}

Network
makePatchClassifier(std::size_t patch, std::size_t classes, Rng &rng)
{
    SOV_ASSERT(patch % 4 == 0);
    Network net;
    net.add(std::make_unique<Conv2d>(1, 8, 3, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<MaxPool2>());
    net.add(std::make_unique<Conv2d>(8, 16, 3, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<MaxPool2>());
    net.add(std::make_unique<Dense>(16 * (patch / 4) * (patch / 4),
                                    classes, rng));
    return net;
}

} // namespace sov
