/**
 * @file
 * Lossless-after-quantization frame compression.
 *
 * The vehicles store raw camera data on the on-vehicle SSD ("as high
 * as 1 TB per day ... even after compression", Sec. II-B) and upload
 * compressed samples to the cloud; Sec. VII names this hourly
 * compression task as the canonical infrequent workload to swap onto
 * the FPGA via runtime partial reconfiguration. This is that codec:
 * 8-bit quantization, horizontal predictive (delta) coding, zigzag
 * mapping, and run-length encoding — cheap enough for an embedded
 * accelerator, effective on the smooth frames cameras produce.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "vision/image.h"

namespace sov {

/** An encoded frame. */
struct CompressedFrame
{
    std::uint32_t width = 0;
    std::uint32_t height = 0;
    std::vector<std::uint8_t> payload;

    /** Compression ratio vs the 8-bit raw frame. */
    double
    ratio() const
    {
        const double raw = static_cast<double>(width) * height;
        return payload.empty() ? 0.0 : raw / payload.size();
    }
};

/**
 * Encode a frame. Intensities are clamped to [0,1] and quantized to
 * 8 bits; everything after quantization is lossless.
 */
CompressedFrame compressFrame(const Image &frame);

/**
 * Decode a frame. Round-trips the quantized values exactly, so the
 * reconstruction error is bounded by the 1/255 quantization step.
 */
Image decompressFrame(const CompressedFrame &frame);

} // namespace sov
