#include "vision/camera_model.h"

#include <cmath>

#include "core/logging.h"

namespace sov {

CameraPose
CameraModel::poseAt(const Pose2 &body, double mount_height) const
{
    CameraPose pose;
    const Vec2 offset2 =
        body.transform(Vec2(mount_offset_.x(), mount_offset_.y()));
    pose.position = Vec3(offset2.x(), offset2.y(),
                         mount_height + mount_offset_.z());

    // Body-to-world yaw plus the mount yaw gives the optical axis
    // direction in the world; then map optical axes (z-forward,
    // x-right, y-down) onto world axes.
    const double yaw = body.heading + mount_yaw_;
    // Columns: camera x (right) = world -left = (sin, -cos, 0);
    // camera y (down) = (0, 0, -1); camera z (forward) = (cos, sin, 0).
    const double c = std::cos(yaw), s = std::sin(yaw);
    const Matrix r{{s, 0.0, c},
                   {-c, 0.0, s},
                   {0.0, -1.0, 0.0}};
    // Convert the rotation matrix to a quaternion via the yaw/roll
    // composition that generates it: R = Rz(yaw) * (axes permutation).
    // The fixed permutation maps camera axes to the body convention:
    // it equals Rz(-90deg about camera z?) — simplest: build from the
    // matrix directly.
    // Quaternion from rotation matrix (Shepperd's method, w-major).
    const double trace = r(0, 0) + r(1, 1) + r(2, 2);
    Quat q;
    if (trace > 0.0) {
        const double s4 = 2.0 * std::sqrt(1.0 + trace);
        q = Quat(0.25 * s4, (r(2, 1) - r(1, 2)) / s4,
                 (r(0, 2) - r(2, 0)) / s4, (r(1, 0) - r(0, 1)) / s4);
    } else if (r(0, 0) > r(1, 1) && r(0, 0) > r(2, 2)) {
        const double s4 = 2.0 * std::sqrt(1.0 + r(0, 0) - r(1, 1) - r(2, 2));
        q = Quat((r(2, 1) - r(1, 2)) / s4, 0.25 * s4,
                 (r(0, 1) + r(1, 0)) / s4, (r(0, 2) + r(2, 0)) / s4);
    } else if (r(1, 1) > r(2, 2)) {
        const double s4 = 2.0 * std::sqrt(1.0 + r(1, 1) - r(0, 0) - r(2, 2));
        q = Quat((r(0, 2) - r(2, 0)) / s4, (r(0, 1) + r(1, 0)) / s4,
                 0.25 * s4, (r(1, 2) + r(2, 1)) / s4);
    } else {
        const double s4 = 2.0 * std::sqrt(1.0 + r(2, 2) - r(0, 0) - r(1, 1));
        q = Quat((r(1, 0) - r(0, 1)) / s4, (r(0, 2) + r(2, 0)) / s4,
                 (r(1, 2) + r(2, 1)) / s4, 0.25 * s4);
    }
    pose.world_from_camera = q.normalized();
    return pose;
}

std::optional<std::pair<Pixel, double>>
CameraModel::project(const CameraPose &pose, const Vec3 &world_point) const
{
    const Vec3 cam = pose.world_from_camera.conjugate().rotate(
        world_point - pose.position);
    if (cam.z() <= 0.05)
        return std::nullopt; // behind or too close to the lens
    Pixel px;
    px.u = intrinsics_.fx * cam.x() / cam.z() + intrinsics_.cx;
    px.v = intrinsics_.fy * cam.y() / cam.z() + intrinsics_.cy;
    if (px.u < 0.0 || px.u >= static_cast<double>(intrinsics_.width) ||
        px.v < 0.0 || px.v >= static_cast<double>(intrinsics_.height)) {
        return std::nullopt;
    }
    return std::make_pair(px, cam.z());
}

Vec3
CameraModel::backproject(const CameraPose &pose, const Pixel &px,
                         double depth) const
{
    SOV_ASSERT(depth > 0.0);
    const Vec3 cam((px.u - intrinsics_.cx) / intrinsics_.fx * depth,
                   (px.v - intrinsics_.cy) / intrinsics_.fy * depth,
                   depth);
    return pose.world_from_camera.rotate(cam) + pose.position;
}

Vec3
CameraModel::rayDirection(const CameraPose &pose, const Pixel &px) const
{
    const Vec3 cam((px.u - intrinsics_.cx) / intrinsics_.fx,
                   (px.v - intrinsics_.cy) / intrinsics_.fy, 1.0);
    return pose.world_from_camera.rotate(cam).normalized();
}

StereoRig
StereoRig::forwardFacing(const CameraIntrinsics &intrinsics,
                         double baseline, double forward_offset)
{
    StereoRig rig;
    rig.baseline = baseline;
    rig.left = CameraModel(intrinsics,
                           Vec3(forward_offset, baseline / 2.0, 0.0));
    rig.right = CameraModel(intrinsics,
                            Vec3(forward_offset, -baseline / 2.0, 0.0));
    return rig;
}

} // namespace sov
