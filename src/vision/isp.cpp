#include "vision/isp.h"

#include <algorithm>
#include <cmath>

namespace sov {

namespace {

/** Radial falloff factor in [1-strength, 1] across the image. */
double
vignetteFactor(std::size_t x, std::size_t y, std::size_t w,
               std::size_t h, double strength)
{
    const double dx = (static_cast<double>(x) - w / 2.0) / (w / 2.0);
    const double dy = (static_cast<double>(y) - h / 2.0) / (h / 2.0);
    const double r2 = std::min(1.0, (dx * dx + dy * dy) / 2.0);
    return 1.0 - strength * r2;
}

} // namespace

Image
degradeRawFrame(const Image &ideal, const SensorDegradation &d, Rng &rng)
{
    Image raw(ideal.width(), ideal.height());
    for (std::size_t y = 0; y < ideal.height(); ++y) {
        for (std::size_t x = 0; x < ideal.width(); ++x) {
            double v = ideal(x, y) * d.exposure_gain;
            v *= vignetteFactor(x, y, ideal.width(), ideal.height(),
                                d.vignette_strength);
            v += rng.gaussian(0.0, d.read_noise_sigma);
            raw(x, y) = static_cast<float>(std::clamp(v, 0.0, 1.0));
        }
    }
    return raw;
}

Image
ImageSignalProcessor::process(const Image &raw) const
{
    Image img = raw;

    if (config_.vignette_correction) {
        for (std::size_t y = 0; y < img.height(); ++y) {
            for (std::size_t x = 0; x < img.width(); ++x) {
                const double f = vignetteFactor(
                    x, y, img.width(), img.height(),
                    config_.vignette_strength);
                img(x, y) = static_cast<float>(
                    std::min(1.0, img(x, y) / f));
            }
        }
    }

    if (config_.denoise)
        img = img.gaussianBlur(config_.denoise_sigma);

    if (config_.sharpen) {
        // Unsharp mask: img + amount * (img - blur(img)).
        const Image blurred = img.gaussianBlur(1.2);
        for (std::size_t y = 0; y < img.height(); ++y) {
            for (std::size_t x = 0; x < img.width(); ++x) {
                const double detail = img(x, y) - blurred(x, y);
                img(x, y) = static_cast<float>(std::clamp(
                    img(x, y) + config_.sharpen_amount * detail, 0.0,
                    1.0));
            }
        }
    }

    if (config_.auto_exposure) {
        const double mean = img.mean();
        if (mean > 1e-6) {
            const double gain = std::min(config_.max_gain,
                                         config_.target_mean / mean);
            if (gain > 1.0) {
                for (auto &v : img.data())
                    v = static_cast<float>(
                        std::min(1.0, static_cast<double>(v) * gain));
            }
        }
    }
    return img;
}

} // namespace sov
