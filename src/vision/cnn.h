/**
 * @file
 * From-scratch CNN engine for the DNN-based object detector (Table III:
 * YOLO / Mask R-CNN class of workloads).
 *
 * The paper's detector is the only deep model in the pipeline; its
 * models are retrained per deployment site (Sec. IV). We reproduce
 * that with a small convolutional classifier — conv / ReLU / max-pool /
 * fully-connected layers with softmax cross-entropy — including SGD
 * training so site-specific models can be fit to the synthetic worlds.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "core/rng.h"
#include "vision/image.h"

namespace sov {

/** CHW float tensor. */
class Tensor
{
  public:
    Tensor() = default;
    Tensor(std::size_t channels, std::size_t height, std::size_t width)
        : c_(channels), h_(height), w_(width),
          data_(channels * height * width, 0.0f) {}

    std::size_t channels() const { return c_; }
    std::size_t height() const { return h_; }
    std::size_t width() const { return w_; }
    std::size_t size() const { return data_.size(); }

    float operator()(std::size_t c, std::size_t y, std::size_t x) const
    {
        return data_[(c * h_ + y) * w_ + x];
    }
    float &operator()(std::size_t c, std::size_t y, std::size_t x)
    {
        return data_[(c * h_ + y) * w_ + x];
    }
    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Wrap a grayscale image as a 1-channel tensor. */
    static Tensor fromImage(const Image &image);

  private:
    std::size_t c_ = 0, h_ = 0, w_ = 0;
    std::vector<float> data_;
};

/** Abstract differentiable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Forward pass; caches whatever backward needs. */
    virtual Tensor forward(const Tensor &input) = 0;

    /** Backward pass: dL/dInput from dL/dOutput; accumulates grads. */
    virtual Tensor backward(const Tensor &grad_output) = 0;

    /** SGD step with learning rate @p lr, then zero the gradients. */
    virtual void applyGradients(float lr, std::size_t batch) = 0;

    /** Number of learnable parameters. */
    virtual std::size_t parameterCount() const = 0;

    /** Multiply-accumulate count of one forward pass (compute model). */
    virtual std::size_t macs(std::size_t in_h, std::size_t in_w) const = 0;
};

/** 2-D convolution, stride 1, zero padding to preserve size. */
class Conv2d : public Layer
{
  public:
    Conv2d(std::size_t in_channels, std::size_t out_channels,
           std::size_t kernel, Rng &rng);

    Tensor forward(const Tensor &input) override;
    Tensor backward(const Tensor &grad_output) override;
    void applyGradients(float lr, std::size_t batch) override;
    std::size_t parameterCount() const override;
    std::size_t macs(std::size_t in_h, std::size_t in_w) const override;

    /** Direct weight access: weight(out, in, ky, kx). */
    float &weight(std::size_t o, std::size_t i, std::size_t ky,
                  std::size_t kx);
    float &bias(std::size_t o) { return bias_[o]; }

  private:
    std::size_t in_c_, out_c_, k_;
    std::vector<float> weights_; //!< out*in*k*k
    std::vector<float> bias_;
    std::vector<float> grad_weights_;
    std::vector<float> grad_bias_;
    Tensor cached_input_;
};

/** Element-wise ReLU. */
class Relu : public Layer
{
  public:
    Tensor forward(const Tensor &input) override;
    Tensor backward(const Tensor &grad_output) override;
    void applyGradients(float, std::size_t) override {}
    std::size_t parameterCount() const override { return 0; }
    std::size_t macs(std::size_t, std::size_t) const override { return 0; }

  private:
    Tensor cached_input_;
};

/** 2x2 max pooling, stride 2. */
class MaxPool2 : public Layer
{
  public:
    Tensor forward(const Tensor &input) override;
    Tensor backward(const Tensor &grad_output) override;
    void applyGradients(float, std::size_t) override {}
    std::size_t parameterCount() const override { return 0; }
    std::size_t macs(std::size_t, std::size_t) const override { return 0; }

  private:
    Tensor cached_input_;
    std::vector<std::size_t> argmax_;
    std::size_t out_c_ = 0, out_h_ = 0, out_w_ = 0;
};

/** Fully connected layer (flattens its input). */
class Dense : public Layer
{
  public:
    Dense(std::size_t in_features, std::size_t out_features, Rng &rng);

    Tensor forward(const Tensor &input) override;
    Tensor backward(const Tensor &grad_output) override;
    void applyGradients(float lr, std::size_t batch) override;
    std::size_t parameterCount() const override;
    std::size_t macs(std::size_t, std::size_t) const override;

  private:
    std::size_t in_f_, out_f_;
    std::vector<float> weights_; //!< out x in
    std::vector<float> bias_;
    std::vector<float> grad_weights_;
    std::vector<float> grad_bias_;
    Tensor cached_input_;
};

/** A sequential network with softmax-cross-entropy training. */
class Network
{
  public:
    Network() = default;

    void add(std::unique_ptr<Layer> layer);
    std::size_t numLayers() const { return layers_.size(); }

    /** Forward pass to raw logits (1 x 1 x N tensor). */
    Tensor forward(const Tensor &input);

    /** Softmax class probabilities of the logits. */
    static std::vector<double> softmax(const Tensor &logits);

    /** Class prediction (argmax probability). */
    std::size_t predict(const Tensor &input);

    /**
     * One SGD step on a single example.
     * @return Cross-entropy loss before the step.
     */
    double trainStep(const Tensor &input, std::size_t label, float lr);

    /**
     * Train on a dataset for @p epochs (shuffled each epoch).
     * @return Final-epoch mean loss.
     */
    double train(const std::vector<Tensor> &inputs,
                 const std::vector<std::size_t> &labels, float lr,
                 std::size_t epochs, Rng &rng);

    /** Classification accuracy on a dataset. */
    double evaluate(const std::vector<Tensor> &inputs,
                    const std::vector<std::size_t> &labels);

    /** Total learnable parameters. */
    std::size_t parameterCount() const;

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/**
 * The site-specific patch classifier used by the object detector:
 * conv3x3(1->8) / ReLU / pool / conv3x3(8->16) / ReLU / pool / dense.
 * @param patch Input patch edge length (must be divisible by 4).
 * @param classes Output classes.
 */
Network makePatchClassifier(std::size_t patch, std::size_t classes,
                            Rng &rng);

} // namespace sov
