/**
 * @file
 * From-scratch CNN engine for the DNN-based object detector (Table III:
 * YOLO / Mask R-CNN class of workloads).
 *
 * The paper's detector is the only deep model in the pipeline; its
 * models are retrained per deployment site (Sec. IV). We reproduce
 * that with a small convolutional classifier — conv / ReLU / max-pool /
 * fully-connected layers with softmax cross-entropy — including SGD
 * training so site-specific models can be fit to the synthetic worlds.
 *
 * Two kernel backends (vision/kernels.h): Reference convolution is the
 * naive 6-deep loop nest; Fast lowers it to im2col + blocked GEMM
 * (math/gemm.h) with scratch from a FrameArena, so steady-state
 * inference performs no scratch allocation. Both accumulate per output
 * element in the same k-ascending order; equivalence is gated to a
 * small epsilon by tests and bench_kernels.
 *
 * Data movement: tensors flow through the network by value and are
 * moved, not copied — a layer that must remember its input for the
 * backward pass takes ownership only when cache_for_backward is set,
 * so inference (Network::infer) makes no per-layer copies. The
 * remaining deliberate copies: Network::forward's entry copy (it keeps
 * the caller's tensor intact for trainStep), Relu's pre-activation
 * cache during training, and Tensor::fromImage from a const Image.
 */
#pragma once

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "core/arena.h"
#include "core/rng.h"
#include "vision/image.h"
#include "vision/kernels.h"

namespace sov {

/** CHW float tensor. */
class Tensor
{
  public:
    Tensor() = default;
    Tensor(std::size_t channels, std::size_t height, std::size_t width)
        : c_(channels), h_(height), w_(width),
          data_(channels * height * width, 0.0f) {}
    /** Adopt an existing buffer (must hold c*h*w floats). */
    Tensor(std::size_t channels, std::size_t height, std::size_t width,
           std::vector<float> data);

    std::size_t channels() const { return c_; }
    std::size_t height() const { return h_; }
    std::size_t width() const { return w_; }
    std::size_t size() const { return data_.size(); }

    float operator()(std::size_t c, std::size_t y, std::size_t x) const
    {
        return data_[(c * h_ + y) * w_ + x];
    }
    float &operator()(std::size_t c, std::size_t y, std::size_t x)
    {
        return data_[(c * h_ + y) * w_ + x];
    }
    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Wrap a grayscale image as a 1-channel tensor (copies). */
    static Tensor fromImage(const Image &image);
    /** Adopt an expiring image's pixel buffer — no copy (an Image row
     *  is laid out exactly like a 1 x H x W CHW tensor). */
    static Tensor fromImage(Image &&image);

  private:
    std::size_t c_ = 0, h_ = 0, w_ = 0;
    std::vector<float> data_;
};

/** Abstract differentiable layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /**
     * Forward pass. The input is consumed (moved where the layer can);
     * with @p cache_for_backward the layer keeps whatever backward
     * needs, without it the pass is allocation- and copy-minimal.
     */
    virtual Tensor forward(Tensor input, bool cache_for_backward) = 0;

    /** Training-path convenience: forward with caching. */
    Tensor forward(Tensor input)
    {
        return forward(std::move(input), true);
    }

    /** Backward pass: dL/dInput from dL/dOutput; accumulates grads. */
    virtual Tensor backward(const Tensor &grad_output) = 0;

    /** SGD step with learning rate @p lr, then zero the gradients. */
    virtual void applyGradients(float lr, std::size_t batch) = 0;

    /** Number of learnable parameters. */
    virtual std::size_t parameterCount() const = 0;

    /** Multiply-accumulate count of one forward pass (compute model). */
    virtual std::size_t macs(std::size_t in_h, std::size_t in_w) const = 0;

    /** Select the kernel backend; layers without kernels ignore it. */
    virtual void setBackend(KernelBackend) {}
};

/** 2-D convolution, stride 1, zero padding to preserve size. */
class Conv2d : public Layer
{
  public:
    Conv2d(std::size_t in_channels, std::size_t out_channels,
           std::size_t kernel, Rng &rng);

    using Layer::forward;
    Tensor forward(Tensor input, bool cache_for_backward) override;
    Tensor backward(const Tensor &grad_output) override;
    void applyGradients(float lr, std::size_t batch) override;
    std::size_t parameterCount() const override;
    std::size_t macs(std::size_t in_h, std::size_t in_w) const override;
    void setBackend(KernelBackend backend) override
    {
        backend_ = backend;
    }

    /** Direct weight access: weight(out, in, ky, kx). */
    float &weight(std::size_t o, std::size_t i, std::size_t ky,
                  std::size_t kx);
    float &bias(std::size_t o) { return bias_[o]; }

    /** Fast-backend scratch arena (exposed so tests can assert
     *  steady-state passes stop allocating). */
    const FrameArena &scratchArena() const { return scratch_; }

  private:
    void forwardReference(const Tensor &input, Tensor &out) const;
    void forwardFast(const Tensor &input, Tensor &out);
    Tensor backwardReference(const Tensor &grad_output);
    Tensor backwardFast(const Tensor &grad_output);
    /** Lower @p input to the [in_c*k*k x h*w] im2col matrix. */
    void im2colInto(const Tensor &input, float *col) const;

    std::size_t in_c_, out_c_, k_;
    std::vector<float> weights_; //!< out*in*k*k
    std::vector<float> bias_;
    std::vector<float> grad_weights_;
    std::vector<float> grad_bias_;
    Tensor cached_input_;
    KernelBackend backend_ = KernelBackend::Reference;
    FrameArena scratch_; //!< Fast backend im2col / GEMM scratch
};

/** Element-wise ReLU. */
class Relu : public Layer
{
  public:
    using Layer::forward;
    Tensor forward(Tensor input, bool cache_for_backward) override;
    Tensor backward(const Tensor &grad_output) override;
    void applyGradients(float, std::size_t) override {}
    std::size_t parameterCount() const override { return 0; }
    std::size_t macs(std::size_t, std::size_t) const override { return 0; }

  private:
    Tensor cached_input_;
};

/** 2x2 max pooling, stride 2. */
class MaxPool2 : public Layer
{
  public:
    using Layer::forward;
    Tensor forward(Tensor input, bool cache_for_backward) override;
    Tensor backward(const Tensor &grad_output) override;
    void applyGradients(float, std::size_t) override {}
    std::size_t parameterCount() const override { return 0; }
    std::size_t macs(std::size_t, std::size_t) const override { return 0; }

  private:
    /** Backward needs only the input shape and argmax map — caching
     *  the full input tensor would be a dead frame-sized copy. */
    std::vector<std::size_t> argmax_;
    std::size_t in_h_ = 0, in_w_ = 0;
    std::size_t out_c_ = 0, out_h_ = 0, out_w_ = 0;
};

/** Fully connected layer (flattens its input). */
class Dense : public Layer
{
  public:
    Dense(std::size_t in_features, std::size_t out_features, Rng &rng);

    using Layer::forward;
    Tensor forward(Tensor input, bool cache_for_backward) override;
    Tensor backward(const Tensor &grad_output) override;
    void applyGradients(float lr, std::size_t batch) override;
    std::size_t parameterCount() const override;
    std::size_t macs(std::size_t, std::size_t) const override;

  private:
    std::size_t in_f_, out_f_;
    std::vector<float> weights_; //!< out x in
    std::vector<float> bias_;
    std::vector<float> grad_weights_;
    std::vector<float> grad_bias_;
    Tensor cached_input_;
};

/** A sequential network with softmax-cross-entropy training. */
class Network
{
  public:
    Network() = default;

    void add(std::unique_ptr<Layer> layer);
    std::size_t numLayers() const { return layers_.size(); }

    /** Forward pass to raw logits (1 x 1 x N tensor), caching layer
     *  inputs for a subsequent backward pass. Copies the input once on
     *  entry; use infer() on the no-training path. */
    Tensor forward(const Tensor &input);

    /** Inference-only forward: consumes the input, no per-layer
     *  caching or copying. */
    Tensor infer(Tensor input);

    /** Softmax class probabilities of the logits. */
    static std::vector<double> softmax(const Tensor &logits);

    /** Class prediction (argmax probability); inference path. */
    std::size_t predict(Tensor input);

    /** Select the kernel backend of every layer (vision/kernels.h). */
    void setBackend(KernelBackend backend);

    /**
     * One SGD step on a single example.
     * @return Cross-entropy loss before the step.
     */
    double trainStep(const Tensor &input, std::size_t label, float lr);

    /**
     * Train on a dataset for @p epochs (shuffled each epoch).
     * @return Final-epoch mean loss.
     */
    double train(const std::vector<Tensor> &inputs,
                 const std::vector<std::size_t> &labels, float lr,
                 std::size_t epochs, Rng &rng);

    /** Classification accuracy on a dataset. */
    double evaluate(const std::vector<Tensor> &inputs,
                    const std::vector<std::size_t> &labels);

    /** Total learnable parameters. */
    std::size_t parameterCount() const;

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
};

/**
 * The site-specific patch classifier used by the object detector:
 * conv3x3(1->8) / ReLU / pool / conv3x3(8->16) / ReLU / pool / dense.
 * @param patch Input patch edge length (must be divisible by 4).
 * @param classes Output classes.
 */
Network makePatchClassifier(std::size_t patch, std::size_t classes,
                            Rng &rng);

} // namespace sov
