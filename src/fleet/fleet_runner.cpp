#include "fleet/fleet_runner.h"

#include <chrono>

#include "core/logging.h"
#include "core/thread_pool.h"

namespace sov::fleet {

FleetRunner::FleetRunner(FleetConfig config) : config_(config) {}

std::size_t
FleetRunner::numThreads() const
{
    return config_.threads == 0 ? ThreadPool::defaultThreads()
                                : config_.threads;
}

ScenarioOutcome
FleetRunner::runScenario(const ScenarioSpec &spec,
                         obs::MetricRegistry *metrics) const
{
    // The scenario's whole random universe forks from its
    // *environment* identity — world, fault preset and seed, but not
    // the stack: outcome = f(master_seed, environment, stack
    // semantics), independent of scheduling, and every stack faces
    // bit-identical world and fault draws (the controlled-experiment
    // contract of the fault matrix's stack columns).
    const Rng master(config_.master_seed);
    const std::string env = spec.world.name + "/" + spec.faults.name +
                            "#s" + std::to_string(spec.seed);
    const Rng scenario_rng = master.fork(env);

    World world;
    Rng world_rng = scenario_rng.fork("world");
    if (spec.world.build)
        spec.world.build(world, world_rng);

    fault::FaultPlan plan{scenario_rng.fork("faults")};
    for (const fault::FaultSpec &s : spec.faults.specs)
        plan.add(s);

    ClosedLoopConfig loop = spec.stack.loop;
    SOV_ASSERT(loop.faults == nullptr);
    if (!plan.empty())
        loop.faults = &plan;

    ClosedLoopSim sim(world, spec.world.route, loop, spec.stack.pipeline,
                      scenario_rng.fork("sim"));
    if (config_.trace)
        sim.setTraceRecorder(config_.trace);
    const ClosedLoopResult r =
        sim.run(Duration::seconds(spec.world.horizon_s));
    if (config_.scenario_hook)
        config_.scenario_hook(spec, r);

    ScenarioOutcome o;
    o.name = spec.name;
    o.index = spec.index;
    o.seed = spec.seed;
    o.collided = r.collided;
    o.stopped = r.stopped;
    o.min_gap = r.min_gap;
    o.distance_travelled = r.distance_travelled;
    o.availability = r.availability;
    o.reactive_fraction = r.reactive_fraction;
    o.reactive_triggers = r.reactive_triggers;
    o.deadline_misses = r.deadline_misses;
    o.frames_dropped = r.frames_dropped;
    o.pipeline_frames_failed = r.pipeline_frames_failed;
    o.can_frames_lost = r.can_frames_lost;
    o.sensor_dropouts = r.sensor_dropouts;
    o.worst_level = r.worst_level;
    o.final_level = r.final_level;
    o.sim_elapsed_s = r.elapsed.toSeconds();

    const obs::MetricRegistry &pipeline = sim.pipelineMetrics();
    o.pipeline_frames = pipeline.count("total");
    if (o.pipeline_frames > 0) {
        o.pipeline_mean_ms = pipeline.mean("total");
        o.pipeline_p99_ms = pipeline.percentile("total", 99.0);
    }
    if (metrics) {
        *metrics = pipeline;
        metrics->incr("scenarios");
        metrics->incr("collisions", r.collided ? 1 : 0);
        metrics->incr("safe_stops", r.stopped ? 1 : 0);
        metrics->incr("reactive_triggers", r.reactive_triggers);
        metrics->incr("sensor_dropouts", r.sensor_dropouts);
        metrics->incr("can_frames_lost", r.can_frames_lost);
    }
    return o;
}

FleetReport
FleetRunner::run(const ScenarioMatrix &matrix)
{
    return run(matrix.enumerate());
}

FleetReport
FleetRunner::run(const std::vector<ScenarioSpec> &scenarios)
{
    const auto start = std::chrono::steady_clock::now();

    std::vector<ScenarioOutcome> rows(scenarios.size());
    std::vector<obs::MetricRegistry> shard_metrics(scenarios.size());
    {
        ThreadPool pool(numThreads());
        // Per-index slots: workers never share mutable state, so the
        // pool only decides *when* each row is computed.
        pool.parallelFor(scenarios.size(), [&](std::size_t i) {
            rows[i] = runScenario(scenarios[i], &shard_metrics[i]);
        });
    }

    // Canonical index-order fold: the merged registry (and thus its
    // fingerprint) does not depend on which worker ran what.
    merged_metrics_.clear();
    for (const obs::MetricRegistry &m : shard_metrics)
        merged_metrics_.merge(m);

    const auto end = std::chrono::steady_clock::now();
    timing_.wall_seconds =
        std::chrono::duration<double>(end - start).count();
    timing_.threads = numThreads();
    timing_.scenarios_per_second =
        timing_.wall_seconds > 0.0
            ? static_cast<double>(scenarios.size()) / timing_.wall_seconds
            : 0.0;

    return FleetReport::fromOutcomes(std::move(rows));
}

} // namespace sov::fleet
