#include "fleet/triage.h"

#include <algorithm>
#include <cstring>

#include "core/logging.h"

namespace sov::fleet {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
hashBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
hashU64(std::uint64_t &h, std::uint64_t v)
{
    hashBytes(h, &v, sizeof(v));
}

void
hashDouble(std::uint64_t &h, double v)
{
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    hashU64(h, bits);
}

bool
isNearMiss(const TriageRow &r, double near_miss_gap, double near_miss_ttc)
{
    return !r.collided
        && (r.min_gap <= near_miss_gap || r.min_ttc <= near_miss_ttc);
}

} // namespace

void
TriageReport::addRow(TriageRow row)
{
    const auto it = std::lower_bound(
        rows_.begin(), rows_.end(), row.index,
        [](const TriageRow &r, std::size_t index) {
            return r.index < index;
        });
    SOV_ASSERT(it == rows_.end() || it->index != row.index);
    rows_.insert(it, std::move(row));
}

TriageSummary
TriageReport::summarize(double near_miss_gap, double near_miss_ttc) const
{
    TriageSummary s;
    for (const TriageRow &r : rows_) {
        ++s.scenarios;
        if (r.collided)
            ++s.collisions;
        else if (isNearMiss(r, near_miss_gap, near_miss_ttc))
            ++s.near_misses;
        s.min_gap_digest.add(r.min_gap);
        if (r.min_ttc < 1e17)
            s.min_ttc_digest.add(r.min_ttc);
    }
    return s;
}

std::vector<TriageRow>
TriageReport::incidents(double near_miss_gap, double near_miss_ttc) const
{
    std::vector<TriageRow> out;
    for (const TriageRow &r : rows_) {
        if (r.collided || isNearMiss(r, near_miss_gap, near_miss_ttc))
            out.push_back(r);
    }
    std::sort(out.begin(), out.end(),
              [](const TriageRow &a, const TriageRow &b) {
                  if (a.collided != b.collided)
                      return a.collided;
                  if (a.min_ttc != b.min_ttc)
                      return a.min_ttc < b.min_ttc;
                  if (a.min_gap != b.min_gap)
                      return a.min_gap < b.min_gap;
                  return a.index < b.index;
              });
    return out;
}

std::uint64_t
TriageReport::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    hashU64(h, rows_.size());
    for (const TriageRow &r : rows_) {
        hashU64(h, r.scenario.size());
        hashBytes(h, r.scenario.data(), r.scenario.size());
        hashU64(h, r.index);
        hashU64(h, r.fuzz_seed);
        hashU64(h, r.collided ? 1 : 0);
        hashDouble(h, r.min_gap);
        hashDouble(h, r.min_ttc);
        hashU64(h, r.offender);
    }
    return h;
}

} // namespace sov::fleet
