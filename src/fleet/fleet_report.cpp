#include "fleet/fleet_report.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <sstream>

#include "core/logging.h"

namespace sov::fleet {

namespace {

// ---- FNV-1a fingerprinting ------------------------------------------

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void
hashBytes(std::uint64_t &h, const void *data, std::size_t n)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= kFnvPrime;
    }
}

void
hashU64(std::uint64_t &h, std::uint64_t v)
{
    hashBytes(h, &v, sizeof(v));
}

void
hashDouble(std::uint64_t &h, double v)
{
    // Hash the bit pattern: "bit-identical" means exactly that.
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    hashU64(h, bits);
}

void
hashString(std::uint64_t &h, const std::string &s)
{
    hashU64(h, s.size());
    hashBytes(h, s.data(), s.size());
}

void
hashOutcome(std::uint64_t &h, const ScenarioOutcome &o)
{
    hashString(h, o.name);
    hashU64(h, o.index);
    hashU64(h, o.seed);
    hashU64(h, o.collided ? 1 : 0);
    hashU64(h, o.stopped ? 1 : 0);
    hashDouble(h, o.min_gap);
    hashDouble(h, o.distance_travelled);
    hashDouble(h, o.availability);
    hashDouble(h, o.reactive_fraction);
    hashU64(h, o.reactive_triggers);
    hashU64(h, o.deadline_misses);
    hashU64(h, o.frames_dropped);
    hashU64(h, o.pipeline_frames_failed);
    hashU64(h, o.can_frames_lost);
    hashU64(h, o.sensor_dropouts);
    hashU64(h, static_cast<std::uint64_t>(o.worst_level));
    hashU64(h, static_cast<std::uint64_t>(o.final_level));
    hashDouble(h, o.sim_elapsed_s);
    hashDouble(h, o.pipeline_mean_ms);
    hashDouble(h, o.pipeline_p99_ms);
    hashU64(h, o.pipeline_frames);
}

// ---- JSON helpers (no external deps) --------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default: out += c;
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

FleetReport
FleetReport::fromOutcomes(std::vector<ScenarioOutcome> rows)
{
    FleetReport report;
    report.rows_ = std::move(rows);
    report.rebuild();
    return report;
}

void
FleetReport::merge(const FleetReport &other)
{
    rows_.insert(rows_.end(), other.rows_.begin(), other.rows_.end());
    rebuild();
}

void
FleetReport::mergeRow(ScenarioOutcome row)
{
    // Canonical-position insert: the row lands exactly where a
    // full-sort rebuild would put it, so the sortedness invariant
    // survives without re-sorting — deriveAggregates() asserts it.
    const auto it = std::lower_bound(
        rows_.begin(), rows_.end(), row.index,
        [](const ScenarioOutcome &o, std::size_t index) {
            return o.index < index;
        });
    SOV_ASSERT(it == rows_.end() || it->index != row.index);
    rows_.insert(it, std::move(row));
    deriveAggregates();
}

void
FleetReport::rebuild()
{
    std::sort(rows_.begin(), rows_.end(),
              [](const ScenarioOutcome &a, const ScenarioOutcome &b) {
                  return a.index < b.index;
              });
    deriveAggregates();
}

void
FleetReport::deriveAggregates()
{
    for (std::size_t i = 1; i < rows_.size(); ++i)
        SOV_ASSERT(rows_[i].index > rows_[i - 1].index);

    // Aggregates are re-derived from scratch, folding rows in index
    // order: the result depends only on the row set, never on how the
    // rows were produced or merged.
    aggregate_ = FleetAggregate{};
    FleetAggregate &a = aggregate_;
    for (const ScenarioOutcome &o : rows_) {
        ++a.scenarios;
        if (o.collided)
            ++a.collisions;
        else if (o.stopped)
            ++a.stops;
        else
            ++a.cruises;
        a.deadline_misses += o.deadline_misses;
        a.frames_dropped += o.frames_dropped;
        a.pipeline_frames_failed += o.pipeline_frames_failed;
        a.can_frames_lost += o.can_frames_lost;
        a.sensor_dropouts += o.sensor_dropouts;
        const auto level = static_cast<std::size_t>(o.worst_level);
        SOV_ASSERT(level < 4);
        ++a.worst_level_counts[level];

        a.min_gap.add(o.min_gap);
        a.availability.add(o.availability);
        a.distance.add(o.distance_travelled);
        a.min_gap_digest.add(o.min_gap);
        a.availability_digest.add(o.availability);
        if (o.pipeline_frames > 0) {
            a.pipeline_mean_ms_digest.add(o.pipeline_mean_ms);
            a.pipeline_p99_ms_digest.add(o.pipeline_p99_ms);
        }
    }
}

std::uint64_t
FleetReport::fingerprint() const
{
    std::uint64_t h = kFnvOffset;
    hashU64(h, rows_.size());
    for (const ScenarioOutcome &o : rows_)
        hashOutcome(h, o);
    return h;
}

std::string
FleetReport::toJson() const
{
    const FleetAggregate &a = aggregate_;
    std::ostringstream os;
    os << "{\n  \"scenarios\": " << a.scenarios
       << ",\n  \"collisions\": " << a.collisions
       << ",\n  \"stops\": " << a.stops
       << ",\n  \"cruises\": " << a.cruises
       << ",\n  \"deadline_misses\": " << a.deadline_misses
       << ",\n  \"frames_dropped\": " << a.frames_dropped
       << ",\n  \"pipeline_frames_failed\": " << a.pipeline_frames_failed
       << ",\n  \"can_frames_lost\": " << a.can_frames_lost
       << ",\n  \"sensor_dropouts\": " << a.sensor_dropouts
       << ",\n  \"worst_level_counts\": [" << a.worst_level_counts[0]
       << ", " << a.worst_level_counts[1] << ", "
       << a.worst_level_counts[2] << ", " << a.worst_level_counts[3]
       << "]";
    os << ",\n  \"min_gap\": {\"mean\": " << jsonNumber(a.min_gap.mean())
       << ", \"min\": " << jsonNumber(a.min_gap.min())
       << ", \"p10\": " << jsonNumber(a.min_gap_digest.quantile(0.10))
       << ", \"p50\": " << jsonNumber(a.min_gap_digest.quantile(0.50))
       << "}";
    os << ",\n  \"availability\": {\"mean\": "
       << jsonNumber(a.availability.mean())
       << ", \"p10\": " << jsonNumber(a.availability_digest.quantile(0.10))
       << ", \"p50\": " << jsonNumber(a.availability_digest.quantile(0.50))
       << "}";
    os << ",\n  \"pipeline_latency_ms\": {\"mean_p50\": "
       << jsonNumber(a.pipeline_mean_ms_digest.quantile(0.50))
       << ", \"mean_p99\": "
       << jsonNumber(a.pipeline_mean_ms_digest.quantile(0.99))
       << ", \"frame_p99_p50\": "
       << jsonNumber(a.pipeline_p99_ms_digest.quantile(0.50))
       << ", \"frame_p99_p99\": "
       << jsonNumber(a.pipeline_p99_ms_digest.quantile(0.99)) << "}";
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(fingerprint()));
    os << ",\n  \"fingerprint\": \"" << fp << "\"";
    os << ",\n  \"outcomes\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const ScenarioOutcome &o = rows_[i];
        os << "    {\"name\": \"" << jsonEscape(o.name) << "\""
           << ", \"index\": " << o.index << ", \"seed\": " << o.seed
           << ", \"collided\": " << (o.collided ? "true" : "false")
           << ", \"stopped\": " << (o.stopped ? "true" : "false")
           << ", \"min_gap\": " << jsonNumber(o.min_gap)
           << ", \"availability\": " << jsonNumber(o.availability)
           << ", \"distance\": " << jsonNumber(o.distance_travelled)
           << ", \"worst_level\": \"" << toString(o.worst_level) << "\""
           << ", \"pipeline_mean_ms\": " << jsonNumber(o.pipeline_mean_ms)
           << ", \"pipeline_p99_ms\": " << jsonNumber(o.pipeline_p99_ms)
           << "}" << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
}

} // namespace sov::fleet
