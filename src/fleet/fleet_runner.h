/**
 * @file
 * FleetRunner: shard a scenario space across a work-stealing thread
 * pool and aggregate the results deterministically.
 *
 * Each scenario is one independent closed-loop simulation. All of its
 * random streams — world population, fault plan, simulation — fork
 * from Rng(master_seed).fork(scenario name), so a scenario's outcome
 * is a pure function of (master seed, scenario identity), independent
 * of which worker runs it, when, or alongside what. Workers write
 * outcome rows into per-scenario slots; the report is derived from the
 * completed rows in index order. Consequence (the fleet determinism
 * contract): for any thread count, including 1, the FleetReport is
 * bit-identical.
 *
 * Wall-clock timing is reported separately (FleetTiming) and is
 * explicitly outside the determinism contract.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "fleet/fleet_report.h"
#include "fleet/scenario.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sov::fleet {

/** Runner settings. */
struct FleetConfig
{
    /** Worker threads; 0 = hardware concurrency. */
    std::size_t threads = 0;
    /** Master seed every scenario stream forks from. */
    std::uint64_t master_seed = 1;
    /**
     * Optional shared trace recorder. Every scenario simulation emits
     * its spans/instants into it (the recorder keeps per-thread
     * buffers, so workers never contend). Observational only.
     */
    obs::TraceRecorder *trace = nullptr;
    /**
     * Optional per-scenario tap, called on the worker thread right
     * after each simulation with the full ClosedLoopResult — the
     * channel for facts that ride outside the hashed ScenarioOutcome
     * row (near-miss triage: min_ttc, offending obstacle). Invoked
     * concurrently from multiple workers; to stay inside the fleet
     * determinism contract, write into per-index slots (keyed by
     * spec.index) and fold in index order, never accumulate in call
     * order.
     */
    std::function<void(const ScenarioSpec &, const ClosedLoopResult &)>
        scenario_hook = nullptr;
};

/** Wall-clock facts of a sweep (non-deterministic; never hashed). */
struct FleetTiming
{
    double wall_seconds = 0.0;
    double scenarios_per_second = 0.0;
    std::size_t threads = 0;
};

/** Runs scenario sweeps on a thread pool. */
class FleetRunner
{
  public:
    explicit FleetRunner(FleetConfig config = {});

    /** Run every scenario of @p matrix (its full enumeration). */
    FleetReport run(const ScenarioMatrix &matrix);

    /** Run an explicit scenario list. */
    FleetReport run(const std::vector<ScenarioSpec> &scenarios);

    /**
     * Run one scenario synchronously on the calling thread. When
     * @p metrics is non-null it receives the scenario's pipeline
     * metric registry (per-stage latency histograms plus counters).
     */
    ScenarioOutcome runScenario(const ScenarioSpec &spec,
                                obs::MetricRegistry *metrics
                                = nullptr) const;

    /** Timing of the most recent run(). */
    const FleetTiming &lastTiming() const { return timing_; }

    /**
     * Metrics of the most recent run(), folded from the per-scenario
     * registries in scenario-index order. Because each scenario's
     * registry is a pure function of (master seed, scenario identity)
     * and the fold order is canonical, the merged registry — and its
     * fingerprint() — is independent of the thread count.
     */
    const obs::MetricRegistry &mergedMetrics() const
    {
        return merged_metrics_;
    }

    std::size_t numThreads() const;

  private:
    FleetConfig config_;
    FleetTiming timing_;
    obs::MetricRegistry merged_metrics_;
};

} // namespace sov::fleet
