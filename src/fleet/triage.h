/**
 * @file
 * Near-miss triage: mine fuzzed fleet sweeps for the scenarios that
 * almost went wrong and rank them for replay.
 *
 * A fuzz campaign's value is its tail: the handful of worlds where an
 * agent forced a collision or a sub-meter pass. TriageReport collects
 * one row per scenario — minimum gap, minimum time-to-collision, the
 * offending agent id, and the fuzz seed that reproduces the world
 * (fleet/fuzzer.h's self-seeding contract) — and derives aggregate
 * digests and an incident shortlist by folding rows in canonical index
 * order, the same determinism discipline as FleetReport: for any
 * worker thread count the report, its incident ranking, and its
 * fingerprint() are bit-identical.
 *
 * Rows are fed from FleetConfig::scenario_hook, which hands each
 * worker the full ClosedLoopResult (the un-hashed triage facts
 * min_ttc / nearest_obstacle ride there, never in ScenarioOutcome, so
 * triage cannot perturb existing fleet fingerprints).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.h"

namespace sov::fleet {

/** One scenario's triage facts. */
struct TriageRow
{
    std::string scenario; //!< full spec name ("fuzz-7/none#s1")
    std::size_t index = 0;
    /** Seed that rebuilds this world via fuzzWorldPreset(seed). */
    std::uint64_t fuzz_seed = 0;
    bool collided = false;
    double min_gap = 1e18;
    /** Minimum time-to-collision on a closing course (s); 1e18 when
     *  never closing, 0 on collision. */
    double min_ttc = 1e18;
    /** Id of the agent/obstacle that produced min_gap. */
    std::uint64_t offender = 0;
};

/** Aggregate view of a triage report (derived, never accumulated). */
struct TriageSummary
{
    std::uint64_t scenarios = 0;
    std::uint64_t collisions = 0;
    /** Non-collisions whose min_gap or min_ttc crossed the near-miss
     *  thresholds passed to summarize(). */
    std::uint64_t near_misses = 0;
    QuantileDigest min_gap_digest{0.01};
    QuantileDigest min_ttc_digest{0.01};
};

/** Deterministic collection of triage rows for one sweep. */
class TriageReport
{
  public:
    /** Insert a row at its canonical index position (duplicate index
     *  asserts); any insertion order yields the same report. */
    void addRow(TriageRow row);

    const std::vector<TriageRow> &rows() const { return rows_; }

    /** Derive the aggregate over all rows (index-order fold). */
    TriageSummary summarize(double near_miss_gap = 1.0,
                            double near_miss_ttc = 1.5) const;

    /**
     * The incident shortlist: collisions first, then near misses,
     * ordered by severity (collisions by min_gap ascending, near
     * misses by min_ttc then min_gap ascending; index breaks ties so
     * the ranking is total).
     */
    std::vector<TriageRow> incidents(double near_miss_gap = 1.0,
                                     double near_miss_ttc = 1.5) const;

    /** FNV-1a over the canonical row serialization: equal fingerprints
     *  <=> bit-identical triage. */
    std::uint64_t fingerprint() const;

  private:
    std::vector<TriageRow> rows_; //!< sorted by index
};

} // namespace sov::fleet
