#include "fleet/fuzzer.h"

#include <memory>
#include <string>

#include "world/agent.h"

namespace sov::fleet {

namespace {

/** Populate @p world from @p rng (the seed-forked fuzz stream). */
void
populate(World &world, Rng &rng, const FuzzRanges &ranges)
{
    const double lo_x = 25.0;
    const double hi_x = ranges.route_length - 20.0;

    // Pedestrians: spawn off-road, walking in to cross near a drawn x.
    const auto peds = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(ranges.max_pedestrians)));
    for (std::size_t i = 0; i < peds; ++i) {
        Obstacle o;
        o.cls = ObjectClass::Pedestrian;
        const double x = rng.uniform(lo_x, hi_x);
        const double side = rng.bernoulli(0.5) ? 1.0 : -1.0;
        o.footprint =
            OrientedBox2{Pose2{Vec2(x, side * rng.uniform(4.0, 7.0)), 0.0},
                         0.3, 0.3};
        o.height = 1.7;
        PedestrianAgent::Params p;
        p.walk_speed = rng.uniform(0.9, 1.9);
        p.hesitate_probability = rng.uniform(0.2, 0.8);
        p.yield_radius = rng.uniform(4.0, 9.0);
        world.spawnAgent(std::make_unique<PedestrianAgent>(
            o, p, rng.fork("ped" + std::to_string(i))));
    }

    // Cyclists: riding the corridor ahead of the ego, weaving.
    const auto bikes = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(ranges.max_cyclists)));
    for (std::size_t i = 0; i < bikes; ++i) {
        Obstacle o;
        o.cls = ObjectClass::Bicycle;
        const double x = rng.uniform(12.0, 0.5 * ranges.route_length);
        o.footprint =
            OrientedBox2{Pose2{Vec2(x, rng.uniform(-1.0, 1.0)), 0.0},
                         0.9, 0.3};
        o.height = 1.6;
        CyclistAgent::Params p;
        p.cruise_speed = rng.uniform(3.0, 5.5);
        p.weave_amplitude = rng.uniform(0.3, 1.2);
        p.weave_period_s = rng.uniform(2.0, 5.0);
        world.spawnAgent(std::make_unique<CyclistAgent>(
            o, p, rng.fork("bike" + std::to_string(i))));
    }

    // Vehicles: adjacent lane, some of them cutting in.
    const auto cars = static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(ranges.max_vehicles)));
    for (std::size_t i = 0; i < cars; ++i) {
        Obstacle o;
        o.cls = ObjectClass::Car;
        const double side = rng.bernoulli(0.5) ? 1.0 : -1.0;
        const double x = rng.uniform(8.0, 0.6 * ranges.route_length);
        o.footprint =
            OrientedBox2{Pose2{Vec2(x, side * rng.uniform(3.0, 4.5)), 0.0},
                         2.0, 0.9};
        o.height = 1.5;
        VehicleAgent::Params p;
        p.cruise_speed = rng.uniform(2.5, 5.0);
        p.cut_in = rng.bernoulli(0.6);
        p.cut_in_x = rng.uniform(lo_x, hi_x);
        p.cut_in_rate = rng.uniform(0.8, 1.6);
        world.spawnAgent(std::make_unique<VehicleAgent>(
            o, p, rng.fork("car" + std::to_string(i))));
    }

    // Occasional static wall: the Sec. IV scenario, procedurally.
    if (rng.bernoulli(ranges.wall_probability)) {
        Obstacle wall;
        wall.cls = ObjectClass::Static;
        wall.footprint = OrientedBox2{
            Pose2{Vec2(rng.uniform(lo_x, hi_x), 0.0), 0.0}, 0.5, 2.5};
        wall.height = 2.0;
        world.addObstacle(wall);
    }
}

} // namespace

WorldPreset
fuzzWorldPreset(std::uint64_t seed, double horizon_s,
                const FuzzRanges &ranges)
{
    WorldPreset w;
    w.name = "fuzz-" + std::to_string(seed);
    w.horizon_s = horizon_s;
    w.route = Polyline2({Vec2(0.0, 0.0), Vec2(ranges.route_length, 0.0)});
    // Self-seeded build: the runner-supplied stream is ignored so the
    // same fuzz seed reproduces the same world under any master seed
    // (the triage replay contract).
    w.build = [seed, ranges](World &world, Rng &) {
        Rng rng = Rng(seed).fork("fuzz");
        populate(world, rng, ranges);
    };
    return w;
}

std::vector<WorldPreset>
fuzzWorlds(const FuzzConfig &config)
{
    std::vector<WorldPreset> out;
    out.reserve(config.worlds);
    for (std::size_t i = 0; i < config.worlds; ++i) {
        out.push_back(fuzzWorldPreset(config.base_seed + i,
                                      config.horizon_s, config.ranges));
    }
    return out;
}

} // namespace sov::fleet
