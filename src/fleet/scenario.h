/**
 * @file
 * Scenario space for fleet-scale closed-loop evaluation.
 *
 * The paper validates the SoV design against a handful of hand-picked
 * field scenarios (the Sec. IV sudden wall, the Sec. III-C fault
 * matrix); a deployable system has to be exercised across *spaces* of
 * scenarios. This layer makes those spaces enumerable: a ScenarioSpec
 * names one closed-loop run (world x fault plan x software/hardware
 * stack x seed), and a ScenarioMatrix composes axes of presets into
 * the cartesian product, in a fixed deterministic order, ready for the
 * FleetRunner to shard across threads.
 *
 * Every preset is a value object; nothing here owns live simulation
 * state. In particular a StackPreset's ClosedLoopConfig must keep its
 * `faults` pointer null — the runner materializes one FaultPlan per
 * scenario run from the FaultPreset's specs, on the scenario's own
 * forked Rng stream.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "fault/fault_plan.h"
#include "sovpipe/closed_loop.h"
#include "sovpipe/fig5_graph.h"
#include "world/world.h"

namespace sov::fleet {

/** A named environment builder: obstacles, route, horizon. */
struct WorldPreset
{
    std::string name;
    /** Populate the world; draws only from the supplied Rng. */
    std::function<void(World &, Rng &)> build;
    Polyline2 route{{Vec2(0.0, 0.0), Vec2(300.0, 0.0)}};
    double horizon_s = 40.0;
    bool smoke = false; //!< included in reduced CI sweeps
};

/** A named fault scenario (Sec. III-C), as injectable specs. */
struct FaultPreset
{
    std::string name;
    std::vector<fault::FaultSpec> specs;
    bool smoke = false; //!< included in reduced CI sweeps
};

/** A named software/hardware stack configuration. */
struct StackPreset
{
    std::string name;
    /** Must keep `faults == nullptr`; the runner owns the plan. */
    ClosedLoopConfig loop;
    SovPipelineConfig pipeline;
};

/** One fully specified closed-loop run. */
struct ScenarioSpec
{
    /** Composed "world/fault/stack#s<seed>" identity (report row key).
     *  The scenario's Rng streams fork from the *environment* part
     *  only (world/fault#seed, no stack), so every stack preset faces
     *  bit-identical world and fault draws — the fault matrix compares
     *  stacks as a controlled experiment. */
    std::string name;
    /** Position in the enumerated matrix (report row order). */
    std::size_t index = 0;
    WorldPreset world;
    FaultPreset faults;
    StackPreset stack;
    std::uint64_t seed = 1;
};

/**
 * Axes of presets composing into an enumerable scenario space.
 * enumerate() iterates worlds (outermost) x faults x stacks x seeds
 * (innermost); the order of addition fixes the order of enumeration,
 * so the same matrix always yields the same scenario list.
 */
class ScenarioMatrix
{
  public:
    ScenarioMatrix &addWorld(WorldPreset world);
    ScenarioMatrix &addFault(FaultPreset preset);
    ScenarioMatrix &addFaults(const std::vector<FaultPreset> &presets);
    ScenarioMatrix &addStack(StackPreset stack);
    ScenarioMatrix &addSeed(std::uint64_t seed);
    /** Add seeds base, base+1, ..., base+count-1. */
    ScenarioMatrix &addSeeds(std::uint64_t base, std::size_t count);

    /** Drop worlds and faults not marked smoke (reduced CI sweep). */
    ScenarioMatrix &smokeOnly();

    std::size_t size() const;
    const std::vector<WorldPreset> &worlds() const { return worlds_; }
    const std::vector<FaultPreset> &faults() const { return faults_; }
    const std::vector<StackPreset> &stacks() const { return stacks_; }
    const std::vector<std::uint64_t> &seeds() const { return seeds_; }

    /** The full cartesian product, indexed 0..size()-1. An axis left
     *  empty is treated as a single neutral element (no faults /
     *  default stack / seed 1); worlds must be non-empty. */
    std::vector<ScenarioSpec> enumerate() const;

  private:
    std::vector<WorldPreset> worlds_;
    std::vector<FaultPreset> faults_;
    std::vector<StackPreset> stacks_;
    std::vector<std::uint64_t> seeds_;
};

// ---- Preset registry -------------------------------------------------

/** Obstacle-free 300 m straight (baseline availability runs). */
WorldPreset openRoadWorld();

/** The Sec. IV scenario: a static wall across the lane at @p wall_x
 *  meters; the stack must stop short of it. */
WorldPreset suddenWallWorld(double wall_x);

/** A pedestrian stepping into the route corridor near @p x, walking
 *  laterally at @p speed m/s (Sec. IV "normal route" traffic). */
WorldPreset crossingPedestrianWorld(double x, double speed);

/** @p count slower vehicles parked/drifting along the corridor,
 *  placed deterministically from the world Rng stream. */
WorldPreset trafficWorld(std::size_t count);

/** No-fault preset (the matrix baseline row). */
FaultPreset noFaultPreset();

/**
 * The 11 named Sec. III-C fault scenarios of the fault matrix
 * (baseline, camera dropout/freeze/latency, perception miss, planning
 * crash, localization hang, slow detection, CAN loss, radar dropout,
 * camera+planning combo). bench_fault_matrix runs exactly these rows.
 */
std::vector<FaultPreset> faultMatrixPresets();

/** Proactive+reactive stack, no health supervision (the "bare"
 *  column of the fault matrix). */
StackPreset bareStack();

/** Bare stack plus HealthMonitor + DegradationManager and stage
 *  watchdogs (the "supervised" column). */
StackPreset supervisedStack();

/** Bare stack running the pipeline in async (backpressure-deferred)
 *  mode — congested cycles park their frame instead of shedding it. */
StackPreset bareAsyncStack();

/** Supervised stack in async mode: the fault matrix's check that
 *  supervision composes with backpressure admission — collision and
 *  availability outcomes must match the sync supervised column. */
StackPreset supervisedAsyncStack();

/** Supervised stack with the pipeline admission window forced to one
 *  frame: no cross-frame overlap, every planning cycle that would
 *  pipeline sheds its frame instead. The synchronous baseline of the
 *  bench_fleet_sweep pipeline-modes comparison (the supervised stack's
 *  default window of 3 is the async column). */
StackPreset syncPipelineStack();

} // namespace sov::fleet
