/**
 * @file
 * Deterministic aggregation of fleet sweep results.
 *
 * A FleetReport is built from per-scenario outcome rows. Aggregates
 * (collision/availability counts, gap/latency percentiles) are never
 * accumulated in completion order: they are *derived* by folding the
 * rows in canonical index order. merge() therefore just unions row
 * sets and re-derives — any sharding of the scenario space, merged in
 * any order, yields a bit-identical report. fingerprint() hashes the
 * canonical serialization so benches and tests can assert exactly
 * that.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/stats.h"
#include "core/time.h"
#include "health/degradation.h"

namespace sov::fleet {

/** One scenario's result row (the deterministic facts of the run). */
struct ScenarioOutcome
{
    std::string name;
    std::size_t index = 0;
    std::uint64_t seed = 1;

    bool collided = false;
    bool stopped = false;
    double min_gap = 0.0;
    double distance_travelled = 0.0;
    double availability = 0.0;
    double reactive_fraction = 0.0;
    std::uint64_t reactive_triggers = 0;
    std::uint64_t deadline_misses = 0;
    std::uint64_t frames_dropped = 0;
    std::uint64_t pipeline_frames_failed = 0;
    std::uint64_t can_frames_lost = 0;
    std::uint64_t sensor_dropouts = 0;
    health::DegradationLevel worst_level = health::DegradationLevel::Nominal;
    health::DegradationLevel final_level = health::DegradationLevel::Nominal;
    /** Simulated (model) time, not wall time. */
    double sim_elapsed_s = 0.0;
    /** Mean / p99 of the proactive pipeline's per-frame latency (ms);
     *  0 when no frame completed. */
    double pipeline_mean_ms = 0.0;
    double pipeline_p99_ms = 0.0;
    std::uint64_t pipeline_frames = 0;
};

/** Aggregates derived from the outcome rows in index order. */
struct FleetAggregate
{
    std::uint64_t scenarios = 0;
    std::uint64_t collisions = 0;
    std::uint64_t stops = 0;
    std::uint64_t cruises = 0; //!< neither collided nor stopped
    std::uint64_t deadline_misses = 0;
    std::uint64_t frames_dropped = 0;
    std::uint64_t pipeline_frames_failed = 0;
    std::uint64_t can_frames_lost = 0;
    std::uint64_t sensor_dropouts = 0;
    /** Scenario count per worst DegradationLevel (0..3). */
    std::uint64_t worst_level_counts[4] = {0, 0, 0, 0};

    RunningStats min_gap;
    RunningStats availability;
    RunningStats distance;

    /** Mergeable percentile digests over the per-scenario scalars. */
    QuantileDigest min_gap_digest{0.01};
    QuantileDigest availability_digest{0.01};
    QuantileDigest pipeline_mean_ms_digest{0.01};
    QuantileDigest pipeline_p99_ms_digest{0.01};
};

/** The mergeable result of a fleet sweep. */
class FleetReport
{
  public:
    FleetReport() = default;

    /** Build from rows (sorted by index; aggregates derived). */
    static FleetReport fromOutcomes(std::vector<ScenarioOutcome> rows);

    /** Union @p other's rows into this report and re-derive the
     *  aggregates; order-independent (see file comment). */
    void merge(const FleetReport &other);

    /**
     * Stream one completed row into the report: the row is inserted
     * at its canonical position (rows stay sorted by index; a
     * duplicate index is a caller bug and asserts) and the aggregates
     * are re-derived by the same canonical index-order fold as
     * fromOutcomes(). Consequence: streaming rows in ANY completion
     * order yields a report bit-identical to fromOutcomes() over the
     * same row set — this is what lets sov::serve expose partial
     * results shard by shard without forking the determinism
     * contract.
     */
    void mergeRow(ScenarioOutcome row);

    const std::vector<ScenarioOutcome> &outcomes() const { return rows_; }
    const FleetAggregate &aggregate() const { return aggregate_; }

    /** FNV-1a over the canonical serialization of every row: equal
     *  fingerprints <=> bit-identical reports. */
    std::uint64_t fingerprint() const;

    /** Stable machine-readable dump (aggregate + rows). */
    std::string toJson() const;

  private:
    void rebuild();
    /** Assert canonical ordering, then fold the aggregates. */
    void deriveAggregates();

    std::vector<ScenarioOutcome> rows_; //!< sorted by index
    FleetAggregate aggregate_;
};

} // namespace sov::fleet
