#include "fleet/scenario.h"

#include <utility>

#include "core/logging.h"

namespace sov::fleet {

ScenarioMatrix &
ScenarioMatrix::addWorld(WorldPreset world)
{
    worlds_.push_back(std::move(world));
    return *this;
}

ScenarioMatrix &
ScenarioMatrix::addFault(FaultPreset preset)
{
    faults_.push_back(std::move(preset));
    return *this;
}

ScenarioMatrix &
ScenarioMatrix::addFaults(const std::vector<FaultPreset> &presets)
{
    for (const FaultPreset &p : presets)
        faults_.push_back(p);
    return *this;
}

ScenarioMatrix &
ScenarioMatrix::addStack(StackPreset stack)
{
    SOV_ASSERT(stack.loop.faults == nullptr);
    stacks_.push_back(std::move(stack));
    return *this;
}

ScenarioMatrix &
ScenarioMatrix::addSeed(std::uint64_t seed)
{
    seeds_.push_back(seed);
    return *this;
}

ScenarioMatrix &
ScenarioMatrix::addSeeds(std::uint64_t base, std::size_t count)
{
    for (std::size_t i = 0; i < count; ++i)
        seeds_.push_back(base + i);
    return *this;
}

ScenarioMatrix &
ScenarioMatrix::smokeOnly()
{
    std::vector<WorldPreset> worlds;
    for (WorldPreset &w : worlds_)
        if (w.smoke)
            worlds.push_back(std::move(w));
    worlds_ = std::move(worlds);
    std::vector<FaultPreset> faults;
    for (FaultPreset &f : faults_)
        if (f.smoke)
            faults.push_back(std::move(f));
    faults_ = std::move(faults);
    return *this;
}

std::size_t
ScenarioMatrix::size() const
{
    const std::size_t f = faults_.empty() ? 1 : faults_.size();
    const std::size_t st = stacks_.empty() ? 1 : stacks_.size();
    const std::size_t se = seeds_.empty() ? 1 : seeds_.size();
    return worlds_.size() * f * st * se;
}

std::vector<ScenarioSpec>
ScenarioMatrix::enumerate() const
{
    SOV_ASSERT(!worlds_.empty());
    std::vector<FaultPreset> faults =
        faults_.empty() ? std::vector<FaultPreset>{noFaultPreset()}
                        : faults_;
    std::vector<StackPreset> stacks =
        stacks_.empty() ? std::vector<StackPreset>{supervisedStack()}
                        : stacks_;
    std::vector<std::uint64_t> seeds =
        seeds_.empty() ? std::vector<std::uint64_t>{1} : seeds_;

    std::vector<ScenarioSpec> out;
    out.reserve(worlds_.size() * faults.size() * stacks.size() *
                seeds.size());
    for (const WorldPreset &w : worlds_) {
        for (const FaultPreset &f : faults) {
            for (const StackPreset &st : stacks) {
                for (std::uint64_t seed : seeds) {
                    ScenarioSpec spec;
                    spec.name = w.name + "/" + f.name + "/" + st.name +
                                "#s" + std::to_string(seed);
                    spec.index = out.size();
                    spec.world = w;
                    spec.faults = f;
                    spec.stack = st;
                    spec.seed = seed;
                    out.push_back(std::move(spec));
                }
            }
        }
    }
    return out;
}

// ---- World presets ---------------------------------------------------

namespace {

Obstacle
wallObstacle(double x)
{
    Obstacle o;
    o.cls = ObjectClass::Static;
    o.footprint = OrientedBox2{Pose2{Vec2(x, 0.0), 0.0}, 0.5, 2.5};
    o.height = 2.0;
    return o;
}

} // namespace

WorldPreset
openRoadWorld()
{
    WorldPreset w;
    w.name = "open-road";
    w.smoke = true;
    w.build = [](World &, Rng &) {};
    return w;
}

WorldPreset
suddenWallWorld(double wall_x)
{
    WorldPreset w;
    w.name = "sudden-wall-" + std::to_string(static_cast<int>(wall_x));
    w.smoke = true;
    w.build = [wall_x](World &world, Rng &) {
        world.addObstacle(wallObstacle(wall_x));
    };
    return w;
}

WorldPreset
crossingPedestrianWorld(double x, double speed)
{
    WorldPreset w;
    w.name = "crossing-ped-" + std::to_string(static_cast<int>(x));
    w.build = [x, speed](World &world, Rng &) {
        Obstacle ped;
        ped.cls = ObjectClass::Pedestrian;
        ped.footprint =
            OrientedBox2{Pose2{Vec2(x, -8.0), 0.0}, 0.3, 0.3};
        ped.velocity = Vec2(0.0, speed);
        ped.height = 1.7;
        world.addObstacle(ped);
    };
    return w;
}

WorldPreset
trafficWorld(std::size_t count)
{
    WorldPreset w;
    w.name = "traffic-" + std::to_string(count);
    w.build = [count](World &world, Rng &rng) {
        for (std::size_t i = 0; i < count; ++i) {
            Obstacle car;
            car.cls = ObjectClass::Car;
            // Off-lane parked/drifting traffic along the corridor;
            // the lane itself stays drivable so collision counts
            // measure the stack, not an impossible world.
            const double x = rng.uniform(30.0, 280.0);
            const double side = rng.bernoulli(0.5) ? 1.0 : -1.0;
            const double y = side * rng.uniform(3.5, 8.0);
            car.footprint =
                OrientedBox2{Pose2{Vec2(x, y), 0.0}, 2.0, 0.9};
            car.velocity = Vec2(rng.uniform(-0.5, 0.5), 0.0);
            car.height = 1.5;
            world.addObstacle(car);
        }
    };
    return w;
}

// ---- Fault presets ---------------------------------------------------

namespace {

fault::FaultSpec
spec(const std::string &name, fault::FaultTarget target,
     fault::FaultMode mode)
{
    fault::FaultSpec s;
    s.name = name;
    s.target = target;
    s.mode = mode;
    return s;
}

} // namespace

FaultPreset
noFaultPreset()
{
    return FaultPreset{"no-fault", {}, true};
}

std::vector<FaultPreset>
faultMatrixPresets()
{
    using fault::FaultMode;
    using fault::FaultTarget;
    std::vector<FaultPreset> rows;

    rows.push_back(noFaultPreset());

    {
        FaultPreset p{"cam-dropout@1s", {}, true};
        auto cam = spec("cam-dead", FaultTarget::Camera, FaultMode::Dropout);
        cam.window_start = Timestamp::seconds(1.0);
        p.specs.push_back(cam);
        rows.push_back(p);
    }
    {
        FaultPreset p{"cam-freeze@1s", {}, false};
        auto cam = spec("cam-freeze", FaultTarget::Camera, FaultMode::Freeze);
        cam.window_start = Timestamp::seconds(1.0);
        p.specs.push_back(cam);
        rows.push_back(p);
    }
    {
        FaultPreset p{"cam-latency150ms-p50", {}, false};
        auto cam =
            spec("cam-late", FaultTarget::Camera, FaultMode::LatencySpike);
        cam.probability = 0.5;
        cam.latency = Duration::millisF(150.0);
        p.specs.push_back(cam);
        rows.push_back(p);
    }
    {
        FaultPreset p{"perception-miss-p80", {}, false};
        auto miss =
            spec("vision-miss", FaultTarget::Perception, FaultMode::Dropout);
        miss.probability = 0.8;
        p.specs.push_back(miss);
        rows.push_back(p);
    }
    {
        FaultPreset p{"planning-crash-p35", {}, true};
        auto crash = spec("planning-crash", FaultTarget::PipelineStage,
                          FaultMode::Crash);
        crash.stage = "planning";
        crash.probability = 0.35;
        crash.latency = Duration::millisF(5.0);
        p.specs.push_back(crash);
        rows.push_back(p);
    }
    {
        FaultPreset p{"loc-hang@2s", {}, false};
        auto hang =
            spec("loc-hang", FaultTarget::PipelineStage, FaultMode::Hang);
        hang.stage = "localization";
        hang.window_start = Timestamp::seconds(2.0);
        hang.window_end = Timestamp::seconds(2.2);
        p.specs.push_back(hang);
        rows.push_back(p);
    }
    {
        FaultPreset p{"detection-5x", {}, false};
        auto slow = spec("det-slow", FaultTarget::PipelineStage,
                         FaultMode::LatencyMultiplier);
        slow.stage = "detection";
        slow.multiplier = 5.0;
        p.specs.push_back(slow);
        rows.push_back(p);
    }
    {
        FaultPreset p{"can-loss-p50", {}, true};
        auto loss = spec("can-loss", FaultTarget::CanBus, FaultMode::Dropout);
        loss.probability = 0.5;
        p.specs.push_back(loss);
        rows.push_back(p);
    }
    {
        FaultPreset p{"radar-dropout@1s", {}, true};
        auto radar =
            spec("radar-dead", FaultTarget::Radar, FaultMode::Dropout);
        radar.window_start = Timestamp::seconds(1.0);
        p.specs.push_back(radar);
        rows.push_back(p);
    }
    {
        FaultPreset p{"cam+planning-combo", {}, false};
        auto cam = spec("cam-dead", FaultTarget::Camera, FaultMode::Dropout);
        cam.window_start = Timestamp::seconds(2.0);
        cam.probability = 0.7;
        auto crash = spec("planning-crash", FaultTarget::PipelineStage,
                          FaultMode::Crash);
        crash.stage = "planning";
        crash.probability = 0.3;
        p.specs.push_back(cam);
        p.specs.push_back(crash);
        rows.push_back(p);
    }
    return rows;
}

// ---- Stack presets ---------------------------------------------------

StackPreset
bareStack()
{
    StackPreset s;
    s.name = "bare";
    return s;
}

StackPreset
supervisedStack()
{
    StackPreset s;
    s.name = "supervised";
    s.loop.enable_health = true;
    s.loop.stage_watchdog = Duration::millisF(400.0);
    s.loop.stage_max_retries = 1;
    return s;
}

StackPreset
bareAsyncStack()
{
    StackPreset s = bareStack();
    s.name = "bare-async";
    s.loop.pipeline_mode = PipelineMode::Async;
    return s;
}

StackPreset
supervisedAsyncStack()
{
    StackPreset s = supervisedStack();
    s.name = "supervised-async";
    s.loop.pipeline_mode = PipelineMode::Async;
    return s;
}

StackPreset
syncPipelineStack()
{
    StackPreset s = supervisedStack();
    s.name = "sync-pipeline";
    s.loop.max_frames_in_flight = 1;
    return s;
}

} // namespace sov::fleet
