/**
 * @file
 * Procedural scenario fuzzing: sample agent-populated worlds from a
 * seed-forked generator into ordinary WorldPresets.
 *
 * The matrix of hand-written presets covers the paper's field
 * scenarios; coverage of the scenario *space* comes from here. Each
 * fuzz world is identified by one 64-bit seed: the preset's build
 * closure ignores the runner-supplied Rng and draws everything —
 * agent counts, spawn poses, behavior parameters — from
 * Rng(seed).fork("fuzz"). That self-seeding IS the replay contract:
 * a triage row that names a fuzz seed reproduces its exact world with
 * fuzzWorldPreset(seed), under any master seed and any matrix
 * composition, which is what lets the serve layer mine a failure and
 * hand back a one-seed repro.
 *
 * Worlds mix the behavioral agents of world/agent.h (crossing
 * pedestrians that hesitate and yield, weaving cyclists, adjacent-
 * lane vehicles that brake and cut in) with occasional static walls —
 * the populations the near-miss triage (fleet/triage.h) is built to
 * rank.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "fleet/scenario.h"

namespace sov::fleet {

/** Population ranges one fuzz draw samples from. */
struct FuzzRanges
{
    std::size_t max_pedestrians = 3; //!< 0..max per world
    std::size_t max_cyclists = 2;
    std::size_t max_vehicles = 2;
    double wall_probability = 0.15;  //!< static wall across the lane
    double route_length = 140.0;     //!< meters of straight corridor
};

/** A fuzzing campaign: worlds seed, seed+1, ..., seed+worlds-1. */
struct FuzzConfig
{
    std::uint64_t base_seed = 1;
    std::size_t worlds = 200;
    double horizon_s = 20.0;
    FuzzRanges ranges;
};

/**
 * The world identified by @p seed: name "fuzz-<seed>", population
 * drawn from Rng(seed).fork("fuzz") (self-seeded; see file comment).
 */
WorldPreset fuzzWorldPreset(std::uint64_t seed, double horizon_s = 20.0,
                            const FuzzRanges &ranges = {});

/** The campaign's presets, in seed order. */
std::vector<WorldPreset> fuzzWorlds(const FuzzConfig &config);

} // namespace sov::fleet
