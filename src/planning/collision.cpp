#include "planning/collision.h"

#include <cmath>

namespace sov {

std::optional<CollisionInfo>
firstCollision(const Polyline2 &path, double start_s, double speed,
               const std::vector<ObjectPrediction> &predictions,
               const EgoFootprint &ego, double max_lookahead)
{
    if (path.size() < 2 || speed <= 0.0)
        return std::nullopt;

    const double step = 0.5; // meters of path per sweep sample
    const double end_s =
        std::min(start_s + max_lookahead, path.length());

    for (double s = start_s; s <= end_s; s += step) {
        const double t = (s - start_s) / speed; // seconds from now
        const OrientedBox2 ego_box{
            Pose2{path.sample(s), path.headingAt(s)},
            ego.half_length, ego.half_width};

        for (const auto &pred : predictions) {
            // Find the predicted state nearest in time.
            const PredictedState *best = nullptr;
            double best_dt = 1e18;
            for (const auto &state : pred.states) {
                const double dt = std::fabs(
                    (state.time - pred.states.front().time).toSeconds() -
                    t);
                if (dt < best_dt) {
                    best_dt = dt;
                    best = &state;
                }
            }
            if (!best || best_dt > 0.5)
                continue; // object prediction doesn't cover this time
            if (ego_box.overlaps(best->footprint)) {
                return CollisionInfo{s - start_s, t, pred.track_id};
            }
        }
    }
    return std::nullopt;
}

} // namespace sov
