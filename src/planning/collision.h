/**
 * @file
 * Collision detection (Fig. 5): sweep the ego footprint along the
 * reference path at the planned speed and test against predicted
 * object footprints at matching times.
 */
#pragma once

#include <optional>

#include "math/geometry.h"
#include "planning/prediction.h"

namespace sov {

/** Ego vehicle footprint dimensions. */
struct EgoFootprint
{
    double half_length = 1.3; //!< 2-seater pod scale
    double half_width = 0.7;
};

/** A detected future collision. */
struct CollisionInfo
{
    double arc_length;      //!< distance along the path to impact
    double time_to_impact;  //!< seconds
    std::uint32_t track_id; //!< offending object
};

/**
 * Earliest collision along @p path when traversed at @p speed.
 * @param start_s Arc length of the ego's current position on the path.
 * @param max_lookahead Meters of path checked ahead.
 */
std::optional<CollisionInfo> firstCollision(
    const Polyline2 &path, double start_s, double speed,
    const std::vector<ObjectPrediction> &predictions,
    const EgoFootprint &ego = {}, double max_lookahead = 40.0);

} // namespace sov
