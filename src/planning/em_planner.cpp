#include "planning/em_planner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/logging.h"

namespace sov {

namespace {

/** Cost of being at world point @p p given predicted obstacles at
 *  approximately time @p t_hint. */
double
obstacleCost(const Vec2 &p, double t_hint,
             const std::vector<ObjectPrediction> &predictions,
             double radius)
{
    double cost = 0.0;
    for (const auto &pred : predictions) {
        // Pick the state nearest the hint time.
        const PredictedState *best = nullptr;
        double best_dt = 1e18;
        for (const auto &state : pred.states) {
            const double dt = std::fabs(
                (state.time - pred.states.front().time).toSeconds() -
                t_hint);
            if (dt < best_dt) {
                best_dt = dt;
                best = &state;
            }
        }
        if (!best)
            continue;
        const double d = best->footprint.pose.position.distanceTo(p);
        if (d < radius) {
            const double x = 1.0 - d / radius;
            cost += 50.0 * x * x;
            if (best->footprint.contains(p))
                cost += 1e4;
        }
    }
    return cost;
}

} // namespace

std::vector<double>
EmPlanner::dpPath(const PlannerInput &input, double start_s, double start_l,
                  const std::vector<ObjectPrediction> &predictions) const
{
    const std::size_t stations = static_cast<std::size_t>(
        config_.horizon_m / config_.station_step);
    const std::size_t lanes = config_.lateral_samples;
    const double l_step =
        2.0 * config_.lateral_span / static_cast<double>(lanes - 1);
    const auto lateral_of = [&](std::size_t j) {
        return -config_.lateral_span + static_cast<double>(j) * l_step;
    };

    // DP tables: cost[j] at the current station, with back-pointers.
    std::vector<std::vector<std::size_t>> back(
        stations, std::vector<std::size_t>(lanes, 0));
    std::vector<double> cost(lanes, 0.0);

    // Station 0 cost: distance from the vehicle's current offset.
    for (std::size_t j = 0; j < lanes; ++j) {
        const double dl = lateral_of(j) - start_l;
        cost[j] = 4.0 * dl * dl;
    }

    const double ref_speed = std::max(input.ego_speed, 1.0);
    for (std::size_t i = 1; i < stations; ++i) {
        const double s = start_s + static_cast<double>(i) *
            config_.station_step;
        const double t_hint =
            static_cast<double>(i) * config_.station_step / ref_speed;
        const Vec2 center = input.reference_path.sample(s);
        const double heading = input.reference_path.headingAt(s);
        const Vec2 normal(-std::sin(heading), std::cos(heading));

        std::vector<double> next(lanes,
                                 std::numeric_limits<double>::max());
        for (std::size_t j = 0; j < lanes; ++j) {
            const double l = lateral_of(j);
            const Vec2 p = center + normal * l;
            const double node_cost =
                config_.lateral_weight * l * l +
                obstacleCost(p, t_hint, predictions,
                             config_.obstacle_cost_radius);
            for (std::size_t pj = 0; pj < lanes; ++pj) {
                const double dl = lateral_of(pj) - l;
                const double trans =
                    config_.smooth_weight * dl * dl /
                    (config_.station_step * config_.station_step);
                const double total = cost[pj] + node_cost + trans;
                if (total < next[j]) {
                    next[j] = total;
                    back[i][j] = pj;
                }
            }
        }
        cost = std::move(next);
    }

    // Trace back the best terminal node.
    std::size_t j = static_cast<std::size_t>(
        std::min_element(cost.begin(), cost.end()) - cost.begin());
    std::vector<double> offsets(stations);
    for (std::size_t i = stations; i-- > 0;) {
        offsets[i] = lateral_of(j);
        if (i > 0)
            j = back[i][j];
    }
    return offsets;
}

std::vector<double>
EmPlanner::qpSmooth(const std::vector<double> &offsets, double start_l) const
{
    const std::size_t n = offsets.size();
    SOV_ASSERT(n >= 3);

    // minimize sum (x_i - dp_i)^2 + w * sum (x_{i-1} - 2x_i + x_{i+1})^2
    // subject (softly) to x_0 = start_l. Normal equations are SPD.
    Matrix a = Matrix::identity(n);
    Matrix b(n, 1);
    for (std::size_t i = 0; i < n; ++i)
        b(i, 0) = offsets[i];
    // Anchor the first point strongly at the vehicle's current offset.
    a(0, 0) += 100.0;
    b(0, 0) += 100.0 * start_l;

    const double w = config_.qp_smooth_weight;
    for (std::size_t i = 1; i + 1 < n; ++i) {
        // Second-difference row d = [1, -2, 1] at (i-1, i, i+1):
        // add w * d^T d into A.
        const std::size_t idx[3] = {i - 1, i, i + 1};
        const double coef[3] = {1.0, -2.0, 1.0};
        for (std::size_t r = 0; r < 3; ++r)
            for (std::size_t col = 0; col < 3; ++col)
                a(idx[r], idx[col]) += w * coef[r] * coef[col];
    }

    const Matrix x = a.choleskySolve(b);
    std::vector<double> smooth(n);
    for (std::size_t i = 0; i < n; ++i)
        smooth[i] = x(i, 0);
    return smooth;
}

std::vector<double>
EmPlanner::dpSpeed(const PlannerInput &input,
                   const std::vector<double> &offsets, double start_s,
                   const std::vector<ObjectPrediction> &predictions) const
{
    const std::size_t stations = offsets.size();
    const std::size_t vn = config_.speed_samples;
    const double v_step =
        config_.max_speed / static_cast<double>(vn - 1);
    const auto speed_of = [&](std::size_t k) {
        return static_cast<double>(k) * v_step;
    };

    // DP over (station, speed) with kinematic transition limits.
    const double inf = std::numeric_limits<double>::max();
    std::vector<double> cost(vn, inf);
    std::vector<std::vector<std::size_t>> back(
        stations, std::vector<std::size_t>(vn, 0));

    // Initial speed bucket.
    const auto start_k = static_cast<std::size_t>(std::clamp(
        input.ego_speed / v_step, 0.0, static_cast<double>(vn - 1)));
    cost[start_k] = 0.0;

    const double ds = config_.station_step;
    for (std::size_t i = 1; i < stations; ++i) {
        const double s = start_s + static_cast<double>(i) * ds;
        const Vec2 center = input.reference_path.sample(s);
        const double heading = input.reference_path.headingAt(s);
        const Vec2 normal(-std::sin(heading), std::cos(heading));
        const Vec2 p = center + normal * offsets[i];
        const double t_hint = static_cast<double>(i) * ds /
            std::max(input.ego_speed, 1.0);
        const double obs =
            obstacleCost(p, t_hint, predictions,
                         config_.obstacle_cost_radius);

        std::vector<double> next(vn, inf);
        for (std::size_t k = 0; k < vn; ++k) {
            const double v = speed_of(k);
            // Prefer going fast (cost for being slow) unless blocked.
            double node = (config_.max_speed - v) +
                obs * (0.2 + v / config_.max_speed);
            if (v > input.speed_limit)
                node += 1e3; // above the segment limit
            for (std::size_t pk = 0; pk < vn; ++pk) {
                if (cost[pk] == inf)
                    continue;
                const double pv = speed_of(pk);
                const double avg = std::max(0.5 * (v + pv), 0.3);
                const double dt = ds / avg;
                const double accel = (v - pv) / dt;
                if (accel > config_.max_accel ||
                    accel < -config_.max_decel) {
                    continue;
                }
                const double total = cost[pk] + node;
                if (total < next[k]) {
                    next[k] = total;
                    back[i][k] = pk;
                }
            }
        }
        cost = std::move(next);
    }

    std::size_t k = static_cast<std::size_t>(
        std::min_element(cost.begin(), cost.end()) - cost.begin());
    std::vector<double> speeds(stations);
    for (std::size_t i = stations; i-- > 0;) {
        speeds[i] = speed_of(k);
        if (i > 0)
            k = back[i][k];
    }
    speeds[0] = input.ego_speed;
    return speeds;
}

EmPlan
EmPlanner::plan(const PlannerInput &input) const
{
    SOV_ASSERT(input.reference_path.size() >= 2);
    const auto predictions = predictObjects(input.objects, input.now);
    const auto [start_s, start_l] =
        input.reference_path.project(input.ego_pose.position);

    EmPlan plan;
    const auto dp = dpPath(input, start_s, start_l, predictions);
    plan.lateral_offsets = qpSmooth(dp, start_l);
    plan.speeds = dpSpeed(input, plan.lateral_offsets, start_s,
                          predictions);

    // Materialize the world-frame path.
    for (std::size_t i = 0; i < plan.lateral_offsets.size(); ++i) {
        const double s = start_s + static_cast<double>(i) *
            config_.station_step;
        const Vec2 center = input.reference_path.sample(s);
        const double heading = input.reference_path.headingAt(s);
        const Vec2 normal(-std::sin(heading), std::cos(heading));
        plan.path.append(center + normal * plan.lateral_offsets[i]);
    }

    // First-step command: curvature from the first two path segments,
    // acceleration from the first speed transition.
    plan.command.issued_at = input.now;
    if (plan.path.size() >= 3) {
        const double h0 = plan.path.headingAt(0.5 * config_.station_step);
        const double h1 = plan.path.headingAt(1.5 * config_.station_step);
        plan.command.steer_curvature =
            wrapAngle(h1 - h0) / config_.station_step;
    }
    if (plan.speeds.size() >= 2) {
        const double v0 = std::max(input.ego_speed, 0.3);
        const double dt = config_.station_step / v0;
        plan.command.acceleration =
            std::clamp((plan.speeds[1] - input.ego_speed) / dt,
                       -config_.max_decel, config_.max_accel);
    }
    return plan;
}

} // namespace sov
