#include "planning/mpc.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sov {

Matrix
MpcPlanner::lqrGain(double v) const
{
    const int bucket = static_cast<int>(std::max(v, 0.5) / 0.25);
    const auto hit = gain_cache_.find(bucket);
    if (hit != gain_cache_.end())
        return hit->second;

    // Discrete error dynamics: e = [d, psi];
    //   d_{k+1}   = d_k + v dt psi_k
    //   psi_{k+1} = psi_k + v dt u     (u = curvature command)
    const double vdt = std::max(v, 0.5) * config_.dt;
    const Matrix a{{1.0, vdt}, {0.0, 1.0}};
    const Matrix b{{0.0}, {vdt}};
    const Matrix q{{config_.q_lateral, 0.0}, {0.0, config_.q_heading}};
    const Matrix r{{config_.r_curvature}};

    // Backward Riccati recursion over the horizon.
    Matrix p = q;
    Matrix k(1, 2);
    for (std::size_t i = 0; i < config_.horizon; ++i) {
        const Matrix bt_p = b.transpose() * p;
        const Matrix s = r + bt_p * b; // 1x1
        const Matrix k_new = Matrix{{1.0 / s(0, 0)}} * (bt_p * a);
        p = q + a.transpose() * p * (a - b * k_new);
        k = k_new;
    }
    gain_cache_[bucket] = k;
    return k;
}

MpcOutput
MpcPlanner::plan(const PlannerInput &input) const
{
    MpcOutput out;
    out.command.issued_at = input.now;

    SOV_ASSERT(input.reference_path.size() >= 2);

    // Project onto the reference path to get the error state.
    const auto [s, lateral] =
        input.reference_path.project(input.ego_pose.position);
    const double path_heading = input.reference_path.headingAt(s);
    const double heading_err =
        wrapAngle(input.ego_pose.heading - path_heading);
    out.lateral_error = lateral;
    out.heading_error = heading_err;

    // Lateral control: LQR feedback on [offset, heading error] plus
    // the reference path's curvature as feedforward (pure feedback
    // leaves a steady-state offset on curves).
    const double lookahead = 1.0;
    const double kappa_ref = wrapAngle(
        input.reference_path.headingAt(s + lookahead) -
        input.reference_path.headingAt(s)) / lookahead;
    const Matrix k = lqrGain(input.ego_speed);
    double curvature =
        kappa_ref - (k(0, 0) * lateral + k(0, 1) * heading_err);
    curvature = std::clamp(curvature, -config_.max_curvature,
                           config_.max_curvature);
    out.command.steer_curvature = curvature;

    // Speed planning: obstacle-limited target speed.
    const auto predictions = predictObjects(input.objects, input.now);
    double target = input.speed_limit;
    const auto collision = firstCollision(
        input.reference_path, s, std::max(input.ego_speed, 1.0),
        predictions);
    if (collision) {
        const double gap = collision->arc_length - config_.standoff;
        if (gap <= 0.0) {
            target = 0.0;
            out.blocked = true;
        } else {
            // v = sqrt(2 a gap): comfortable stop at the standoff.
            target = std::min(
                target, std::sqrt(2.0 * config_.comfort_decel * gap));
        }
    }
    out.target_speed = target;

    // Longitudinal command toward the target speed.
    const double dv = target - input.ego_speed;
    double accel = std::clamp(dv / config_.dt, -config_.hard_decel,
                              config_.max_accel);
    out.command.acceleration = accel;
    return out;
}

} // namespace sov
