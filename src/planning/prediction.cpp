#include "planning/prediction.h"

#include <cmath>

namespace sov {

std::vector<ObjectPrediction>
predictObjects(const std::vector<FusedObject> &objects, Timestamp now,
               const PredictionConfig &config)
{
    std::vector<ObjectPrediction> predictions;
    predictions.reserve(objects.size());
    for (const auto &obj : objects) {
        ObjectPrediction pred;
        pred.track_id = obj.track_id;
        pred.cls = obj.cls;
        const double heading = obj.velocity.norm() > 0.1
            ? std::atan2(obj.velocity.y(), obj.velocity.x())
            : 0.0;
        for (double dt = 0.0; dt <= config.horizon_s;
             dt += config.step_s) {
            PredictedState state;
            state.time = now + Duration::seconds(dt);
            state.footprint = OrientedBox2{
                Pose2{obj.position + obj.velocity * dt, heading},
                config.half_length, config.half_width};
            pred.states.push_back(state);
        }
        predictions.push_back(std::move(pred));
    }
    return predictions;
}

} // namespace sov
