/**
 * @file
 * Lane-level Model-Predictive Controller (Table III: MPC).
 *
 * The paper's planner is lightweight (~3 ms, Sec. V-C) because the
 * vehicle maneuvers at lane granularity. This MPC linearizes the
 * kinematic error dynamics around the reference lane center-line and
 * solves the finite-horizon LQR tracking problem via a backward
 * Riccati recursion, then picks a safe speed from the predicted
 * obstacles (comfortable deceleration toward the nearest blocker).
 */
#pragma once

#include <map>

#include "planning/collision.h"
#include "planning/planner_types.h"
#include "planning/prediction.h"

namespace sov {

/** MPC tuning. */
struct MpcConfig
{
    std::size_t horizon = 20;
    double dt = 0.1;              //!< seconds per horizon step
    double q_lateral = 4.0;       //!< lateral-offset cost
    double q_heading = 2.0;       //!< heading-error cost
    double r_curvature = 1.0;     //!< steering effort cost
    double max_curvature = 0.5;   //!< 1/m (about 2 m turn radius)
    double comfort_decel = 2.0;   //!< m/s^2 planned braking
    double hard_decel = 4.0;      //!< m/s^2 (the brake's limit)
    double standoff = 2.5;        //!< stop this far from obstacles (m)
    double max_accel = 1.5;       //!< m/s^2
};

/** What the MPC decided, with introspection fields for tests. */
struct MpcOutput
{
    ControlCommand command;
    double lateral_error = 0.0;   //!< current offset from the path
    double heading_error = 0.0;
    double target_speed = 0.0;
    bool blocked = false;         //!< obstacle forces a stop
};

/** The lane-level MPC planner. */
class MpcPlanner
{
  public:
    explicit MpcPlanner(const MpcConfig &config = {}) : config_(config) {}

    /** Plan one control cycle. */
    MpcOutput plan(const PlannerInput &input) const;

    const MpcConfig &config() const { return config_; }

  private:
    /**
     * Finite-horizon LQR gain for the error dynamics at speed @p v:
     * state [lateral offset, heading error], control [curvature].
     * Gains are cached per 0.25 m/s speed bucket — the Riccati
     * recursion is the planner's only nontrivial linear algebra and
     * the gain varies smoothly with speed.
     * @return Row vector K (1x2) for u = -K e.
     */
    Matrix lqrGain(double v) const;

    MpcConfig config_;
    mutable std::map<int, Matrix> gain_cache_;
};

} // namespace sov
