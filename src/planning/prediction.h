/**
 * @file
 * Action/traffic prediction (Fig. 5): short-horizon constant-velocity
 * forecasts of perceived objects, consumed by collision checking and
 * speed planning.
 */
#pragma once

#include <vector>

#include "core/time.h"
#include "math/geometry.h"
#include "tracking/spatial_sync.h"

namespace sov {

/** A predicted object footprint at one future instant. */
struct PredictedState
{
    Timestamp time;
    OrientedBox2 footprint;
};

/** A predicted trajectory of one object. */
struct ObjectPrediction
{
    std::uint32_t track_id = 0;
    ObjectClass cls = ObjectClass::Static;
    std::vector<PredictedState> states;
};

/** Prediction settings. */
struct PredictionConfig
{
    double horizon_s = 4.0;
    double step_s = 0.25;
    /** Default object footprint half-extents when size is unknown. */
    double half_length = 0.6;
    double half_width = 0.6;
};

/** Constant-velocity prediction of every object. */
std::vector<ObjectPrediction> predictObjects(
    const std::vector<FusedObject> &objects, Timestamp now,
    const PredictionConfig &config = {});

} // namespace sov
