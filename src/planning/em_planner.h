/**
 * @file
 * EM-style fine-grained motion planner (the Baidu Apollo EM Motion
 * Planner baseline of Sec. V-C).
 *
 * The paper measures this class of planner at ~100 ms — 33x its own
 * lane-level MPC — because it plans at centimeter granularity: a
 * dynamic-programming pass over a station-lateral grid picks a rough
 * path around obstacles, a quadratic program smooths it, and a second
 * DP over a station-velocity grid plans speed. We implement all three
 * stages so the compute-cost comparison is made against a real
 * implementation, not a stub.
 */
#pragma once

#include <vector>

#include "math/matrix.h"
#include "planning/planner_types.h"
#include "planning/prediction.h"

namespace sov {

/** EM planner grid resolution. */
struct EmPlannerConfig
{
    double horizon_m = 30.0;      //!< planned path length
    double station_step = 1.0;    //!< DP station spacing (m)
    double lateral_span = 3.0;    //!< +- lateral sampling range (m)
    std::size_t lateral_samples = 13;
    double obstacle_cost_radius = 2.5;
    double lateral_weight = 1.0;
    double smooth_weight = 8.0;   //!< DP transition cost
    double qp_smooth_weight = 20.0; //!< QP curvature penalty
    std::size_t speed_samples = 12; //!< velocity grid size
    double max_speed = 8.94;      //!< 20 mph cap
    double max_accel = 1.5;
    double max_decel = 4.0;
};

/** The EM planner's full output. */
struct EmPlan
{
    /** Smoothed lateral offsets, one per station. */
    std::vector<double> lateral_offsets;
    /** Planned speed at each station. */
    std::vector<double> speeds;
    /** The resulting world-frame path. */
    Polyline2 path;
    ControlCommand command;
};

/** DP + QP + speed-DP planner. */
class EmPlanner
{
  public:
    explicit EmPlanner(const EmPlannerConfig &config = {})
        : config_(config) {}

    /** Plan one cycle (same interface as the MPC). */
    EmPlan plan(const PlannerInput &input) const;

    const EmPlannerConfig &config() const { return config_; }

  private:
    /** Stage 1: DP over the station-lateral grid. */
    std::vector<double> dpPath(const PlannerInput &input, double start_s,
                               double start_l,
                               const std::vector<ObjectPrediction>
                                   &predictions) const;

    /** Stage 2: QP smoothing of the DP offsets. */
    std::vector<double> qpSmooth(const std::vector<double> &offsets,
                                 double start_l) const;

    /** Stage 3: DP speed profile along the smoothed path. */
    std::vector<double> dpSpeed(const PlannerInput &input,
                                const std::vector<double> &offsets,
                                double start_s,
                                const std::vector<ObjectPrediction>
                                    &predictions) const;

    EmPlannerConfig config_;
};

} // namespace sov
