/**
 * @file
 * Shared planning types: the control command sent over the CAN bus and
 * the planner input snapshot.
 */
#pragma once

#include <vector>

#include "core/time.h"
#include "math/geometry.h"
#include "tracking/spatial_sync.h"

namespace sov {

/** The command the planner sends to the ECU (steer/brake/accelerate). */
struct ControlCommand
{
    Timestamp issued_at;
    double steer_curvature = 0.0; //!< commanded path curvature, 1/m
    double acceleration = 0.0;    //!< m/s^2, negative = brake
    bool emergency_brake = false; //!< reactive-path override flag
};

/** Everything the planner needs for one cycle. */
struct PlannerInput
{
    Timestamp now;
    Pose2 ego_pose;
    double ego_speed = 0.0;       //!< m/s
    Polyline2 reference_path;     //!< route center-line
    std::vector<FusedObject> objects; //!< perceived obstacles
    double speed_limit = 5.6;     //!< m/s for this segment
};

} // namespace sov
