/**
 * @file
 * Fixed-size vector types used throughout perception and planning.
 */
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

#include "core/logging.h"

namespace sov {

/** Fixed-size N-dimensional vector of doubles. */
template <std::size_t N>
class Vec
{
  public:
    constexpr Vec() : v_{} {}

    /** Construct from exactly N components. */
    template <typename... Args,
              typename = std::enable_if_t<sizeof...(Args) == N>>
    constexpr Vec(Args... args) : v_{static_cast<double>(args)...} {}

    static constexpr Vec
    zero()
    {
        return Vec();
    }

    /** Vector with every component set to @p x. */
    static constexpr Vec
    filled(double x)
    {
        Vec v;
        for (std::size_t i = 0; i < N; ++i)
            v.v_[i] = x;
        return v;
    }

    constexpr double operator[](std::size_t i) const { return v_[i]; }
    constexpr double &operator[](std::size_t i) { return v_[i]; }

    constexpr double x() const requires (N >= 1) { return v_[0]; }
    constexpr double y() const requires (N >= 2) { return v_[1]; }
    constexpr double z() const requires (N >= 3) { return v_[2]; }
    constexpr double &x() requires (N >= 1) { return v_[0]; }
    constexpr double &y() requires (N >= 2) { return v_[1]; }
    constexpr double &z() requires (N >= 3) { return v_[2]; }

    constexpr Vec
    operator+(const Vec &o) const
    {
        Vec r;
        for (std::size_t i = 0; i < N; ++i)
            r.v_[i] = v_[i] + o.v_[i];
        return r;
    }

    constexpr Vec
    operator-(const Vec &o) const
    {
        Vec r;
        for (std::size_t i = 0; i < N; ++i)
            r.v_[i] = v_[i] - o.v_[i];
        return r;
    }

    constexpr Vec
    operator-() const
    {
        Vec r;
        for (std::size_t i = 0; i < N; ++i)
            r.v_[i] = -v_[i];
        return r;
    }

    constexpr Vec
    operator*(double k) const
    {
        Vec r;
        for (std::size_t i = 0; i < N; ++i)
            r.v_[i] = v_[i] * k;
        return r;
    }

    constexpr Vec
    operator/(double k) const
    {
        return *this * (1.0 / k);
    }

    Vec &
    operator+=(const Vec &o)
    {
        for (std::size_t i = 0; i < N; ++i)
            v_[i] += o.v_[i];
        return *this;
    }

    Vec &
    operator-=(const Vec &o)
    {
        for (std::size_t i = 0; i < N; ++i)
            v_[i] -= o.v_[i];
        return *this;
    }

    Vec &
    operator*=(double k)
    {
        for (std::size_t i = 0; i < N; ++i)
            v_[i] *= k;
        return *this;
    }

    constexpr bool operator==(const Vec &o) const = default;

    constexpr double
    dot(const Vec &o) const
    {
        double s = 0.0;
        for (std::size_t i = 0; i < N; ++i)
            s += v_[i] * o.v_[i];
        return s;
    }

    double norm() const { return std::sqrt(dot(*this)); }
    constexpr double squaredNorm() const { return dot(*this); }

    /** Unit vector in this direction; panics on the zero vector. */
    Vec
    normalized() const
    {
        const double n = norm();
        SOV_ASSERT(n > 0.0);
        return *this / n;
    }

    /** Cross product (3-D only). */
    constexpr Vec
    cross(const Vec &o) const requires (N == 3)
    {
        return Vec(v_[1] * o.v_[2] - v_[2] * o.v_[1],
                   v_[2] * o.v_[0] - v_[0] * o.v_[2],
                   v_[0] * o.v_[1] - v_[1] * o.v_[0]);
    }

    /** Euclidean distance to another point. */
    double distanceTo(const Vec &o) const { return (*this - o).norm(); }

  private:
    std::array<double, N> v_;
};

template <std::size_t N>
constexpr Vec<N>
operator*(double k, const Vec<N> &v)
{
    return v * k;
}

using Vec2 = Vec<2>;
using Vec3 = Vec<3>;

} // namespace sov
