/**
 * @file
 * Blocked single-precision GEMM kernels for the im2col convolution
 * path (and any other float matrix hot path).
 *
 * All three variants ACCUMULATE into C (C += ...), row-major, so the
 * caller seeds C with the bias / prior gradient. The accumulation
 * order contract matters for reproducibility: for every output
 * element, the K (reduction) dimension is traversed in ascending
 * order with one float rounding per step — the same sequence a naive
 * scalar loop performs — so results are independent of the cache
 * block sizes and match a direct reference convolution term-for-term
 * (up to FMA contraction, which the build does not enable on the
 * targets we support).
 */
#pragma once

#include <cstddef>

namespace sov {

/** C[m x n] += A[m x k] * B[k x n]. */
void gemmF32(std::size_t m, std::size_t n, std::size_t k,
             const float *a, const float *b, float *c);

/** C[m x n] += A^T * B where A is stored [k x m]. */
void gemmTnF32(std::size_t m, std::size_t n, std::size_t k,
               const float *a, const float *b, float *c);

/** C[m x n] += A * B^T where B is stored [n x k]. */
void gemmNtF32(std::size_t m, std::size_t n, std::size_t k,
               const float *a, const float *b, float *c);

} // namespace sov
