/**
 * @file
 * Blocked single-precision GEMM kernels for the im2col convolution
 * path (and any other float matrix hot path).
 *
 * All three variants ACCUMULATE into C (C += ...), row-major, so the
 * caller seeds C with the bias / prior gradient. The accumulation
 * order contract matters for reproducibility: for every output
 * element, the K (reduction) dimension is traversed in ascending
 * order with one float rounding per step — the same sequence a naive
 * scalar loop performs — so results are independent of the cache
 * block sizes and match a direct reference convolution term-for-term
 * (up to FMA contraction, which the build does not enable on the
 * targets we support).
 *
 * The optional @p level runs the microkernels through the Simd tier
 * (math/simd_kernels.h). gemmF32/gemmTnF32 vectorize their j-loop
 * element-wise — bit-identical to the scalar path at any level —
 * while gemmNtF32's dot-product reduction is lane-reassociated at
 * Avx2: deterministic, but an epsilon away from scalar (callers gate
 * accordingly; conv backward already compares with a tolerance).
 */
#pragma once

#include <cstddef>

#include "core/simd.h"

namespace sov {

/** C[m x n] += A[m x k] * B[k x n]. */
void gemmF32(std::size_t m, std::size_t n, std::size_t k,
             const float *a, const float *b, float *c,
             SimdLevel level = SimdLevel::None);

/** C[m x n] += A^T * B where A is stored [k x m]. */
void gemmTnF32(std::size_t m, std::size_t n, std::size_t k,
               const float *a, const float *b, float *c,
               SimdLevel level = SimdLevel::None);

/** C[m x n] += A * B^T where B is stored [n x k]. */
void gemmNtF32(std::size_t m, std::size_t n, std::size_t k,
               const float *a, const float *b, float *c,
               SimdLevel level = SimdLevel::None);

} // namespace sov
