/**
 * @file
 * Dense dynamic-size matrix with the operations needed by the EKF-based
 * estimators (VIO, GPS-VIO fusion), the MPC planner, and the QP solver:
 * multiply, transpose, Cholesky solve, LU inverse.
 */
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "core/logging.h"
#include "math/vec.h"

namespace sov {

/** Row-major dense matrix of doubles. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initializer lists: {{1,2},{3,4}}. */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    static Matrix identity(std::size_t n);
    static Matrix zero(std::size_t rows, std::size_t cols);
    /** Diagonal matrix from a vector of diagonal entries. */
    static Matrix diagonal(const std::vector<double> &d);
    /** Column vector from entries. */
    static Matrix columnVector(const std::vector<double> &v);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    double operator()(std::size_t r, std::size_t c) const
    {
        SOV_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }
    double &operator()(std::size_t r, std::size_t c)
    {
        SOV_ASSERT(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    Matrix operator+(const Matrix &o) const;
    Matrix operator-(const Matrix &o) const;
    Matrix operator*(const Matrix &o) const;
    Matrix operator*(double k) const;
    Matrix &operator+=(const Matrix &o);
    Matrix &operator-=(const Matrix &o);

    Matrix transpose() const;

    /**
     * Inverse via partial-pivot LU. Panics if singular to working
     * precision; callers validate conditioning first where inputs are
     * user-controlled.
     */
    Matrix inverse() const;

    /**
     * Solve A x = b for symmetric positive-definite A via Cholesky.
     * @param b Column vector (n x 1).
     * @return Solution column vector.
     */
    Matrix choleskySolve(const Matrix &b) const;

    /** Sum of squared entries. */
    double squaredNorm() const;
    /** Frobenius norm. */
    double norm() const;
    /** Largest absolute entry. */
    double maxAbs() const;
    /** Sum of diagonal entries (square matrices). */
    double trace() const;

    /** Set a sub-block starting at (r0, c0) from @p block. */
    void setBlock(std::size_t r0, std::size_t c0, const Matrix &block);
    /** Extract an h x w sub-block starting at (r0, c0). */
    Matrix block(std::size_t r0, std::size_t c0,
                 std::size_t h, std::size_t w) const;

    /** Entry of a column vector (cols()==1). */
    double at(std::size_t i) const { return (*this)(i, 0); }

    /** 3x3 matrix from the skew-symmetric (hat) operator of a Vec3. */
    static Matrix skew(const Vec3 &w);

    bool operator==(const Matrix &o) const = default;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

Matrix operator*(double k, const Matrix &m);

} // namespace sov
