#include "math/fft_plan.h"

#include <cmath>

#include "core/logging.h"

namespace sov {

namespace {

/**
 * The twiddle sequence the ad-hoc fft() generates for one stage:
 * w_0 = 1, w_{k+1} = w_k · wlen. Reproducing the iterative product —
 * rather than calling cos/sin per k — is what keeps the planned
 * transform bit-identical to the oracle.
 */
void
appendStageTwiddles(std::vector<Complex> &table, std::size_t len,
                    bool inverse)
{
    const double ang = 2.0 * M_PI / static_cast<double>(len) *
        (inverse ? 1.0 : -1.0);
    const Complex wlen(std::cos(ang), std::sin(ang));
    Complex w(1.0, 0.0);
    for (std::size_t k = 0; k < len / 2; ++k) {
        table.push_back(w);
        w *= wlen;
    }
}

} // namespace

FftPlan::FftPlan(std::size_t n) : n_(n)
{
    SOV_ASSERT(isPowerOfTwo(n));

    // Same index walk as fft()'s in-place bit-reversal; only the
    // i < j pairs actually move data.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            swaps_.emplace_back(static_cast<std::uint32_t>(i),
                                static_cast<std::uint32_t>(j));
    }

    fwd_twiddles_.reserve(n > 0 ? n - 1 : 0);
    inv_twiddles_.reserve(n > 0 ? n - 1 : 0);
    for (std::size_t len = 2; len <= n; len <<= 1) {
        appendStageTwiddles(fwd_twiddles_, len, false);
        appendStageTwiddles(inv_twiddles_, len, true);
    }
}

void
FftPlan::run(Complex *data, bool inverse, SimdLevel level) const
{
    for (const auto &[i, j] : swaps_)
        std::swap(data[i], data[j]);

    const std::vector<Complex> &table =
        inverse ? inv_twiddles_ : fwd_twiddles_;
    const Complex *w = table.data();
    for (std::size_t len = 2; len <= n_; len <<= 1) {
        const std::size_t half = len / 2;
        for (std::size_t i = 0; i < n_; i += len)
            simd::butterfly(data + i, data + i + half, w, half, level);
        w += half;
    }

    if (inverse)
        simd::scale(data, 1.0 / static_cast<double>(n_), n_, level);
}

void
FftPlan::forward(Complex *data, SimdLevel level) const
{
    run(data, false, level);
}

void
FftPlan::inverse(Complex *data, SimdLevel level) const
{
    run(data, true, level);
}

Fft2dPlan::Fft2dPlan(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), row_plan_(cols), col_plan_(rows)
{
}

void
Fft2dPlan::run(Complex *data, bool inverse, SimdLevel level)
{
    // Rows transform in place — the ad-hoc fft2d's copy through a row
    // buffer does not change the arithmetic, only the traffic. The
    // per-axis 1/N normalization of the inverse matches fft2d's
    // per-axis fft(..., inverse) calls.
    for (std::size_t r = 0; r < rows_; ++r) {
        Complex *row = data + r * cols_;
        inverse ? row_plan_.inverse(row, level)
                : row_plan_.forward(row, level);
    }

    arena_.reset();
    Complex *col = arena_.alloc<Complex>(rows_);
    for (std::size_t c = 0; c < cols_; ++c) {
        for (std::size_t r = 0; r < rows_; ++r)
            col[r] = data[r * cols_ + c];
        inverse ? col_plan_.inverse(col, level)
                : col_plan_.forward(col, level);
        for (std::size_t r = 0; r < rows_; ++r)
            data[r * cols_ + c] = col[r];
    }
}

void
Fft2dPlan::forward(Complex *data, SimdLevel level)
{
    run(data, false, level);
}

void
Fft2dPlan::inverse(Complex *data, SimdLevel level)
{
    run(data, true, level);
}

} // namespace sov
