#include "math/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.h"

namespace sov {

EigenDecomposition
symmetricEigen(const Matrix &input, int max_sweeps)
{
    SOV_ASSERT(input.rows() == input.cols());
    const std::size_t n = input.rows();
    Matrix a = input;
    Matrix v = Matrix::identity(n);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        // Sum of off-diagonal magnitudes; convergence criterion.
        double off = 0.0;
        for (std::size_t p = 0; p < n; ++p)
            for (std::size_t q = p + 1; q < n; ++q)
                off += std::fabs(a(p, q));
        if (off < 1e-14)
            break;

        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a(p, q);
                if (std::fabs(apq) < 1e-18)
                    continue;
                const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
                const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                // Apply the rotation to rows/columns p and q.
                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p);
                    const double akq = a(k, q);
                    a(k, p) = c * akp - s * akq;
                    a(k, q) = s * akp + c * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k);
                    const double aqk = a(q, k);
                    a(p, k) = c * apk - s * aqk;
                    a(q, k) = s * apk + c * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = c * vkp - s * vkq;
                    v(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort ascending by eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&a](std::size_t i, std::size_t j) {
        return a(i, i) < a(j, j);
    });

    EigenDecomposition out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        out.values[i] = a(order[i], order[i]);
        for (std::size_t k = 0; k < n; ++k)
            out.vectors(k, i) = v(k, order[i]);
    }
    return out;
}

} // namespace sov
