/**
 * @file
 * Unit quaternion / SO(3) utilities for the IMU integration inside the
 * VIO estimator (Sec. IV, Table III: VIO localization).
 */
#pragma once

#include "math/matrix.h"
#include "math/vec.h"

namespace sov {

/** Unit quaternion representing a 3-D rotation (Hamilton convention). */
class Quat
{
  public:
    /** Identity rotation. */
    constexpr Quat() : w_(1.0), x_(0.0), y_(0.0), z_(0.0) {}

    constexpr Quat(double w, double x, double y, double z)
        : w_(w), x_(x), y_(y), z_(z) {}

    static Quat identity() { return Quat(); }

    /** Axis-angle exponential map: rotation of |w| radians about w/|w|. */
    static Quat fromAxisAngle(const Vec3 &rotation_vector);

    /** Rotation about Z (vehicle yaw, ENU convention). */
    static Quat fromYaw(double yaw_radians);

    double w() const { return w_; }
    double x() const { return x_; }
    double y() const { return y_; }
    double z() const { return z_; }

    /** Hamilton product: (this) then rotate-by... composition q1*q2. */
    Quat operator*(const Quat &o) const;

    Quat conjugate() const { return Quat(w_, -x_, -y_, -z_); }

    double norm() const;

    /** Return the nearest unit quaternion. */
    Quat normalized() const;

    /** Rotate a vector by this quaternion. */
    Vec3 rotate(const Vec3 &v) const;

    /** 3x3 rotation matrix. */
    Matrix toRotationMatrix() const;

    /** Yaw (rotation about Z) extracted from this rotation. */
    double yaw() const;

    /** Logarithmic map: rotation vector (axis * angle). */
    Vec3 toRotationVector() const;

    /** Angular distance to another rotation, in radians. */
    double angularDistance(const Quat &o) const;

  private:
    double w_, x_, y_, z_;
};

} // namespace sov
