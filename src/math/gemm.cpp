#include "math/gemm.h"

#include <algorithm>

#include "math/simd_kernels.h"

namespace sov {

namespace {

/** K-dimension cache block: B rows touched per sweep stay resident. */
constexpr std::size_t kBlockK = 64;

} // namespace

void
gemmF32(std::size_t m, std::size_t n, std::size_t k,
        const float *a, const float *b, float *c, SimdLevel level)
{
    // k is blocked for B reuse across the i sweep; within a block the
    // reduction still runs in ascending k per output element, so
    // blocking never changes the rounding sequence. The j-loop is the
    // element-wise axpy microkernel — identical rounding at any level.
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::size_t k1 = std::min(k0 + kBlockK, k);
        for (std::size_t i = 0; i < m; ++i) {
            float *crow = c + i * n;
            const float *arow = a + i * k;
            for (std::size_t kk = k0; kk < k1; ++kk)
                simd::axpy(crow, b + kk * n, arow[kk], n, level);
        }
    }
}

void
gemmTnF32(std::size_t m, std::size_t n, std::size_t k,
          const float *a, const float *b, float *c, SimdLevel level)
{
    // A is [k x m]: walk the reduction as the outer loop so both A and
    // B are read row-contiguously; per output element k stays
    // ascending.
    for (std::size_t k0 = 0; k0 < k; k0 += kBlockK) {
        const std::size_t k1 = std::min(k0 + kBlockK, k);
        for (std::size_t i = 0; i < m; ++i) {
            float *crow = c + i * n;
            for (std::size_t kk = k0; kk < k1; ++kk)
                simd::axpy(crow, b + kk * n, a[kk * m + i], n, level);
        }
    }
}

void
gemmNtF32(std::size_t m, std::size_t n, std::size_t k,
          const float *a, const float *b, float *c, SimdLevel level)
{
    // B is [n x k]: every output is a dot product of two contiguous
    // rows. Vector levels hold lane partials and fold them in fixed
    // order — deterministic, but reassociated relative to scalar.
    for (std::size_t i = 0; i < m; ++i) {
        const float *arow = a + i * k;
        float *crow = c + i * n;
        for (std::size_t j = 0; j < n; ++j)
            crow[j] += simd::dot(arow, b + j * k, k, level);
    }
}

} // namespace sov
