#include "math/spline.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sov {

CubicSpline::CubicSpline(const std::vector<double> &xs,
                         const std::vector<double> &ys)
    : xs_(xs), a_(ys)
{
    SOV_ASSERT(xs.size() == ys.size());
    SOV_ASSERT(xs.size() >= 2);
    const std::size_t n = xs.size() - 1; // number of intervals
    for (std::size_t i = 0; i < n; ++i)
        SOV_ASSERT(xs[i + 1] > xs[i]);

    std::vector<double> h(n);
    for (std::size_t i = 0; i < n; ++i)
        h[i] = xs[i + 1] - xs[i];

    // Solve the tridiagonal system for second-derivative-related c.
    std::vector<double> alpha(n + 1, 0.0);
    for (std::size_t i = 1; i < n; ++i) {
        alpha[i] = 3.0 * ((a_[i + 1] - a_[i]) / h[i] -
                          (a_[i] - a_[i - 1]) / h[i - 1]);
    }

    std::vector<double> l(n + 1), mu(n + 1), z(n + 1);
    l[0] = 1.0;
    mu[0] = z[0] = 0.0;
    for (std::size_t i = 1; i < n; ++i) {
        l[i] = 2.0 * (xs[i + 1] - xs[i - 1]) - h[i - 1] * mu[i - 1];
        mu[i] = h[i] / l[i];
        z[i] = (alpha[i] - h[i - 1] * z[i - 1]) / l[i];
    }
    l[n] = 1.0;
    z[n] = 0.0;

    c_.assign(n + 1, 0.0);
    b_.assign(n, 0.0);
    d_.assign(n, 0.0);
    for (std::size_t j = n; j-- > 0;) {
        c_[j] = z[j] - mu[j] * c_[j + 1];
        b_[j] = (a_[j + 1] - a_[j]) / h[j] -
            h[j] * (c_[j + 1] + 2.0 * c_[j]) / 3.0;
        d_[j] = (c_[j + 1] - c_[j]) / (3.0 * h[j]);
    }
}

std::size_t
CubicSpline::findInterval(double x) const
{
    // Largest i with xs_[i] <= x, clamped to the last interval.
    const auto it = std::upper_bound(xs_.begin(), xs_.end(), x);
    if (it == xs_.begin())
        return 0;
    std::size_t i = static_cast<std::size_t>(it - xs_.begin()) - 1;
    return std::min(i, xs_.size() - 2);
}

double
CubicSpline::evaluate(double x) const
{
    SOV_ASSERT(valid());
    const double xc = std::clamp(x, xs_.front(), xs_.back());
    const std::size_t i = findInterval(xc);
    const double dx = xc - xs_[i];
    return a_[i] + dx * (b_[i] + dx * (c_[i] + dx * d_[i]));
}

double
CubicSpline::derivative(double x) const
{
    SOV_ASSERT(valid());
    const double xc = std::clamp(x, xs_.front(), xs_.back());
    const std::size_t i = findInterval(xc);
    const double dx = xc - xs_[i];
    return b_[i] + dx * (2.0 * c_[i] + dx * 3.0 * d_[i]);
}

double
CubicSpline::secondDerivative(double x) const
{
    SOV_ASSERT(valid());
    const double xc = std::clamp(x, xs_.front(), xs_.back());
    const std::size_t i = findInterval(xc);
    const double dx = xc - xs_[i];
    return 2.0 * c_[i] + 6.0 * d_[i] * dx;
}

} // namespace sov
