/**
 * @file
 * Radix-2 FFT (1-D and 2-D) used by the KCF visual tracker (Table III),
 * which trains and evaluates correlation filters in the Fourier domain.
 */
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace sov {

using Complex = std::complex<double>;

/** True if n is a power of two (and nonzero). */
bool isPowerOfTwo(std::size_t n);

/**
 * In-place iterative radix-2 FFT.
 * @param data Length must be a power of two.
 * @param inverse If true computes the inverse transform including
 *        the 1/N normalization.
 */
void fft(std::vector<Complex> &data, bool inverse);

/** Forward FFT of a real signal (length must be a power of two). */
std::vector<Complex> fftReal(const std::vector<double> &data);

/**
 * fftReal into a caller-owned buffer. @p out is resized to the input
 * length; a warm buffer is reused without reallocating, so per-frame
 * callers pay no steady-state allocation.
 */
void fftRealInto(const std::vector<double> &data,
                 std::vector<Complex> &out);

/** Inverse FFT returning only the real parts. */
std::vector<double> ifftToReal(std::vector<Complex> spectrum);

/**
 * ifftToReal into a caller-owned buffer; @p spectrum is transformed
 * in place (it holds the time-domain values afterwards).
 */
void ifftToRealInto(std::vector<Complex> &spectrum,
                    std::vector<double> &out);

/**
 * Row-major 2-D FFT.
 * @param data rows*cols complex values, both dimensions powers of two.
 */
void fft2d(std::vector<Complex> &data, std::size_t rows, std::size_t cols,
           bool inverse);

/** Element-wise product of two spectra (must be equal length). */
std::vector<Complex> hadamard(const std::vector<Complex> &a,
                              const std::vector<Complex> &b);

/** hadamard into a caller-owned buffer (may alias @p a or @p b). */
void hadamardInto(const std::vector<Complex> &a,
                  const std::vector<Complex> &b,
                  std::vector<Complex> &out);

/** Element-wise product with the conjugate of b. */
std::vector<Complex> hadamardConj(const std::vector<Complex> &a,
                                  const std::vector<Complex> &b);

/** hadamardConj into a caller-owned buffer (may alias inputs). */
void hadamardConjInto(const std::vector<Complex> &a,
                      const std::vector<Complex> &b,
                      std::vector<Complex> &out);

} // namespace sov
