/**
 * @file
 * Radix-2 FFT (1-D and 2-D) used by the KCF visual tracker (Table III),
 * which trains and evaluates correlation filters in the Fourier domain.
 */
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace sov {

using Complex = std::complex<double>;

/** True if n is a power of two (and nonzero). */
bool isPowerOfTwo(std::size_t n);

/**
 * In-place iterative radix-2 FFT.
 * @param data Length must be a power of two.
 * @param inverse If true computes the inverse transform including
 *        the 1/N normalization.
 */
void fft(std::vector<Complex> &data, bool inverse);

/** Forward FFT of a real signal (length must be a power of two). */
std::vector<Complex> fftReal(const std::vector<double> &data);

/** Inverse FFT returning only the real parts. */
std::vector<double> ifftToReal(std::vector<Complex> spectrum);

/**
 * Row-major 2-D FFT.
 * @param data rows*cols complex values, both dimensions powers of two.
 */
void fft2d(std::vector<Complex> &data, std::size_t rows, std::size_t cols,
           bool inverse);

/** Element-wise product of two spectra (must be equal length). */
std::vector<Complex> hadamard(const std::vector<Complex> &a,
                              const std::vector<Complex> &b);

/** Element-wise product with the conjugate of b. */
std::vector<Complex> hadamardConj(const std::vector<Complex> &a,
                                  const std::vector<Complex> &b);

} // namespace sov
