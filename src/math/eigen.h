/**
 * @file
 * Symmetric eigendecomposition via cyclic Jacobi rotations; used by
 * point-cloud normal estimation (PCA of local neighborhoods) and the
 * recognition pipeline.
 */
#pragma once

#include <vector>

#include "math/matrix.h"

namespace sov {

/** Result of a symmetric eigendecomposition. */
struct EigenDecomposition
{
    /** Eigenvalues in ascending order. */
    std::vector<double> values;
    /** Column i of this matrix is the eigenvector for values[i]. */
    Matrix vectors;
};

/**
 * Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
 * @param a Symmetric n x n matrix (symmetry is assumed, not checked
 *          beyond a tolerance assert).
 * @param max_sweeps Upper bound on full Jacobi sweeps.
 */
EigenDecomposition symmetricEigen(const Matrix &a, int max_sweeps = 32);

} // namespace sov
