#include "math/fft.h"

#include <cmath>

#include "core/logging.h"
#include "math/simd_kernels.h"

namespace sov {

bool
isPowerOfTwo(std::size_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

void
fft(std::vector<Complex> &data, bool inverse)
{
    const std::size_t n = data.size();
    SOV_ASSERT(isPowerOfTwo(n));

    // Bit-reversal permutation.
    for (std::size_t i = 1, j = 0; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(data[i], data[j]);
    }

    for (std::size_t len = 2; len <= n; len <<= 1) {
        const double ang = 2.0 * M_PI / static_cast<double>(len) *
            (inverse ? 1.0 : -1.0);
        const Complex wlen(std::cos(ang), std::sin(ang));
        for (std::size_t i = 0; i < n; i += len) {
            Complex w(1.0, 0.0);
            for (std::size_t k = 0; k < len / 2; ++k) {
                const Complex u = data[i + k];
                const Complex v = data[i + k + len / 2] * w;
                data[i + k] = u + v;
                data[i + k + len / 2] = u - v;
                w *= wlen;
            }
        }
    }

    if (inverse) {
        const double inv_n = 1.0 / static_cast<double>(n);
        for (auto &x : data)
            x *= inv_n;
    }
}

void
fftRealInto(const std::vector<double> &data, std::vector<Complex> &out)
{
    out.resize(data.size());
    for (std::size_t i = 0; i < data.size(); ++i)
        out[i] = Complex(data[i], 0.0);
    fft(out, false);
}

std::vector<Complex>
fftReal(const std::vector<double> &data)
{
    std::vector<Complex> c;
    fftRealInto(data, c);
    return c;
}

void
ifftToRealInto(std::vector<Complex> &spectrum, std::vector<double> &out)
{
    fft(spectrum, true);
    out.resize(spectrum.size());
    for (std::size_t i = 0; i < spectrum.size(); ++i)
        out[i] = spectrum[i].real();
}

std::vector<double>
ifftToReal(std::vector<Complex> spectrum)
{
    std::vector<double> out;
    ifftToRealInto(spectrum, out);
    return out;
}

void
fft2d(std::vector<Complex> &data, std::size_t rows, std::size_t cols,
      bool inverse)
{
    SOV_ASSERT(data.size() == rows * cols);
    SOV_ASSERT(isPowerOfTwo(rows) && isPowerOfTwo(cols));

    // Transform rows.
    std::vector<Complex> row(cols);
    for (std::size_t r = 0; r < rows; ++r) {
        std::copy(data.begin() + static_cast<long>(r * cols),
                  data.begin() + static_cast<long>((r + 1) * cols),
                  row.begin());
        fft(row, inverse);
        std::copy(row.begin(), row.end(),
                  data.begin() + static_cast<long>(r * cols));
    }

    // Transform columns.
    std::vector<Complex> col(rows);
    for (std::size_t c = 0; c < cols; ++c) {
        for (std::size_t r = 0; r < rows; ++r)
            col[r] = data[r * cols + c];
        fft(col, inverse);
        for (std::size_t r = 0; r < rows; ++r)
            data[r * cols + c] = col[r];
    }
}

void
hadamardInto(const std::vector<Complex> &a,
             const std::vector<Complex> &b, std::vector<Complex> &out)
{
    SOV_ASSERT(a.size() == b.size());
    out.resize(a.size());
    simd::hadamardMul(out.data(), a.data(), b.data(), a.size(), false,
                      SimdLevel::None);
}

std::vector<Complex>
hadamard(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    std::vector<Complex> out;
    hadamardInto(a, b, out);
    return out;
}

void
hadamardConjInto(const std::vector<Complex> &a,
                 const std::vector<Complex> &b,
                 std::vector<Complex> &out)
{
    SOV_ASSERT(a.size() == b.size());
    out.resize(a.size());
    simd::hadamardMul(out.data(), a.data(), b.data(), a.size(), true,
                      SimdLevel::None);
}

std::vector<Complex>
hadamardConj(const std::vector<Complex> &a, const std::vector<Complex> &b)
{
    std::vector<Complex> out;
    hadamardConjInto(a, b, out);
    return out;
}

} // namespace sov
