/**
 * @file
 * Shared inner-loop primitives for the KernelBackend::Simd tier.
 *
 * Each primitive takes the SimdLevel to run at; the Fast backends call
 * these with SimdLevel::None (the scalar body *is* the Fast loop) and
 * the Simd backends pass detectSimdLevel(), so there is exactly one
 * dispatch point — and one scalar definition — per hot loop. A level
 * the build or function does not support silently degrades to the
 * scalar body.
 *
 * Equivalence policy (gated in bench_kernels and the unit tests):
 *  - element-wise loops (absDiffAccum, axpy, butterfly, hadamardMul,
 *    scale, the leaf-scan distances) perform the same individually
 *    rounded operations per element in both bodies — mul and add are
 *    kept as separate instructions (target("avx2") does not enable
 *    FMA contraction) — so vector output is bit-identical to scalar;
 *  - reductions (dot, icpAccum) hold per-lane partial sums and fold
 *    them in fixed lane order, which reassociates the sum: results are
 *    deterministic but differ from scalar by a documented epsilon.
 *
 * Coverage: the f32 kernels have SSE2 and AVX2 bodies; the f64 /
 * complex kernels are AVX2-only (SSE2 lacks addsub and 4-wide f64)
 * and run scalar below that.
 */
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

#include "core/simd.h"

namespace sov::simd {

using Complex = std::complex<double>;

/** No-improvement sentinel for nearestLeaf. */
inline constexpr std::size_t kNoImprovement =
    static_cast<std::size_t>(-1);

/** dst[i] += |a[i] - b[i]| — the stereo SAD column-sum update. */
void absDiffAdd(float *dst, const float *a, const float *b,
                std::size_t n, SimdLevel level);

/** dst[i] -= |a[i] - b[i]| — the leaving-row column-sum update. */
void absDiffSub(float *dst, const float *a, const float *b,
                std::size_t n, SimdLevel level);

/** dst[j] += s * src[j] — the gemmF32/gemmTnF32 micro-row. */
void axpy(float *dst, const float *src, float s, std::size_t n,
          SimdLevel level);

/** Σ a[i]·b[i] — the gemmNtF32 micro-dot (lane-reassociated). */
float dot(const float *a, const float *b, std::size_t n,
          SimdLevel level);

/**
 * One radix-2 butterfly block: for k < half,
 *   v = hi[k]·w[k]; hi[k] = lo[k] − v; lo[k] = lo[k] + v.
 * @p w points at the precomputed twiddles for this stage.
 */
void butterfly(Complex *lo, Complex *hi, const Complex *w,
               std::size_t half, SimdLevel level);

/** out[i] = a[i]·b[i] (conj_b: a[i]·conj(b[i])). May alias a or b. */
void hadamardMul(Complex *out, const Complex *a, const Complex *b,
                 std::size_t n, bool conj_b, SimdLevel level);

/** data[i] *= s — the inverse-FFT 1/N normalization. */
void scale(Complex *data, double s, std::size_t n, SimdLevel level);

/**
 * Kd-tree leaf scan over SoA coordinates: examine points [0, n) in
 * order and track the strictly closest one to (qx, qy, qz), exactly
 * like the scalar `d2 < best` loop (first strict improvement wins
 * ties). @p best_d2 carries the incoming bound in and the improved
 * bound out; @p best_off is the offset of the winning point, or
 * kNoImprovement when nothing beat the incoming bound. Distances are
 * rounded identically to Vec3::squaredNorm, so results are
 * bit-identical at every level.
 */
void nearestLeaf(const double *xs, const double *ys, const double *zs,
                 std::size_t n, double qx, double qy, double qz,
                 double &best_d2, std::size_t &best_off,
                 SimdLevel level);

/**
 * Sufficient statistics of one ICP Gauss-Newton pass: with
 * J_i = [−skew(p_i) | I] the normal equations depend only on these
 * sums (see pointcloud/icp.cpp). Field names: s<a><b> = Σ p_a·p_b,
 * sp = Σ p, sc = Σ p×r, sr = Σ r.
 */
struct IcpStats
{
    double sxx = 0.0, syy = 0.0, szz = 0.0;
    double sxy = 0.0, sxz = 0.0, syz = 0.0;
    double spx = 0.0, spy = 0.0, spz = 0.0;
    double scx = 0.0, scy = 0.0, scz = 0.0;
    double srx = 0.0, sry = 0.0, srz = 0.0;
};

/**
 * Accumulate @p n correspondences (transformed source point p,
 * residual r = p − q, SoA layout) into @p stats (lane-reassociated at
 * Avx2; scalar otherwise).
 */
void icpAccum(const double *px, const double *py, const double *pz,
              const double *rx, const double *ry, const double *rz,
              std::size_t n, IcpStats &stats, SimdLevel level);

} // namespace sov::simd
