/**
 * @file
 * Natural cubic spline interpolation; used by the ground-truth
 * trajectory generator (smooth vehicle paths) and the QP path smoother
 * of the EM-style planner baseline.
 */
#pragma once

#include <cstddef>
#include <vector>

namespace sov {

/**
 * Natural cubic spline through (x_i, y_i) knots with strictly
 * increasing x.
 */
class CubicSpline
{
  public:
    CubicSpline() = default;

    /**
     * Fit the spline.
     * @param xs Strictly increasing sample locations (>= 2 knots).
     * @param ys Values at those locations.
     */
    CubicSpline(const std::vector<double> &xs, const std::vector<double> &ys);

    /** Evaluate at x (clamped extrapolation beyond the knots). */
    double evaluate(double x) const;

    /** First derivative at x. */
    double derivative(double x) const;

    /** Second derivative at x. */
    double secondDerivative(double x) const;

    bool valid() const { return xs_.size() >= 2; }
    double minX() const { return xs_.front(); }
    double maxX() const { return xs_.back(); }

  private:
    /** Index of the knot interval containing x. */
    std::size_t findInterval(double x) const;

    std::vector<double> xs_;
    std::vector<double> a_, b_, c_, d_; //!< per-interval coefficients
};

} // namespace sov
