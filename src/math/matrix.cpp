#include "math/matrix.h"

#include <cmath>

namespace sov {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ ? rows.begin()->size() : 0;
    data_.reserve(rows_ * cols_);
    for (const auto &r : rows) {
        SOV_ASSERT(r.size() == cols_);
        for (double v : r)
            data_.push_back(v);
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        m(i, i) = 1.0;
    return m;
}

Matrix
Matrix::zero(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols);
}

Matrix
Matrix::diagonal(const std::vector<double> &d)
{
    Matrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i)
        m(i, i) = d[i];
    return m;
}

Matrix
Matrix::columnVector(const std::vector<double> &v)
{
    Matrix m(v.size(), 1);
    for (std::size_t i = 0; i < v.size(); ++i)
        m(i, 0) = v[i];
    return m;
}

Matrix
Matrix::operator+(const Matrix &o) const
{
    SOV_ASSERT(rows_ == o.rows_ && cols_ == o.cols_);
    Matrix r = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        r.data_[i] += o.data_[i];
    return r;
}

Matrix
Matrix::operator-(const Matrix &o) const
{
    SOV_ASSERT(rows_ == o.rows_ && cols_ == o.cols_);
    Matrix r = *this;
    for (std::size_t i = 0; i < data_.size(); ++i)
        r.data_[i] -= o.data_[i];
    return r;
}

Matrix &
Matrix::operator+=(const Matrix &o)
{
    SOV_ASSERT(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += o.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &o)
{
    SOV_ASSERT(rows_ == o.rows_ && cols_ == o.cols_);
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= o.data_[i];
    return *this;
}

Matrix
Matrix::operator*(const Matrix &o) const
{
    SOV_ASSERT(cols_ == o.rows_);
    Matrix r(rows_, o.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t k = 0; k < cols_; ++k) {
            const double a = data_[i * cols_ + k];
            if (a == 0.0)
                continue;
            const double *orow = &o.data_[k * o.cols_];
            double *rrow = &r.data_[i * o.cols_];
            for (std::size_t j = 0; j < o.cols_; ++j)
                rrow[j] += a * orow[j];
        }
    }
    return r;
}

Matrix
Matrix::operator*(double k) const
{
    Matrix r = *this;
    for (double &v : r.data_)
        v *= k;
    return r;
}

Matrix
operator*(double k, const Matrix &m)
{
    return m * k;
}

Matrix
Matrix::transpose() const
{
    Matrix r(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        for (std::size_t j = 0; j < cols_; ++j)
            r(j, i) = (*this)(i, j);
    return r;
}

Matrix
Matrix::inverse() const
{
    SOV_ASSERT(rows_ == cols_);
    const std::size_t n = rows_;
    // Gauss-Jordan with partial pivoting on an [A | I] augmented system.
    Matrix a = *this;
    Matrix inv = identity(n);
    for (std::size_t col = 0; col < n; ++col) {
        // Pivot selection.
        std::size_t pivot = col;
        double best = std::fabs(a(col, col));
        for (std::size_t r = col + 1; r < n; ++r) {
            const double v = std::fabs(a(r, col));
            if (v > best) {
                best = v;
                pivot = r;
            }
        }
        SOV_ASSERT(best > 1e-14);
        if (pivot != col) {
            for (std::size_t j = 0; j < n; ++j) {
                std::swap(a(col, j), a(pivot, j));
                std::swap(inv(col, j), inv(pivot, j));
            }
        }
        const double p = a(col, col);
        for (std::size_t j = 0; j < n; ++j) {
            a(col, j) /= p;
            inv(col, j) /= p;
        }
        for (std::size_t r = 0; r < n; ++r) {
            if (r == col)
                continue;
            const double f = a(r, col);
            if (f == 0.0)
                continue;
            for (std::size_t j = 0; j < n; ++j) {
                a(r, j) -= f * a(col, j);
                inv(r, j) -= f * inv(col, j);
            }
        }
    }
    return inv;
}

Matrix
Matrix::choleskySolve(const Matrix &b) const
{
    SOV_ASSERT(rows_ == cols_);
    SOV_ASSERT(b.rows_ == rows_ && b.cols_ == 1);
    const std::size_t n = rows_;

    // Lower-triangular factor L with A = L L^T.
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double s = (*this)(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l(i, k) * l(j, k);
            if (i == j) {
                SOV_ASSERT(s > 0.0);
                l(i, i) = std::sqrt(s);
            } else {
                l(i, j) = s / l(j, j);
            }
        }
    }

    // Forward substitution: L y = b.
    Matrix y(n, 1);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b(i, 0);
        for (std::size_t k = 0; k < i; ++k)
            s -= l(i, k) * y(k, 0);
        y(i, 0) = s / l(i, i);
    }

    // Back substitution: L^T x = y.
    Matrix x(n, 1);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y(ii, 0);
        for (std::size_t k = ii + 1; k < n; ++k)
            s -= l(k, ii) * x(k, 0);
        x(ii, 0) = s / l(ii, ii);
    }
    return x;
}

double
Matrix::squaredNorm() const
{
    double s = 0.0;
    for (double v : data_)
        s += v * v;
    return s;
}

double
Matrix::norm() const
{
    return std::sqrt(squaredNorm());
}

double
Matrix::maxAbs() const
{
    double m = 0.0;
    for (double v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

double
Matrix::trace() const
{
    SOV_ASSERT(rows_ == cols_);
    double s = 0.0;
    for (std::size_t i = 0; i < rows_; ++i)
        s += (*this)(i, i);
    return s;
}

void
Matrix::setBlock(std::size_t r0, std::size_t c0, const Matrix &block)
{
    SOV_ASSERT(r0 + block.rows_ <= rows_ && c0 + block.cols_ <= cols_);
    for (std::size_t i = 0; i < block.rows_; ++i)
        for (std::size_t j = 0; j < block.cols_; ++j)
            (*this)(r0 + i, c0 + j) = block(i, j);
}

Matrix
Matrix::block(std::size_t r0, std::size_t c0,
              std::size_t h, std::size_t w) const
{
    SOV_ASSERT(r0 + h <= rows_ && c0 + w <= cols_);
    Matrix r(h, w);
    for (std::size_t i = 0; i < h; ++i)
        for (std::size_t j = 0; j < w; ++j)
            r(i, j) = (*this)(r0 + i, c0 + j);
    return r;
}

Matrix
Matrix::skew(const Vec3 &w)
{
    return Matrix{{0.0, -w.z(), w.y()},
                  {w.z(), 0.0, -w.x()},
                  {-w.y(), w.x(), 0.0}};
}

} // namespace sov
