#include "math/geometry.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace sov {

double
wrapAngle(double radians)
{
    double a = std::fmod(radians + M_PI, 2.0 * M_PI);
    if (a <= 0.0)
        a += 2.0 * M_PI;
    return a - M_PI;
}

Vec2
Pose2::transform(const Vec2 &local) const
{
    const double c = std::cos(heading), s = std::sin(heading);
    return Vec2(position.x() + c * local.x() - s * local.y(),
                position.y() + s * local.x() + c * local.y());
}

Vec2
Pose2::inverseTransform(const Vec2 &world) const
{
    const double c = std::cos(heading), s = std::sin(heading);
    const Vec2 d = world - position;
    return Vec2(c * d.x() + s * d.y(), -s * d.x() + c * d.y());
}

Pose2
Pose2::compose(const Pose2 &other) const
{
    return Pose2{transform(other.position),
                 wrapAngle(heading + other.heading)};
}

Vec2
Pose2::direction() const
{
    return Vec2(std::cos(heading), std::sin(heading));
}

Vec2
Segment2::closestPoint(const Vec2 &p) const
{
    const Vec2 ab = b - a;
    const double len2 = ab.squaredNorm();
    if (len2 < 1e-18)
        return a;
    double t = (p - a).dot(ab) / len2;
    t = std::clamp(t, 0.0, 1.0);
    return a + ab * t;
}

double
Segment2::distanceTo(const Vec2 &p) const
{
    return p.distanceTo(closestPoint(p));
}

std::optional<Vec2>
Segment2::intersect(const Segment2 &o) const
{
    const Vec2 r = b - a;
    const Vec2 s = o.b - o.a;
    const double denom = r.x() * s.y() - r.y() * s.x();
    if (std::fabs(denom) < 1e-14)
        return std::nullopt; // parallel (collinear overlap not reported)
    const Vec2 qp = o.a - a;
    const double t = (qp.x() * s.y() - qp.y() * s.x()) / denom;
    const double u = (qp.x() * r.y() - qp.y() * r.x()) / denom;
    if (t < 0.0 || t > 1.0 || u < 0.0 || u > 1.0)
        return std::nullopt;
    return a + r * t;
}

bool
Aabb2::contains(const Vec2 &p) const
{
    return p.x() >= lo.x() && p.x() <= hi.x() &&
           p.y() >= lo.y() && p.y() <= hi.y();
}

bool
Aabb2::overlaps(const Aabb2 &o) const
{
    return lo.x() <= o.hi.x() && hi.x() >= o.lo.x() &&
           lo.y() <= o.hi.y() && hi.y() >= o.lo.y();
}

Aabb2
Aabb2::inflated(double margin) const
{
    return Aabb2{Vec2(lo.x() - margin, lo.y() - margin),
                 Vec2(hi.x() + margin, hi.y() + margin)};
}

std::vector<Vec2>
OrientedBox2::corners() const
{
    return {
        pose.transform(Vec2(half_length, half_width)),
        pose.transform(Vec2(-half_length, half_width)),
        pose.transform(Vec2(-half_length, -half_width)),
        pose.transform(Vec2(half_length, -half_width)),
    };
}

namespace {

/** Project corners of both boxes onto @p axis; true if ranges overlap. */
bool
axisOverlap(const Vec2 &axis, const std::vector<Vec2> &ca,
            const std::vector<Vec2> &cb)
{
    auto range = [&axis](const std::vector<Vec2> &cs) {
        double lo = cs[0].dot(axis), hi = lo;
        for (std::size_t i = 1; i < cs.size(); ++i) {
            const double v = cs[i].dot(axis);
            lo = std::min(lo, v);
            hi = std::max(hi, v);
        }
        return std::pair<double, double>(lo, hi);
    };
    const auto [alo, ahi] = range(ca);
    const auto [blo, bhi] = range(cb);
    return alo <= bhi && ahi >= blo;
}

} // namespace

bool
OrientedBox2::overlaps(const OrientedBox2 &o) const
{
    const auto ca = corners();
    const auto cb = o.corners();
    const Vec2 axes[4] = {
        pose.direction(),
        Vec2(-pose.direction().y(), pose.direction().x()),
        o.pose.direction(),
        Vec2(-o.pose.direction().y(), o.pose.direction().x()),
    };
    for (const auto &axis : axes) {
        if (!axisOverlap(axis, ca, cb))
            return false;
    }
    return true;
}

double
OrientedBox2::distanceTo(const OrientedBox2 &o) const
{
    if (overlaps(o))
        return 0.0;
    const auto ca = corners();
    const auto cb = o.corners();
    double best = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < 4; ++i) {
        const Segment2 ea{ca[i], ca[(i + 1) % 4]};
        const Segment2 eb{cb[i], cb[(i + 1) % 4]};
        for (std::size_t j = 0; j < 4; ++j) {
            best = std::min(best, ea.distanceTo(cb[j]));
            best = std::min(best, eb.distanceTo(ca[j]));
        }
    }
    return best;
}

bool
OrientedBox2::contains(const Vec2 &p) const
{
    const Vec2 local = pose.inverseTransform(p);
    return std::fabs(local.x()) <= half_length &&
           std::fabs(local.y()) <= half_width;
}

Polyline2::Polyline2(std::vector<Vec2> points) : points_(std::move(points))
{
    cumlen_.reserve(points_.size());
    double s = 0.0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
        if (i > 0)
            s += points_[i].distanceTo(points_[i - 1]);
        cumlen_.push_back(s);
    }
}

double
Polyline2::length() const
{
    return cumlen_.empty() ? 0.0 : cumlen_.back();
}

void
Polyline2::append(const Vec2 &p)
{
    double s = 0.0;
    if (!points_.empty())
        s = cumlen_.back() + p.distanceTo(points_.back());
    points_.push_back(p);
    cumlen_.push_back(s);
}

Vec2
Polyline2::sample(double s) const
{
    SOV_ASSERT(!points_.empty());
    if (points_.size() == 1 || s <= 0.0)
        return points_.front();
    if (s >= length())
        return points_.back();
    // Binary search the segment containing arc length s.
    const auto it = std::upper_bound(cumlen_.begin(), cumlen_.end(), s);
    const std::size_t i = static_cast<std::size_t>(it - cumlen_.begin());
    const double seg_start = cumlen_[i - 1];
    const double seg_len = cumlen_[i] - seg_start;
    const double t = seg_len > 0.0 ? (s - seg_start) / seg_len : 0.0;
    return points_[i - 1] + (points_[i] - points_[i - 1]) * t;
}

double
Polyline2::headingAt(double s) const
{
    SOV_ASSERT(points_.size() >= 2);
    const double clamped = std::clamp(s, 0.0, length());
    auto it = std::upper_bound(cumlen_.begin(), cumlen_.end(), clamped);
    std::size_t i = static_cast<std::size_t>(it - cumlen_.begin());
    if (i >= points_.size())
        i = points_.size() - 1;
    if (i == 0)
        i = 1;
    const Vec2 d = points_[i] - points_[i - 1];
    return std::atan2(d.y(), d.x());
}

std::pair<double, double>
Polyline2::project(const Vec2 &p) const
{
    SOV_ASSERT(points_.size() >= 2);
    double best_dist2 = std::numeric_limits<double>::max();
    double best_s = 0.0;
    double best_side = 0.0;
    for (std::size_t i = 1; i < points_.size(); ++i) {
        const Segment2 seg{points_[i - 1], points_[i]};
        const Vec2 cp = seg.closestPoint(p);
        const double d2 = (p - cp).squaredNorm();
        if (d2 < best_dist2) {
            best_dist2 = d2;
            best_s = cumlen_[i - 1] + cp.distanceTo(points_[i - 1]);
            const Vec2 dir = points_[i] - points_[i - 1];
            const Vec2 off = p - cp;
            // Positive lateral offset = left of travel direction.
            best_side = dir.x() * off.y() - dir.y() * off.x() >= 0.0
                ? std::sqrt(d2) : -std::sqrt(d2);
        }
    }
    return {best_s, best_side};
}

} // namespace sov
