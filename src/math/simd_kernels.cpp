/**
 * @file
 * Scalar and vector bodies of the Simd-tier primitives.
 *
 * The whole translation unit compiles for the generic target; every
 * vector body carries a per-function target attribute and is only
 * reachable through the level dispatch, which never hands a body an
 * instruction set the host lacks (core/simd.h probes with
 * __builtin_cpu_supports). Note that target("avx2") deliberately does
 * NOT enable FMA: keeping mul and add as separate, individually
 * rounded instructions is what makes the element-wise bodies
 * bit-identical to their scalar twins.
 */
#include "math/simd_kernels.h"

#include <cmath>

#if defined(SOV_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
#define SOV_SIMD_X86 1
#include <immintrin.h>
#else
#define SOV_SIMD_X86 0
#endif

namespace sov::simd {

namespace {

// ------------------------------------------------------ scalar bodies

template <bool Add>
void
absDiffAccumScalar(float *dst, const float *a, const float *b,
                   std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const float d = std::fabs(a[i] - b[i]);
        dst[i] = Add ? dst[i] + d : dst[i] - d;
    }
}

void
axpyScalar(float *dst, const float *src, float s, std::size_t n)
{
    for (std::size_t j = 0; j < n; ++j)
        dst[j] += s * src[j];
}

float
dotScalar(const float *a, const float *b, std::size_t n)
{
    float acc = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        acc += a[i] * b[i];
    return acc;
}

void
butterflyScalar(Complex *lo, Complex *hi, const Complex *w,
                std::size_t half)
{
    for (std::size_t k = 0; k < half; ++k) {
        const Complex u = lo[k];
        const Complex v = hi[k] * w[k];
        lo[k] = u + v;
        hi[k] = u - v;
    }
}

template <bool ConjB>
void
hadamardScalar(Complex *out, const Complex *a, const Complex *b,
               std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        out[i] = ConjB ? a[i] * std::conj(b[i]) : a[i] * b[i];
}

void
scaleScalar(Complex *data, double s, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        data[i] *= s;
}

void
nearestLeafScalar(const double *xs, const double *ys, const double *zs,
                  std::size_t begin, std::size_t n, double qx, double qy,
                  double qz, double &best_d2, std::size_t &best_off)
{
    for (std::size_t i = begin; i < n; ++i) {
        const double dx = xs[i] - qx;
        const double dy = ys[i] - qy;
        const double dz = zs[i] - qz;
        // Left-associated like Vec3::squaredNorm's running sum.
        const double d2 = dx * dx + dy * dy + dz * dz;
        if (d2 < best_d2) {
            best_d2 = d2;
            best_off = i;
        }
    }
}

void
icpAccumScalar(const double *px, const double *py, const double *pz,
               const double *rx, const double *ry, const double *rz,
               std::size_t begin, std::size_t n, IcpStats &s)
{
    for (std::size_t i = begin; i < n; ++i) {
        const double x = px[i], y = py[i], z = pz[i];
        s.sxx += x * x;
        s.syy += y * y;
        s.szz += z * z;
        s.sxy += x * y;
        s.sxz += x * z;
        s.syz += y * z;
        s.spx += x;
        s.spy += y;
        s.spz += z;
        const double ex = rx[i], ey = ry[i], ez = rz[i];
        s.scx += y * ez - z * ey;
        s.scy += z * ex - x * ez;
        s.scz += x * ey - y * ex;
        s.srx += ex;
        s.sry += ey;
        s.srz += ez;
    }
}

#if SOV_SIMD_X86

// ------------------------------------------------------ vector bodies

template <bool Add>
__attribute__((target("avx2"))) void
absDiffAccumAvx2(float *dst, const float *a, const float *b,
                 std::size_t n)
{
    const __m256 sign = _mm256_set1_ps(-0.0f);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 d = _mm256_andnot_ps(
            sign, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                _mm256_loadu_ps(b + i)));
        const __m256 acc = _mm256_loadu_ps(dst + i);
        _mm256_storeu_ps(dst + i,
                         Add ? _mm256_add_ps(acc, d)
                             : _mm256_sub_ps(acc, d));
    }
    absDiffAccumScalar<Add>(dst + i, a + i, b + i, n - i);
}

template <bool Add>
__attribute__((target("sse2"))) void
absDiffAccumSse2(float *dst, const float *a, const float *b,
                 std::size_t n)
{
    const __m128 sign = _mm_set1_ps(-0.0f);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 d = _mm_andnot_ps(
            sign,
            _mm_sub_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
        const __m128 acc = _mm_loadu_ps(dst + i);
        _mm_storeu_ps(dst + i,
                      Add ? _mm_add_ps(acc, d) : _mm_sub_ps(acc, d));
    }
    absDiffAccumScalar<Add>(dst + i, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void
axpyAvx2(float *dst, const float *src, float s, std::size_t n)
{
    const __m256 vs = _mm256_set1_ps(s);
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
        const __m256 acc = _mm256_add_ps(
            _mm256_loadu_ps(dst + j),
            _mm256_mul_ps(vs, _mm256_loadu_ps(src + j)));
        _mm256_storeu_ps(dst + j, acc);
    }
    axpyScalar(dst + j, src + j, s, n - j);
}

__attribute__((target("sse2"))) void
axpySse2(float *dst, const float *src, float s, std::size_t n)
{
    const __m128 vs = _mm_set1_ps(s);
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m128 acc =
            _mm_add_ps(_mm_loadu_ps(dst + j),
                       _mm_mul_ps(vs, _mm_loadu_ps(src + j)));
        _mm_storeu_ps(dst + j, acc);
    }
    axpyScalar(dst + j, src + j, s, n - j);
}

__attribute__((target("avx2"))) float
dotAvx2(const float *a, const float *b, std::size_t n)
{
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                          _mm256_loadu_ps(b + i)));
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, acc);
    // Fixed lane-fold order keeps the reassociation deterministic.
    float sum = 0.0f;
    for (float lane : lanes)
        sum += lane;
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

__attribute__((target("sse2"))) float
dotSse2(const float *a, const float *b, std::size_t n)
{
    __m128 acc = _mm_setzero_ps();
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        acc = _mm_add_ps(acc, _mm_mul_ps(_mm_loadu_ps(a + i),
                                         _mm_loadu_ps(b + i)));
    alignas(16) float lanes[4];
    _mm_store_ps(lanes, acc);
    float sum = 0.0f;
    for (float lane : lanes)
        sum += lane;
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

/**
 * Two packed complex products per vector: with w split into
 * duplicated real and imaginary lanes, addsub realizes
 * (hr·wr − hi·wi, hi·wr + hr·wi) with the same per-op rounding as the
 * scalar naive formula.
 */
__attribute__((target("avx2"))) inline __m256d
complexMulAvx2(__m256d u, __m256d w)
{
    const __m256d wr = _mm256_movedup_pd(w);
    const __m256d wi = _mm256_permute_pd(w, 0xF);
    const __m256d us = _mm256_permute_pd(u, 0x5);
    return _mm256_addsub_pd(_mm256_mul_pd(u, wr),
                            _mm256_mul_pd(us, wi));
}

__attribute__((target("avx2"))) void
butterflyAvx2(Complex *lo, Complex *hi, const Complex *w,
              std::size_t half)
{
    auto *lod = reinterpret_cast<double *>(lo);
    auto *hid = reinterpret_cast<double *>(hi);
    const auto *wd = reinterpret_cast<const double *>(w);
    std::size_t k = 0;
    for (; k + 2 <= half; k += 2) {
        const __m256d u = _mm256_loadu_pd(lod + 2 * k);
        const __m256d h = _mm256_loadu_pd(hid + 2 * k);
        const __m256d v =
            complexMulAvx2(h, _mm256_loadu_pd(wd + 2 * k));
        _mm256_storeu_pd(lod + 2 * k, _mm256_add_pd(u, v));
        _mm256_storeu_pd(hid + 2 * k, _mm256_sub_pd(u, v));
    }
    butterflyScalar(lo + k, hi + k, w + k, half - k);
}

template <bool ConjB>
__attribute__((target("avx2"))) void
hadamardAvx2(Complex *out, const Complex *a, const Complex *b,
             std::size_t n)
{
    auto *od = reinterpret_cast<double *>(out);
    const auto *ad = reinterpret_cast<const double *>(a);
    const auto *bd = reinterpret_cast<const double *>(b);
    // Conjugation = exact sign flip of the imaginary lanes.
    const __m256d conj_mask = _mm256_set_pd(-0.0, 0.0, -0.0, 0.0);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        __m256d vb = _mm256_loadu_pd(bd + 2 * i);
        if (ConjB)
            vb = _mm256_xor_pd(vb, conj_mask);
        _mm256_storeu_pd(
            od + 2 * i,
            complexMulAvx2(_mm256_loadu_pd(ad + 2 * i), vb));
    }
    hadamardScalar<ConjB>(out + i, a + i, b + i, n - i);
}

__attribute__((target("avx2"))) void
scaleAvx2(Complex *data, double s, std::size_t n)
{
    auto *d = reinterpret_cast<double *>(data);
    const __m256d vs = _mm256_set1_pd(s);
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2)
        _mm256_storeu_pd(d + 2 * i,
                         _mm256_mul_pd(_mm256_loadu_pd(d + 2 * i), vs));
    scaleScalar(data + i, s, n - i);
}

__attribute__((target("avx2"))) void
nearestLeafAvx2(const double *xs, const double *ys, const double *zs,
                std::size_t n, double qx, double qy, double qz,
                double &best_d2, std::size_t &best_off)
{
    const __m256d vqx = _mm256_set1_pd(qx);
    const __m256d vqy = _mm256_set1_pd(qy);
    const __m256d vqz = _mm256_set1_pd(qz);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d dx = _mm256_sub_pd(_mm256_loadu_pd(xs + i), vqx);
        const __m256d dy = _mm256_sub_pd(_mm256_loadu_pd(ys + i), vqy);
        const __m256d dz = _mm256_sub_pd(_mm256_loadu_pd(zs + i), vqz);
        const __m256d d2 = _mm256_add_pd(
            _mm256_add_pd(_mm256_mul_pd(dx, dx), _mm256_mul_pd(dy, dy)),
            _mm256_mul_pd(dz, dz));
        const int mask = _mm256_movemask_pd(
            _mm256_cmp_pd(d2, _mm256_set1_pd(best_d2), _CMP_LT_OQ));
        if (mask) {
            // Rare path: resolve lanes in order to keep the scalar
            // first-strict-improvement tie semantics.
            alignas(32) double lanes[4];
            _mm256_store_pd(lanes, d2);
            for (std::size_t lane = 0; lane < 4; ++lane) {
                if (lanes[lane] < best_d2) {
                    best_d2 = lanes[lane];
                    best_off = i + lane;
                }
            }
        }
    }
    nearestLeafScalar(xs, ys, zs, i, n, qx, qy, qz, best_d2, best_off);
}

/** Fixed-order lane fold; a named function because lambdas do not
 *  inherit the enclosing function's target attribute. */
__attribute__((target("avx2"))) inline double
foldAvx2(__m256d v)
{
    alignas(32) double lanes[4];
    _mm256_store_pd(lanes, v);
    return ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
}

__attribute__((target("avx2"))) void
icpAccumAvx2(const double *px, const double *py, const double *pz,
             const double *rx, const double *ry, const double *rz,
             std::size_t n, IcpStats &s)
{
    __m256d sxx = _mm256_setzero_pd(), syy = sxx, szz = sxx;
    __m256d sxy = sxx, sxz = sxx, syz = sxx;
    __m256d spx = sxx, spy = sxx, spz = sxx;
    __m256d scx = sxx, scy = sxx, scz = sxx;
    __m256d srx = sxx, sry = sxx, srz = sxx;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m256d x = _mm256_loadu_pd(px + i);
        const __m256d y = _mm256_loadu_pd(py + i);
        const __m256d z = _mm256_loadu_pd(pz + i);
        sxx = _mm256_add_pd(sxx, _mm256_mul_pd(x, x));
        syy = _mm256_add_pd(syy, _mm256_mul_pd(y, y));
        szz = _mm256_add_pd(szz, _mm256_mul_pd(z, z));
        sxy = _mm256_add_pd(sxy, _mm256_mul_pd(x, y));
        sxz = _mm256_add_pd(sxz, _mm256_mul_pd(x, z));
        syz = _mm256_add_pd(syz, _mm256_mul_pd(y, z));
        spx = _mm256_add_pd(spx, x);
        spy = _mm256_add_pd(spy, y);
        spz = _mm256_add_pd(spz, z);
        const __m256d ex = _mm256_loadu_pd(rx + i);
        const __m256d ey = _mm256_loadu_pd(ry + i);
        const __m256d ez = _mm256_loadu_pd(rz + i);
        scx = _mm256_add_pd(
            scx, _mm256_sub_pd(_mm256_mul_pd(y, ez),
                               _mm256_mul_pd(z, ey)));
        scy = _mm256_add_pd(
            scy, _mm256_sub_pd(_mm256_mul_pd(z, ex),
                               _mm256_mul_pd(x, ez)));
        scz = _mm256_add_pd(
            scz, _mm256_sub_pd(_mm256_mul_pd(x, ey),
                               _mm256_mul_pd(y, ex)));
        srx = _mm256_add_pd(srx, ex);
        sry = _mm256_add_pd(sry, ey);
        srz = _mm256_add_pd(srz, ez);
    }
    s.sxx += foldAvx2(sxx);
    s.syy += foldAvx2(syy);
    s.szz += foldAvx2(szz);
    s.sxy += foldAvx2(sxy);
    s.sxz += foldAvx2(sxz);
    s.syz += foldAvx2(syz);
    s.spx += foldAvx2(spx);
    s.spy += foldAvx2(spy);
    s.spz += foldAvx2(spz);
    s.scx += foldAvx2(scx);
    s.scy += foldAvx2(scy);
    s.scz += foldAvx2(scz);
    s.srx += foldAvx2(srx);
    s.sry += foldAvx2(sry);
    s.srz += foldAvx2(srz);
    icpAccumScalar(px, py, pz, rx, ry, rz, i, n, s);
}

#endif // SOV_SIMD_X86

} // namespace

// --------------------------------------------------------- dispatchers

void
absDiffAdd(float *dst, const float *a, const float *b, std::size_t n,
           [[maybe_unused]] SimdLevel level)
{
#if SOV_SIMD_X86
    if (level == SimdLevel::Avx2)
        return absDiffAccumAvx2<true>(dst, a, b, n);
    if (level == SimdLevel::Sse2)
        return absDiffAccumSse2<true>(dst, a, b, n);
#endif
    absDiffAccumScalar<true>(dst, a, b, n);
}

void
absDiffSub(float *dst, const float *a, const float *b, std::size_t n,
           [[maybe_unused]] SimdLevel level)
{
#if SOV_SIMD_X86
    if (level == SimdLevel::Avx2)
        return absDiffAccumAvx2<false>(dst, a, b, n);
    if (level == SimdLevel::Sse2)
        return absDiffAccumSse2<false>(dst, a, b, n);
#endif
    absDiffAccumScalar<false>(dst, a, b, n);
}

void
axpy(float *dst, const float *src, float s, std::size_t n,
     [[maybe_unused]] SimdLevel level)
{
#if SOV_SIMD_X86
    if (level == SimdLevel::Avx2)
        return axpyAvx2(dst, src, s, n);
    if (level == SimdLevel::Sse2)
        return axpySse2(dst, src, s, n);
#endif
    axpyScalar(dst, src, s, n);
}

float
dot(const float *a, const float *b, std::size_t n,
    [[maybe_unused]] SimdLevel level)
{
#if SOV_SIMD_X86
    if (level == SimdLevel::Avx2)
        return dotAvx2(a, b, n);
    if (level == SimdLevel::Sse2)
        return dotSse2(a, b, n);
#endif
    return dotScalar(a, b, n);
}

void
butterfly(Complex *lo, Complex *hi, const Complex *w, std::size_t half,
          [[maybe_unused]] SimdLevel level)
{
#if SOV_SIMD_X86
    if (level == SimdLevel::Avx2)
        return butterflyAvx2(lo, hi, w, half);
#endif
    butterflyScalar(lo, hi, w, half);
}

void
hadamardMul(Complex *out, const Complex *a, const Complex *b,
            std::size_t n, bool conj_b,
            [[maybe_unused]] SimdLevel level)
{
#if SOV_SIMD_X86
    if (level == SimdLevel::Avx2) {
        if (conj_b)
            return hadamardAvx2<true>(out, a, b, n);
        return hadamardAvx2<false>(out, a, b, n);
    }
#endif
    if (conj_b)
        hadamardScalar<true>(out, a, b, n);
    else
        hadamardScalar<false>(out, a, b, n);
}

void
scale(Complex *data, double s, std::size_t n,
      [[maybe_unused]] SimdLevel level)
{
#if SOV_SIMD_X86
    if (level == SimdLevel::Avx2)
        return scaleAvx2(data, s, n);
#endif
    scaleScalar(data, s, n);
}

void
nearestLeaf(const double *xs, const double *ys, const double *zs,
            std::size_t n, double qx, double qy, double qz,
            double &best_d2, std::size_t &best_off,
            [[maybe_unused]] SimdLevel level)
{
    best_off = kNoImprovement;
#if SOV_SIMD_X86
    if (level == SimdLevel::Avx2)
        return nearestLeafAvx2(xs, ys, zs, n, qx, qy, qz, best_d2,
                               best_off);
#endif
    nearestLeafScalar(xs, ys, zs, 0, n, qx, qy, qz, best_d2, best_off);
}

void
icpAccum(const double *px, const double *py, const double *pz,
         const double *rx, const double *ry, const double *rz,
         std::size_t n, IcpStats &stats,
         [[maybe_unused]] SimdLevel level)
{
#if SOV_SIMD_X86
    if (level == SimdLevel::Avx2)
        return icpAccumAvx2(px, py, pz, rx, ry, rz, n, stats);
#endif
    icpAccumScalar(px, py, pz, rx, ry, rz, 0, n, stats);
}

} // namespace sov::simd
