#include "math/quat.h"

#include <cmath>

namespace sov {

Quat
Quat::fromAxisAngle(const Vec3 &rotation_vector)
{
    const double angle = rotation_vector.norm();
    if (angle < 1e-12)
        return Quat(1.0, 0.5 * rotation_vector.x(),
                    0.5 * rotation_vector.y(), 0.5 * rotation_vector.z())
            .normalized();
    const Vec3 axis = rotation_vector / angle;
    const double half = 0.5 * angle;
    const double s = std::sin(half);
    return Quat(std::cos(half), axis.x() * s, axis.y() * s, axis.z() * s);
}

Quat
Quat::fromYaw(double yaw_radians)
{
    return fromAxisAngle(Vec3(0.0, 0.0, yaw_radians));
}

Quat
Quat::operator*(const Quat &o) const
{
    return Quat(
        w_ * o.w_ - x_ * o.x_ - y_ * o.y_ - z_ * o.z_,
        w_ * o.x_ + x_ * o.w_ + y_ * o.z_ - z_ * o.y_,
        w_ * o.y_ - x_ * o.z_ + y_ * o.w_ + z_ * o.x_,
        w_ * o.z_ + x_ * o.y_ - y_ * o.x_ + z_ * o.w_);
}

double
Quat::norm() const
{
    return std::sqrt(w_ * w_ + x_ * x_ + y_ * y_ + z_ * z_);
}

Quat
Quat::normalized() const
{
    const double n = norm();
    SOV_ASSERT(n > 0.0);
    return Quat(w_ / n, x_ / n, y_ / n, z_ / n);
}

Vec3
Quat::rotate(const Vec3 &v) const
{
    // v' = v + 2*q_vec x (q_vec x v + w*v)
    const Vec3 qv(x_, y_, z_);
    const Vec3 t = qv.cross(v) * 2.0;
    return v + t * w_ + qv.cross(t);
}

Matrix
Quat::toRotationMatrix() const
{
    const double xx = x_ * x_, yy = y_ * y_, zz = z_ * z_;
    const double xy = x_ * y_, xz = x_ * z_, yz = y_ * z_;
    const double wx = w_ * x_, wy = w_ * y_, wz = w_ * z_;
    return Matrix{
        {1 - 2 * (yy + zz), 2 * (xy - wz), 2 * (xz + wy)},
        {2 * (xy + wz), 1 - 2 * (xx + zz), 2 * (yz - wx)},
        {2 * (xz - wy), 2 * (yz + wx), 1 - 2 * (xx + yy)}};
}

double
Quat::yaw() const
{
    return std::atan2(2.0 * (w_ * z_ + x_ * y_),
                      1.0 - 2.0 * (y_ * y_ + z_ * z_));
}

Vec3
Quat::toRotationVector() const
{
    Quat q = *this;
    if (q.w_ < 0.0)
        q = Quat(-q.w_, -q.x_, -q.y_, -q.z_);
    const Vec3 qv(q.x_, q.y_, q.z_);
    const double sin_half = qv.norm();
    if (sin_half < 1e-12)
        return qv * 2.0;
    const double angle = 2.0 * std::atan2(sin_half, q.w_);
    return qv * (angle / sin_half);
}

double
Quat::angularDistance(const Quat &o) const
{
    return (conjugate() * o).toRotationVector().norm();
}

} // namespace sov
