/**
 * @file
 * Planned radix-2 FFT: precomputed twiddle and bit-reversal tables
 * plus arena scratch, so the KCF steady state transforms without
 * per-call trigonometry or allocation.
 *
 * The ad-hoc fft() in math/fft.h generates its twiddles iteratively
 * (w *= wlen per butterfly), accumulating a specific rounding pattern.
 * FftPlan precomputes exactly that iteratively-generated sequence per
 * stage and direction, so a planned transform is bit-identical to the
 * ad-hoc oracle — tests/math/test_fft_plan.cpp gates on it. The
 * butterfly and normalization loops dispatch through
 * math/simd_kernels.h: SimdLevel::None runs the Fast scalar bodies,
 * Avx2 the vectorized ones (also bit-identical; see that header's
 * equivalence policy).
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/arena.h"
#include "math/fft.h"
#include "math/simd_kernels.h"

namespace sov {

/** Reusable 1-D transform plan for a fixed power-of-two length. */
class FftPlan
{
  public:
    /** @param n Transform length; must be a power of two. */
    explicit FftPlan(std::size_t n);

    std::size_t size() const { return n_; }

    /** In-place forward transform of @p data (length size()). */
    void forward(Complex *data,
                 SimdLevel level = SimdLevel::None) const;

    /** In-place inverse transform including the 1/N normalization. */
    void inverse(Complex *data,
                 SimdLevel level = SimdLevel::None) const;

  private:
    void run(Complex *data, bool inverse, SimdLevel level) const;

    std::size_t n_;
    /** Bit-reversal permutation as (i, j) swap pairs, i < j. */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> swaps_;
    /** Per-stage twiddles, stages concatenated in ascending length. */
    std::vector<Complex> fwd_twiddles_;
    std::vector<Complex> inv_twiddles_;
};

/**
 * Row-major 2-D transform plan. Rows transform in place; the column
 * pass gathers through a FrameArena-backed scratch column, so a
 * warmed-up plan performs zero allocations per transform
 * (systemAllocations() is exposed for the zero-growth gate).
 */
class Fft2dPlan
{
  public:
    Fft2dPlan(std::size_t rows, std::size_t cols);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** In-place forward transform of rows()*cols() values. */
    void forward(Complex *data, SimdLevel level = SimdLevel::None);

    /** In-place inverse transform (per-axis 1/N like fft2d). */
    void inverse(Complex *data, SimdLevel level = SimdLevel::None);

    /** Scratch-arena allocation count, for zero-growth tests. */
    std::size_t scratchSystemAllocations() const
    {
        return arena_.systemAllocations();
    }

  private:
    void run(Complex *data, bool inverse, SimdLevel level);

    std::size_t rows_;
    std::size_t cols_;
    FftPlan row_plan_;
    FftPlan col_plan_;
    FrameArena arena_;
};

} // namespace sov
