/**
 * @file
 * 2-D planar geometry: poses, segments, and intersection/projection
 * helpers used by the lane map, planner, and collision checker.
 */
#pragma once

#include <optional>
#include <vector>

#include "math/vec.h"

namespace sov {

/** Normalize an angle to (-pi, pi]. */
double wrapAngle(double radians);

/** Planar rigid-body pose: position plus heading. */
struct Pose2
{
    Vec2 position{0.0, 0.0};
    double heading = 0.0; //!< radians, CCW from +x

    /** Map a point from this pose's local frame to the world frame. */
    Vec2 transform(const Vec2 &local) const;

    /** Map a world-frame point into this pose's local frame. */
    Vec2 inverseTransform(const Vec2 &world) const;

    /** Compose: the pose of (this ∘ other) in the world frame. */
    Pose2 compose(const Pose2 &other) const;

    /** Unit heading vector. */
    Vec2 direction() const;
};

/** A 2-D line segment. */
struct Segment2
{
    Vec2 a;
    Vec2 b;

    double length() const { return a.distanceTo(b); }

    /** Closest point on the segment to @p p. */
    Vec2 closestPoint(const Vec2 &p) const;

    /** Distance from @p p to the segment. */
    double distanceTo(const Vec2 &p) const;

    /** Intersection point with another segment, if any. */
    std::optional<Vec2> intersect(const Segment2 &o) const;
};

/** Axis-aligned bounding box. */
struct Aabb2
{
    Vec2 lo;
    Vec2 hi;

    bool contains(const Vec2 &p) const;
    bool overlaps(const Aabb2 &o) const;
    /** Grow symmetrically by @p margin on all sides. */
    Aabb2 inflated(double margin) const;
};

/** Oriented rectangle (vehicle/obstacle footprint). */
struct OrientedBox2
{
    Pose2 pose;          //!< center + heading
    double half_length;  //!< along heading
    double half_width;   //!< across heading

    /** The four corners, CCW. */
    std::vector<Vec2> corners() const;

    /** Separating-axis overlap test against another box. */
    bool overlaps(const OrientedBox2 &o) const;

    /** Containment test for a point. */
    bool contains(const Vec2 &p) const;

    /** Euclidean clearance to another box; 0 when they overlap. */
    double distanceTo(const OrientedBox2 &o) const;
};

/**
 * Arc-length parameterized polyline; the backbone of lane center-lines
 * and planned paths.
 */
class Polyline2
{
  public:
    Polyline2() = default;
    explicit Polyline2(std::vector<Vec2> points);

    const std::vector<Vec2> &points() const { return points_; }
    std::size_t size() const { return points_.size(); }
    bool empty() const { return points_.empty(); }

    /** Total arc length. */
    double length() const;

    /** Point at arc length s (clamped to [0, length]). */
    Vec2 sample(double s) const;

    /** Tangent heading (radians) at arc length s. */
    double headingAt(double s) const;

    /**
     * Project a point onto the polyline.
     * @return (arc length of the projection, signed lateral offset);
     *         positive offset is to the left of travel direction.
     */
    std::pair<double, double> project(const Vec2 &p) const;

    /** Append a point, extending the cumulative length table. */
    void append(const Vec2 &p);

  private:
    std::vector<Vec2> points_;
    std::vector<double> cumlen_; //!< cumulative arc length at each vertex
};

} // namespace sov
