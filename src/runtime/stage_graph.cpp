#include "runtime/stage_graph.h"

#include <algorithm>

#include "core/logging.h"

namespace sov::runtime {

StageId
StageGraph::addStage(std::string name, std::string resource,
                     std::unique_ptr<StageExecutor> executor,
                     std::vector<StageId> deps)
{
    const StageId id = stages_.size();
    SOV_ASSERT(executor != nullptr);
    for (StageId d : deps) {
        SOV_ASSERT(d < id); // insertion order is topological
        dependents_[d].push_back(id);
    }
    SOV_ASSERT(by_name_.count(name) == 0);
    by_name_[name] = id;
    stages_.push_back(Stage{std::move(name), std::move(resource),
                            std::move(deps), std::move(executor)});
    dependents_.emplace_back();
    return id;
}

StageId
StageGraph::addFixed(std::string name, std::string resource,
                     Duration duration, std::vector<StageId> deps)
{
    return addStage(std::move(name), std::move(resource),
                    std::make_unique<FixedExecutor>(duration),
                    std::move(deps));
}

StageId
StageGraph::addAnalytic(std::string name, std::string resource,
                        AnalyticExecutor::Sampler sampler,
                        std::vector<StageId> deps)
{
    return addStage(std::move(name), std::move(resource),
                    std::make_unique<AnalyticExecutor>(std::move(sampler)),
                    std::move(deps));
}

StageId
StageGraph::addKernel(std::string name, std::string resource,
                      KernelExecutor::Kernel kernel,
                      std::vector<StageId> deps, double time_scale)
{
    return addStage(
        std::move(name), std::move(resource),
        std::make_unique<KernelExecutor>(std::move(kernel), time_scale),
        std::move(deps));
}

std::unique_ptr<StageExecutor>
StageGraph::replaceExecutor(StageId id,
                            std::unique_ptr<StageExecutor> executor)
{
    SOV_ASSERT(id < stages_.size());
    SOV_ASSERT(executor != nullptr);
    std::unique_ptr<StageExecutor> old =
        std::move(stages_[id].executor);
    stages_[id].executor = std::move(executor);
    return old;
}

StageId
StageGraph::findStage(const std::string &name) const
{
    const auto it = by_name_.find(name);
    if (it == by_name_.end())
        SOV_PANIC("unknown stage: " + name);
    return it->second;
}

std::vector<std::string>
StageGraph::stageNames() const
{
    std::vector<std::string> names;
    names.reserve(stages_.size());
    for (const auto &s : stages_)
        names.push_back(s.name);
    return names;
}

std::vector<std::string>
StageGraph::resources() const
{
    std::vector<std::string> out;
    for (const auto &s : stages_) {
        if (std::find(out.begin(), out.end(), s.resource) == out.end())
            out.push_back(s.resource);
    }
    std::sort(out.begin(), out.end());
    return out;
}

Duration
StageGraph::criticalPathLatency(std::size_t frame)
{
    std::vector<Duration> finish(stages_.size(), Duration::zero());
    Duration longest = Duration::zero();
    for (StageId s = 0; s < stages_.size(); ++s) {
        Duration start = Duration::zero();
        for (StageId d : stages_[s].deps)
            start = std::max(start, finish[d]);
        finish[s] = start + stages_[s].executor->execute(frame);
        longest = std::max(longest, finish[s]);
    }
    return longest;
}

} // namespace sov::runtime
