#include "runtime/sched_core.h"

#include "core/logging.h"

namespace sov::runtime {

void
InstanceRing::grow()
{
    const std::size_t old_cap = buf_.size();
    const std::size_t new_cap = old_cap ? old_cap * 2 : 8;
    std::vector<Instance> next(new_cap);
    for (std::size_t i = 0; i < count_; ++i)
        next[i] = buf_[(head_ + i) & (old_cap - 1)];
    buf_ = std::move(next);
    head_ = 0;
    ++growth_;
}

void
InstanceRing::push(Instance inst)
{
    if (count_ == buf_.size())
        grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = inst;
    ++count_;
}

void
InstanceRing::pop()
{
    SOV_ASSERT(count_ > 0);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
}

void
InstanceRing::cancel(std::uint32_t slot, bool skip_head)
{
    const std::size_t mask = buf_.size() - 1;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < count_; ++i) {
        const Instance inst = buf_[(head_ + i) & mask];
        if (inst.slot == slot && !(skip_head && i == 0))
            continue;
        buf_[(head_ + kept) & mask] = inst;
        ++kept;
    }
    count_ = kept;
}

SchedulerCore::SchedulerCore(const StageGraph &graph) : graph_(graph)
{
    SOV_ASSERT(graph.size() > 0);
    stage_lane_.reserve(graph.size());
    for (StageId s = 0; s < graph.size(); ++s) {
        const std::string &resource = graph.stage(s).resource;
        std::uint32_t lane = 0;
        for (; lane < lane_names_.size(); ++lane) {
            if (lane_names_[lane] == resource)
                break;
        }
        if (lane == lane_names_.size()) {
            lane_names_.push_back(resource);
            lanes_.emplace_back();
        }
        stage_lane_.push_back(lane);
    }
}

std::uint32_t
SchedulerCore::acquire(std::uint64_t frame, Timestamp now)
{
    if (free_.empty()) {
        slots_.push_back(std::make_unique<FrameSlot>());
        free_.push_back(static_cast<std::uint32_t>(slots_.size() - 1));
        ++slot_growth_;
    }
    const std::uint32_t idx = free_.back();
    free_.pop_back();

    const std::size_t n = graph_.size();
    FrameSlot &slot = *slots_[idx];
    slot.frame = frame;
    slot.active = true;
    // Reset scalar fields in place: assigning a fresh FrameTrace would
    // move an empty spans vector in and throw the recycled capacity
    // away — the one allocation this pool exists to avoid.
    slot.trace.frame = frame;
    slot.trace.release = now;
    slot.trace.finish = Timestamp{};
    slot.trace.deadline_missed = false;
    slot.trace.failed = false;
    slot.trace.failed_stage = 0;
    slot.trace.spans.resize(n);
    slot.deps_left.resize(n);
    slot.ready.resize(n);
    slot.stages_left = n;

    for (StageId s = 0; s < n; ++s) {
        StageSpan &span = slot.trace.spans[s];
        span = StageSpan{};
        span.stage = s;
        span.frame = frame;
        span.released = now;
        slot.deps_left[s] =
            static_cast<std::uint32_t>(graph_.stage(s).deps.size());
        slot.ready[s] = slot.deps_left[s] == 0;
        if (slot.ready[s])
            span.ready = now;
        lanes_[stage_lane_[s]].queue.push(
            Instance{idx, static_cast<std::uint32_t>(s)});
    }
    return idx;
}

std::uint64_t
SchedulerCore::beginDispatch(std::uint32_t lane, std::uint32_t slot)
{
    Lane &l = lanes_[lane];
    SOV_ASSERT(!l.busy);
    l.busy = true;
    l.busy_slot = slot;
    return ++l.serial;
}

bool
SchedulerCore::finishDispatch(std::uint32_t lane, std::uint64_t serial)
{
    Lane &l = lanes_[lane];
    if (!l.busy || l.serial != serial)
        return false; // revoked while the finish event was in flight
    l.busy = false;
    l.queue.pop();
    return true;
}

std::optional<std::uint32_t>
SchedulerCore::revokeInFlight(std::uint32_t lane, std::uint32_t slot)
{
    Lane &l = lanes_[lane];
    if (!l.busy || l.busy_slot != slot)
        return std::nullopt;
    SOV_ASSERT(!l.queue.empty() && l.queue.front().slot == slot);
    const std::uint32_t stage = l.queue.front().stage;
    l.queue.pop();
    l.busy = false;
    ++l.serial; // the outstanding finish event is now stale
    return stage;
}

void
SchedulerCore::recycle(std::uint32_t idx)
{
    FrameSlot &slot = *slots_[idx];
    SOV_ASSERT(slot.active);
    slot.active = false;
    slot.on_complete = nullptr;
    free_.push_back(idx);
}

void
SchedulerCore::cancelQueued(std::uint32_t idx)
{
    for (Lane &lane : lanes_)
        lane.queue.cancel(idx, lane.busy);
}

std::uint64_t
SchedulerCore::growthEvents() const
{
    std::uint64_t growth = slot_growth_;
    for (const Lane &lane : lanes_)
        growth += lane.queue.growthEvents();
    return growth;
}

FramePayloadRing::FramePayloadRing(std::size_t depth,
                                   std::size_t first_block_bytes)
{
    SOV_ASSERT(depth > 0);
    arenas_.reserve(depth);
    for (std::size_t i = 0; i < depth; ++i)
        arenas_.emplace_back(first_block_bytes);
}

FrameArena &
FramePayloadRing::acquire(std::uint64_t frame)
{
    FrameArena &arena = slot(frame);
    arena.reset();
    return arena;
}

std::size_t
FramePayloadRing::systemAllocations() const
{
    std::size_t total = 0;
    for (const FrameArena &arena : arenas_)
        total += arena.systemAllocations();
    return total;
}

} // namespace sov::runtime
