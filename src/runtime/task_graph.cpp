#include "runtime/task_graph.h"

#include <algorithm>

#include "core/logging.h"
#include "runtime/dataflow.h"
#include "runtime/stage_graph.h"

namespace sov {

namespace {

/** Lower the task DAG onto the runtime dataflow graph. */
runtime::StageGraph
lower(const std::vector<TaskNode> &nodes)
{
    runtime::StageGraph graph;
    for (const TaskNode &n : nodes)
        graph.addAnalytic(n.name, n.resource, n.duration, n.deps);
    return graph;
}

} // namespace

Timestamp
ScheduleResult::frameFinish(std::size_t f) const
{
    SOV_ASSERT(f < spans.size());
    Timestamp last = Timestamp::origin();
    for (const auto &s : spans[f])
        last = std::max(last, s.finish);
    return last;
}

double
ScheduleResult::steadyStateThroughputHz() const
{
    if (spans.size() < 4)
        return 0.0;
    const std::size_t half = spans.size() / 2;
    const Timestamp first = frameFinish(half);
    const Timestamp last = frameFinish(spans.size() - 1);
    const double seconds = (last - first).toSeconds();
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(spans.size() - 1 - half) / seconds;
}

TaskId
TaskGraph::addTask(std::string name, ResourceId resource,
                   std::function<Duration(std::size_t)> duration,
                   std::vector<TaskId> deps)
{
    const TaskId id = nodes_.size();
    for (TaskId d : deps)
        SOV_ASSERT(d < id); // insertion order is topological
    SOV_ASSERT(by_name_.count(name) == 0);
    by_name_[name] = id;
    nodes_.push_back(TaskNode{std::move(name), std::move(resource),
                              std::move(duration), std::move(deps)});
    return id;
}

TaskId
TaskGraph::addFixedTask(std::string name, ResourceId resource,
                        Duration duration, std::vector<TaskId> deps)
{
    return addTask(std::move(name), std::move(resource),
                   [duration](std::size_t) { return duration; },
                   std::move(deps));
}

TaskId
TaskGraph::findTask(const std::string &name) const
{
    const auto it = by_name_.find(name);
    if (it == by_name_.end())
        SOV_PANIC("unknown task: " + name);
    return it->second;
}

ScheduleResult
TaskGraph::schedule(std::size_t frames, Duration period) const
{
    SOV_ASSERT(!nodes_.empty());
    runtime::StageGraph graph = lower(nodes_);
    runtime::RunOptions opts;
    opts.frames = frames;
    opts.period = period;
    const runtime::RunResult run =
        runtime::DataflowExecutor::run(graph, opts);

    ScheduleResult result;
    result.spans.resize(frames);
    result.frame_latency.resize(frames);
    result.frame_release.resize(frames);
    for (std::size_t f = 0; f < frames; ++f) {
        const runtime::FrameTrace &trace = run.frames[f];
        result.frame_release[f] = trace.release;
        result.frame_latency[f] = trace.latency();
        result.spans[f].reserve(nodes_.size());
        for (const runtime::StageSpan &span : trace.spans) {
            result.spans[f].push_back(
                TaskSpan{span.stage, f, span.start, span.finish});
        }
    }
    return result;
}

Duration
TaskGraph::criticalPathLatency(std::size_t frame) const
{
    runtime::StageGraph graph = lower(nodes_);
    return graph.criticalPathLatency(frame);
}

std::vector<std::string>
TaskGraph::taskNames() const
{
    std::vector<std::string> names;
    names.reserve(nodes_.size());
    for (const auto &n : nodes_)
        names.push_back(n.name);
    return names;
}

} // namespace sov
