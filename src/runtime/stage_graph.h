/**
 * @file
 * Typed dataflow graph of the processing pipeline (Fig. 5).
 *
 * The paper's software pipeline is expressed ONCE as a StageGraph —
 * each stage declares its name, resource binding ("fpga"/"gpu"/"cpu"
 * lanes), dependencies, and a pluggable StageExecutor — and is then
 * retargeted to different execution substrates: analytic single-shot
 * characterization, pipelined throughput scheduling, closed-loop
 * event-driven execution, or measured kernel runs. The three former
 * per-experiment DAG encodings (runtime/task_graph,
 * sovpipe/pipeline_model, sovpipe/closed_loop) are all front-ends over
 * this type.
 */
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "runtime/stage_executor.h"

namespace sov::runtime {

/** Index of a stage within its StageGraph. */
using StageId = std::size_t;

/** One node of the dataflow graph. */
struct Stage
{
    std::string name;
    /** Hardware lane the stage is bound to; a resource runs one stage
     *  instance at a time. */
    std::string resource;
    std::vector<StageId> deps;
    std::unique_ptr<StageExecutor> executor;
};

/** The pipeline expressed as a typed DAG. */
class StageGraph
{
  public:
    StageGraph() = default;
    StageGraph(StageGraph &&) = default;
    StageGraph &operator=(StageGraph &&) = default;
    StageGraph(const StageGraph &) = delete;
    StageGraph &operator=(const StageGraph &) = delete;

    /** Add a stage; @p deps must reference previously added stages
     *  (insertion order is topological). */
    StageId addStage(std::string name, std::string resource,
                     std::unique_ptr<StageExecutor> executor,
                     std::vector<StageId> deps = {});

    /** Convenience: constant-duration stage. */
    StageId addFixed(std::string name, std::string resource,
                     Duration duration, std::vector<StageId> deps = {});

    /** Convenience: model-sampled stage. */
    StageId addAnalytic(std::string name, std::string resource,
                        AnalyticExecutor::Sampler sampler,
                        std::vector<StageId> deps = {});

    /** Convenience: measured real-algorithm stage. */
    StageId addKernel(std::string name, std::string resource,
                      KernelExecutor::Kernel kernel,
                      std::vector<StageId> deps = {},
                      double time_scale = 1.0);

    std::size_t size() const { return stages_.size(); }
    const Stage &stage(StageId id) const { return stages_.at(id); }
    StageExecutor &executor(StageId id) { return *stages_.at(id).executor; }

    /**
     * Swap in a new executor for @p id, returning the old one. The
     * fault layer uses this to wrap a stage's executor in place (the
     * wrapper takes ownership of the original), leaving the DAG
     * untouched.
     */
    std::unique_ptr<StageExecutor>
    replaceExecutor(StageId id, std::unique_ptr<StageExecutor> executor);

    /** Stage id by name; panics if absent. */
    StageId findStage(const std::string &name) const;

    /** Stages that depend on @p id. */
    const std::vector<StageId> &dependents(StageId id) const
    {
        return dependents_.at(id);
    }

    /** Names of all stages in insertion (topological) order. */
    std::vector<std::string> stageNames() const;

    /** Distinct resource bindings, sorted. */
    std::vector<std::string> resources() const;

    /**
     * Critical-path latency of one frame assuming unlimited resources —
     * the single-shot latency lower bound. Invokes the executors, so
     * stateful executors advance (samplers draw, kernels run).
     */
    Duration criticalPathLatency(std::size_t frame = 0);

  private:
    std::vector<Stage> stages_;
    std::vector<std::vector<StageId>> dependents_;
    std::map<std::string, StageId> by_name_;
};

} // namespace sov::runtime
