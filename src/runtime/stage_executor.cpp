#include "runtime/stage_executor.h"

#include <chrono>

namespace sov::runtime {

Duration
KernelExecutor::execute(std::size_t frame)
{
    const auto t0 = std::chrono::steady_clock::now();
    kernel_(frame);
    const auto t1 = std::chrono::steady_clock::now();
    last_measured_ = Duration::nanos(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count());
    return last_measured_ * time_scale_;
}

} // namespace sov::runtime
