/**
 * @file
 * Task graph with task-level-parallelism-aware scheduling (Sec. IV).
 *
 * The paper's software pipeline (Fig. 5) is a DAG: sensing feeds
 * perception (localization parallel to scene understanding; detection
 * serialized with tracking) which feeds planning. Tasks are bound to
 * hardware resources (FPGA, GPU, CPU cores); a resource executes one
 * task at a time. The scheduler computes per-frame start/finish times
 * honoring both dependency and resource constraints, with frames
 * pipelined: instance f of a task also waits for instance f-1 on the
 * same resource.
 *
 * TaskGraph is a thin analytic front-end over the sov::runtime
 * dataflow layer: schedule() lowers the tasks onto a
 * runtime::StageGraph (each duration callback becoming an
 * AnalyticExecutor) and executes it with the event-driven
 * DataflowExecutor, so this scheduler, the Fig. 10 characterization
 * and the closed-loop simulation all share one execution engine.
 */
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/time.h"

namespace sov {

/** Identifies a hardware execution resource (e.g. "gpu", "fpga"). */
using ResourceId = std::string;

/** Index of a task within its TaskGraph. */
using TaskId = std::size_t;

/** One node of the processing DAG. */
struct TaskNode
{
    std::string name;
    ResourceId resource;
    /** Duration of instance @p frame of this task. */
    std::function<Duration(std::size_t frame)> duration;
    std::vector<TaskId> deps;
};

/** Timing of one executed task instance. */
struct TaskSpan
{
    TaskId task;
    std::size_t frame;
    Timestamp start;
    Timestamp finish;
};

/** Result of scheduling F frames through the graph. */
struct ScheduleResult
{
    /** spans[f][t] = span of task t in frame f. */
    std::vector<std::vector<TaskSpan>> spans;
    /** Per-frame latency: last finish minus frame release time. */
    std::vector<Duration> frame_latency;
    /** Release (sensor trigger) time of each frame. */
    std::vector<Timestamp> frame_release;

    /** Completion time of the last task of frame @p f. */
    Timestamp frameFinish(std::size_t f) const;

    /**
     * Steady-state throughput in frames per second, measured from the
     * spacing of the last half of the frame completions.
     */
    double steadyStateThroughputHz() const;
};

/**
 * A dependency/resource-constrained pipeline model.
 *
 * Typical use:
 * @code
 *   TaskGraph g;
 *   auto sense = g.addTask("sensing", "fpga", fixed(50ms));
 *   auto loc   = g.addTask("localization", "fpga", fixed(24ms), {sense});
 *   ...
 *   auto r = g.schedule(100, Duration::millis(100));
 * @endcode
 */
class TaskGraph
{
  public:
    /** Add a task; @p deps must reference previously added tasks. */
    TaskId addTask(std::string name, ResourceId resource,
                   std::function<Duration(std::size_t)> duration,
                   std::vector<TaskId> deps = {});

    /** Convenience: constant-duration task. */
    TaskId addFixedTask(std::string name, ResourceId resource,
                        Duration duration, std::vector<TaskId> deps = {});

    std::size_t numTasks() const { return nodes_.size(); }
    const TaskNode &node(TaskId id) const { return nodes_.at(id); }

    /** Task id by name; panics if absent. */
    TaskId findTask(const std::string &name) const;

    /**
     * Schedule @p frames frame instances released every @p period.
     * Frames pipeline: different frames may be in flight concurrently,
     * subject to resource serialization.
     */
    ScheduleResult schedule(std::size_t frames, Duration period) const;

    /**
     * Critical-path latency of one frame ignoring cross-frame resource
     * contention — the single-shot latency of the pipeline.
     * @param frame Frame index passed to the duration callbacks.
     */
    Duration criticalPathLatency(std::size_t frame = 0) const;

    /** Names of all tasks in insertion (topological) order. */
    std::vector<std::string> taskNames() const;

  private:
    std::vector<TaskNode> nodes_;
    std::map<std::string, TaskId> by_name_;
};

} // namespace sov
