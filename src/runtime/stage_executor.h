/**
 * @file
 * Pluggable stage executors for the sov::runtime dataflow layer.
 *
 * A stage of the pipeline graph declares *what* it computes and *where*
 * it runs; the executor decides *how long* one invocation takes. Three
 * strategies cover the repo's needs:
 *
 *  - AnalyticExecutor: draws the duration from a model (typically a
 *    PlatformModel calibrated distribution) — the characterization and
 *    closed-loop experiments.
 *  - FixedExecutor: constant duration — deterministic schedules and
 *    throughput runs at stage means.
 *  - KernelExecutor: runs a real algorithm implementation (stereo,
 *    detector, VIO, ...) and measures its wall-clock time, mapping the
 *    measurement into model time.
 *
 * Swapping executors retargets the same graph between analytic and
 * measured execution without re-encoding the DAG.
 */
#pragma once

#include <functional>

#include "core/time.h"

namespace sov::runtime {

/**
 * What happened during one stage invocation. Plain executors always
 * report Ok; fault-injecting wrappers (src/fault) report Crash when
 * the invocation produced no usable result after the returned
 * detection time, and Hang when the stage would never complete on its
 * own (the returned duration is the hang time; a watchdog policy on
 * the DataflowExecutor truncates it).
 */
enum class StageOutcome
{
    Ok,
    Crash,
    Hang,
};

/** Decides the duration of one invocation of a pipeline stage. */
class StageExecutor
{
  public:
    virtual ~StageExecutor() = default;

    /** Duration of instance @p frame of the stage. Stateful executors
     *  (samplers, measured kernels) mutate on each call. */
    virtual Duration execute(std::size_t frame) = 0;

    /** Outcome of the most recent execute(). Healthy executors never
     *  fail; only fault injectors override this. */
    virtual StageOutcome lastOutcome() const { return StageOutcome::Ok; }

    /** Strategy name for traces and docs: "analytic" / "fixed" /
     *  "kernel". */
    virtual const char *kind() const = 0;
};

/** Constant-duration executor. */
class FixedExecutor final : public StageExecutor
{
  public:
    explicit FixedExecutor(Duration duration) : duration_(duration) {}

    Duration execute(std::size_t) override { return duration_; }
    const char *kind() const override { return "fixed"; }

  private:
    Duration duration_;
};

/**
 * Model-driven executor: delegates to a sampler callback, typically a
 * calibrated latency distribution (log-normal body + stall tail).
 */
class AnalyticExecutor final : public StageExecutor
{
  public:
    using Sampler = std::function<Duration(std::size_t frame)>;

    explicit AnalyticExecutor(Sampler sampler)
        : sampler_(std::move(sampler)) {}

    Duration execute(std::size_t frame) override { return sampler_(frame); }
    const char *kind() const override { return "analytic"; }

  private:
    Sampler sampler_;
};

/**
 * Measured executor: runs a real algorithm and reports its wall-clock
 * time as the stage duration. @p time_scale maps host time to model
 * time (e.g. to account for the host being faster or slower than the
 * modelled on-vehicle platform).
 */
class KernelExecutor final : public StageExecutor
{
  public:
    using Kernel = std::function<void(std::size_t frame)>;

    explicit KernelExecutor(Kernel kernel, double time_scale = 1.0)
        : kernel_(std::move(kernel)), time_scale_(time_scale) {}

    Duration execute(std::size_t frame) override;
    const char *kind() const override { return "kernel"; }

    /** Wall-clock time of the most recent execute(), unscaled. */
    Duration lastMeasured() const { return last_measured_; }

  private:
    Kernel kernel_;
    double time_scale_;
    Duration last_measured_;
};

} // namespace sov::runtime
