#include "runtime/dataflow.h"

#include <algorithm>

#include "core/logging.h"

namespace sov::runtime {

double
RunResult::steadyStateThroughputHz() const
{
    if (frames.size() < 4)
        return 0.0;
    const std::size_t half = frames.size() / 2;
    const double seconds =
        (frames.back().finish - frames[half].finish).toSeconds();
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(frames.size() - 1 - half) / seconds;
}

void
RunResult::emit(const StageGraph &graph, LatencyTracer &tracer) const
{
    for (const auto &frame : frames) {
        if (frame.failed)
            continue; // partial spans carry no meaningful timings
        for (const auto &span : frame.spans) {
            const std::string &name = graph.stage(span.stage).name;
            tracer.record(name, span.duration());
            tracer.record("queue:" + name, span.queueing());
        }
        tracer.recordTotal(frame.latency());
    }
}

DataflowExecutor::DataflowExecutor(Simulator &sim, StageGraph &graph)
    : sim_(sim), graph_(graph)
{
    SOV_ASSERT(graph_.size() > 0);
}

void
DataflowExecutor::setStagePolicy(StageId stage, const StagePolicy &policy)
{
    SOV_ASSERT(stage < graph_.size());
    policies_[stage] = policy;
}

void
DataflowExecutor::setAllStagePolicies(const StagePolicy &policy)
{
    for (StageId s = 0; s < graph_.size(); ++s)
        policies_[s] = policy;
}

const StagePolicy *
DataflowExecutor::policyFor(StageId stage) const
{
    const auto it = policies_.find(stage);
    return it == policies_.end() ? nullptr : &it->second;
}

std::size_t
DataflowExecutor::releaseFrame(FrameCallback on_complete)
{
    const std::size_t f = next_frame_++;
    const Timestamp now = sim_.now();
    const std::size_t n = graph_.size();

    FrameState state;
    state.trace.frame = f;
    state.trace.release = now;
    state.trace.spans.resize(n);
    state.deps_left.resize(n);
    state.ready.resize(n);
    state.stages_left = n;
    state.on_complete = std::move(on_complete);

    for (StageId s = 0; s < n; ++s) {
        StageSpan &span = state.trace.spans[s];
        span.stage = s;
        span.frame = f;
        span.released = now;
        state.deps_left[s] = graph_.stage(s).deps.size();
        state.ready[s] = state.deps_left[s] == 0;
        if (state.ready[s])
            span.ready = now;
        resources_[graph_.stage(s).resource].queue.emplace_back(f, s);
    }
    in_flight_.emplace(f, std::move(state));

    for (auto &[name, resource] : resources_)
        tryDispatch(resource);
    return f;
}

void
DataflowExecutor::tryDispatch(ResourceState &resource)
{
    if (resource.busy || resource.queue.empty())
        return;
    // In-order issue: only the head may start; a ready instance behind
    // an unready one waits (static per-resource schedule).
    const auto [f, s] = resource.queue.front();
    FrameState &state = in_flight_.at(f);
    if (!state.ready[s])
        return;

    resource.busy = true;
    StageSpan &span = state.trace.spans[s];
    span.start = sim_.now();

    // Supervised execution: attempts run back to back in model time
    // (the watchdog kills a hung/overrunning attempt at the timeout
    // and restarts the stage) until one succeeds or retries run out.
    const StagePolicy *policy = policyFor(s);
    StageExecutor &executor = graph_.executor(s);
    Duration elapsed = Duration::zero();
    bool attempt_failed = false;
    std::uint32_t attempts = 0;
    for (;;) {
        Duration d = executor.execute(f);
        SOV_ASSERT(d >= Duration::zero());
        const StageOutcome outcome = executor.lastOutcome();
        ++attempts;
        bool timed_out = false;
        if (policy && policy->timeout &&
            (outcome == StageOutcome::Hang || d > *policy->timeout)) {
            d = *policy->timeout;
            timed_out = true;
        }
        elapsed += d;
        const bool crashed = outcome == StageOutcome::Crash;
        attempt_failed = timed_out || crashed;
        if (timed_out)
            ++stage_timeouts_;
        if (crashed)
            ++stage_crashes_;
        if (health_)
            health_->onStageAttempt(s, f, outcome, timed_out);
        span.timed_out = timed_out;
        span.crashed = crashed;
        if (!attempt_failed || !policy || attempts > policy->max_retries)
            break;
        ++stage_retries_;
    }
    span.attempts = attempts;
    span.finish = span.start + elapsed;
    sim_.schedule(elapsed, [this, &resource, f = f, s = s,
                            failed = attempt_failed] {
        onStageFinish(resource, f, s, failed);
    });
}

void
DataflowExecutor::onStageFinish(ResourceState &resource, std::size_t frame,
                                StageId stage, bool stage_failed)
{
    resource.busy = false;
    resource.queue.pop_front();

    const auto frame_it = in_flight_.find(frame);
    if (frame_it == in_flight_.end()) {
        // The frame was abandoned while this instance was running.
        tryDispatch(resource);
        return;
    }
    if (stage_failed) {
        failFrame(frame, stage);
        tryDispatch(resource);
        return;
    }

    FrameState &state = frame_it->second;
    for (StageId dep : graph_.dependents(stage)) {
        SOV_ASSERT(state.deps_left[dep] > 0);
        if (--state.deps_left[dep] == 0) {
            state.ready[dep] = true;
            state.trace.spans[dep].ready = sim_.now();
            tryDispatch(resources_.at(graph_.stage(dep).resource));
        }
    }

    SOV_ASSERT(state.stages_left > 0);
    if (--state.stages_left == 0)
        completeFrame(frame);
    tryDispatch(resource);
}

void
DataflowExecutor::completeFrame(std::size_t frame)
{
    const auto it = in_flight_.find(frame);
    FrameTrace trace = std::move(it->second.trace);
    FrameCallback on_complete = std::move(it->second.on_complete);
    in_flight_.erase(it);

    trace.finish = sim_.now();
    if (deadline_ && trace.latency() > *deadline_) {
        trace.deadline_missed = true;
        ++deadline_misses_;
    }
    ++completed_count_;
    if (tracer_) {
        for (const auto &span : trace.spans) {
            const std::string &name = graph_.stage(span.stage).name;
            tracer_->record(name, span.duration());
            tracer_->record("queue:" + name, span.queueing());
        }
        tracer_->recordTotal(trace.latency());
    }
    if (health_)
        health_->onFrameCompleted(trace);
    if (keep_traces_)
        traces_.push_back(std::move(trace));
    if (on_complete)
        on_complete(keep_traces_ ? traces_.back() : trace);
}

void
DataflowExecutor::failFrame(std::size_t frame, StageId stage)
{
    const auto it = in_flight_.find(frame);
    SOV_ASSERT(it != in_flight_.end());
    FrameTrace trace = std::move(it->second.trace);
    FrameCallback on_complete = std::move(it->second.on_complete);
    in_flight_.erase(it);

    // Cancel queued-but-not-started instances of the frame; a running
    // instance (the busy head of a lane) keeps its slot and is
    // discarded when its finish event fires.
    for (auto &[name, resource] : resources_) {
        (void)name;
        auto &q = resource.queue;
        const auto keep = q.begin() + (resource.busy ? 1 : 0);
        q.erase(std::remove_if(keep, q.end(),
                               [frame](const auto &inst) {
                                   return inst.first == frame;
                               }),
                q.end());
    }

    trace.finish = sim_.now();
    trace.failed = true;
    trace.failed_stage = stage;
    ++frames_failed_;
    ++completed_count_; // resolved: no longer counts as in flight
    if (health_)
        health_->onFrameFailed(trace);
    if (keep_traces_)
        traces_.push_back(std::move(trace));
    if (on_complete)
        on_complete(keep_traces_ ? traces_.back() : trace);
}

RunResult
DataflowExecutor::run(StageGraph &graph, const RunOptions &opts)
{
    Simulator sim;
    DataflowExecutor exec(sim, graph);
    exec.setDeadline(opts.deadline);

    if (opts.period > Duration::zero()) {
        // Pipelined: frame f releases at f * period regardless of the
        // progress of earlier frames.
        for (std::size_t f = 0; f < opts.frames; ++f) {
            sim.scheduleAt(Timestamp::origin() +
                               opts.period * static_cast<double>(f),
                           [&exec] { exec.releaseFrame(); });
        }
        sim.run();
    } else {
        // Single-shot: chain releases so frames never contend.
        struct SerialDriver
        {
            DataflowExecutor &exec;
            std::size_t total;
            std::size_t released = 0;

            void
            releaseNext()
            {
                if (released >= total)
                    return;
                ++released;
                exec.releaseFrame(
                    [this](const FrameTrace &) { releaseNext(); });
            }
        };
        SerialDriver driver{exec, opts.frames};
        driver.releaseNext();
        sim.run();
    }

    SOV_ASSERT(exec.framesCompleted() == opts.frames);
    RunResult result;
    result.frames = std::move(exec.traces_);
    result.deadline_misses = exec.deadlineMisses();
    result.frames_failed = exec.framesFailed();
    return result;
}

} // namespace sov::runtime
