#include "runtime/dataflow.h"

#include <algorithm>

#include "core/logging.h"

namespace sov::runtime {

double
RunResult::steadyStateThroughputHz() const
{
    if (frames.size() < 4)
        return 0.0;
    const std::size_t half = frames.size() / 2;
    const double seconds =
        (frames.back().finish - frames[half].finish).toSeconds();
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(frames.size() - 1 - half) / seconds;
}

void
RunResult::emit(const StageGraph &graph, LatencyTracer &tracer) const
{
    for (const auto &frame : frames) {
        for (const auto &span : frame.spans) {
            const std::string &name = graph.stage(span.stage).name;
            tracer.record(name, span.duration());
            tracer.record("queue:" + name, span.queueing());
        }
        tracer.recordTotal(frame.latency());
    }
}

DataflowExecutor::DataflowExecutor(Simulator &sim, StageGraph &graph)
    : sim_(sim), graph_(graph)
{
    SOV_ASSERT(graph_.size() > 0);
}

std::size_t
DataflowExecutor::releaseFrame(FrameCallback on_complete)
{
    const std::size_t f = next_frame_++;
    const Timestamp now = sim_.now();
    const std::size_t n = graph_.size();

    FrameState state;
    state.trace.frame = f;
    state.trace.release = now;
    state.trace.spans.resize(n);
    state.deps_left.resize(n);
    state.ready.resize(n);
    state.stages_left = n;
    state.on_complete = std::move(on_complete);

    for (StageId s = 0; s < n; ++s) {
        StageSpan &span = state.trace.spans[s];
        span.stage = s;
        span.frame = f;
        span.released = now;
        state.deps_left[s] = graph_.stage(s).deps.size();
        state.ready[s] = state.deps_left[s] == 0;
        if (state.ready[s])
            span.ready = now;
        resources_[graph_.stage(s).resource].queue.emplace_back(f, s);
    }
    in_flight_.emplace(f, std::move(state));

    for (auto &[name, resource] : resources_)
        tryDispatch(resource);
    return f;
}

void
DataflowExecutor::tryDispatch(ResourceState &resource)
{
    if (resource.busy || resource.queue.empty())
        return;
    // In-order issue: only the head may start; a ready instance behind
    // an unready one waits (static per-resource schedule).
    const auto [f, s] = resource.queue.front();
    FrameState &state = in_flight_.at(f);
    if (!state.ready[s])
        return;

    resource.busy = true;
    StageSpan &span = state.trace.spans[s];
    span.start = sim_.now();
    const Duration duration = graph_.executor(s).execute(f);
    SOV_ASSERT(duration >= Duration::zero());
    span.finish = span.start + duration;
    sim_.schedule(duration, [this, &resource, f = f, s = s] {
        onStageFinish(resource, f, s);
    });
}

void
DataflowExecutor::onStageFinish(ResourceState &resource, std::size_t frame,
                                StageId stage)
{
    resource.busy = false;
    resource.queue.pop_front();

    FrameState &state = in_flight_.at(frame);
    for (StageId dep : graph_.dependents(stage)) {
        SOV_ASSERT(state.deps_left[dep] > 0);
        if (--state.deps_left[dep] == 0) {
            state.ready[dep] = true;
            state.trace.spans[dep].ready = sim_.now();
            tryDispatch(resources_.at(graph_.stage(dep).resource));
        }
    }

    SOV_ASSERT(state.stages_left > 0);
    if (--state.stages_left == 0)
        completeFrame(frame);
    tryDispatch(resource);
}

void
DataflowExecutor::completeFrame(std::size_t frame)
{
    const auto it = in_flight_.find(frame);
    FrameTrace trace = std::move(it->second.trace);
    FrameCallback on_complete = std::move(it->second.on_complete);
    in_flight_.erase(it);

    trace.finish = sim_.now();
    if (deadline_ && trace.latency() > *deadline_) {
        trace.deadline_missed = true;
        ++deadline_misses_;
    }
    ++completed_count_;
    if (tracer_) {
        for (const auto &span : trace.spans) {
            const std::string &name = graph_.stage(span.stage).name;
            tracer_->record(name, span.duration());
            tracer_->record("queue:" + name, span.queueing());
        }
        tracer_->recordTotal(trace.latency());
    }
    if (keep_traces_)
        traces_.push_back(std::move(trace));
    if (on_complete)
        on_complete(keep_traces_ ? traces_.back() : trace);
}

RunResult
DataflowExecutor::run(StageGraph &graph, const RunOptions &opts)
{
    Simulator sim;
    DataflowExecutor exec(sim, graph);
    exec.setDeadline(opts.deadline);

    if (opts.period > Duration::zero()) {
        // Pipelined: frame f releases at f * period regardless of the
        // progress of earlier frames.
        for (std::size_t f = 0; f < opts.frames; ++f) {
            sim.scheduleAt(Timestamp::origin() +
                               opts.period * static_cast<double>(f),
                           [&exec] { exec.releaseFrame(); });
        }
        sim.run();
    } else {
        // Single-shot: chain releases so frames never contend.
        struct SerialDriver
        {
            DataflowExecutor &exec;
            std::size_t total;
            std::size_t released = 0;

            void
            releaseNext()
            {
                if (released >= total)
                    return;
                ++released;
                exec.releaseFrame(
                    [this](const FrameTrace &) { releaseNext(); });
            }
        };
        SerialDriver driver{exec, opts.frames};
        driver.releaseNext();
        sim.run();
    }

    SOV_ASSERT(exec.framesCompleted() == opts.frames);
    RunResult result;
    result.frames = std::move(exec.traces_);
    result.deadline_misses = exec.deadlineMisses();
    return result;
}

} // namespace sov::runtime
