#include "runtime/dataflow.h"

#include <algorithm>

#include "core/logging.h"

namespace sov::runtime {

namespace {

/** FNV-1a over the 8 bytes of @p v. */
void
fnvMix(std::uint64_t &h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (i * 8)) & 0xffu;
        h *= 1099511628211ULL;
    }
}

} // namespace

double
RunResult::steadyStateThroughputHz() const
{
    const std::vector<Timestamp> *times = &finish_times;
    std::vector<Timestamp> from_traces;
    if (times->empty()) {
        from_traces.reserve(frames.size());
        for (const auto &frame : frames)
            from_traces.push_back(frame.finish);
        times = &from_traces;
    }
    if (times->size() < 4)
        return 0.0;
    const std::size_t half = times->size() / 2;
    const double seconds =
        (times->back() - (*times)[half]).toSeconds();
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(times->size() - 1 - half) / seconds;
}

std::uint64_t
RunResult::fingerprint() const
{
    std::uint64_t h = 14695981039346656037ULL;
    for (const auto &frame : frames) {
        fnvMix(h, frame.frame);
        fnvMix(h, static_cast<std::uint64_t>(frame.release.ns()));
        fnvMix(h, static_cast<std::uint64_t>(frame.finish.ns()));
        fnvMix(h, (frame.deadline_missed ? 1u : 0u) |
                      (frame.failed ? 2u : 0u));
        fnvMix(h, frame.failed ? frame.failed_stage : 0u);
        for (const auto &span : frame.spans) {
            fnvMix(h, span.stage);
            fnvMix(h, static_cast<std::uint64_t>(span.ready.ns()));
            fnvMix(h, static_cast<std::uint64_t>(span.start.ns()));
            fnvMix(h, static_cast<std::uint64_t>(span.finish.ns()));
            fnvMix(h, span.attempts);
            fnvMix(h, (span.timed_out ? 1u : 0u) |
                          (span.crashed ? 2u : 0u) |
                          (span.cancelled ? 4u : 0u));
        }
    }
    for (const Timestamp t : finish_times)
        fnvMix(h, static_cast<std::uint64_t>(t.ns()));
    return h;
}

void
RunResult::emit(const StageGraph &graph, obs::MetricRegistry &metrics) const
{
    for (const auto &frame : frames) {
        if (frame.failed)
            continue; // partial spans carry no meaningful timings
        for (const auto &span : frame.spans) {
            const std::string &name = graph.stage(span.stage).name;
            metrics.record(name, span.duration());
            metrics.record("queue:" + name, span.queueing());
        }
        metrics.recordTotal(frame.latency());
    }
}

DataflowExecutor::DataflowExecutor(Simulator &sim, StageGraph &graph)
    : sim_(sim), graph_(graph), core_(graph)
{
}

void
DataflowExecutor::attachTrace(obs::TraceRecorder *recorder,
                              bool emit_in_flight)
{
    recorder_ = recorder;
    trace_in_flight_ = recorder && emit_in_flight;
    if (!recorder_)
        return;
    // Intern once: per-frame emission must stay allocation-free. Intern
    // in stage order (name then resource per stage) so id numbering is
    // independent of the lane layout.
    trace_ids_.stage_names.clear();
    trace_ids_.lane_tracks.assign(core_.laneCount(), 0);
    for (StageId s = 0; s < graph_.size(); ++s) {
        trace_ids_.stage_names.push_back(
            recorder_->intern(graph_.stage(s).name));
        trace_ids_.lane_tracks[core_.laneOf(s)] =
            recorder_->intern(graph_.stage(s).resource);
    }
    trace_ids_.cat_stage = recorder_->intern("stage");
    trace_ids_.cat_frame = recorder_->intern("frame");
    trace_ids_.cat_sched = recorder_->intern("sched");
    trace_ids_.cat_fault = recorder_->intern("fault");
    trace_ids_.track_pipeline = recorder_->intern("pipeline");
    trace_ids_.frame_name = recorder_->intern("frame");
    trace_ids_.deadline_miss = recorder_->intern("deadline_miss");
    trace_ids_.frame_failed = recorder_->intern("frame_failed");
    trace_ids_.stage_timeout = recorder_->intern("stage_timeout");
    trace_ids_.stage_crash = recorder_->intern("stage_crash");
    trace_ids_.stage_retry = recorder_->intern("stage_retry");
    trace_ids_.stage_cancelled = recorder_->intern("stage_cancelled");
    if (trace_in_flight_)
        trace_ids_.in_flight = recorder_->intern("frames_in_flight");
}

void
DataflowExecutor::traceFrame(const FrameTrace &trace)
{
    for (const auto &span : trace.spans) {
        // In an abandoned frame only the stages up to the failure ran;
        // the rest still hold default (zero) start/finish stamps.
        if (trace.failed && !(span.finish > span.start))
            continue;
        recorder_->span(trace_ids_.stage_names[span.stage],
                        trace_ids_.cat_stage,
                        trace_ids_.lane_tracks[core_.laneOf(span.stage)],
                        span.start, span.finish, span.frame);
    }
    recorder_->span(trace_ids_.frame_name, trace_ids_.cat_frame,
                    trace_ids_.track_pipeline, trace.release, trace.finish,
                    trace.frame);
    if (trace.deadline_missed) {
        recorder_->instant(trace_ids_.deadline_miss, trace_ids_.cat_sched,
                           trace_ids_.track_pipeline, trace.finish,
                           trace.frame);
    }
    if (trace.failed) {
        recorder_->instant(trace_ids_.frame_failed, trace_ids_.cat_fault,
                           trace_ids_.track_pipeline, trace.finish,
                           trace.frame);
    }
}

void
DataflowExecutor::traceInFlight()
{
    if (!trace_in_flight_)
        return;
    recorder_->counter(trace_ids_.in_flight, trace_ids_.track_pipeline,
                       sim_.now(),
                       static_cast<double>(framesInFlight()));
}

void
DataflowExecutor::setStagePolicy(StageId stage, const StagePolicy &policy)
{
    SOV_ASSERT(stage < graph_.size());
    policies_[stage] = policy;
}

void
DataflowExecutor::setAllStagePolicies(const StagePolicy &policy)
{
    for (StageId s = 0; s < graph_.size(); ++s)
        policies_[s] = policy;
}

const StagePolicy *
DataflowExecutor::policyFor(StageId stage) const
{
    const auto it = policies_.find(stage);
    return it == policies_.end() ? nullptr : &it->second;
}

std::size_t
DataflowExecutor::releaseFrame(FrameCallback on_complete)
{
    const std::size_t f = next_frame_++;
    const std::uint32_t idx = core_.acquire(f, sim_.now());
    core_.slot(idx).on_complete = std::move(on_complete);
    traceInFlight();

    for (std::uint32_t lane = 0; lane < core_.laneCount(); ++lane)
        tryDispatch(lane);
    return f;
}

void
DataflowExecutor::tryDispatch(std::uint32_t lane)
{
    if (core_.laneBusy(lane) || core_.laneQueue(lane).empty())
        return;
    // In-order issue: only the head may start; a ready instance behind
    // an unready one waits (static per-resource schedule).
    const Instance head = core_.laneQueue(lane).front();
    FrameSlot &slot = core_.slot(head.slot);
    const StageId s = head.stage;
    if (!slot.ready[s])
        return;
    const std::uint64_t f = slot.frame;

    const std::uint64_t serial = core_.beginDispatch(lane, head.slot);
    StageSpan &span = slot.trace.spans[s];
    span.start = sim_.now();

    // Supervised execution: attempts run back to back in model time
    // (the watchdog kills a hung/overrunning attempt at the timeout
    // and restarts the stage) until one succeeds or retries run out.
    const StagePolicy *policy = policyFor(s);
    StageExecutor &executor = graph_.executor(s);
    Duration elapsed = Duration::zero();
    bool attempt_failed = false;
    std::uint32_t attempts = 0;
    for (;;) {
        Duration d = executor.execute(f);
        SOV_ASSERT(d >= Duration::zero());
        const StageOutcome outcome = executor.lastOutcome();
        ++attempts;
        bool timed_out = false;
        if (policy && policy->timeout &&
            (outcome == StageOutcome::Hang || d > *policy->timeout)) {
            d = *policy->timeout;
            timed_out = true;
        }
        elapsed += d;
        const bool crashed = outcome == StageOutcome::Crash;
        attempt_failed = timed_out || crashed;
        if (timed_out)
            ++stage_timeouts_;
        if (crashed)
            ++stage_crashes_;
        if (recorder_ && (timed_out || crashed)) {
            // The supervision event lands where the attempt resolved
            // in model time, on the stage's resource lane.
            recorder_->instant(timed_out ? trace_ids_.stage_timeout
                                         : trace_ids_.stage_crash,
                               trace_ids_.cat_fault,
                               trace_ids_.lane_tracks[lane],
                               span.start + elapsed, f);
        }
        if (health_)
            health_->onStageAttempt(s, f, outcome, timed_out);
        span.timed_out = timed_out;
        span.crashed = crashed;
        if (!attempt_failed || !policy || attempts > policy->max_retries)
            break;
        ++stage_retries_;
        if (recorder_) {
            recorder_->instant(trace_ids_.stage_retry,
                               trace_ids_.cat_fault,
                               trace_ids_.lane_tracks[lane],
                               span.start + elapsed, f);
        }
        // Restart cost: the retry begins after the backoff, with the
        // retry instant above marking where the attempt failed.
        elapsed += policy->retry_backoff;
    }
    span.attempts = attempts;
    span.finish = span.start + elapsed;
    sim_.schedule(elapsed, [this, lane, serial, idx = head.slot, f, s,
                            failed = attempt_failed] {
        onStageFinish(lane, serial, idx, f, s, failed);
    });
}

void
DataflowExecutor::onStageFinish(std::uint32_t lane, std::uint64_t serial,
                                std::uint32_t slot_idx, std::uint64_t frame,
                                StageId stage, bool stage_failed)
{
    if (!core_.finishDispatch(lane, serial)) {
        // The dispatch was revoked by frame abandonment while this
        // finish event was in flight; the lane has already moved on.
        return;
    }

    FrameSlot &slot = core_.slot(slot_idx);
    if (!slot.active || slot.frame != frame) {
        // The frame was abandoned (and the slot possibly re-acquired by
        // a later frame) while this instance was running.
        tryDispatch(lane);
        return;
    }
    if (stage_failed) {
        failFrame(slot_idx, stage);
        tryDispatch(lane);
        return;
    }

    for (StageId dep : graph_.dependents(stage)) {
        SOV_ASSERT(slot.deps_left[dep] > 0);
        if (--slot.deps_left[dep] == 0) {
            slot.ready[dep] = true;
            slot.trace.spans[dep].ready = sim_.now();
            tryDispatch(core_.laneOf(dep));
        }
    }

    SOV_ASSERT(slot.stages_left > 0);
    if (--slot.stages_left == 0)
        completeFrame(slot_idx);
    tryDispatch(lane);
}

void
DataflowExecutor::completeFrame(std::uint32_t slot_idx)
{
    FrameSlot &slot = core_.slot(slot_idx);
    FrameTrace &trace = slot.trace;
    trace.finish = sim_.now();
    if (deadline_ && trace.latency() > *deadline_) {
        trace.deadline_missed = true;
        ++deadline_misses_;
        if (metrics_)
            metrics_->incr("deadline_misses");
    }
    ++completed_count_;
    if (metrics_) {
        for (const auto &span : trace.spans) {
            const std::string &name = graph_.stage(span.stage).name;
            metrics_->record(name, span.duration());
            metrics_->record("queue:" + name, span.queueing());
        }
        metrics_->recordTotal(trace.latency());
    }
    if (recorder_)
        traceFrame(trace);
    traceInFlight();
    if (health_)
        health_->onFrameCompleted(trace);
    if (keep_traces_)
        traces_.push_back(trace); // copy: the slot keeps its capacity
    FrameCallback on_complete = std::move(slot.on_complete);
    if (on_complete)
        on_complete(keep_traces_ ? traces_.back() : trace);
    // Recycle after the callback: a release triggered from it cannot
    // re-acquire this slot, so the trace reference above stays valid.
    core_.recycle(slot_idx);
}

void
DataflowExecutor::failFrame(std::uint32_t slot_idx, StageId stage)
{
    FrameSlot &slot = core_.slot(slot_idx);
    SOV_ASSERT(slot.active);

    // Revoke the frame's in-flight instances on the other lanes: each
    // lane frees immediately (its outstanding finish event goes stale
    // via the dispatch serial), so frames N+1... are not head-of-line
    // blocked behind work whose result is already discarded.
    for (std::uint32_t lane = 0; lane < core_.laneCount(); ++lane) {
        const auto revoked = core_.revokeInFlight(lane, slot_idx);
        if (!revoked)
            continue;
        StageSpan &span = slot.trace.spans[*revoked];
        span.finish = sim_.now(); // truncated at the revocation
        span.cancelled = true;
        ++stage_cancellations_;
        if (metrics_)
            metrics_->incr("stage_cancellations");
        if (recorder_) {
            recorder_->instant(trace_ids_.stage_cancelled,
                               trace_ids_.cat_fault,
                               trace_ids_.lane_tracks[lane], sim_.now(),
                               slot.frame);
        }
    }

    // Then cancel the queued-but-not-started instances of the frame.
    core_.cancelQueued(slot_idx);

    FrameTrace &trace = slot.trace;
    trace.finish = sim_.now();
    trace.failed = true;
    trace.failed_stage = stage;
    ++frames_failed_;
    ++completed_count_; // resolved: no longer counts as in flight
    if (metrics_)
        metrics_->incr("frames_failed");
    if (recorder_)
        traceFrame(trace);
    traceInFlight();
    if (health_)
        health_->onFrameFailed(trace);
    if (keep_traces_)
        traces_.push_back(trace); // copy: the slot keeps its capacity
    FrameCallback on_complete = std::move(slot.on_complete);
    if (on_complete)
        on_complete(keep_traces_ ? traces_.back() : trace);
    core_.recycle(slot_idx);

    // Re-arm every lane: revocation and cancellation may have exposed
    // ready heads (of later frames) on lanes that were busy or blocked
    // behind this frame's instances a moment ago.
    for (std::uint32_t lane = 0; lane < core_.laneCount(); ++lane)
        tryDispatch(lane);
}

RunResult
DataflowExecutor::run(StageGraph &graph, const RunOptions &opts)
{
    Simulator sim;
    DataflowExecutor exec(sim, graph);
    exec.setDeadline(opts.deadline);
    if (opts.trace)
        exec.attachTrace(opts.trace);

    if (opts.period > Duration::zero()) {
        // Pipelined: frame f releases at f * period regardless of the
        // progress of earlier frames.
        for (std::size_t f = 0; f < opts.frames; ++f) {
            sim.scheduleAt(Timestamp::origin() +
                               opts.period * static_cast<double>(f),
                           [&exec] { exec.releaseFrame(); });
        }
        sim.run();
    } else {
        // Single-shot: chain releases so frames never contend.
        struct SerialDriver
        {
            DataflowExecutor &exec;
            std::size_t total;
            std::size_t released = 0;

            void
            releaseNext()
            {
                if (released >= total)
                    return;
                ++released;
                exec.releaseFrame(
                    [this](const FrameTrace &) { releaseNext(); });
            }
        };
        SerialDriver driver{exec, opts.frames};
        driver.releaseNext();
        sim.run();
    }

    SOV_ASSERT(exec.framesCompleted() == opts.frames);
    RunResult result;
    result.frames = std::move(exec.traces_);
    result.finish_times.reserve(result.frames.size());
    for (const auto &frame : result.frames)
        result.finish_times.push_back(frame.finish);
    result.deadline_misses = exec.deadlineMisses();
    result.frames_failed = exec.framesFailed();
    result.stage_cancellations = exec.stageCancellations();
    result.growth_events = exec.coreGrowthEvents();
    return result;
}

RunResult
DataflowExecutor::runAsync(StageGraph &graph, const AsyncOptions &opts)
{
    Simulator sim;
    return runAsync(sim, graph, opts);
}

RunResult
DataflowExecutor::runAsync(Simulator &sim, StageGraph &graph,
                           const AsyncOptions &opts)
{
    DataflowExecutor exec(sim, graph);
    exec.setDeadline(opts.deadline);
    exec.setKeepTraces(opts.keep_traces);
    if (opts.stage_policy)
        exec.setAllStagePolicies(*opts.stage_policy);
    exec.setHealthListener(opts.health);
    exec.attachMetrics(opts.metrics);
    if (opts.trace)
        exec.attachTrace(opts.trace, /*emit_in_flight=*/true);

    RunResult result;
    result.finish_times.reserve(opts.frames);

    // Admission-windowed release: a frame enters only while fewer than
    // `window` frames are in flight. overlap=false forces the window to
    // 1, which (with a zero period) reproduces single-shot scheduling
    // bit for bit.
    const std::size_t window =
        opts.overlap ? std::max<std::size_t>(std::size_t{1},
                                             opts.max_in_flight)
                     : 1;
    // Steady state begins once the window has cycled a few times; any
    // container growth after this many completions is a leak in the
    // recycling design (the bench gate).
    const std::size_t warmup =
        std::max<std::size_t>(2 * window, std::size_t{4});
    std::uint64_t warmup_growth = 0;

    struct AsyncDriver
    {
        DataflowExecutor &exec;
        RunResult &result;
        std::size_t total;
        std::size_t window;
        std::size_t warmup;
        std::uint64_t &warmup_growth;
        bool self_paced; //!< zero period: release whenever there is room
        std::size_t released = 0;
        std::size_t due = 0; //!< frames whose release tick has passed

        void
        pump()
        {
            while (released < total &&
                   (self_paced || released < due) &&
                   exec.framesInFlight() < window) {
                ++released;
                exec.releaseFrame([this](const FrameTrace &trace) {
                    result.finish_times.push_back(trace.finish);
                    if (result.finish_times.size() == warmup)
                        warmup_growth = exec.coreGrowthEvents();
                    // Backpressure release: the retirement that freed
                    // this window slot admits the next due frame.
                    pump();
                });
            }
        }
    };
    AsyncDriver driver{exec,   result,       opts.frames,
                       window, warmup,       warmup_growth,
                       opts.period <= Duration::zero()};
    if (driver.self_paced) {
        driver.pump();
    } else {
        // Release ticks are anchored at the caller's current time, so
        // a shared (already advanced) Simulator never schedules into
        // its past; with a private Simulator this is the origin.
        const Timestamp base = sim.now();
        for (std::size_t f = 0; f < opts.frames; ++f) {
            sim.scheduleAt(base + opts.period * static_cast<double>(f),
                           [&driver] {
                               ++driver.due;
                               driver.pump();
                           });
        }
    }
    sim.run();

    SOV_ASSERT(exec.framesCompleted() == opts.frames);
    result.frames = std::move(exec.traces_);
    result.deadline_misses = exec.deadlineMisses();
    result.frames_failed = exec.framesFailed();
    result.stage_cancellations = exec.stageCancellations();
    result.growth_events = exec.coreGrowthEvents();
    result.steady_growth_events =
        opts.frames > warmup ? result.growth_events - warmup_growth
                             : 0;
    return result;
}

} // namespace sov::runtime
