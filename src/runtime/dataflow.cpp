#include "runtime/dataflow.h"

#include <algorithm>

#include "core/logging.h"

namespace sov::runtime {

double
RunResult::steadyStateThroughputHz() const
{
    if (frames.size() < 4)
        return 0.0;
    const std::size_t half = frames.size() / 2;
    const double seconds =
        (frames.back().finish - frames[half].finish).toSeconds();
    if (seconds <= 0.0)
        return 0.0;
    return static_cast<double>(frames.size() - 1 - half) / seconds;
}

void
RunResult::emit(const StageGraph &graph, obs::MetricRegistry &metrics) const
{
    for (const auto &frame : frames) {
        if (frame.failed)
            continue; // partial spans carry no meaningful timings
        for (const auto &span : frame.spans) {
            const std::string &name = graph.stage(span.stage).name;
            metrics.record(name, span.duration());
            metrics.record("queue:" + name, span.queueing());
        }
        metrics.recordTotal(frame.latency());
    }
}

DataflowExecutor::DataflowExecutor(Simulator &sim, StageGraph &graph)
    : sim_(sim), graph_(graph)
{
    SOV_ASSERT(graph_.size() > 0);
}

void
DataflowExecutor::attachTrace(obs::TraceRecorder *recorder)
{
    recorder_ = recorder;
    if (!recorder_)
        return;
    // Intern once: per-frame emission must stay allocation-free.
    trace_ids_.stage_names.clear();
    trace_ids_.stage_tracks.clear();
    for (StageId s = 0; s < graph_.size(); ++s) {
        trace_ids_.stage_names.push_back(
            recorder_->intern(graph_.stage(s).name));
        trace_ids_.stage_tracks.push_back(
            recorder_->intern(graph_.stage(s).resource));
    }
    trace_ids_.cat_stage = recorder_->intern("stage");
    trace_ids_.cat_frame = recorder_->intern("frame");
    trace_ids_.cat_sched = recorder_->intern("sched");
    trace_ids_.cat_fault = recorder_->intern("fault");
    trace_ids_.track_pipeline = recorder_->intern("pipeline");
    trace_ids_.frame_name = recorder_->intern("frame");
    trace_ids_.deadline_miss = recorder_->intern("deadline_miss");
    trace_ids_.frame_failed = recorder_->intern("frame_failed");
    trace_ids_.stage_timeout = recorder_->intern("stage_timeout");
    trace_ids_.stage_crash = recorder_->intern("stage_crash");
    trace_ids_.stage_retry = recorder_->intern("stage_retry");
}

void
DataflowExecutor::traceFrame(const FrameTrace &trace)
{
    for (const auto &span : trace.spans) {
        // In an abandoned frame only the stages up to the failure ran;
        // the rest still hold default (zero) start/finish stamps.
        if (trace.failed && !(span.finish > span.start))
            continue;
        recorder_->span(trace_ids_.stage_names[span.stage],
                        trace_ids_.cat_stage,
                        trace_ids_.stage_tracks[span.stage], span.start,
                        span.finish, span.frame);
    }
    recorder_->span(trace_ids_.frame_name, trace_ids_.cat_frame,
                    trace_ids_.track_pipeline, trace.release, trace.finish,
                    trace.frame);
    if (trace.deadline_missed) {
        recorder_->instant(trace_ids_.deadline_miss, trace_ids_.cat_sched,
                           trace_ids_.track_pipeline, trace.finish,
                           trace.frame);
    }
    if (trace.failed) {
        recorder_->instant(trace_ids_.frame_failed, trace_ids_.cat_fault,
                           trace_ids_.track_pipeline, trace.finish,
                           trace.frame);
    }
}

void
DataflowExecutor::setStagePolicy(StageId stage, const StagePolicy &policy)
{
    SOV_ASSERT(stage < graph_.size());
    policies_[stage] = policy;
}

void
DataflowExecutor::setAllStagePolicies(const StagePolicy &policy)
{
    for (StageId s = 0; s < graph_.size(); ++s)
        policies_[s] = policy;
}

const StagePolicy *
DataflowExecutor::policyFor(StageId stage) const
{
    const auto it = policies_.find(stage);
    return it == policies_.end() ? nullptr : &it->second;
}

std::size_t
DataflowExecutor::releaseFrame(FrameCallback on_complete)
{
    const std::size_t f = next_frame_++;
    const Timestamp now = sim_.now();
    const std::size_t n = graph_.size();

    FrameState state;
    state.trace.frame = f;
    state.trace.release = now;
    state.trace.spans.resize(n);
    state.deps_left.resize(n);
    state.ready.resize(n);
    state.stages_left = n;
    state.on_complete = std::move(on_complete);

    for (StageId s = 0; s < n; ++s) {
        StageSpan &span = state.trace.spans[s];
        span.stage = s;
        span.frame = f;
        span.released = now;
        state.deps_left[s] = graph_.stage(s).deps.size();
        state.ready[s] = state.deps_left[s] == 0;
        if (state.ready[s])
            span.ready = now;
        resources_[graph_.stage(s).resource].queue.emplace_back(f, s);
    }
    in_flight_.emplace(f, std::move(state));

    for (auto &[name, resource] : resources_)
        tryDispatch(resource);
    return f;
}

void
DataflowExecutor::tryDispatch(ResourceState &resource)
{
    if (resource.busy || resource.queue.empty())
        return;
    // In-order issue: only the head may start; a ready instance behind
    // an unready one waits (static per-resource schedule).
    const auto [f, s] = resource.queue.front();
    FrameState &state = in_flight_.at(f);
    if (!state.ready[s])
        return;

    resource.busy = true;
    StageSpan &span = state.trace.spans[s];
    span.start = sim_.now();

    // Supervised execution: attempts run back to back in model time
    // (the watchdog kills a hung/overrunning attempt at the timeout
    // and restarts the stage) until one succeeds or retries run out.
    const StagePolicy *policy = policyFor(s);
    StageExecutor &executor = graph_.executor(s);
    Duration elapsed = Duration::zero();
    bool attempt_failed = false;
    std::uint32_t attempts = 0;
    for (;;) {
        Duration d = executor.execute(f);
        SOV_ASSERT(d >= Duration::zero());
        const StageOutcome outcome = executor.lastOutcome();
        ++attempts;
        bool timed_out = false;
        if (policy && policy->timeout &&
            (outcome == StageOutcome::Hang || d > *policy->timeout)) {
            d = *policy->timeout;
            timed_out = true;
        }
        elapsed += d;
        const bool crashed = outcome == StageOutcome::Crash;
        attempt_failed = timed_out || crashed;
        if (timed_out)
            ++stage_timeouts_;
        if (crashed)
            ++stage_crashes_;
        if (recorder_ && (timed_out || crashed)) {
            // The supervision event lands where the attempt resolved
            // in model time, on the stage's resource lane.
            recorder_->instant(timed_out ? trace_ids_.stage_timeout
                                         : trace_ids_.stage_crash,
                               trace_ids_.cat_fault,
                               trace_ids_.stage_tracks[s],
                               span.start + elapsed, f);
        }
        if (health_)
            health_->onStageAttempt(s, f, outcome, timed_out);
        span.timed_out = timed_out;
        span.crashed = crashed;
        if (!attempt_failed || !policy || attempts > policy->max_retries)
            break;
        ++stage_retries_;
        if (recorder_) {
            recorder_->instant(trace_ids_.stage_retry,
                               trace_ids_.cat_fault,
                               trace_ids_.stage_tracks[s],
                               span.start + elapsed, f);
        }
    }
    span.attempts = attempts;
    span.finish = span.start + elapsed;
    sim_.schedule(elapsed, [this, &resource, f = f, s = s,
                            failed = attempt_failed] {
        onStageFinish(resource, f, s, failed);
    });
}

void
DataflowExecutor::onStageFinish(ResourceState &resource, std::size_t frame,
                                StageId stage, bool stage_failed)
{
    resource.busy = false;
    resource.queue.pop_front();

    const auto frame_it = in_flight_.find(frame);
    if (frame_it == in_flight_.end()) {
        // The frame was abandoned while this instance was running.
        tryDispatch(resource);
        return;
    }
    if (stage_failed) {
        failFrame(frame, stage);
        tryDispatch(resource);
        return;
    }

    FrameState &state = frame_it->second;
    for (StageId dep : graph_.dependents(stage)) {
        SOV_ASSERT(state.deps_left[dep] > 0);
        if (--state.deps_left[dep] == 0) {
            state.ready[dep] = true;
            state.trace.spans[dep].ready = sim_.now();
            tryDispatch(resources_.at(graph_.stage(dep).resource));
        }
    }

    SOV_ASSERT(state.stages_left > 0);
    if (--state.stages_left == 0)
        completeFrame(frame);
    tryDispatch(resource);
}

void
DataflowExecutor::completeFrame(std::size_t frame)
{
    const auto it = in_flight_.find(frame);
    FrameTrace trace = std::move(it->second.trace);
    FrameCallback on_complete = std::move(it->second.on_complete);
    in_flight_.erase(it);

    trace.finish = sim_.now();
    if (deadline_ && trace.latency() > *deadline_) {
        trace.deadline_missed = true;
        ++deadline_misses_;
        if (metrics_)
            metrics_->incr("deadline_misses");
    }
    ++completed_count_;
    if (metrics_) {
        for (const auto &span : trace.spans) {
            const std::string &name = graph_.stage(span.stage).name;
            metrics_->record(name, span.duration());
            metrics_->record("queue:" + name, span.queueing());
        }
        metrics_->recordTotal(trace.latency());
    }
    if (recorder_)
        traceFrame(trace);
    if (health_)
        health_->onFrameCompleted(trace);
    if (keep_traces_)
        traces_.push_back(std::move(trace));
    if (on_complete)
        on_complete(keep_traces_ ? traces_.back() : trace);
}

void
DataflowExecutor::failFrame(std::size_t frame, StageId stage)
{
    const auto it = in_flight_.find(frame);
    SOV_ASSERT(it != in_flight_.end());
    FrameTrace trace = std::move(it->second.trace);
    FrameCallback on_complete = std::move(it->second.on_complete);
    in_flight_.erase(it);

    // Cancel queued-but-not-started instances of the frame; a running
    // instance (the busy head of a lane) keeps its slot and is
    // discarded when its finish event fires.
    for (auto &[name, resource] : resources_) {
        (void)name;
        auto &q = resource.queue;
        const auto keep = q.begin() + (resource.busy ? 1 : 0);
        q.erase(std::remove_if(keep, q.end(),
                               [frame](const auto &inst) {
                                   return inst.first == frame;
                               }),
                q.end());
    }

    trace.finish = sim_.now();
    trace.failed = true;
    trace.failed_stage = stage;
    ++frames_failed_;
    ++completed_count_; // resolved: no longer counts as in flight
    if (metrics_)
        metrics_->incr("frames_failed");
    if (recorder_)
        traceFrame(trace);
    if (health_)
        health_->onFrameFailed(trace);
    if (keep_traces_)
        traces_.push_back(std::move(trace));
    if (on_complete)
        on_complete(keep_traces_ ? traces_.back() : trace);
}

RunResult
DataflowExecutor::run(StageGraph &graph, const RunOptions &opts)
{
    Simulator sim;
    DataflowExecutor exec(sim, graph);
    exec.setDeadline(opts.deadline);
    if (opts.trace)
        exec.attachTrace(opts.trace);

    if (opts.period > Duration::zero()) {
        // Pipelined: frame f releases at f * period regardless of the
        // progress of earlier frames.
        for (std::size_t f = 0; f < opts.frames; ++f) {
            sim.scheduleAt(Timestamp::origin() +
                               opts.period * static_cast<double>(f),
                           [&exec] { exec.releaseFrame(); });
        }
        sim.run();
    } else {
        // Single-shot: chain releases so frames never contend.
        struct SerialDriver
        {
            DataflowExecutor &exec;
            std::size_t total;
            std::size_t released = 0;

            void
            releaseNext()
            {
                if (released >= total)
                    return;
                ++released;
                exec.releaseFrame(
                    [this](const FrameTrace &) { releaseNext(); });
            }
        };
        SerialDriver driver{exec, opts.frames};
        driver.releaseNext();
        sim.run();
    }

    SOV_ASSERT(exec.framesCompleted() == opts.frames);
    RunResult result;
    result.frames = std::move(exec.traces_);
    result.deadline_misses = exec.deadlineMisses();
    result.frames_failed = exec.framesFailed();
    return result;
}

} // namespace sov::runtime
