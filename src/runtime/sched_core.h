/**
 * @file
 * The scheduling core of the runtime dataflow layer, split out of
 * DataflowExecutor so every front-end mode — single-shot, pipelined,
 * and asynchronous pipeline-parallel — shares one arbitration path.
 *
 * The core owns the *state* of an executing StageGraph and none of its
 * *policy*: resource lanes (in-order instance rings), recycled frame
 * slots (span arrays, dependency counters, completion callbacks), and
 * the payload double-buffer ring. Supervision (watchdogs, retries),
 * observability (metrics, trace spans) and release strategy live in
 * the front end (runtime/dataflow.h).
 *
 * Steady-state allocation contract: every container here grows only
 * while the executor is warming up (first time a lane backlog or
 * in-flight window reaches its high-water mark). growthEvents() counts
 * those growths; once it stops moving, releasing and retiring frames
 * touches recycled storage only. bench_dataflow gates on exactly this
 * counter, plus FrameArena::systemAllocations() of the payload ring.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/arena.h"
#include "core/time.h"
#include "runtime/stage_graph.h"

namespace sov::runtime {

/** Timing of one executed stage instance. */
struct StageSpan
{
    StageId stage = 0;
    std::size_t frame = 0;
    Timestamp released; //!< frame release (sensor trigger) time
    Timestamp ready;    //!< all dependencies satisfied
    Timestamp start;    //!< resource granted, execution begins
    Timestamp finish;
    /** Executor invocations (1 + retries taken by the watchdog). */
    std::uint32_t attempts = 1;
    /** Final attempt was truncated by the watchdog timeout. */
    bool timed_out = false;
    /** Final attempt crashed (fault injection). */
    bool crashed = false;
    /** The in-flight instance was revoked because another stage of the
     *  same frame exhausted its retries; finish is the revocation time,
     *  not the execution end. */
    bool cancelled = false;

    /** Time spent waiting for the resource after becoming ready. */
    Duration queueing() const { return start - ready; }
    Duration duration() const { return finish - start; }
};

/** Timing of one completed frame. */
struct FrameTrace
{
    std::size_t frame = 0;
    Timestamp release;
    Timestamp finish;
    bool deadline_missed = false;
    /** A stage exhausted its watchdog retries; the frame was abandoned
     *  (downstream stages cancelled) and produced no result. */
    bool failed = false;
    /** The stage that abandoned the frame (valid when failed). */
    StageId failed_stage = 0;
    /** spans[s] = span of stage s; indexed by StageId. */
    std::vector<StageSpan> spans;

    Duration latency() const { return finish - release; }
};

/** Fires when a frame completes (or is abandoned). */
using FrameCallback = std::function<void(const FrameTrace &)>;

/** One queued (frame-slot, stage) instance on a resource lane. */
struct Instance
{
    std::uint32_t slot = 0;
    std::uint32_t stage = 0;
};

/**
 * FIFO ring of stage instances pending on one resource lane. Backed by
 * a power-of-two buffer that doubles only when the backlog exceeds the
 * previous high-water mark (a growth event); steady state pushes and
 * pops recycled storage.
 */
class InstanceRing
{
  public:
    bool empty() const { return count_ == 0; }
    std::size_t size() const { return count_; }

    const Instance &front() const { return buf_[head_]; }

    void push(Instance inst);
    void pop();

    /**
     * Remove every queued instance of @p slot. When @p skip_head is
     * set the front entry is preserved even if it matches — it is the
     * busy (already dispatched) instance, which keeps its lane until
     * its finish event fires.
     */
    void cancel(std::uint32_t slot, bool skip_head);

    /** Buffer doublings since construction. */
    std::size_t growthEvents() const { return growth_; }

  private:
    void grow();

    std::vector<Instance> buf_; //!< power-of-two capacity
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::size_t growth_ = 0;
};

/** Per-frame bookkeeping, recycled across frames by the slot pool. */
struct FrameSlot
{
    std::uint64_t frame = 0;
    bool active = false;
    FrameTrace trace;
    /** Unsatisfied dependency count per stage. */
    std::vector<std::uint32_t> deps_left;
    /** ready[s] != 0 once every dependency of s finished. */
    std::vector<char> ready;
    std::size_t stages_left = 0;
    FrameCallback on_complete;
};

/**
 * Arbitration state of one StageGraph execution: interned resource
 * lanes with in-order instance rings, plus the recycled frame-slot
 * pool. Policy-free — the front end decides when to release, how to
 * supervise, and what to observe.
 */
class SchedulerCore
{
  public:
    explicit SchedulerCore(const StageGraph &graph);

    // ---- lanes ------------------------------------------------------
    std::size_t laneCount() const { return lanes_.size(); }
    std::uint32_t laneOf(StageId stage) const
    {
        return stage_lane_[stage];
    }
    const std::string &laneName(std::uint32_t lane) const
    {
        return lane_names_[lane];
    }
    bool laneBusy(std::uint32_t lane) const { return lanes_[lane].busy; }
    /** Slot of the in-flight (dispatched) instance; valid when busy. */
    std::uint32_t busySlot(std::uint32_t lane) const
    {
        return lanes_[lane].busy_slot;
    }
    InstanceRing &laneQueue(std::uint32_t lane)
    {
        return lanes_[lane].queue;
    }

    /**
     * Mark @p lane busy executing its head instance (of @p slot) and
     * return the dispatch serial the finish event must present to
     * finishDispatch(). Serials are bumped by every dispatch and every
     * revocation, so a finish event whose dispatch was revoked in the
     * meantime identifies itself as stale.
     */
    std::uint64_t beginDispatch(std::uint32_t lane, std::uint32_t slot);

    /**
     * Resolve the dispatch identified by @p serial: free the lane and
     * pop the completed head instance. Returns false — and touches
     * nothing — when the dispatch was revoked while its finish event
     * was in flight (the lane may already be busy with another frame).
     */
    bool finishDispatch(std::uint32_t lane, std::uint64_t serial);

    /**
     * Revoke the in-flight dispatch of @p slot on @p lane, if any: the
     * head instance is removed, the lane freed immediately, and the
     * outstanding finish event invalidated (its serial no longer
     * matches). Returns the revoked stage id, or no value when the
     * lane was not busy with @p slot.
     */
    std::optional<std::uint32_t> revokeInFlight(std::uint32_t lane,
                                                std::uint32_t slot);

    // ---- frame slots ------------------------------------------------
    /**
     * Acquire a (recycled or new) slot for @p frame released at @p now:
     * spans are re-stamped, dependency counters reset, and one instance
     * per stage is enqueued on its lane in stage order.
     */
    std::uint32_t acquire(std::uint64_t frame, Timestamp now);

    FrameSlot &slot(std::uint32_t idx) { return *slots_[idx]; }
    const FrameSlot &slot(std::uint32_t idx) const { return *slots_[idx]; }

    /** Return @p idx to the free list (drops its callback state). */
    void recycle(std::uint32_t idx);

    /** Cancel the queued-but-not-started instances of @p idx on every
     *  lane (a busy lane's head keeps its dispatch; see InstanceRing). */
    void cancelQueued(std::uint32_t idx);

    /** Slots currently bound to an in-flight frame. */
    std::size_t slotsInUse() const { return slots_.size() - free_.size(); }

    /**
     * Container growths since construction: new slot constructions plus
     * lane-ring doublings. Constant across steady-state frames once the
     * in-flight window and lane backlogs have peaked.
     */
    std::uint64_t growthEvents() const;

  private:
    struct Lane
    {
        InstanceRing queue;
        bool busy = false;
        /** Slot of the dispatched head instance (valid while busy). */
        std::uint32_t busy_slot = 0;
        /** Monotonic dispatch serial; see beginDispatch(). */
        std::uint64_t serial = 0;
    };

    const StageGraph &graph_;
    std::vector<Lane> lanes_;
    std::vector<std::string> lane_names_;
    std::vector<std::uint32_t> stage_lane_; //!< per StageId
    std::vector<std::unique_ptr<FrameSlot>> slots_;
    std::vector<std::uint32_t> free_;
    std::uint64_t slot_growth_ = 0;
};

/**
 * Double-buffered (depth-N) per-frame payload storage on FrameArena.
 *
 * Kernel stages that materialize real per-frame payloads (images,
 * disparity maps, feature sets) cannot share one scratch buffer once
 * frames overlap: frame f+1's producer would overwrite frame f's bytes
 * while a downstream stage still reads them. The ring gives frame f
 * the arena slot f % depth; with the executor's admission window
 * capped at the ring depth, a slot is never reset while an older
 * frame's stages can still touch it.
 *
 * Steady state allocates nothing: each slot arena warms up once and is
 * rewound (not freed) per frame — systemAllocations() is constant
 * across steady-state frames, which bench_dataflow asserts.
 */
class FramePayloadRing
{
  public:
    explicit FramePayloadRing(std::size_t depth,
                              std::size_t first_block_bytes = 1u << 16);

    std::size_t depth() const { return arenas_.size(); }

    /** The slot backing @p frame (no reset). */
    FrameArena &slot(std::uint64_t frame)
    {
        return arenas_[frame % arenas_.size()];
    }

    /** Rewind and return @p frame's slot — call from the frame's first
     *  (producer) stage. Safe iff in-flight frames <= depth(). */
    FrameArena &acquire(std::uint64_t frame);

    /** Sum of FrameArena::systemAllocations() over all slots. */
    std::size_t systemAllocations() const;

  private:
    std::vector<FrameArena> arenas_;
};

} // namespace sov::runtime
