/**
 * @file
 * Discrete-event execution of a StageGraph with resource arbitration.
 *
 * The DataflowExecutor runs frames of a StageGraph on the shared
 * discrete-event Simulator. Each resource lane executes one stage
 * instance at a time; instances issue IN ORDER per resource (frame
 * ascending, stage-insertion order within a frame), which models the
 * static algorithm-to-hardware mapping of the paper (no dynamic work
 * stealing between frames) and keeps schedules deterministic. Frames
 * pipeline: instance f+1 of a stage may start while downstream stages
 * of frame f are still in flight.
 *
 * The arbitration state (resource lanes, recycled frame slots, payload
 * double-buffers) lives in runtime/sched_core.h; this front end adds
 * supervision (watchdog timeouts, retries, frame abandonment),
 * observability (metric streams, trace spans) and the release
 * strategies:
 *
 *  - single-shot (RunOptions, period 0): frame f+1 releases when f
 *    completes — the resource-constrained critical path (Fig. 10);
 *  - pipelined (RunOptions, period > 0): frame f releases at f*period
 *    unconditionally — throughput under a fixed input rate;
 *  - asynchronous pipeline-parallel (AsyncOptions / runAsync): frames
 *    release on a period *under an admission window*, so frame N+1's
 *    sensing overlaps frame N's perception across lanes while the
 *    in-flight count — and therefore the payload double-buffer depth —
 *    stays bounded, and steady state allocates nothing.
 *
 * Per stage instance the executor records a StageSpan (release / ready
 * / start / finish, hence queueing delay = start - ready), and per
 * frame a deadline verdict, giving the characterizations of the same
 * graph: single-shot latency, pipelined throughput, and closed-loop
 * timing — the paper's Fig. 5 pipeline measured as in Fig. 10,
 * Sec. III-A, and Sec. IV/V-C respectively.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/sched_core.h"
#include "runtime/stage_graph.h"
#include "sim/simulator.h"

namespace sov::runtime {

/**
 * Watchdog policy for one stage: how the runtime supervises the
 * stage's executor. A timeout truncates hangs and latency tails (the
 * watchdog kills and restarts the stage); crashes are detected from
 * the executor outcome. A failed attempt is retried up to max_retries
 * times (each retry re-invokes the executor); when retries are
 * exhausted the frame is abandoned — skip-frame degradation, the
 * paper's answer to a misbehaving pipeline component (Sec. III-C).
 */
struct StagePolicy
{
    /** Kill an attempt running longer than this; unset = never. */
    std::optional<Duration> timeout;
    /** Extra attempts after a crashed or timed-out one. */
    std::uint32_t max_retries = 0;
    /** Pause between a failed attempt and its retry (restart cost /
     *  fault clearing time). Zero keeps retries back to back and the
     *  schedule bit-identical to the pre-backoff supervisor. */
    Duration retry_backoff = Duration::zero();
};

/**
 * Observer of supervision events, implemented by the health layer.
 * Callbacks fire synchronously from the executor at simulation time.
 */
class DataflowHealthListener
{
  public:
    virtual ~DataflowHealthListener() = default;

    /** One executor attempt resolved (possibly to be retried). */
    virtual void onStageAttempt(StageId stage, std::size_t frame,
                                StageOutcome outcome, bool timed_out)
    {
        (void)stage; (void)frame; (void)outcome; (void)timed_out;
    }
    /** A frame was abandoned after exhausting a stage's retries. */
    virtual void onFrameFailed(const FrameTrace &trace) { (void)trace; }
    /** A frame completed all stages. */
    virtual void onFrameCompleted(const FrameTrace &trace) { (void)trace; }
};

/** Options for a batch run of a StageGraph. */
struct RunOptions
{
    std::size_t frames = 1;
    /**
     * Frame release cadence. Zero means single-shot mode: each frame
     * is released when the previous one finishes, so frames never
     * contend and per-frame latency equals the resource-constrained
     * critical path (the Fig. 10 characterization). A positive period
     * releases frame f at f * period and lets frames pipeline.
     */
    Duration period = Duration::zero();
    /** Per-frame deadline measured from release; unset = no deadline. */
    std::optional<Duration> deadline;
    /** Stream stage spans into this recorder (not owned; optional). */
    obs::TraceRecorder *trace = nullptr;
};

/** Options for an asynchronous pipeline-parallel batch run. */
struct AsyncOptions
{
    std::size_t frames = 1;
    /**
     * Release cadence. Zero = self-paced: a frame releases the moment
     * the admission window has room, so the pipeline saturates at the
     * bottleneck lane's rate. Positive = frame f is *due* at f*period
     * but still waits for admission (backpressure defers it to the
     * completion that frees a slot).
     */
    Duration period = Duration::zero();
    /**
     * Admission window: maximum frames in flight, i.e. the payload
     * double-buffer depth. 2 = classic double buffering (frame N+1
     * sensing while frame N perceives).
     */
    std::size_t max_in_flight = 2;
    /** False forces the window to 1 — no cross-frame overlap. With a
     *  zero period this reproduces single-shot mode bit for bit (the
     *  sync-equivalence gate of bench_dataflow). */
    bool overlap = true;
    /** Per-frame deadline measured from release; unset = no deadline. */
    std::optional<Duration> deadline;
    /** Stream stage spans into this recorder (not owned; optional). */
    obs::TraceRecorder *trace = nullptr;
    /** Retain FrameTraces in the result. Off = the zero-allocation
     *  configuration: finish times and counters only. */
    bool keep_traces = true;
    /** Watchdog policy applied to every stage (timeout, bounded retry
     *  with backoff); unset = unsupervised. A policy that never fires
     *  (no fault plan installed, timeout above every stage duration)
     *  leaves the schedule bit-identical to an unsupervised run. */
    std::optional<StagePolicy> stage_policy;
    /** Supervision observer (not owned; optional) — the async
     *  front-end's hook for HealthMonitor + DegradationManager. */
    DataflowHealthListener *health = nullptr;
    /** Stream span samples + supervision counters (not owned). */
    obs::MetricRegistry *metrics = nullptr;
};

/** Result of a batch run. */
struct RunResult
{
    std::vector<FrameTrace> frames; //!< in completion (== frame) order
    /** Completion time per frame, kept even when traces are not. */
    std::vector<Timestamp> finish_times;
    std::uint64_t deadline_misses = 0;
    std::uint64_t frames_failed = 0; //!< abandoned by the watchdog
    /** In-flight stage instances revoked when their frame was
     *  abandoned (head-of-line blocking removed). */
    std::uint64_t stage_cancellations = 0;
    /** Scheduler-core container growths during the run (see
     *  SchedulerCore::growthEvents()). */
    std::uint64_t growth_events = 0;
    /** Growths after the warmup prefix of an async run — the
     *  zero-steady-state-allocation gate reads exactly this. */
    std::uint64_t steady_growth_events = 0;

    const StageSpan &span(std::size_t frame, StageId stage) const
    {
        return frames.at(frame).spans.at(stage);
    }

    /**
     * Steady-state throughput in frames per second, from the spacing
     * of the last half of the frame completions.
     */
    double steadyStateThroughputHz() const;

    /** FNV-1a over every span timestamp/flag of every kept frame —
     *  the bit-identity fingerprint of a schedule. */
    std::uint64_t fingerprint() const;

    /** Record per-stage durations, per-stage "queue:<name>" delays and
     *  end-to-end totals into @p metrics. */
    void emit(const StageGraph &graph, obs::MetricRegistry &metrics) const;
};

/**
 * Event-driven executor binding one StageGraph to one Simulator.
 *
 * Three modes of use:
 *  - releaseFrame() from your own event loop (the closed-loop sim
 *    releases one frame per planning cycle and transmits the actuation
 *    command from the completion callback);
 *  - the static run() convenience, which owns a private Simulator and
 *    releases a fixed number of frames (batch characterization and the
 *    TaskGraph scheduling front-end);
 *  - the static runAsync() convenience: admission-windowed pipeline
 *    parallelism with recycled per-frame state (bench_dataflow and the
 *    throughput side of the Fig. 5 characterizations).
 */
class DataflowExecutor
{
  public:
    using FrameCallback = runtime::FrameCallback;

    DataflowExecutor(Simulator &sim, StageGraph &graph);

    DataflowExecutor(const DataflowExecutor &) = delete;
    DataflowExecutor &operator=(const DataflowExecutor &) = delete;

    /** Per-frame deadline measured from release; unset = none. */
    void setDeadline(std::optional<Duration> deadline)
    {
        deadline_ = deadline;
    }

    /** Supervise @p stage with @p policy (watchdog timeout + retries).
     *  Call before releasing frames. */
    void setStagePolicy(StageId stage, const StagePolicy &policy);

    /** Apply @p policy to every stage of the graph. */
    void setAllStagePolicies(const StagePolicy &policy);

    /** Attach the health observer (nullptr detaches). */
    void setHealthListener(DataflowHealthListener *listener)
    {
        health_ = listener;
    }

    /** Keep completed FrameTraces in memory (default on). Long
     *  closed-loop runs turn this off and attach metrics instead. */
    void setKeepTraces(bool keep) { keep_traces_ = keep; }

    /** Stream span/queue/total samples of every completed frame into
     *  @p metrics (nullptr detaches), and count supervision events
     *  (deadline misses, timeouts, crashes, retries, failed frames). */
    void attachMetrics(obs::MetricRegistry *metrics) { metrics_ = metrics; }

    /**
     * Emit every stage execution as an obs span (track = resource
     * lane) plus frame spans and supervision instants into @p
     * recorder (nullptr detaches). Stage/resource names are interned
     * here, so per-frame emission stays allocation-free.
     * @param emit_in_flight Also emit a "frames_in_flight" counter on
     *        every release and retirement — the Perfetto view of the
     *        async admission window. Off by default so existing traces
     *        keep their exact event content.
     */
    void attachTrace(obs::TraceRecorder *recorder,
                     bool emit_in_flight = false);

    /**
     * Release one frame at the current simulation time. Stage events
     * are scheduled on the bound Simulator; @p on_complete fires when
     * the frame's last stage finishes. Completion callbacks fire in
     * frame order (per-resource in-order issue guarantees it).
     * @return The frame index.
     */
    std::size_t releaseFrame(FrameCallback on_complete = {});

    std::uint64_t framesReleased() const { return next_frame_; }
    std::uint64_t framesCompleted() const { return completed_count_; }
    /** Frames released but not yet completed. Callers implementing
     *  load shedding check this before releaseFrame(). */
    std::uint64_t framesInFlight() const
    {
        return next_frame_ - completed_count_;
    }
    std::uint64_t deadlineMisses() const { return deadline_misses_; }

    /** Frames abandoned because a stage exhausted its retries. */
    std::uint64_t framesFailed() const { return frames_failed_; }
    /** Stage attempts truncated by a watchdog timeout. */
    std::uint64_t stageTimeouts() const { return stage_timeouts_; }
    /** Stage attempts that crashed (fault injection). */
    std::uint64_t stageCrashes() const { return stage_crashes_; }
    /** Watchdog-driven re-executions of a stage. */
    std::uint64_t stageRetries() const { return stage_retries_; }
    /** In-flight stage instances revoked by frame abandonment. */
    std::uint64_t stageCancellations() const { return stage_cancellations_; }

    /** Completed traces (empty when keep-traces is off). */
    const std::vector<FrameTrace> &traces() const { return traces_; }

    /** Scheduler-core container growths (steady state: constant). */
    std::uint64_t coreGrowthEvents() const { return core_.growthEvents(); }

    /** Run @p opts.frames frames of @p graph on a private Simulator. */
    static RunResult run(StageGraph &graph, const RunOptions &opts);

    /** Asynchronous pipeline-parallel batch run of @p graph on a
     *  private Simulator (see AsyncOptions). */
    static RunResult runAsync(StageGraph &graph, const AsyncOptions &opts);

    /** Same, but on the caller's Simulator — the closed-loop sim and
     *  fault benches share one clock with the fault plan and health
     *  layer this way. The simulator is run to quiescence. */
    static RunResult runAsync(Simulator &sim, StageGraph &graph,
                              const AsyncOptions &opts);

  private:
    /** Interned obs names, filled by attachTrace(). */
    struct TraceIds
    {
        std::vector<obs::NameId> stage_names; //!< per StageId
        std::vector<obs::NameId> lane_tracks; //!< per lane
        obs::NameId cat_stage = 0;
        obs::NameId cat_frame = 0;
        obs::NameId cat_sched = 0;
        obs::NameId cat_fault = 0;
        obs::NameId track_pipeline = 0;
        obs::NameId frame_name = 0;
        obs::NameId deadline_miss = 0;
        obs::NameId frame_failed = 0;
        obs::NameId stage_timeout = 0;
        obs::NameId stage_crash = 0;
        obs::NameId stage_retry = 0;
        obs::NameId stage_cancelled = 0;
        obs::NameId in_flight = 0;
    };

    void tryDispatch(std::uint32_t lane);
    void onStageFinish(std::uint32_t lane, std::uint64_t serial,
                       std::uint32_t slot_idx, std::uint64_t frame,
                       StageId stage, bool stage_failed);
    void completeFrame(std::uint32_t slot_idx);
    void failFrame(std::uint32_t slot_idx, StageId stage);
    const StagePolicy *policyFor(StageId stage) const;
    /** Emit the spans of a resolved frame into the recorder. */
    void traceFrame(const FrameTrace &trace);
    void traceInFlight();

    Simulator &sim_;
    StageGraph &graph_;
    SchedulerCore core_;
    std::vector<FrameTrace> traces_;
    obs::MetricRegistry *metrics_ = nullptr;
    obs::TraceRecorder *recorder_ = nullptr;
    bool trace_in_flight_ = false;
    TraceIds trace_ids_;
    DataflowHealthListener *health_ = nullptr;
    std::map<StageId, StagePolicy> policies_;
    std::optional<Duration> deadline_;
    bool keep_traces_ = true;
    std::uint64_t next_frame_ = 0;
    std::uint64_t completed_count_ = 0;
    std::uint64_t deadline_misses_ = 0;
    std::uint64_t frames_failed_ = 0;
    std::uint64_t stage_timeouts_ = 0;
    std::uint64_t stage_crashes_ = 0;
    std::uint64_t stage_retries_ = 0;
    std::uint64_t stage_cancellations_ = 0;
};

} // namespace sov::runtime
