/**
 * @file
 * Discrete-event execution of a StageGraph with resource arbitration.
 *
 * The DataflowExecutor runs frames of a StageGraph on the shared
 * discrete-event Simulator. Each resource lane executes one stage
 * instance at a time; instances issue IN ORDER per resource (frame
 * ascending, stage-insertion order within a frame), which models the
 * static algorithm-to-hardware mapping of the paper (no dynamic work
 * stealing between frames) and keeps schedules deterministic. Frames
 * pipeline: instance f+1 of a stage may start while downstream stages
 * of frame f are still in flight.
 *
 * Per stage instance the executor records a StageSpan (release / ready
 * / start / finish, hence queueing delay = start - ready), and per
 * frame a deadline verdict, giving the three characterizations of the
 * same graph: single-shot latency, pipelined throughput, and
 * closed-loop timing — the paper's Fig. 5 pipeline measured as in
 * Fig. 10, Sec. III-A, and Sec. IV/V-C respectively.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/stage_graph.h"
#include "sim/simulator.h"

namespace sov::runtime {

/** Timing of one executed stage instance. */
struct StageSpan
{
    StageId stage = 0;
    std::size_t frame = 0;
    Timestamp released; //!< frame release (sensor trigger) time
    Timestamp ready;    //!< all dependencies satisfied
    Timestamp start;    //!< resource granted, execution begins
    Timestamp finish;
    /** Executor invocations (1 + retries taken by the watchdog). */
    std::uint32_t attempts = 1;
    /** Final attempt was truncated by the watchdog timeout. */
    bool timed_out = false;
    /** Final attempt crashed (fault injection). */
    bool crashed = false;

    /** Time spent waiting for the resource after becoming ready. */
    Duration queueing() const { return start - ready; }
    Duration duration() const { return finish - start; }
};

/** Timing of one completed frame. */
struct FrameTrace
{
    std::size_t frame = 0;
    Timestamp release;
    Timestamp finish;
    bool deadline_missed = false;
    /** A stage exhausted its watchdog retries; the frame was abandoned
     *  (downstream stages cancelled) and produced no result. */
    bool failed = false;
    /** The stage that abandoned the frame (valid when failed). */
    StageId failed_stage = 0;
    /** spans[s] = span of stage s; indexed by StageId. */
    std::vector<StageSpan> spans;

    Duration latency() const { return finish - release; }
};

/**
 * Watchdog policy for one stage: how the runtime supervises the
 * stage's executor. A timeout truncates hangs and latency tails (the
 * watchdog kills and restarts the stage); crashes are detected from
 * the executor outcome. A failed attempt is retried up to max_retries
 * times (each retry re-invokes the executor); when retries are
 * exhausted the frame is abandoned — skip-frame degradation, the
 * paper's answer to a misbehaving pipeline component (Sec. III-C).
 */
struct StagePolicy
{
    /** Kill an attempt running longer than this; unset = never. */
    std::optional<Duration> timeout;
    /** Extra attempts after a crashed or timed-out one. */
    std::uint32_t max_retries = 0;
};

/**
 * Observer of supervision events, implemented by the health layer.
 * Callbacks fire synchronously from the executor at simulation time.
 */
class DataflowHealthListener
{
  public:
    virtual ~DataflowHealthListener() = default;

    /** One executor attempt resolved (possibly to be retried). */
    virtual void onStageAttempt(StageId stage, std::size_t frame,
                                StageOutcome outcome, bool timed_out)
    {
        (void)stage; (void)frame; (void)outcome; (void)timed_out;
    }
    /** A frame was abandoned after exhausting a stage's retries. */
    virtual void onFrameFailed(const FrameTrace &trace) { (void)trace; }
    /** A frame completed all stages. */
    virtual void onFrameCompleted(const FrameTrace &trace) { (void)trace; }
};

/** Options for a batch run of a StageGraph. */
struct RunOptions
{
    std::size_t frames = 1;
    /**
     * Frame release cadence. Zero means single-shot mode: each frame
     * is released when the previous one finishes, so frames never
     * contend and per-frame latency equals the resource-constrained
     * critical path (the Fig. 10 characterization). A positive period
     * releases frame f at f * period and lets frames pipeline.
     */
    Duration period = Duration::zero();
    /** Per-frame deadline measured from release; unset = no deadline. */
    std::optional<Duration> deadline;
    /** Stream stage spans into this recorder (not owned; optional). */
    obs::TraceRecorder *trace = nullptr;
};

/** Result of a batch run. */
struct RunResult
{
    std::vector<FrameTrace> frames; //!< in completion (== frame) order
    std::uint64_t deadline_misses = 0;
    std::uint64_t frames_failed = 0; //!< abandoned by the watchdog

    const StageSpan &span(std::size_t frame, StageId stage) const
    {
        return frames.at(frame).spans.at(stage);
    }

    /**
     * Steady-state throughput in frames per second, from the spacing
     * of the last half of the frame completions.
     */
    double steadyStateThroughputHz() const;

    /** Record per-stage durations, per-stage "queue:<name>" delays and
     *  end-to-end totals into @p metrics. */
    void emit(const StageGraph &graph, obs::MetricRegistry &metrics) const;
};

/**
 * Event-driven executor binding one StageGraph to one Simulator.
 *
 * Two modes of use:
 *  - releaseFrame() from your own event loop (the closed-loop sim
 *    releases one frame per planning cycle and transmits the actuation
 *    command from the completion callback);
 *  - the static run() convenience, which owns a private Simulator and
 *    releases a fixed number of frames (batch characterization and the
 *    TaskGraph scheduling front-end).
 */
class DataflowExecutor
{
  public:
    using FrameCallback = std::function<void(const FrameTrace &)>;

    DataflowExecutor(Simulator &sim, StageGraph &graph);

    DataflowExecutor(const DataflowExecutor &) = delete;
    DataflowExecutor &operator=(const DataflowExecutor &) = delete;

    /** Per-frame deadline measured from release; unset = none. */
    void setDeadline(std::optional<Duration> deadline)
    {
        deadline_ = deadline;
    }

    /** Supervise @p stage with @p policy (watchdog timeout + retries).
     *  Call before releasing frames. */
    void setStagePolicy(StageId stage, const StagePolicy &policy);

    /** Apply @p policy to every stage of the graph. */
    void setAllStagePolicies(const StagePolicy &policy);

    /** Attach the health observer (nullptr detaches). */
    void setHealthListener(DataflowHealthListener *listener)
    {
        health_ = listener;
    }

    /** Keep completed FrameTraces in memory (default on). Long
     *  closed-loop runs turn this off and attach metrics instead. */
    void setKeepTraces(bool keep) { keep_traces_ = keep; }

    /** Stream span/queue/total samples of every completed frame into
     *  @p metrics (nullptr detaches), and count supervision events
     *  (deadline misses, timeouts, crashes, retries, failed frames). */
    void attachMetrics(obs::MetricRegistry *metrics) { metrics_ = metrics; }

    /**
     * Emit every stage execution as an obs span (track = resource
     * lane) plus frame spans and supervision instants into @p
     * recorder (nullptr detaches). Stage/resource names are interned
     * here, so per-frame emission stays allocation-free.
     */
    void attachTrace(obs::TraceRecorder *recorder);

    /**
     * Release one frame at the current simulation time. Stage events
     * are scheduled on the bound Simulator; @p on_complete fires when
     * the frame's last stage finishes. Completion callbacks fire in
     * frame order (per-resource in-order issue guarantees it).
     * @return The frame index.
     */
    std::size_t releaseFrame(FrameCallback on_complete = {});

    std::uint64_t framesReleased() const { return next_frame_; }
    std::uint64_t framesCompleted() const { return completed_count_; }
    /** Frames released but not yet completed. Callers implementing
     *  load shedding check this before releaseFrame(). */
    std::uint64_t framesInFlight() const
    {
        return next_frame_ - completed_count_;
    }
    std::uint64_t deadlineMisses() const { return deadline_misses_; }

    /** Frames abandoned because a stage exhausted its retries. */
    std::uint64_t framesFailed() const { return frames_failed_; }
    /** Stage attempts truncated by a watchdog timeout. */
    std::uint64_t stageTimeouts() const { return stage_timeouts_; }
    /** Stage attempts that crashed (fault injection). */
    std::uint64_t stageCrashes() const { return stage_crashes_; }
    /** Watchdog-driven re-executions of a stage. */
    std::uint64_t stageRetries() const { return stage_retries_; }

    /** Completed traces (empty when keep-traces is off). */
    const std::vector<FrameTrace> &traces() const { return traces_; }

    /** Run @p opts.frames frames of @p graph on a private Simulator. */
    static RunResult run(StageGraph &graph, const RunOptions &opts);

  private:
    struct FrameState
    {
        FrameTrace trace;
        std::vector<std::size_t> deps_left; //!< per stage
        std::vector<char> ready;            //!< per stage
        std::size_t stages_left = 0;
        FrameCallback on_complete;
    };

    struct ResourceState
    {
        /** Pending (frame, stage) instances in issue order. */
        std::deque<std::pair<std::size_t, StageId>> queue;
        bool busy = false;
    };

    /** Interned obs names, filled by attachTrace(). */
    struct TraceIds
    {
        std::vector<obs::NameId> stage_names; //!< per StageId
        std::vector<obs::NameId> stage_tracks;
        obs::NameId cat_stage = 0;
        obs::NameId cat_frame = 0;
        obs::NameId cat_sched = 0;
        obs::NameId cat_fault = 0;
        obs::NameId track_pipeline = 0;
        obs::NameId frame_name = 0;
        obs::NameId deadline_miss = 0;
        obs::NameId frame_failed = 0;
        obs::NameId stage_timeout = 0;
        obs::NameId stage_crash = 0;
        obs::NameId stage_retry = 0;
    };

    void tryDispatch(ResourceState &resource);
    void onStageFinish(ResourceState &resource, std::size_t frame,
                       StageId stage, bool stage_failed);
    void completeFrame(std::size_t frame);
    void failFrame(std::size_t frame, StageId stage);
    const StagePolicy *policyFor(StageId stage) const;
    /** Emit the spans of a resolved frame into the recorder. */
    void traceFrame(const FrameTrace &trace);

    Simulator &sim_;
    StageGraph &graph_;
    std::map<std::string, ResourceState> resources_;
    std::map<std::size_t, FrameState> in_flight_;
    std::vector<FrameTrace> traces_;
    obs::MetricRegistry *metrics_ = nullptr;
    obs::TraceRecorder *recorder_ = nullptr;
    TraceIds trace_ids_;
    DataflowHealthListener *health_ = nullptr;
    std::map<StageId, StagePolicy> policies_;
    std::optional<Duration> deadline_;
    bool keep_traces_ = true;
    std::uint64_t next_frame_ = 0;
    std::uint64_t completed_count_ = 0;
    std::uint64_t deadline_misses_ = 0;
    std::uint64_t frames_failed_ = 0;
    std::uint64_t stage_timeouts_ = 0;
    std::uint64_t stage_crashes_ = 0;
    std::uint64_t stage_retries_ = 0;
};

} // namespace sov::runtime
