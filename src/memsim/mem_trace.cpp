#include "memsim/mem_trace.h"

namespace sov {

namespace {
/** Base addresses keep clouds and trees in disjoint regions. */
constexpr std::uint64_t kCloudRegion = 0x1000'0000ull;
constexpr std::uint64_t kTreeRegion = 0x8000'0000ull;
constexpr std::uint64_t kRegionStride = 0x0400'0000ull; // 64 MB apart
} // namespace

std::uint64_t
MemTrace::pointAddress(std::uint32_t cloud_id, std::uint32_t index) const
{
    return kCloudRegion + cloud_id * kRegionStride +
        static_cast<std::uint64_t>(index) * kPointBytes;
}

std::uint64_t
MemTrace::nodeAddress(std::uint32_t tree_id, std::uint32_t index) const
{
    return kTreeRegion + tree_id * kRegionStride +
        static_cast<std::uint64_t>(index) * kNodeBytes;
}

void
MemTrace::touchPoint(std::uint32_t cloud_id, std::uint32_t index)
{
    ++total_;
    ++point_reuse_[key(cloud_id, index)];
    if (cache_)
        cache_->access(pointAddress(cloud_id, index), kPointBytes);
}

void
MemTrace::touchNode(std::uint32_t tree_id, std::uint32_t index)
{
    ++total_;
    ++node_touches_[key(tree_id, index)];
    if (cache_)
        cache_->access(nodeAddress(tree_id, index), kNodeBytes);
}

std::vector<std::uint64_t>
MemTrace::pointReuseCounts(std::uint32_t cloud_id) const
{
    std::vector<std::uint64_t> counts;
    for (const auto &kv : point_reuse_) {
        if (static_cast<std::uint32_t>(kv.first >> 32) == cloud_id)
            counts.push_back(kv.second);
    }
    return counts;
}

Histogram
MemTrace::reuseHistogram(std::uint32_t cloud_id, double bin_width,
                         double max_reuse) const
{
    const std::size_t bins =
        static_cast<std::size_t>(max_reuse / bin_width);
    Histogram h(0.0, max_reuse, bins > 0 ? bins : 1);
    for (const auto c : pointReuseCounts(cloud_id))
        h.add(static_cast<double>(c));
    return h;
}

void
MemTrace::reset()
{
    total_ = 0;
    point_reuse_.clear();
    node_touches_.clear();
}

} // namespace sov
