/**
 * @file
 * Set-associative LRU cache simulator.
 *
 * Sec. III-D measures the off-chip memory traffic of point-cloud
 * algorithms on an Intel Coffee Lake CPU with a 9 MB LLC (Fig. 4b),
 * normalized to the optimal case where all reuse is captured on-chip.
 * This model replays the address stream of our point-cloud kernels
 * through a configurable LLC and reports exactly that ratio.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace sov {

/** Geometry of a simulated cache. */
struct CacheConfig
{
    std::uint64_t size_bytes = 9ull << 20; //!< paper: 9 MB LLC
    std::uint32_t line_bytes = 64;
    std::uint32_t associativity = 16;

    std::uint64_t numSets() const;
};

/** Hit/miss statistics of a replayed address stream. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t compulsory_misses = 0; //!< first touch of a line

    double hitRate() const
    {
        return accesses ? static_cast<double>(hits) /
            static_cast<double>(accesses) : 0.0;
    }

    /** Off-chip traffic in bytes given the line size. */
    std::uint64_t
    trafficBytes(std::uint32_t line_bytes) const
    {
        return misses * line_bytes;
    }

    /**
     * Traffic normalized to the optimal communication case where every
     * line is fetched exactly once (Fig. 4b's y-axis).
     */
    double
    normalizedTraffic() const
    {
        return compulsory_misses
            ? static_cast<double>(misses) /
              static_cast<double>(compulsory_misses)
            : 0.0;
    }
};

/** Set-associative cache with true-LRU replacement. */
class CacheSim
{
  public:
    explicit CacheSim(const CacheConfig &config);

    /** Access @p bytes starting at @p address (split across lines). */
    void access(std::uint64_t address, std::uint32_t bytes = 1);

    const CacheStats &stats() const { return stats_; }
    const CacheConfig &config() const { return config_; }

    /** Forget all contents and statistics. */
    void reset();

  private:
    /** Touch a single line; returns true on hit. */
    bool accessLine(std::uint64_t line_address);

    struct Way
    {
        std::uint64_t tag = 0;
        std::uint64_t lru = 0; //!< larger = more recently used
        bool valid = false;
    };

    CacheConfig config_;
    std::uint64_t num_sets_;
    std::vector<Way> ways_; //!< num_sets * associativity, row per set
    std::uint64_t use_counter_ = 0;
    CacheStats stats_;
    std::unordered_map<std::uint64_t, bool> seen_lines_; //!< compulsory
};

} // namespace sov
