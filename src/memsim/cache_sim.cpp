#include "memsim/cache_sim.h"

#include "core/logging.h"

namespace sov {

std::uint64_t
CacheConfig::numSets() const
{
    SOV_ASSERT(line_bytes > 0 && associativity > 0);
    SOV_ASSERT(size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                             associativity) == 0);
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) *
                         associativity);
}

CacheSim::CacheSim(const CacheConfig &config)
    : config_(config), num_sets_(config.numSets()),
      ways_(num_sets_ * config.associativity)
{
}

void
CacheSim::access(std::uint64_t address, std::uint32_t bytes)
{
    SOV_ASSERT(bytes > 0);
    const std::uint64_t first = address / config_.line_bytes;
    const std::uint64_t last = (address + bytes - 1) / config_.line_bytes;
    for (std::uint64_t line = first; line <= last; ++line) {
        ++stats_.accesses;
        if (accessLine(line)) {
            ++stats_.hits;
        } else {
            ++stats_.misses;
            auto [it, inserted] = seen_lines_.emplace(line, true);
            (void)it;
            if (inserted)
                ++stats_.compulsory_misses;
        }
    }
}

bool
CacheSim::accessLine(std::uint64_t line_address)
{
    const std::uint64_t set = line_address % num_sets_;
    const std::uint64_t tag = line_address / num_sets_;
    Way *base = &ways_[set * config_.associativity];

    Way *victim = base;
    for (std::uint32_t w = 0; w < config_.associativity; ++w) {
        Way &way = base[w];
        if (way.valid && way.tag == tag) {
            way.lru = ++use_counter_;
            return true;
        }
        if (!way.valid) {
            victim = &way; // prefer an invalid way
        } else if (victim->valid && way.lru < victim->lru) {
            victim = &way;
        }
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lru = ++use_counter_;
    return false;
}

void
CacheSim::reset()
{
    ways_.assign(ways_.size(), Way{});
    stats_ = CacheStats{};
    seen_lines_.clear();
    use_counter_ = 0;
}

} // namespace sov
