/**
 * @file
 * Address-trace instrumentation bridging algorithm kernels and the
 * cache simulator / reuse profiler.
 *
 * Point-cloud kernels (kd-tree search, ICP, clustering, ...) report
 * which points and tree nodes they touch; the trace assigns synthetic
 * addresses and forwards them to an optional CacheSim while counting
 * per-point reuse for the Fig. 4a histogram.
 */
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/stats.h"
#include "memsim/cache_sim.h"

namespace sov {

/** Collects the access stream of an instrumented kernel. */
class MemTrace
{
  public:
    /** Bytes occupied by one point record (x, y, z, pad) — PCL's
     *  PointXYZ layout is 16 bytes. */
    static constexpr std::uint32_t kPointBytes = 16;
    /** Bytes of one kd-tree node record. */
    static constexpr std::uint32_t kNodeBytes = 32;

    MemTrace() = default;

    /** Attach a cache model; may be null to profile reuse only. */
    void attachCache(CacheSim *cache) { cache_ = cache; }

    /** Record a read of point @p index in cloud @p cloud_id. */
    void touchPoint(std::uint32_t cloud_id, std::uint32_t index);

    /** Record a read of kd-tree node @p index of tree @p tree_id. */
    void touchNode(std::uint32_t tree_id, std::uint32_t index);

    /** Total recorded accesses (points + nodes). */
    std::uint64_t totalAccesses() const { return total_; }

    /** Number of distinct points touched. */
    std::size_t distinctPoints() const { return point_reuse_.size(); }

    /** Number of distinct tree nodes touched. */
    std::size_t distinctNodes() const { return node_touches_.size(); }

    /**
     * Bytes the algorithm actually needs, fetched exactly once and
     * perfectly packed — the "optimal communication case" baseline of
     * Fig. 4b.
     */
    std::uint64_t
    usefulBytes() const
    {
        return static_cast<std::uint64_t>(distinctPoints()) * kPointBytes +
            static_cast<std::uint64_t>(distinctNodes()) * kNodeBytes;
    }

    /**
     * Per-point access counts ("reuse frequency", Fig. 4a x-axis) of
     * one cloud.
     */
    std::vector<std::uint64_t> pointReuseCounts(std::uint32_t cloud_id) const;

    /**
     * Histogram of reuse frequency: bucket i counts points whose access
     * count falls in bin i of width @p bin_width (Fig. 4a).
     */
    Histogram reuseHistogram(std::uint32_t cloud_id, double bin_width,
                             double max_reuse) const;

    /** Forget everything. */
    void reset();

  private:
    std::uint64_t pointAddress(std::uint32_t cloud_id,
                               std::uint32_t index) const;
    std::uint64_t nodeAddress(std::uint32_t tree_id,
                              std::uint32_t index) const;

    CacheSim *cache_ = nullptr;
    std::uint64_t total_ = 0;
    /** Packed (id << 32 | index) -> access count; hashed for O(1)
     *  updates — the trace sits on very hot paths. */
    std::unordered_map<std::uint64_t, std::uint64_t> point_reuse_;
    std::unordered_map<std::uint64_t, std::uint64_t> node_touches_;

    static std::uint64_t
    key(std::uint32_t id, std::uint32_t index)
    {
        return (static_cast<std::uint64_t>(id) << 32) | index;
    }
};

} // namespace sov
