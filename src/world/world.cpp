#include "world/world.h"

#include <cmath>

#include "core/logging.h"

namespace sov {

const char *
toString(ObjectClass c)
{
    switch (c) {
      case ObjectClass::Pedestrian: return "pedestrian";
      case ObjectClass::Car: return "car";
      case ObjectClass::Bicycle: return "bicycle";
      case ObjectClass::Static: return "static";
    }
    return "?";
}

OrientedBox2
Obstacle::footprintAt(Timestamp t) const
{
    OrientedBox2 box = footprint;
    box.pose.position += velocity * t.toSeconds();
    return box;
}

Vec2
Obstacle::positionAt(Timestamp t) const
{
    return footprint.pose.position + velocity * t.toSeconds();
}

void
World::reset()
{
    timeline_.clear();
    landmarks_.clear();
    next_landmark_id_ = 0;
}

std::uint32_t
World::addLandmark(const Vec3 &position, double intensity)
{
    landmarks_.push_back(Landmark{next_landmark_id_++, position, intensity});
    return landmarks_.back().id;
}

void
World::scatterLandmarks(const Polyline2 &path, std::size_t count,
                        double corridor_half_width, double height_range,
                        Rng &rng)
{
    SOV_ASSERT(path.length() > 0.0);
    for (std::size_t i = 0; i < count; ++i) {
        const double s = rng.uniform(0.0, path.length());
        const Vec2 center = path.sample(s);
        const double heading = path.headingAt(s);
        // Offset laterally; keep landmarks off the road itself so they
        // read as facades/poles, not road surface.
        const double side = rng.bernoulli(0.5) ? 1.0 : -1.0;
        const double lateral =
            side * rng.uniform(0.35 * corridor_half_width,
                               corridor_half_width);
        const Vec2 normal(-std::sin(heading), std::cos(heading));
        const Vec2 pos2 = center + normal * lateral;
        const double z = rng.uniform(0.3, height_range);
        addLandmark(Vec3(pos2.x(), pos2.y(), z),
                    rng.uniform(0.35, 1.0));
    }
}

std::optional<double>
WorldSnapshot::raycast(const Vec2 &origin, const Vec2 &direction,
                       double max_range, Timestamp t) const
{
    SOV_ASSERT(max_range > 0.0);
    // A zero-length direction defines no ray: see nothing rather than
    // panic inside normalized() (sensors can produce degenerate beam
    // directions at singular mount configurations).
    if (direction.squaredNorm() == 0.0)
        return std::nullopt;
    const Vec2 dir = direction.normalized();
    const Segment2 ray{origin, origin + dir * max_range};
    std::optional<double> best;
    for (const auto &obs : *obstacles_) {
        const OrientedBox2 box = obs.footprintAt(t);
        // Ray starting inside a box hits at distance 0.
        if (box.contains(origin)) {
            return 0.0;
        }
        const auto corners = box.corners();
        for (std::size_t i = 0; i < 4; ++i) {
            const Segment2 edge{corners[i], corners[(i + 1) % 4]};
            if (const auto hit = ray.intersect(edge)) {
                const double d = origin.distanceTo(*hit);
                if (!best || d < *best)
                    best = d;
            }
        }
    }
    return best;
}

std::vector<Obstacle>
WorldSnapshot::obstaclesNear(const Vec2 &position, double range,
                             Timestamp t) const
{
    std::vector<Obstacle> out;
    for (const auto &obs : *obstacles_) {
        if (obs.positionAt(t).distanceTo(position) <= range)
            out.push_back(obs);
    }
    return out;
}

} // namespace sov
