/**
 * @file
 * Ground-truth vehicle trajectory.
 *
 * Sensor models (camera pose, IMU specific force and angular rate, GPS
 * fixes) sample this trajectory; estimators are then evaluated against
 * it (Fig. 11b localization error, Sec. VI-B drift correction).
 */
#pragma once

#include <vector>

#include "core/time.h"
#include "math/geometry.h"
#include "math/quat.h"
#include "math/spline.h"
#include "math/vec.h"

namespace sov {

/** Full kinematic state at one instant along the trajectory. */
struct TrajectorySample
{
    Timestamp time;
    Vec3 position;          //!< world frame, z = 0 on flat ground
    Quat orientation;       //!< body-to-world
    Vec3 velocity;          //!< world frame, m/s
    Vec3 acceleration;      //!< world frame, m/s^2 (no gravity)
    Vec3 angular_velocity;  //!< body frame, rad/s

    /** Planar pose (position + yaw). */
    Pose2 pose2() const;
    double speed() const { return velocity.norm(); }
};

/**
 * Smooth time-parameterized trajectory built from planar waypoints.
 * Position is a pair of cubic splines x(t), y(t); orientation tracks
 * the velocity direction; acceleration and angular rate come from the
 * spline derivatives so the IMU model is kinematically consistent.
 */
class Trajectory
{
  public:
    Trajectory() = default;

    /**
     * Fit from timed waypoints.
     * @param times Strictly increasing timestamps (>= 2).
     * @param waypoints Planar positions at those times.
     */
    Trajectory(const std::vector<Timestamp> &times,
               const std::vector<Vec2> &waypoints);

    /**
     * Constant-speed traversal of a path.
     * @param path Polyline to follow.
     * @param speed Cruise speed in m/s.
     * @param waypoint_spacing Spline knot spacing in meters.
     */
    static Trajectory alongPath(const Polyline2 &path, double speed,
                                double waypoint_spacing = 2.0);

    /** Kinematic state at time t (clamped to the trajectory domain). */
    TrajectorySample sample(Timestamp t) const;

    Timestamp startTime() const;
    Timestamp endTime() const;
    Duration duration() const { return endTime() - startTime(); }

    bool valid() const { return x_.valid(); }

  private:
    CubicSpline x_;
    CubicSpline y_;
};

} // namespace sov
