#include "world/timeline.h"

#include <utility>

#include "core/logging.h"

namespace sov {

WorldTimeline::WorldTimeline(Duration tick) : tick_(tick)
{
    SOV_ASSERT(tick_ > Duration::zero());
}

ObstacleId
WorldTimeline::addObstacle(Obstacle o)
{
    return spawn(std::make_unique<ConstantVelocityAgent>(std::move(o)));
}

ObstacleId
WorldTimeline::spawn(std::unique_ptr<Agent> agent)
{
    SOV_ASSERT(agent != nullptr);
    agent->setId(next_id_++);
    const ObstacleId id = agent->id();
    if (agent->reactive())
        ++reactive_count_;
    published_.push_back(agent->publish(epoch_));
    agents_.push_back(std::move(agent));
    return id;
}

void
WorldTimeline::advanceTo(Timestamp t, const Pose2 &ego_pose,
                         double ego_speed)
{
    while (epoch_ + tick_ <= t)
        stepOnce(ego_pose, ego_speed);
}

void
WorldTimeline::stepOnce(const Pose2 &ego_pose, double ego_speed)
{
    epoch_ = epoch_ + tick_;
    ++ticks_;
    // All-CV fast path: no step can change any published row, so the
    // double-buffer copy and publish loop would be pure overhead.
    if (reactive_count_ == 0)
        return;
    // Agents observe the previous epoch's rows: double-buffering makes
    // the step independent of agent order within the tick.
    prev_published_ = published_;
    AgentView view;
    view.now = epoch_;
    view.dt = tick_.toSeconds();
    view.ego_pose = ego_pose;
    view.ego_speed = ego_speed;
    view.others = &prev_published_;
    for (std::size_t i = 0; i < agents_.size(); ++i) {
        agents_[i]->step(view);
        published_[i] = agents_[i]->publish(epoch_);
    }
}

void
WorldTimeline::clear()
{
    agents_.clear();
    published_.clear();
    prev_published_.clear();
    reactive_count_ = 0;
    next_id_ = 0;
    epoch_ = Timestamp::origin();
    ticks_ = 0;
}

} // namespace sov
