#include "world/trajectory.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"

namespace sov {

Pose2
TrajectorySample::pose2() const
{
    return Pose2{Vec2(position.x(), position.y()), orientation.yaw()};
}

Trajectory::Trajectory(const std::vector<Timestamp> &times,
                       const std::vector<Vec2> &waypoints)
{
    SOV_ASSERT(times.size() == waypoints.size());
    SOV_ASSERT(times.size() >= 2);
    std::vector<double> ts, xs, ys;
    ts.reserve(times.size());
    xs.reserve(times.size());
    ys.reserve(times.size());
    for (std::size_t i = 0; i < times.size(); ++i) {
        ts.push_back(times[i].toSeconds());
        xs.push_back(waypoints[i].x());
        ys.push_back(waypoints[i].y());
    }
    x_ = CubicSpline(ts, xs);
    y_ = CubicSpline(ts, ys);
}

Trajectory
Trajectory::alongPath(const Polyline2 &path, double speed,
                      double waypoint_spacing)
{
    SOV_ASSERT(speed > 0.0);
    SOV_ASSERT(waypoint_spacing > 0.0);
    SOV_ASSERT(path.length() > waypoint_spacing);
    std::vector<Timestamp> times;
    std::vector<Vec2> pts;
    for (double s = 0.0; s <= path.length(); s += waypoint_spacing) {
        times.push_back(Timestamp::seconds(s / speed));
        pts.push_back(path.sample(s));
    }
    return Trajectory(times, pts);
}

TrajectorySample
Trajectory::sample(Timestamp t) const
{
    SOV_ASSERT(valid());
    const double tc =
        std::clamp(t.toSeconds(), x_.minX(), x_.maxX());

    TrajectorySample s;
    s.time = t;
    s.position = Vec3(x_.evaluate(tc), y_.evaluate(tc), 0.0);

    const double vx = x_.derivative(tc);
    const double vy = y_.derivative(tc);
    s.velocity = Vec3(vx, vy, 0.0);

    const double ax = x_.secondDerivative(tc);
    const double ay = y_.secondDerivative(tc);
    s.acceleration = Vec3(ax, ay, 0.0);

    const double speed2 = vx * vx + vy * vy;
    const double yaw = speed2 > 1e-12 ? std::atan2(vy, vx) : 0.0;
    s.orientation = Quat::fromYaw(yaw);

    // Yaw rate = (vx*ay - vy*ax) / |v|^2 for planar motion.
    const double yaw_rate = speed2 > 1e-9
        ? (vx * ay - vy * ax) / speed2 : 0.0;
    s.angular_velocity = Vec3(0.0, 0.0, yaw_rate);
    return s;
}

Timestamp
Trajectory::startTime() const
{
    SOV_ASSERT(valid());
    return Timestamp::seconds(x_.minX());
}

Timestamp
Trajectory::endTime() const
{
    SOV_ASSERT(valid());
    return Timestamp::seconds(x_.maxX());
}

} // namespace sov
