/**
 * @file
 * The synthetic deployment site: lane map + obstacles + visual
 * landmarks. This is the proprietary-field-data substitute: everything
 * the real vehicle would sense, we generate from this world model.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "math/geometry.h"
#include "math/vec.h"
#include "world/lane_map.h"
#include "world/trajectory.h"

namespace sov {

using ObstacleId = std::uint32_t;

/** Object classes the detector distinguishes (YOLO-style labels). */
enum class ObjectClass { Pedestrian, Car, Bicycle, Static };

/** Printable name of an object class. */
const char *toString(ObjectClass c);

/** A world object the vehicle must perceive and avoid. */
struct Obstacle
{
    ObstacleId id = 0;
    ObjectClass cls = ObjectClass::Static;
    OrientedBox2 footprint;   //!< pose + extents at spawn time
    Vec2 velocity{0.0, 0.0};  //!< world frame, m/s (constant)
    double height = 1.7;      //!< meters; used for camera projection

    /** Footprint advanced to time @p t (constant-velocity motion). */
    OrientedBox2 footprintAt(Timestamp t) const;
    Vec2 positionAt(Timestamp t) const;
};

/** A 3-D visual landmark observable by the cameras (VIO features). */
struct Landmark
{
    std::uint32_t id = 0;
    Vec3 position;
    double intensity = 1.0; //!< rendered brightness in [0,1]
};

/** The complete synthetic environment. */
class World
{
  public:
    World() = default;
    explicit World(LaneMap map) : map_(std::move(map)) {}

    const LaneMap &map() const { return map_; }
    LaneMap &map() { return map_; }

    /** Add an obstacle; returns its id. */
    ObstacleId addObstacle(Obstacle o);
    const std::vector<Obstacle> &obstacles() const { return obstacles_; }
    std::size_t numObstacles() const { return obstacles_.size(); }
    /** Remove all obstacles (scenario reset). */
    void clearObstacles() { obstacles_.clear(); }

    /** Add a landmark; returns its id. */
    std::uint32_t addLandmark(const Vec3 &position, double intensity = 1.0);
    const std::vector<Landmark> &landmarks() const { return landmarks_; }

    /**
     * Scatter @p count landmarks around a path corridor — building
     * facades, poles, and texture the VIO front-end tracks.
     * @param corridor_half_width Lateral extent around the path.
     * @param height_range Landmarks get z in [0.3, height_range].
     */
    void scatterLandmarks(const Polyline2 &path, std::size_t count,
                          double corridor_half_width, double height_range,
                          Rng &rng);

    /**
     * Distance from @p origin along @p direction to the first obstacle
     * hit at time @p t, up to @p max_range. The physics behind the
     * radar/sonar models and the reactive path (Sec. IV).
     */
    std::optional<double> raycast(const Vec2 &origin, const Vec2 &direction,
                                  double max_range, Timestamp t) const;

    /** Obstacles whose center is within @p range of @p position at t. */
    std::vector<Obstacle> obstaclesNear(const Vec2 &position, double range,
                                        Timestamp t) const;

  private:
    LaneMap map_;
    std::vector<Obstacle> obstacles_;
    std::vector<Landmark> landmarks_;
    ObstacleId next_obstacle_id_ = 0;
    std::uint32_t next_landmark_id_ = 0;
};

} // namespace sov
