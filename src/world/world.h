/**
 * @file
 * The synthetic deployment site: immutable scene (lane map + visual
 * landmarks) plus a stepped WorldTimeline of traffic agents. This is
 * the proprietary-field-data substitute: everything the real vehicle
 * would sense, we generate from this world model.
 *
 * Two ways to read the world:
 *  - World keeps the legacy query surface (raycast / obstaclesNear /
 *    obstacles()) for compatibility; it delegates to a snapshot of
 *    the current epoch.
 *  - WorldSnapshot is the time-indexed view the sensing layers take:
 *    a cheap immutable facade over (lane map, published obstacle
 *    rows, landmarks) at one timeline epoch. It converts implicitly
 *    from `const World &`, which is what lets the seven consumer
 *    layers (radar, sonar, lidar, renderer, detector, reactive path,
 *    closed loop) migrate mechanically: their signatures take
 *    snapshots, their call sites keep passing worlds.
 *
 * Motion semantics: an un-stepped world (nobody calls advanceTo) is
 * bit-identical to the legacy analytic model — every addObstacle()
 * wraps a constant-velocity agent whose published row *is* the spawn
 * row, so footprintAt(t) evaluates the same closed form as before.
 * Stepping only matters once behavioral agents are in play.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "math/geometry.h"
#include "math/vec.h"
#include "world/lane_map.h"
#include "world/obstacle.h"
#include "world/timeline.h"
#include "world/trajectory.h"

namespace sov {

class World;

/**
 * Immutable time-indexed view of a world at one timeline epoch: what
 * every sensor model queries. Holds references — valid only while the
 * backing world outlives it and is not advanced (take it, query it,
 * drop it; the closed loop takes one per planning/physics step).
 */
class WorldSnapshot
{
  public:
    /** View of @p world at its current epoch (intentionally implicit:
     *  this conversion is the consumers' migration path). */
    WorldSnapshot(const World &world);

    WorldSnapshot(const LaneMap &map,
                  const std::vector<Obstacle> &obstacles,
                  const std::vector<Landmark> &landmarks, Timestamp epoch)
        : map_(&map), obstacles_(&obstacles), landmarks_(&landmarks),
          epoch_(epoch)
    {
    }

    const LaneMap &map() const { return *map_; }
    const std::vector<Obstacle> &obstacles() const { return *obstacles_; }
    const std::vector<Landmark> &landmarks() const { return *landmarks_; }
    /** The timeline epoch the obstacle rows were published at. */
    Timestamp epoch() const { return epoch_; }

    /**
     * Distance from @p origin along @p direction to the first obstacle
     * hit at time @p t, up to @p max_range. The physics behind the
     * radar/sonar models and the reactive path (Sec. IV). A
     * zero-length direction sees nothing (nullopt), not a panic.
     */
    std::optional<double> raycast(const Vec2 &origin,
                                  const Vec2 &direction, double max_range,
                                  Timestamp t) const;

    /** Obstacles whose center is within @p range of @p position at t. */
    std::vector<Obstacle> obstaclesNear(const Vec2 &position, double range,
                                        Timestamp t) const;

  private:
    const LaneMap *map_;
    const std::vector<Obstacle> *obstacles_;
    const std::vector<Landmark> *landmarks_;
    Timestamp epoch_;
};

/** The complete synthetic environment: scene + agent timeline. */
class World
{
  public:
    World() = default;
    explicit World(LaneMap map) : map_(std::move(map)) {}

    const LaneMap &map() const { return map_; }
    LaneMap &map() { return map_; }

    /** Add a constant-velocity obstacle; returns its id. */
    ObstacleId addObstacle(Obstacle o)
    {
        return timeline_.addObstacle(std::move(o));
    }
    /** Register a behavioral agent; returns its id. */
    ObstacleId spawnAgent(std::unique_ptr<Agent> agent)
    {
        return timeline_.spawn(std::move(agent));
    }
    /** The published row of every agent at the current epoch. */
    const std::vector<Obstacle> &obstacles() const
    {
        return timeline_.published();
    }
    std::size_t numObstacles() const { return timeline_.size(); }
    /** Remove all obstacles/agents and restart id assignment from 0
     *  (scenario reset; also rewinds the timeline epoch). */
    void clearObstacles() { timeline_.clear(); }

    /** Full scenario reset: obstacles, landmarks, both id counters
     *  and the timeline epoch — a reset world rebuilt from the same
     *  Rng stream is bit-identical to a fresh one. */
    void reset();

    /** Step the agent timeline across every tick boundary up to
     *  @p t; @p ego_pose / @p ego_speed are what agents observe. */
    void advanceTo(Timestamp t, const Pose2 &ego_pose, double ego_speed)
    {
        timeline_.advanceTo(t, ego_pose, ego_speed);
    }
    const WorldTimeline &timeline() const { return timeline_; }

    /** View of the current epoch for the sensing layers. */
    WorldSnapshot snapshot() const
    {
        return WorldSnapshot(map_, timeline_.published(), landmarks_,
                             timeline_.epoch());
    }

    /** Add a landmark; returns its id. */
    std::uint32_t addLandmark(const Vec3 &position, double intensity = 1.0);
    const std::vector<Landmark> &landmarks() const { return landmarks_; }

    /**
     * Scatter @p count landmarks around a path corridor — building
     * facades, poles, and texture the VIO front-end tracks.
     * @param corridor_half_width Lateral extent around the path.
     * @param height_range Landmarks get z in [0.3, height_range].
     */
    void scatterLandmarks(const Polyline2 &path, std::size_t count,
                          double corridor_half_width, double height_range,
                          Rng &rng);

    /** Legacy query surface; delegates to snapshot(). */
    std::optional<double> raycast(const Vec2 &origin, const Vec2 &direction,
                                  double max_range, Timestamp t) const
    {
        return snapshot().raycast(origin, direction, max_range, t);
    }
    std::vector<Obstacle> obstaclesNear(const Vec2 &position, double range,
                                        Timestamp t) const
    {
        return snapshot().obstaclesNear(position, range, t);
    }

  private:
    LaneMap map_;
    WorldTimeline timeline_;
    std::vector<Landmark> landmarks_;
    std::uint32_t next_landmark_id_ = 0;
};

inline WorldSnapshot::WorldSnapshot(const World &world)
    : map_(&world.map()), obstacles_(&world.obstacles()),
      landmarks_(&world.landmarks()), epoch_(world.timeline().epoch())
{
}

} // namespace sov
