#include "world/agent.h"

#include <algorithm>
#include <cmath>

namespace sov {

// ---- KinematicAgent --------------------------------------------------

KinematicAgent::KinematicAgent(Obstacle spawn, Rng rng)
    : Agent(std::move(spawn)), rng_(std::move(rng)),
      position_(spawn_.footprint.pose.position), velocity_(spawn_.velocity)
{
}

void
KinematicAgent::integrate(double dt)
{
    position_ += velocity_ * dt;
}

Obstacle
KinematicAgent::publish(Timestamp epoch) const
{
    Obstacle o = spawn_;
    // Rebase so the unchanged closed-form query code extrapolates the
    // current velocity from the current epoch:
    //   footprintAt(t) = base + v * t  ==  position + v * (t - epoch).
    o.footprint.pose.position = position_ - velocity_ * epoch.toSeconds();
    o.velocity = velocity_;
    return o;
}

// ---- PedestrianAgent -------------------------------------------------

PedestrianAgent::PedestrianAgent(Obstacle spawn, Params params, Rng rng)
    : KinematicAgent(std::move(spawn), std::move(rng)), params_(params)
{
    // Walk toward the road from whichever side we spawned on.
    cross_dir_ = position_.y() >= 0.0 ? -1.0 : 1.0;
    velocity_ = Vec2(0.0, cross_dir_ * params_.walk_speed);
}

bool
PedestrianAgent::egoClose(const AgentView &view, double radius) const
{
    return view.ego_pose.position.distanceTo(position_) <= radius;
}

void
PedestrianAgent::step(const AgentView &view)
{
    switch (state_) {
      case State::Approach:
        velocity_ = Vec2(0.0, cross_dir_ * params_.walk_speed);
        if (std::fabs(position_.y()) <= params_.curb_y) {
            // Curb decision: one bernoulli + one duration draw, made
            // exactly once per crossing regardless of tick cadence.
            if (rng_.bernoulli(params_.hesitate_probability)) {
                hesitate_left_ = rng_.uniform(params_.hesitate_min_s,
                                              params_.hesitate_max_s);
                state_ = State::Hesitate;
                velocity_ = Vec2(0.0, 0.0);
            } else {
                state_ = State::Cross;
            }
        }
        break;
      case State::Hesitate:
        velocity_ = Vec2(0.0, 0.0);
        hesitate_left_ -= view.dt;
        // Don't step off the curb into a vehicle that is almost here.
        if (hesitate_left_ <= 0.0 &&
            !egoClose(view, 0.8 * params_.yield_radius))
            state_ = State::Cross;
        break;
      case State::Cross:
        velocity_ = Vec2(0.0, cross_dir_ * params_.walk_speed);
        // Mid-road yield: freeze when the ego bears down on us.
        if (egoClose(view, params_.yield_radius) &&
            view.ego_pose.position.x() < position_.x() &&
            view.ego_speed > 0.5) {
            state_ = State::Yield;
            velocity_ = Vec2(0.0, 0.0);
        }
        break;
      case State::Yield:
        velocity_ = Vec2(0.0, 0.0);
        // Resume once the ego has passed or backed off.
        if (view.ego_pose.position.x() > position_.x() + 1.0 ||
            !egoClose(view, 1.5 * params_.yield_radius))
            state_ = State::Cross;
        break;
      case State::Done:
        velocity_ = Vec2(0.0, 0.0);
        break;
    }
    integrate(view.dt);
    if (state_ != State::Done &&
        cross_dir_ * position_.y() >= params_.done_y) {
        state_ = State::Done;
        velocity_ = Vec2(0.0, 0.0);
    }
}

// ---- CyclistAgent ----------------------------------------------------

CyclistAgent::CyclistAgent(Obstacle spawn, Params params, Rng rng)
    : KinematicAgent(std::move(spawn), std::move(rng)), params_(params)
{
    velocity_ = Vec2(params_.cruise_speed, 0.0);
}

void
CyclistAgent::step(const AgentView &view)
{
    const Vec2 ego = view.ego_pose.position;
    const double dx = position_.x() - ego.x();
    const bool ego_behind = dx > 0.0 && dx <= params_.evade_gap &&
                            std::fabs(ego.y() - position_.y()) < 2.0 &&
                            view.ego_speed > velocity_.x();
    if (ego_behind) {
        // Swerve out of the corridor and sprint clear.
        const double evade =
            position_.y() >= ego.y() ? 1.0 : -1.0;
        velocity_.y() = evade * 1.2;
        velocity_.x() = std::min(velocity_.x() + 2.0 * params_.accel *
                                                      view.dt,
                                 1.2 * params_.cruise_speed);
    } else {
        // Weave: sinusoidal lateral drift; amplitude and period are
        // re-drawn from our stream once per completed cycle.
        phase_s_ += view.dt;
        if (phase_s_ >= params_.weave_period_s) {
            phase_s_ -= params_.weave_period_s;
            params_.weave_amplitude = rng_.uniform(0.3, 1.2);
            params_.weave_period_s = rng_.uniform(2.0, 5.0);
        }
        const double omega = 2.0 * M_PI / params_.weave_period_s;
        velocity_.y() = params_.weave_amplitude *
                        std::sin(omega * phase_s_);
        // Recover cruise speed after an evade.
        if (velocity_.x() < params_.cruise_speed) {
            velocity_.x() = std::min(
                velocity_.x() + params_.accel * view.dt,
                params_.cruise_speed);
        } else {
            velocity_.x() = params_.cruise_speed;
        }
    }
    integrate(view.dt);
}

// ---- VehicleAgent ----------------------------------------------------

VehicleAgent::VehicleAgent(Obstacle spawn, Params params, Rng rng)
    : KinematicAgent(std::move(spawn), std::move(rng)), params_(params)
{
    velocity_ = Vec2(params_.cruise_speed, 0.0);
}

bool
VehicleAgent::leadAhead(const AgentView &view, double *lead_speed) const
{
    bool found = false;
    double best_dx = params_.headway;
    // Other agents' previous-epoch rows, projected to now.
    if (view.others) {
        for (const Obstacle &o : *view.others) {
            if (o.id == id())
                continue;
            const Vec2 p = o.positionAt(view.now);
            const double dx = p.x() - position_.x();
            if (dx > 0.0 && dx <= best_dx &&
                std::fabs(p.y() - position_.y()) < 1.5) {
                best_dx = dx;
                *lead_speed = o.velocity.x();
                found = true;
            }
        }
    }
    // The ego vehicle is a lead like any other.
    const Vec2 ego = view.ego_pose.position;
    const double ego_dx = ego.x() - position_.x();
    if (ego_dx > 0.0 && ego_dx <= best_dx &&
        std::fabs(ego.y() - position_.y()) < 1.5) {
        *lead_speed = view.ego_speed;
        found = true;
    }
    return found;
}

void
VehicleAgent::step(const AgentView &view)
{
    // Longitudinal control: brake toward the lead's speed, otherwise
    // recover cruise speed.
    double lead_speed = 0.0;
    if (leadAhead(view, &lead_speed)) {
        const double target = std::max(0.0, lead_speed);
        velocity_.x() = std::max(
            target, velocity_.x() - params_.brake_decel * view.dt);
    } else {
        velocity_.x() = std::min(
            params_.cruise_speed,
            velocity_.x() + params_.accel * view.dt);
    }

    // Lateral state machine: cut into the ego lane past the trigger.
    switch (state_) {
      case State::Follow:
        velocity_.y() = 0.0;
        if (params_.cut_in && position_.x() >= params_.cut_in_x)
            state_ = State::CutIn;
        break;
      case State::CutIn: {
        const double toward = position_.y() > 0.0 ? -1.0 : 1.0;
        velocity_.y() = toward * params_.cut_in_rate;
        if (std::fabs(position_.y()) <= 0.2) {
            state_ = State::InLane;
            velocity_.y() = 0.0;
        }
        break;
      }
      case State::InLane:
        velocity_.y() = 0.0;
        break;
    }
    integrate(view.dt);
}

} // namespace sov
