/**
 * @file
 * Behavioral traffic agents: the entities a WorldTimeline steps.
 *
 * The legacy world model froze every obstacle's motion at spawn time
 * (closed-form constant velocity); nothing ever reacted to the ego
 * vehicle. An Agent instead carries a small behavior state machine
 * that is advanced once per timeline tick: it perceives the ego pose
 * and the other agents' last published rows, updates its kinematic
 * state, and re-publishes an Obstacle whose closed-form
 * footprintAt()/positionAt() extrapolation is valid until the next
 * tick (piecewise-linear motion, so every sensor query signature
 * keeps working unchanged between ticks).
 *
 * Determinism contract: an agent's trajectory is a pure function of
 * its spawn row, its parameters, and its own forked Rng stream plus
 * the observations it is handed — never of wall clock, call cadence,
 * or thread count. Draws happen only at construction and at state
 * transitions, one fixed pattern per tick, so stepping N ticks in one
 * advanceTo() call or across N calls yields bit-identical state.
 *
 * The base Agent *is* the constant-velocity agent: step() is a no-op
 * and publish() returns the spawn row untouched, byte for byte — this
 * is what keeps every legacy preset, fingerprint and BENCH baseline
 * bit-identical under the stepped-world refactor (gated in
 * bench_scenario_fuzz and tests/world/test_agents.cpp).
 */
#pragma once

#include <memory>
#include <vector>

#include "core/rng.h"
#include "core/time.h"
#include "math/geometry.h"
#include "world/obstacle.h"

namespace sov {

/** What an agent perceives when it is stepped one tick. */
struct AgentView
{
    Timestamp now;        //!< the epoch this step lands on
    double dt = 0.1;      //!< tick length, seconds
    Pose2 ego_pose;       //!< ego vehicle pose at the advanceTo() call
    double ego_speed = 0.0;
    /** Every agent's row as published at the *previous* epoch
     *  (double-buffered, so step order cannot leak between agents). */
    const std::vector<Obstacle> *others = nullptr;
};

/**
 * Base agent = constant-velocity agent. step() does nothing and
 * publish() returns the spawn obstacle unchanged, so the published
 * row's closed-form motion is bitwise identical to the legacy
 * analytic World at every time, stepped or not.
 */
class Agent
{
  public:
    explicit Agent(Obstacle spawn) : spawn_(std::move(spawn)) {}
    virtual ~Agent() = default;

    ObstacleId id() const { return spawn_.id; }
    /** The timeline assigns the id at spawn registration. */
    void setId(ObstacleId id) { spawn_.id = id; }
    const Obstacle &spawn() const { return spawn_; }

    /** Advance the behavior one tick. Base: closed form, no-op. */
    virtual void step(const AgentView &view) { (void)view; }

    /** The row served for queries in [epoch, epoch + tick). */
    virtual Obstacle publish(Timestamp epoch) const
    {
        (void)epoch;
        return spawn_;
    }

    virtual const char *behavior() const { return "constant-velocity"; }

    /**
     * Whether stepping can ever change this agent's published row.
     * The base CV agent returns false, which lets the timeline skip
     * the per-tick publish loop entirely for legacy worlds (the spawn
     * row is what publish() would return anyway, byte for byte).
     */
    virtual bool reactive() const { return false; }

  protected:
    Obstacle spawn_;
};

/** Named alias for readability at spawn sites. */
using ConstantVelocityAgent = Agent;

/**
 * Shared kinematics of the behavioral agents: integrated position and
 * piecewise-constant velocity, re-published every tick with the
 * footprint rebased so that footprintAt(t) linearly extrapolates the
 * *current* velocity from the current epoch.
 */
class KinematicAgent : public Agent
{
  public:
    KinematicAgent(Obstacle spawn, Rng rng);

    Obstacle publish(Timestamp epoch) const override;
    bool reactive() const override { return true; }

    const Vec2 &position() const { return position_; }
    const Vec2 &velocity() const { return velocity_; }

  protected:
    /** position += velocity * dt. */
    void integrate(double dt);

    Rng rng_;
    Vec2 position_;
    Vec2 velocity_;
};

/**
 * A pedestrian crossing the route corridor (the road runs along +x at
 * y = 0): approach the curb, maybe hesitate there, cross — but yield
 * (freeze mid-road) when the ego vehicle bears down, and resume once
 * it has passed. Parameters are drawn by the caller; the hesitation
 * decision and its duration come from the agent's own Rng at the curb.
 */
class PedestrianAgent : public KinematicAgent
{
  public:
    struct Params
    {
        double walk_speed = 1.4;          //!< m/s
        double curb_y = 2.5;              //!< |y| of the decision point
        double done_y = 6.0;              //!< |y| of the far-side exit
        double hesitate_probability = 0.5;
        double hesitate_min_s = 0.5;
        double hesitate_max_s = 2.0;
        double yield_radius = 7.0;        //!< ego distance that stops us
    };

    enum class State { Approach, Hesitate, Cross, Yield, Done };

    PedestrianAgent(Obstacle spawn, Params params, Rng rng);

    void step(const AgentView &view) override;
    const char *behavior() const override { return "pedestrian"; }
    State state() const { return state_; }

  private:
    bool egoClose(const AgentView &view, double radius) const;

    Params params_;
    State state_ = State::Approach;
    double cross_dir_ = 1.0;   //!< +1 = walking toward +y
    double hesitate_left_ = 0.0;
};

/**
 * A cyclist riding along the corridor ahead of the ego, weaving
 * laterally (amplitude/period re-drawn from its Rng each weave cycle)
 * and swerving aside + sprinting when the ego closes in from behind.
 */
class CyclistAgent : public KinematicAgent
{
  public:
    struct Params
    {
        double cruise_speed = 4.5;     //!< m/s along +x
        double weave_amplitude = 0.8;  //!< m/s lateral peak
        double weave_period_s = 3.0;
        double evade_gap = 5.0;        //!< ego this close behind -> evade
        double accel = 1.5;            //!< m/s^2 speed recovery
    };

    CyclistAgent(Obstacle spawn, Params params, Rng rng);

    void step(const AgentView &view) override;
    const char *behavior() const override { return "cyclist"; }

  private:
    Params params_;
    double phase_s_ = 0.0; //!< position within the current weave cycle
};

/**
 * A vehicle driving an adjacent lane: follow at cruise speed, brake
 * for whatever is ahead in its lane (other agents or the ego), and —
 * once past a trigger x — cut into the ego lane at a fixed lateral
 * rate. The classic near-miss generator.
 */
class VehicleAgent : public KinematicAgent
{
  public:
    struct Params
    {
        double cruise_speed = 4.0;  //!< m/s along +x
        double headway = 8.0;       //!< brake when a lead is this close
        double brake_decel = 3.0;   //!< m/s^2
        double accel = 1.5;         //!< m/s^2
        bool cut_in = false;
        double cut_in_x = 60.0;     //!< trigger position
        double cut_in_rate = 1.2;   //!< m/s lateral toward y = 0
    };

    enum class State { Follow, CutIn, InLane };

    VehicleAgent(Obstacle spawn, Params params, Rng rng);

    void step(const AgentView &view) override;
    const char *behavior() const override { return "vehicle"; }
    State state() const { return state_; }

  private:
    /** Speed of the nearest lead within headway, if any. */
    bool leadAhead(const AgentView &view, double *lead_speed) const;

    Params params_;
    State state_ = State::Follow;
};

} // namespace sov
