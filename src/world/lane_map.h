/**
 * @file
 * Lane-level map, the OpenStreetMap substitute of Sec. II-B.
 *
 * The paper's vehicles navigate at lane granularity (1–3 m wide lanes,
 * Sec. III-D) on a pre-constructed map annotated with semantic
 * information. We model the map as a graph of lanes, each with a
 * center-line polyline, a width, and successor links; routing is
 * shortest-path over that graph.
 */
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "math/geometry.h"

namespace sov {

using LaneId = std::uint32_t;

/** Semantic annotation attached to a lane (Sec. II-B: "we frequently
 *  annotate OSM with semantic information of the environment"). */
enum class LaneSemantic
{
    Normal,
    Crosswalk,     //!< expect pedestrians; planner slows down
    PickupZone,    //!< passengers board here; stopping allowed
    SpeedRestricted, //!< site-specific lower cap
};

/** One directed lane of the map. */
struct Lane
{
    LaneId id = 0;
    Polyline2 centerline;
    double width = 2.0;               //!< meters (paper: 1–3 m)
    double speed_limit = 8.94;        //!< m/s (20 mph cap, Sec. II-A)
    LaneSemantic semantic = LaneSemantic::Normal;
    std::vector<LaneId> successors;   //!< lanes reachable at the end

    double length() const { return centerline.length(); }
};

/** Result of localizing a point onto the map. */
struct LaneMatch
{
    LaneId lane;
    double s;        //!< arc length along the lane center-line
    double offset;   //!< signed lateral offset (left positive)
};

/** A lane-level route: consecutive lane ids plus total length. */
struct Route
{
    std::vector<LaneId> lanes;
    double length = 0.0;

    bool empty() const { return lanes.empty(); }
};

/** Directed graph of lanes with routing and matching queries. */
class LaneMap
{
  public:
    /** Add a lane; its id must be unique. */
    void addLane(Lane lane);

    bool hasLane(LaneId id) const { return lanes_.count(id) != 0; }
    const Lane &lane(LaneId id) const;
    std::size_t numLanes() const { return lanes_.size(); }
    std::vector<LaneId> laneIds() const;

    /** Match a point to the nearest lane center-line. */
    std::optional<LaneMatch> match(const Vec2 &position) const;

    /**
     * Shortest route (by length) from @p from to @p to, inclusive.
     * Dijkstra over the successor graph; empty Route if unreachable.
     */
    Route findRoute(LaneId from, LaneId to) const;

    /**
     * Concatenate the center-lines of a route into one polyline,
     * the reference path handed to the planner.
     */
    Polyline2 routeCenterline(const Route &route) const;

    /**
     * Build a rectangular test-site map: a closed loop of @p legs
     * straight lanes around a rectangle of @p width x @p height meters,
     * mimicking the industrial-park/tourist-site deployments.
     */
    static LaneMap makeLoopMap(double width, double height,
                               double lane_width = 2.5);

    /**
     * Cloud-side map generation (Fig. 1): build a lane map from a
     * recorded drive. The driven path is chopped into consecutive
     * lanes of roughly @p segment_length meters, chained by successor
     * links — the "annotate OSM from field data" workflow.
     */
    static LaneMap fromDrivenPath(const Polyline2 &path,
                                  double lane_width = 2.5,
                                  double segment_length = 25.0);

  private:
    std::map<LaneId, Lane> lanes_;
};

} // namespace sov
