/**
 * @file
 * WorldTimeline: the stepped half of the world model.
 *
 * The legacy World evaluated every obstacle's motion as a closed-form
 * function of an arbitrary query time. The timeline instead owns a set
 * of Agents and advances them at a fixed tick: each advanceTo(t) call
 * crosses every tick boundary up to t, stepping all agents once per
 * boundary, and re-publishes one Obstacle row per agent. Queries
 * (raycast / obstaclesNear / footprintAt) keep their legacy
 * signatures: they run against the published rows, whose
 * constant-velocity extrapolation is exact within a tick.
 *
 * Determinism: the published state at any epoch is a pure function of
 * (spawn order, agent streams, the ego poses supplied at the calls
 * that crossed each boundary). Crossing N boundaries in one
 * advanceTo() or across N calls with the same ego inputs yields
 * bit-identical rows. Agents observe the *previous* epoch's published
 * rows (double-buffered), so within-tick step order cannot leak
 * between agents.
 *
 * Constant-velocity agents (the Agent base) are never integrated or
 * rebased — their spawn row is republished verbatim — so a timeline
 * holding only CV agents is bit-identical to the legacy analytic
 * World at every query time, ticked or not.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/time.h"
#include "math/geometry.h"
#include "world/agent.h"
#include "world/obstacle.h"

namespace sov {

/** Steps agents at a fixed tick and serves per-epoch obstacle rows. */
class WorldTimeline
{
  public:
    explicit WorldTimeline(Duration tick = Duration::millisF(100.0));

    /** Wrap a plain obstacle into a constant-velocity agent. */
    ObstacleId addObstacle(Obstacle o);

    /** Register a behavioral agent; assigns and returns its id. */
    ObstacleId spawn(std::unique_ptr<Agent> agent);

    /**
     * Step every agent across each tick boundary in (epoch, t].
     * @p ego_pose / @p ego_speed are what the agents observe at every
     * boundary this call crosses.
     */
    void advanceTo(Timestamp t, const Pose2 &ego_pose, double ego_speed);

    /** The current epoch (last tick boundary crossed). */
    Timestamp epoch() const { return epoch_; }
    Duration tick() const { return tick_; }
    std::uint64_t ticksStepped() const { return ticks_; }

    /** One row per agent, in spawn order, published at epoch(). */
    const std::vector<Obstacle> &published() const { return published_; }
    std::size_t size() const { return agents_.size(); }

    const Agent &agent(std::size_t i) const { return *agents_[i]; }

    /** Remove all agents and reset ids and the epoch (scenario
     *  reset): a cleared timeline is indistinguishable from a fresh
     *  one, id assignment included. */
    void clear();

  private:
    void stepOnce(const Pose2 &ego_pose, double ego_speed);

    Duration tick_;
    Timestamp epoch_ = Timestamp::origin();
    std::uint64_t ticks_ = 0;
    /** Agents whose step can change their row; when zero, ticks only
     *  advance the epoch (CV rows are already exact — fast path that
     *  keeps legacy closed-loop sweeps free of per-tick copies). */
    std::size_t reactive_count_ = 0;
    std::vector<std::unique_ptr<Agent>> agents_;
    std::vector<Obstacle> published_;
    /** Previous epoch's rows, handed to agents as observations. */
    std::vector<Obstacle> prev_published_;
    ObstacleId next_id_ = 0;
};

} // namespace sov
