/**
 * @file
 * World object value types: obstacles and visual landmarks.
 *
 * Split out of world/world.h so the agent/timeline layer can publish
 * Obstacle rows without a circular include on the World facade. An
 * Obstacle is a *published view*, not a live entity: whoever owns it
 * (a spawn list, a WorldTimeline epoch) guarantees the closed-form
 * footprintAt()/positionAt() extrapolation is valid over the interval
 * the row is served for.
 */
#pragma once

#include <cstdint>

#include "core/time.h"
#include "math/geometry.h"
#include "math/vec.h"

namespace sov {

using ObstacleId = std::uint32_t;

/** Object classes the detector distinguishes (YOLO-style labels). */
enum class ObjectClass { Pedestrian, Car, Bicycle, Static };

/** Printable name of an object class. */
const char *toString(ObjectClass c);

/** A world object the vehicle must perceive and avoid. */
struct Obstacle
{
    ObstacleId id = 0;
    ObjectClass cls = ObjectClass::Static;
    OrientedBox2 footprint;   //!< pose + extents at the reference time
    Vec2 velocity{0.0, 0.0};  //!< world frame, m/s (piecewise constant)
    double height = 1.7;      //!< meters; used for camera projection

    /** Footprint advanced to time @p t (constant-velocity motion). */
    OrientedBox2 footprintAt(Timestamp t) const;
    Vec2 positionAt(Timestamp t) const;
};

/** A 3-D visual landmark observable by the cameras (VIO features). */
struct Landmark
{
    std::uint32_t id = 0;
    Vec3 position;
    double intensity = 1.0; //!< rendered brightness in [0,1]
};

} // namespace sov
