#include "world/lane_map.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "core/logging.h"

namespace sov {

void
LaneMap::addLane(Lane lane)
{
    SOV_ASSERT(lanes_.count(lane.id) == 0);
    SOV_ASSERT(lane.centerline.size() >= 2);
    lanes_.emplace(lane.id, std::move(lane));
}

const Lane &
LaneMap::lane(LaneId id) const
{
    const auto it = lanes_.find(id);
    if (it == lanes_.end())
        SOV_PANIC("unknown lane id " + std::to_string(id));
    return it->second;
}

std::vector<LaneId>
LaneMap::laneIds() const
{
    std::vector<LaneId> ids;
    ids.reserve(lanes_.size());
    for (const auto &kv : lanes_)
        ids.push_back(kv.first);
    return ids;
}

std::optional<LaneMatch>
LaneMap::match(const Vec2 &position) const
{
    std::optional<LaneMatch> best;
    double best_abs = std::numeric_limits<double>::max();
    for (const auto &kv : lanes_) {
        const auto [s, offset] = kv.second.centerline.project(position);
        const double a = std::fabs(offset);
        if (a < best_abs) {
            best_abs = a;
            best = LaneMatch{kv.first, s, offset};
        }
    }
    return best;
}

Route
LaneMap::findRoute(LaneId from, LaneId to) const
{
    SOV_ASSERT(hasLane(from) && hasLane(to));
    if (from == to)
        return Route{{from}, lane(from).length()};

    // Dijkstra: cost to *finish* each lane starting from `from`.
    std::map<LaneId, double> dist;
    std::map<LaneId, LaneId> prev;
    using Entry = std::pair<double, LaneId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;

    dist[from] = lane(from).length();
    pq.emplace(dist[from], from);

    while (!pq.empty()) {
        const auto [d, id] = pq.top();
        pq.pop();
        if (d > dist[id])
            continue;
        if (id == to)
            break;
        for (LaneId next : lane(id).successors) {
            if (!hasLane(next))
                continue;
            const double nd = d + lane(next).length();
            const auto it = dist.find(next);
            if (it == dist.end() || nd < it->second) {
                dist[next] = nd;
                prev[next] = id;
                pq.emplace(nd, next);
            }
        }
    }

    if (dist.find(to) == dist.end())
        return Route{};

    Route route;
    route.length = dist[to];
    for (LaneId id = to;; id = prev[id]) {
        route.lanes.push_back(id);
        if (id == from)
            break;
    }
    std::reverse(route.lanes.begin(), route.lanes.end());
    return route;
}

Polyline2
LaneMap::routeCenterline(const Route &route) const
{
    Polyline2 path;
    for (LaneId id : route.lanes) {
        const auto &pts = lane(id).centerline.points();
        for (const auto &p : pts) {
            // Skip duplicated junction vertices.
            if (!path.empty() &&
                path.points().back().distanceTo(p) < 1e-9) {
                continue;
            }
            path.append(p);
        }
    }
    return path;
}

LaneMap
LaneMap::makeLoopMap(double width, double height, double lane_width)
{
    SOV_ASSERT(width > 0.0 && height > 0.0);
    LaneMap map;
    const Vec2 corners[4] = {
        Vec2(0.0, 0.0), Vec2(width, 0.0),
        Vec2(width, height), Vec2(0.0, height)};
    for (LaneId i = 0; i < 4; ++i) {
        Lane l;
        l.id = i;
        l.width = lane_width;
        const Vec2 a = corners[i];
        const Vec2 b = corners[(i + 1) % 4];
        // Several intermediate vertices so projection is well-behaved.
        std::vector<Vec2> pts;
        const int segs = 8;
        for (int k = 0; k <= segs; ++k)
            pts.push_back(a + (b - a) * (static_cast<double>(k) / segs));
        l.centerline = Polyline2(pts);
        l.successors = {static_cast<LaneId>((i + 1) % 4)};
        map.addLane(std::move(l));
    }
    return map;
}

LaneMap
LaneMap::fromDrivenPath(const Polyline2 &path, double lane_width,
                        double segment_length)
{
    SOV_ASSERT(path.length() > 1.0);
    SOV_ASSERT(segment_length > 1.0);
    LaneMap map;
    const double total = path.length();
    const auto segments = static_cast<std::size_t>(
        std::max(1.0, std::round(total / segment_length)));
    const double seg_len = total / static_cast<double>(segments);

    for (std::size_t i = 0; i < segments; ++i) {
        Lane lane;
        lane.id = static_cast<LaneId>(i);
        lane.width = lane_width;
        const double s0 = static_cast<double>(i) * seg_len;
        const double s1 = s0 + seg_len;
        std::vector<Vec2> pts;
        const int steps = 8;
        for (int k = 0; k <= steps; ++k) {
            pts.push_back(
                path.sample(s0 + (s1 - s0) * k / steps));
        }
        lane.centerline = Polyline2(pts);
        if (i + 1 < segments)
            lane.successors = {static_cast<LaneId>(i + 1)};
        map.addLane(std::move(lane));
    }
    return map;
}

} // namespace sov
