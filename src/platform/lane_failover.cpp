#include "platform/lane_failover.h"

#include "core/logging.h"

namespace sov {

const char *
toString(LaneState state)
{
    switch (state) {
    case LaneState::Accelerated:
        return "accelerated";
    case LaneState::Reconfiguring:
        return "reconfiguring";
    case LaneState::CpuResident:
        return "cpu-resident";
    }
    return "?";
}

void
RprLaneFailover::onLaneFault(Timestamp now)
{
    ++faults_observed_;
    if (state(now) != LaneState::Accelerated) {
        // The fabric is already stale: the in-flight reconfiguration
        // (or the permanent CPU fallback) absorbs this fault too.
        return;
    }

    RprFaultyResult r;
    if (config_.cpu_driven) {
        // The CPU-driven baseline has no engine-side CRC/DONE retry
        // machinery; one long transfer restores the fabric.
        r.total = engine_.cpuDrivenReconfigure(config_.bitstream_bytes);
        r.attempts = 1;
        r.success = true;
    } else {
        r = engine_.reconfigureWithFaults(
            config_.bitstream_bytes, config_.reconfig_failure_probability,
            config_.max_retries, rng_);
    }
    last_result_ = r;
    total_reconfig_time_ += r.total.duration;
    total_reconfig_energy_ += r.total.energy;

    if (!r.success) {
        // Retry budget exhausted with the fabric stale: the lane is
        // parked on the resident CPU implementation for good.
        cpu_resident_ = true;
        return;
    }
    reconfig_until_ = now + r.total.duration;
    ++reconfigurations_;
}

FailoverStageExecutor::FailoverStageExecutor(
    std::unique_ptr<runtime::StageExecutor> accel,
    std::unique_ptr<runtime::StageExecutor> cpu, RprLaneFailover &failover,
    Clock clock, FaultFn fault)
    : accel_(std::move(accel)), cpu_(std::move(cpu)), failover_(failover),
      clock_(std::move(clock)), fault_(std::move(fault))
{
    SOV_ASSERT(accel_ && cpu_ && clock_);
}

Duration
FailoverStageExecutor::execute(std::size_t frame)
{
    const Timestamp now = clock_();
    if (fault_ && failover_.state(now) == LaneState::Accelerated &&
        fault_(frame, now)) {
        failover_.onLaneFault(now);
    }
    runtime::StageExecutor &exec =
        failover_.state(now) == LaneState::Accelerated ? *accel_ : *cpu_;
    if (&exec == accel_.get())
        ++accel_invocations_;
    else
        ++cpu_invocations_;
    last_ = &exec;
    return exec.execute(frame);
}

runtime::StageOutcome
FailoverStageExecutor::lastOutcome() const
{
    return last_ ? last_->lastOutcome() : runtime::StageOutcome::Ok;
}

} // namespace sov
