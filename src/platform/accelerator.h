/**
 * @file
 * Calibrated dataflow-accelerator timing/energy model.
 *
 * The companion dataflow-accelerator work (arxiv 2109.07047) maps each
 * pipeline stage to a dedicated spatial engine: stages no longer
 * time-share one GPU, and successive frames stream through the engines
 * in pipeline fashion. What bounds that design is not compute but the
 * memory system, which this model captures with three calibrated
 * quantities per stage invocation:
 *
 *  - issue latency: fixed per-launch cost (descriptor setup, DMA kick,
 *    synchronization with the upstream engine) paid even by an empty
 *    stage;
 *  - compute time: the dataflow execution itself, assuming the stage's
 *    working set is resident in on-chip SRAM;
 *  - spill penalty: when the working sets of all concurrently resident
 *    frames exceed the on-chip buffer capacity, the excess round-trips
 *    DRAM at the (shared) DRAM bandwidth — the cost of running the
 *    pipeline double-buffered.
 *
 * The model is deliberately deterministic (no jitter term): dedicated
 * engines with static schedules are the companion paper's argument for
 * tail-free latency, and the bench compares its fixed numbers against
 * the jittery platform distributions of PlatformModel.
 *
 * Energy = compute time x engine power + spilled bytes x DRAM energy
 * per byte, the usual first-order accelerator energy split.
 */
#pragma once

#include <cstddef>

#include "core/time.h"
#include "core/units.h"
#include "platform/platform_model.h"

namespace sov {

/** Accelerator fabric parameters (defaults from calibration.h). */
struct AcceleratorConfig
{
    /** Per-launch engine issue latency (descriptor + DMA setup). */
    Duration issue_latency;
    /** On-chip SRAM shared by all engines' working sets. */
    std::size_t onchip_buffer_bytes = 0;
    /** DRAM bandwidth available to spills, bytes per second. */
    double dram_bytes_per_sec = 0.0;
    /** Active power of one engine while computing. */
    Power engine_power;
    /** DRAM energy per spilled byte (pJ/B scaled to joules). */
    double dram_joules_per_byte = 0.0;

    /** The calibrated default fabric. */
    static AcceleratorConfig calibrated();
};

/** Calibrated cost of one stage on its dedicated engine. */
struct AccelStageProfile
{
    /** Dataflow compute time with the working set on-chip. */
    Duration compute;
    /** Activation + weight footprint of one in-flight frame. */
    std::size_t working_set_bytes = 0;
};

/**
 * The dataflow-accelerator model: per-stage latency/energy as a
 * function of how many frames are concurrently resident (the pipeline
 * overlap depth). A first-class platform backend next to the SoC
 * (PlatformModel) and RPR (RprEngine) models.
 */
class AcceleratorModel
{
  public:
    explicit AcceleratorModel(
        const AcceleratorConfig &config = AcceleratorConfig::calibrated())
        : config_(config)
    {
    }

    /** Calibrated engine profile of @p task (see calibration.h). */
    AccelStageProfile profile(TaskKind task) const;

    /**
     * Bytes that do not fit on-chip when @p frames_resident frames keep
     * @p profile's working set live simultaneously. The buffer is
     * modeled as evenly partitioned across the pipeline's engines
     * (@p engines sharing it), the static allocation a dataflow
     * compiler would emit.
     */
    std::size_t spilledBytes(const AccelStageProfile &profile,
                             std::size_t frames_resident,
                             std::size_t engines) const;

    /** DRAM round-trip time of the spill (write + read back). */
    Duration spillPenalty(const AccelStageProfile &profile,
                          std::size_t frames_resident,
                          std::size_t engines) const;

    /** issue + compute + spill for one invocation of @p task. */
    Duration stageLatency(TaskKind task, std::size_t frames_resident,
                          std::size_t engines) const;

    /** Energy of one invocation (compute + DRAM traffic). */
    Energy stageEnergy(TaskKind task, std::size_t frames_resident,
                       std::size_t engines) const;

    const AcceleratorConfig &config() const { return config_; }

  private:
    AcceleratorConfig config_;
};

} // namespace sov
