/**
 * @file
 * Calibrated heterogeneous-platform timing/energy model (Sec. V).
 *
 * Maps (task, platform) to a latency distribution and energy cost,
 * with the GPU-contention effect of Fig. 8. Latency distributions are
 * log-normal: the medians come from the paper's measurements
 * (calibration.h) and the sigmas reproduce the reported variation
 * (e.g. localization 25 +- 14 ms from scene complexity).
 */
#pragma once

#include <string>

#include "core/rng.h"
#include "core/time.h"
#include "core/units.h"

namespace sov {

/** Execution platforms of the design space (Sec. V-A/V-B). */
enum class Platform { CoffeeLakeCpu, Gtx1060, Tx2, ZynqFpga };

/** On-vehicle processing tasks with platform-dependent cost. */
enum class TaskKind
{
    Sensing,        //!< camera pipeline on the FPGA's SoC
    DepthEstimation,
    Detection,
    KcfTracking,    //!< visual-tracking baseline
    Localization,
    MpcPlanning,
    EmPlanning,
};

const char *toString(Platform p);
const char *toString(TaskKind t);

/** Latency distribution of one (task, platform) pair. */
struct LatencyProfile
{
    Duration median;
    double sigma_log = 0.0;        //!< log-normal spread of the body
    double tail_probability = 0.0; //!< chance of a rare stall
    double tail_scale_ms = 0.0;    //!< exponential scale of the stall

    /** Draw one latency sample (body jitter + occasional stall). */
    Duration sample(Rng &rng) const;

    /** Analytic expectation of sample(): log-normal body mean plus
     *  the stall tail's contribution. */
    Duration mean() const;
};

/** The calibrated model. */
class PlatformModel
{
  public:
    PlatformModel() = default;

    /**
     * Latency profile of @p task on @p platform.
     * @param shared_gpu Apply the Fig. 8 contention multiplier
     *        (localization sharing the GPU with scene understanding).
     */
    LatencyProfile latency(TaskKind task, Platform platform,
                           bool shared_gpu = false) const;

    /** Median latency shortcut. */
    Duration medianLatency(TaskKind task, Platform platform,
                           bool shared_gpu = false) const;

    /** Energy of one invocation = median latency x platform power. */
    Energy energy(TaskKind task, Platform platform) const;

    /** Active power of a platform. */
    Power power(Platform platform) const;

    /**
     * Exclusive-GPU scene-understanding latency (depth + detection
     * serialized on one platform) — the quantity Fig. 8 plots.
     */
    Duration sceneUnderstandingLatency(Platform platform,
                                       bool shared_gpu = false) const;
};

} // namespace sov
