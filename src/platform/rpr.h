/**
 * @file
 * Runtime Partial Reconfiguration engine model (Sec. V-B3, Fig. 9).
 *
 * The paper's engine decouples receiving bitstream data from feeding
 * the ICAP: a lightweight Tx DMA streams the bitstream from DRAM into
 * a small FIFO in one handshake; an Rx drains the FIFO into the ICAP
 * at the ICAP's word rate. We model the transfer cycle-by-cycle
 * (DRAM burst stalls, FIFO back-pressure, ICAP word width) and the
 * CPU-driven baseline, and expose the time-sharing economics of
 * swapping the feature-extraction and feature-tracking accelerators.
 */
#pragma once

#include <cstdint>

#include "core/rng.h"
#include "core/time.h"
#include "core/units.h"

namespace sov {

/** RPR engine parameters (defaults from calibration.h). */
struct RprConfig
{
    double clock_hz = 100e6;       //!< engine + ICAP clock
    std::uint32_t icap_word_bytes = 4;
    std::uint32_t fifo_bytes = 128;
    /** Tx DRAM read: burst size and stall cycles between bursts. */
    std::uint32_t dram_burst_bytes = 64;
    std::uint32_t dram_stall_cycles = 2;
    std::uint32_t tx_word_bytes = 8; //!< Tx pushes 8 B/cycle when able
    /** The ICAP "is not designed to accept streaming data"
     *  (Sec. V-B3): after this many words it inserts wait states. */
    std::uint32_t icap_wait_interval_words = 32;
    std::uint32_t icap_wait_cycles = 4;
    double power_w = 0.73;
};

/** Result of one reconfiguration. */
struct RprResult
{
    Duration duration;
    Energy energy;
    double throughput_mb_s = 0.0;
    std::uint64_t cycles = 0;
    std::uint64_t fifo_full_stalls = 0; //!< Tx cycles blocked by FIFO
};

/** Outcome of a reconfiguration attempted under injected failures. */
struct RprFaultyResult
{
    /** Accumulated duration/energy over every attempt taken. */
    RprResult total;
    std::uint32_t attempts = 1;
    /** False when the retry budget ran out with the fabric stale —
     *  the scheduler must fall back to the resident engine. */
    bool success = true;
};

/** The hardware RPR engine. */
class RprEngine
{
  public:
    explicit RprEngine(const RprConfig &config = {}) : config_(config) {}

    /** Cycle-level simulation of transferring one bitstream. */
    RprResult reconfigure(std::uint64_t bitstream_bytes) const;

    /** CPU-driven baseline (Sec. V-B3: ~300 KB/s). */
    RprResult cpuDrivenReconfigure(std::uint64_t bitstream_bytes,
                                   double bytes_per_sec = 300e3) const;

    /**
     * Reconfiguration with failure injection: each attempt fails the
     * post-transfer CRC/DONE check with @p failure_probability, costing
     * the full transfer time, and is retried up to @p max_retries
     * times. Draws one bernoulli from @p rng per attempt (none when
     * the probability is 0, so a disabled fault perturbs no stream).
     */
    RprFaultyResult reconfigureWithFaults(std::uint64_t bitstream_bytes,
                                          double failure_probability,
                                          std::uint32_t max_retries,
                                          Rng &rng) const;

    /** Resource footprint reported in the paper. */
    static constexpr std::uint32_t kLuts = 400;
    static constexpr std::uint32_t kFlipFlops = 400;

    const RprConfig &config() const { return config_; }

  private:
    RprConfig config_;
};

/**
 * Time-sharing economics of RPR for the localization front-end
 * (Sec. V-B3): key frames run feature *extraction*, non-key frames run
 * feature *tracking* (50% faster). Swapping bitstreams costs
 * reconfiguration time; spatially sharing the FPGA costs area and
 * static power.
 */
struct RprSchedule
{
    double keyframe_fraction = 0.2;    //!< fraction of key frames
    Duration extraction = Duration::millisF(20.0);
    Duration tracking = Duration::millisF(10.0);
    Duration reconfig_cost;            //!< per algorithm switch

    /** Mean per-frame front-end latency with RPR swapping, assuming
     *  key frames arrive in runs (two switches per run). */
    Duration meanFrameLatencyWithRpr(double switches_per_frame) const;

    /** Mean per-frame latency if only the (slower) extraction engine
     *  fits the FPGA permanently. */
    Duration meanFrameLatencyExtractionOnly() const;
};

} // namespace sov
