/**
 * @file
 * Fault-driven accelerator-lane failover through the RPR engine.
 *
 * An accelerator engine that faults (SEU, configuration corruption,
 * logic upset) cannot simply be retried: its fabric is stale until a
 * partial bitstream is re-streamed through the ICAP (Sec. V-B3). This
 * layer models the recovery path the paper's RPR engine enables, as a
 * small state machine per lane:
 *
 *   Accelerated --fault--> Reconfiguring --done--> Accelerated
 *        |                      |
 *        +---- retry budget exhausted ----> CpuResident (permanent)
 *
 * While the fabric is stale (Reconfiguring, or CpuResident after the
 * reconfiguration retry budget ran out) the stage's invocations run on
 * the resident CPU implementation instead — graceful throughput
 * degradation instead of a stalled pipeline. The reconfiguration
 * itself is costed by RprEngine::reconfigureWithFaults (hardware
 * engine, ~2.9 ms for a 1 MB bitstream) or cpuDrivenReconfigure
 * (~3.3 s baseline), so the bench can contrast how long the pipeline
 * rides the CPU in each design.
 *
 * Everything here is simulation-clock pure: state(now) is a function
 * of the fault history and the clock, so the same fault sequence
 * yields the same schedule at any host thread count (the TSan gate of
 * bench_dataflow's failover table).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "core/rng.h"
#include "core/time.h"
#include "platform/rpr.h"
#include "runtime/stage_executor.h"

namespace sov {

/** Where one accelerator lane's stage currently executes. */
enum class LaneState
{
    Accelerated,   //!< dedicated engine healthy
    Reconfiguring, //!< bitstream in flight; CPU carries the stage
    CpuResident,   //!< retry budget exhausted; CPU carries it for good
};

const char *toString(LaneState state);

/** Recovery policy of one accelerator lane. */
struct LaneFailoverConfig
{
    /** Partial bitstream of the lane's engine (~1 MB calibrated). */
    std::uint64_t bitstream_bytes = 1000000;
    /** Per-attempt probability that the reconfiguration itself fails
     *  its post-transfer CRC/DONE check (zero draws no RNG). */
    double reconfig_failure_probability = 0.0;
    /** Reconfiguration attempts after a failed one; when the budget
     *  runs out the lane goes CpuResident. */
    std::uint32_t max_retries = 3;
    /** Use the CPU-driven reconfiguration baseline (~300 KB/s) instead
     *  of the hardware RPR engine — the Sec. V-B3 comparison. */
    bool cpu_driven = false;
};

/**
 * The per-lane failover state machine. onLaneFault() marks the fabric
 * stale and starts (and costs) the reconfiguration; state(now) reports
 * where the lane's stage executes at a given simulation time. Faults
 * reported while the fabric is already stale are absorbed by the
 * in-flight reconfiguration (counted, not re-triggered).
 */
class RprLaneFailover
{
  public:
    RprLaneFailover(const RprEngine &engine,
                    const LaneFailoverConfig &config, Rng rng)
        : engine_(engine), config_(config), rng_(std::move(rng))
    {
    }

    /** Lane state at @p now (pure; monotonic queries expected). */
    LaneState state(Timestamp now) const
    {
        if (cpu_resident_)
            return LaneState::CpuResident;
        if (now < reconfig_until_)
            return LaneState::Reconfiguring;
        return LaneState::Accelerated;
    }

    /**
     * An engine fault was detected at @p now. If the lane was healthy,
     * kick off the reconfiguration: its accumulated duration (every
     * attempt) books the recovery window, and an exhausted retry
     * budget parks the lane on the CPU permanently.
     */
    void onLaneFault(Timestamp now);

    /** Faults reported, including ones absorbed while already stale. */
    std::uint64_t faultsObserved() const { return faults_observed_; }
    /** Successful reconfigurations (fabric restored). */
    std::uint64_t reconfigurations() const { return reconfigurations_; }
    /** Result of the most recent reconfiguration (attempts, totals). */
    const RprFaultyResult &lastResult() const { return last_result_; }
    /** End of the most recent recovery window (the lane is Accelerated
     *  again from this time on, unless CpuResident). */
    Timestamp recoveredAt() const { return reconfig_until_; }
    /** Accumulated reconfiguration time/energy over every fault. */
    Duration totalReconfigTime() const { return total_reconfig_time_; }
    Energy totalReconfigEnergy() const { return total_reconfig_energy_; }

  private:
    const RprEngine &engine_; //!< not owned; must outlive this
    LaneFailoverConfig config_;
    Rng rng_;
    Timestamp reconfig_until_;
    bool cpu_resident_ = false;
    std::uint64_t faults_observed_ = 0;
    std::uint64_t reconfigurations_ = 0;
    RprFaultyResult last_result_;
    Duration total_reconfig_time_ = Duration::zero();
    Energy total_reconfig_energy_;
};

/**
 * StageExecutor that routes each invocation by the lane's failover
 * state: the dedicated engine while Accelerated, the resident CPU
 * implementation while the fabric is stale. An optional fault hook
 * (driven by a fault::FaultChannel in the benches/tests) decides per
 * invocation whether the engine faults; the faulting invocation itself
 * already runs on the CPU — the engine produced garbage, the frame
 * must not consume it.
 */
class FailoverStageExecutor final : public runtime::StageExecutor
{
  public:
    using Clock = std::function<Timestamp()>;
    /** True when the engine faults on this invocation. */
    using FaultFn = std::function<bool(std::size_t frame, Timestamp now)>;

    FailoverStageExecutor(std::unique_ptr<runtime::StageExecutor> accel,
                          std::unique_ptr<runtime::StageExecutor> cpu,
                          RprLaneFailover &failover, Clock clock,
                          FaultFn fault = {});

    Duration execute(std::size_t frame) override;
    runtime::StageOutcome lastOutcome() const override;
    const char *kind() const override { return "failover"; }

    /** Invocations carried by each implementation. */
    std::uint64_t accelInvocations() const { return accel_invocations_; }
    std::uint64_t cpuInvocations() const { return cpu_invocations_; }

  private:
    std::unique_ptr<runtime::StageExecutor> accel_;
    std::unique_ptr<runtime::StageExecutor> cpu_;
    RprLaneFailover &failover_; //!< not owned; may be shared per lane
    Clock clock_;
    FaultFn fault_;
    runtime::StageExecutor *last_ = nullptr;
    std::uint64_t accel_invocations_ = 0;
    std::uint64_t cpu_invocations_ = 0;
};

} // namespace sov
