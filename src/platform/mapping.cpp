#include "platform/mapping.h"

#include <algorithm>

#include "core/logging.h"

namespace sov {

std::string
MappingOption::name() const
{
    return std::string("scene@") + toString(scene_platform) + "+loc@" +
        toString(localization_platform);
}

MappingOption
MappingExplorer::evaluate(Platform scene, Platform loc) const
{
    MappingOption option;
    option.scene_platform = scene;
    option.localization_platform = loc;
    const bool shared = scene == Platform::Gtx1060 &&
        loc == Platform::Gtx1060;
    option.scene_latency =
        model_.sceneUnderstandingLatency(scene, shared);
    option.localization_latency =
        model_.medianLatency(TaskKind::Localization, loc, shared);
    return option;
}

std::vector<MappingOption>
MappingExplorer::enumerate() const
{
    const Platform candidates[] = {Platform::Gtx1060, Platform::Tx2,
                                   Platform::ZynqFpga};
    std::vector<MappingOption> options;
    for (const Platform scene : candidates)
        for (const Platform loc : candidates)
            options.push_back(evaluate(scene, loc));
    std::sort(options.begin(), options.end(),
              [](const MappingOption &a, const MappingOption &b) {
                  return a.perceptionLatency() < b.perceptionLatency();
              });
    return options;
}

MappingOption
MappingExplorer::best() const
{
    const auto options = enumerate();
    SOV_ASSERT(!options.empty());
    return options.front();
}

double
MappingExplorer::endToEndReduction(const MappingOption &faster,
                                   const MappingOption &slower,
                                   Duration sensing_plus_planning)
{
    const Duration fast_total =
        faster.perceptionLatency() + sensing_plus_planning;
    const Duration slow_total =
        slower.perceptionLatency() + sensing_plus_planning;
    return 1.0 - fast_total / slow_total;
}

} // namespace sov
