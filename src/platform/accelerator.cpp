#include "platform/accelerator.h"

#include "core/logging.h"
#include "platform/calibration.h"

namespace sov {

AcceleratorConfig
AcceleratorConfig::calibrated()
{
    AcceleratorConfig config;
    config.issue_latency = Duration::micros(
        static_cast<std::int64_t>(calibration::kAccelIssueUs));
    config.onchip_buffer_bytes =
        static_cast<std::size_t>(calibration::kAccelOnchipBytes);
    config.dram_bytes_per_sec = calibration::kAccelDramBytesPerSec;
    config.engine_power = Power::watts(calibration::kAccelEnginePowerW);
    config.dram_joules_per_byte =
        calibration::kAccelDramPjPerByte * 1e-12;
    return config;
}

AccelStageProfile
AcceleratorModel::profile(TaskKind task) const
{
    const auto i = static_cast<std::size_t>(task);
    SOV_ASSERT(i < 7);
    AccelStageProfile p;
    p.compute = Duration::millisF(calibration::kAccelComputeMs[i]);
    p.working_set_bytes = static_cast<std::size_t>(
        calibration::kAccelWorkingSetMib[i] * 1024.0 * 1024.0);
    return p;
}

std::size_t
AcceleratorModel::spilledBytes(const AccelStageProfile &profile,
                               std::size_t frames_resident,
                               std::size_t engines) const
{
    SOV_ASSERT(frames_resident > 0 && engines > 0);
    const std::size_t capacity = config_.onchip_buffer_bytes / engines;
    const std::size_t resident = profile.working_set_bytes * frames_resident;
    return resident > capacity ? resident - capacity : 0;
}

Duration
AcceleratorModel::spillPenalty(const AccelStageProfile &profile,
                               std::size_t frames_resident,
                               std::size_t engines) const
{
    const std::size_t spilled =
        spilledBytes(profile, frames_resident, engines);
    if (spilled == 0)
        return Duration::zero();
    // Round trip: the overflow is written out and read back once per
    // invocation.
    const double seconds = 2.0 * static_cast<double>(spilled) /
                           config_.dram_bytes_per_sec;
    return Duration::seconds(seconds);
}

Duration
AcceleratorModel::stageLatency(TaskKind task, std::size_t frames_resident,
                               std::size_t engines) const
{
    const AccelStageProfile p = profile(task);
    return config_.issue_latency + p.compute +
           spillPenalty(p, frames_resident, engines);
}

Energy
AcceleratorModel::stageEnergy(TaskKind task, std::size_t frames_resident,
                              std::size_t engines) const
{
    const AccelStageProfile p = profile(task);
    const double compute_j =
        p.compute.toSeconds() * config_.engine_power.toWatts();
    const double dram_j =
        2.0 *
        static_cast<double>(spilledBytes(p, frames_resident, engines)) *
        config_.dram_joules_per_byte;
    return Energy::joules(compute_j + dram_j);
}

} // namespace sov
