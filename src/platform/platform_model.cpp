#include "platform/platform_model.h"

#include <cmath>

#include "core/logging.h"
#include "platform/calibration.h"

namespace sov {

const char *
toString(Platform p)
{
    switch (p) {
      case Platform::CoffeeLakeCpu: return "cpu";
      case Platform::Gtx1060: return "gpu";
      case Platform::Tx2: return "tx2";
      case Platform::ZynqFpga: return "fpga";
    }
    return "?";
}

const char *
toString(TaskKind t)
{
    switch (t) {
      case TaskKind::Sensing: return "sensing";
      case TaskKind::DepthEstimation: return "depth-estimation";
      case TaskKind::Detection: return "detection";
      case TaskKind::KcfTracking: return "kcf-tracking";
      case TaskKind::Localization: return "localization";
      case TaskKind::MpcPlanning: return "mpc-planning";
      case TaskKind::EmPlanning: return "em-planning";
    }
    return "?";
}

Duration
LatencyProfile::sample(Rng &rng) const
{
    double ms = sigma_log > 0.0
        ? rng.logNormal(median.toMillis(), sigma_log)
        : median.toMillis();
    if (tail_probability > 0.0 && rng.bernoulli(tail_probability))
        ms += rng.exponential(1.0 / tail_scale_ms);
    return Duration::millisF(ms);
}

Duration
LatencyProfile::mean() const
{
    // E[lognormal(median, sigma)] = median * exp(sigma^2 / 2);
    // the exponential stall adds p * scale.
    double ms = median.toMillis() * std::exp(0.5 * sigma_log * sigma_log);
    ms += tail_probability * tail_scale_ms;
    return Duration::millisF(ms);
}

namespace {

std::size_t
index(Platform p)
{
    return static_cast<std::size_t>(p);
}

} // namespace

LatencyProfile
PlatformModel::latency(TaskKind task, Platform platform,
                       bool shared_gpu) const
{
    namespace cal = calibration;
    const std::size_t i = index(platform);
    double median_ms = 0.0;
    double sigma = 0.0;
    double tail_p = 0.0;
    double tail_scale = 0.0;

    switch (task) {
      case TaskKind::Sensing:
        median_ms = cal::kSensingMedianMs;
        sigma = cal::kSensingSigmaLog;
        tail_p = cal::kSensingTailProbability;
        tail_scale = cal::kSensingTailScaleMs;
        break;
      case TaskKind::DepthEstimation:
        median_ms = cal::kDepthMs[i];
        sigma = 0.03;
        break;
      case TaskKind::Detection:
        median_ms = cal::kDetectionMs[i];
        sigma = cal::kDetectionSigmaLog;
        tail_p = cal::kDetectionTailProbability;
        tail_scale = cal::kDetectionTailScaleMs;
        break;
      case TaskKind::KcfTracking:
        median_ms = cal::kKcfTrackingMs[i];
        sigma = 0.2;
        break;
      case TaskKind::Localization:
        median_ms = cal::kLocalizationMs[i];
        sigma = cal::kLocalizationSigmaLog;
        break;
      case TaskKind::MpcPlanning:
        median_ms = cal::kMpcPlanningMs;
        sigma = 0.15;
        break;
      case TaskKind::EmPlanning:
        median_ms = cal::kEmPlanningMs;
        sigma = 0.2;
        break;
    }

    // Contention hits the large scene-understanding kernels; the
    // small localization kernel keeps its latency (Fig. 8).
    const bool contended_task = task == TaskKind::DepthEstimation ||
        task == TaskKind::Detection || task == TaskKind::KcfTracking;
    if (shared_gpu && platform == Platform::Gtx1060 && contended_task)
        median_ms *= cal::kSharedGpuContention;

    return LatencyProfile{Duration::millisF(median_ms), sigma, tail_p,
                          tail_scale};
}

Duration
PlatformModel::medianLatency(TaskKind task, Platform platform,
                             bool shared_gpu) const
{
    return latency(task, platform, shared_gpu).median;
}

Energy
PlatformModel::energy(TaskKind task, Platform platform) const
{
    const Duration t = medianLatency(task, platform);
    return Energy::joules(power(platform).toWatts() * t.toSeconds());
}

Power
PlatformModel::power(Platform platform) const
{
    return Power::watts(
        calibration::kPlatformPowerW[index(platform)]);
}

Duration
PlatformModel::sceneUnderstandingLatency(Platform platform,
                                         bool shared_gpu) const
{
    return medianLatency(TaskKind::DepthEstimation, platform, shared_gpu) +
        medianLatency(TaskKind::Detection, platform, shared_gpu);
}

} // namespace sov
