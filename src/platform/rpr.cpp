#include "platform/rpr.h"

#include <algorithm>

#include "core/logging.h"

namespace sov {

RprResult
RprEngine::reconfigure(std::uint64_t bitstream_bytes) const
{
    SOV_ASSERT(bitstream_bytes > 0);
    const RprConfig &c = config_;

    // Cycle-level producer/consumer simulation.
    std::uint64_t cycles = 0;
    std::uint64_t tx_remaining = bitstream_bytes; // not yet in FIFO
    std::uint64_t rx_remaining = bitstream_bytes; // not yet in ICAP
    std::uint32_t fifo_level = 0;
    std::uint32_t burst_left = c.dram_burst_bytes;
    std::uint32_t stall_left = 0;
    std::uint64_t fifo_full_stalls = 0;
    std::uint32_t icap_words_since_wait = 0;
    std::uint32_t icap_wait_left = 0;

    while (rx_remaining > 0) {
        ++cycles;

        // Tx side: push into the FIFO unless stalled or full.
        if (tx_remaining > 0) {
            if (stall_left > 0) {
                --stall_left;
            } else if (fifo_level + c.tx_word_bytes > c.fifo_bytes) {
                ++fifo_full_stalls; // back-pressure from the Rx/ICAP
            } else {
                const std::uint32_t chunk = static_cast<std::uint32_t>(
                    std::min<std::uint64_t>(c.tx_word_bytes,
                                            tx_remaining));
                fifo_level += chunk;
                tx_remaining -= chunk;
                if (burst_left <= chunk) {
                    // End of DRAM burst: pay the re-arbitration stall.
                    stall_left = c.dram_stall_cycles;
                    burst_left = c.dram_burst_bytes;
                } else {
                    burst_left -= chunk;
                }
            }
        }

        // Rx side: drain one ICAP word per cycle when available,
        // honoring the ICAP's periodic wait states.
        if (icap_wait_left > 0) {
            --icap_wait_left;
        } else if (fifo_level >= c.icap_word_bytes) {
            fifo_level -= c.icap_word_bytes;
            rx_remaining -= std::min<std::uint64_t>(c.icap_word_bytes,
                                                    rx_remaining);
            if (++icap_words_since_wait >= c.icap_wait_interval_words) {
                icap_words_since_wait = 0;
                icap_wait_left = c.icap_wait_cycles;
            }
        }
    }

    RprResult result;
    result.cycles = cycles;
    result.fifo_full_stalls = fifo_full_stalls;
    result.duration =
        Duration::seconds(static_cast<double>(cycles) / c.clock_hz);
    result.energy = Energy::joules(c.power_w *
                                   result.duration.toSeconds());
    result.throughput_mb_s = static_cast<double>(bitstream_bytes) /
        result.duration.toSeconds() / 1e6;
    return result;
}

RprResult
RprEngine::cpuDrivenReconfigure(std::uint64_t bitstream_bytes,
                                double bytes_per_sec) const
{
    SOV_ASSERT(bytes_per_sec > 0.0);
    RprResult result;
    result.duration = Duration::seconds(
        static_cast<double>(bitstream_bytes) / bytes_per_sec);
    // CPU-driven path burns CPU power (~15 W active share) throughout.
    result.energy =
        Energy::joules(15.0 * result.duration.toSeconds());
    result.throughput_mb_s = bytes_per_sec / 1e6;
    result.cycles = 0;
    return result;
}

RprFaultyResult
RprEngine::reconfigureWithFaults(std::uint64_t bitstream_bytes,
                                 double failure_probability,
                                 std::uint32_t max_retries,
                                 Rng &rng) const
{
    SOV_ASSERT(failure_probability >= 0.0 && failure_probability < 1.0);
    const RprResult single = reconfigure(bitstream_bytes);

    RprFaultyResult out;
    out.attempts = 0;
    out.total.duration = Duration::zero();
    out.total.energy = Energy::joules(0.0);
    for (;;) {
        ++out.attempts;
        out.total.cycles += single.cycles;
        out.total.fifo_full_stalls += single.fifo_full_stalls;
        out.total.duration += single.duration;
        out.total.energy = out.total.energy + single.energy;
        const bool failed = failure_probability > 0.0 &&
            rng.bernoulli(failure_probability);
        if (!failed) {
            out.success = true;
            break;
        }
        if (out.attempts > max_retries) {
            out.success = false;
            break;
        }
    }
    out.total.throughput_mb_s = out.success
        ? static_cast<double>(bitstream_bytes) /
            out.total.duration.toSeconds() / 1e6
        : 0.0;
    return out;
}

Duration
RprSchedule::meanFrameLatencyWithRpr(double switches_per_frame) const
{
    const double mean_compute =
        keyframe_fraction * extraction.toMillis() +
        (1.0 - keyframe_fraction) * tracking.toMillis();
    return Duration::millisF(
        mean_compute + switches_per_frame * reconfig_cost.toMillis());
}

Duration
RprSchedule::meanFrameLatencyExtractionOnly() const
{
    // Without swapping, every frame pays the extraction-engine cost.
    return extraction;
}

} // namespace sov
