/**
 * @file
 * Calibration constants for the heterogeneous-platform timing/energy
 * model. Every number is taken from, or fitted to, a measurement the
 * paper reports; the reference is cited next to each constant.
 *
 * These constants parameterize PlatformModel. The *shape* results
 * (who wins where, crossovers, end-to-end percentiles) derive from
 * them rather than from host-machine wall clock.
 */
#pragma once

namespace sov {
namespace calibration {

// --------------------------------------------------------------------
// Per-task median latencies in milliseconds (Fig. 6a, Fig. 8, Sec V-C).
// Columns: Coffee Lake CPU, GTX 1060 GPU, TX2, Zynq FPGA.
// --------------------------------------------------------------------

// Depth estimation (ELAS). GPU value chosen so GPU depth + detection
// = 77 ms, the exclusive-GPU scene-understanding latency of Fig. 8.
inline constexpr double kDepthMs[4] = {210.0, 32.0, 262.0, 180.0};

// Object detection (DNN). TX2 values sum with depth + localization to
// the 844.2 ms cumulative TX2 perception latency of Sec. V-A.
inline constexpr double kDetectionMs[4] = {810.0, 45.0, 490.0, 400.0};

// Object tracking: KCF baseline on CPU ~ 100 ms (Sec. VI-B:
// spatial sync is "100x more lightweight than KCF" at 1 ms);
// radar-based tracking replaces it in the deployed pipeline.
inline constexpr double kKcfTrackingMs[4] = {100.0, 40.0, 160.0, 90.0};

// Localization (VIO). Fig. 8: 31 ms on the GPU, 24 ms on the FPGA;
// Sec. V-C: ~25 ms median with 14 ms stddev (scene complexity).
// The localization kernel is small, so GPU contention hits the scene
// tasks, not localization (Fig. 8 reports 31 ms in both configs).
inline constexpr double kLocalizationMs[4] = {62.0, 31.0, 92.0, 24.0};

// Planning: our lane-level MPC ~3 ms on CPU; EM-style planner 100 ms
// (33x, Sec. V-C).
inline constexpr double kMpcPlanningMs = 3.0;
inline constexpr double kEmPlanningMs = 100.0;

// Sensing stack (camera pipeline on the FPGA's embedded SoC): the
// biggest latency contributor (Sec. V-C). Median fitted so that the
// end-to-end best/mean/p99 land at 149/164/740 ms (Fig. 10a).
inline constexpr double kSensingMedianMs = 72.0;
inline constexpr double kSensingSigmaLog = 0.02;
// Rare application-layer stalls (Sec. VI-A1: up to ~100 ms variation
// at the application layer) give the Fig. 10a long tail.
inline constexpr double kSensingTailProbability = 0.04;
inline constexpr double kSensingTailScaleMs = 150.0;

// Localization latency variation (Sec. V-C: median 25, stddev 14,
// "caused by varying scene complexity").
inline constexpr double kLocalizationSigmaLog = 0.45;

// Detection: tight body plus a long complex-scene tail.
inline constexpr double kDetectionSigmaLog = 0.04;
inline constexpr double kDetectionTailProbability = 0.02;
inline constexpr double kDetectionTailScaleMs = 400.0;

// GPU contention multiplier when localization shares the GPU with
// scene understanding (Fig. 8: 77 -> 120 ms, 20 -> 31 ms; both 1.56x).
inline constexpr double kSharedGpuContention = 1.56;

// --------------------------------------------------------------------
// Platform power draw in watts while executing (Fig. 6b's energies =
// latency x power; TX2 shows "marginal, sometimes even worse, energy
// reduction compared to the GPU" — e.g. detection: 9.8 J vs 5.4 J).
// --------------------------------------------------------------------
inline constexpr double kPlatformPowerW[4] = {80.0, 120.0, 20.0, 6.0};

// --------------------------------------------------------------------
// End-to-end plumbing (Sec. III-A).
// --------------------------------------------------------------------
inline constexpr double kCanBusMs = 1.0;      // T_data
inline constexpr double kMechanicalMs = 19.0; // T_mech
inline constexpr double kReactivePathMs = 30.0; // Sec. IV

// --------------------------------------------------------------------
// Runtime partial reconfiguration (Sec. V-B3).
// --------------------------------------------------------------------
inline constexpr double kIcapClockHz = 100e6;   // ICAP at 100 MHz
inline constexpr unsigned kIcapWordBytes = 4;   // 400 MB/s theoretical
inline constexpr unsigned kRprFifoBytes = 128;  // "an 128-byte FIFO"
inline constexpr double kCpuReconfigBytesPerSec = 300e3; // 300 KB/s
inline constexpr double kRprPowerW = 0.73;      // fits 2.1 mJ / ~2.9 ms
inline constexpr double kBitstreamBytes = 1.0e6; // ~1 MB per algorithm
// Feature extraction (key frames) vs tracking (non-key frames):
// "the latter executes in 10 ms, 50% faster than the former".
inline constexpr double kFeatureExtractionMs = 20.0;
inline constexpr double kFeatureTrackingMs = 10.0;

// --------------------------------------------------------------------
// Dataflow accelerator (fitted to the companion dataflow-accelerator
// design, arxiv 2109.07047: per-stage spatial engines, static
// schedules, on-chip working sets). Engine compute times are fitted so
// a dedicated engine modestly beats the discrete GPU's time-shared
// kernels while drawing embedded-class power; the memory-system
// constants are LPDDR4-class.
// --------------------------------------------------------------------
// Per-launch issue cost: descriptor setup + DMA kick + upstream sync.
inline constexpr double kAccelIssueUs = 50.0;
// On-chip SRAM shared by the engines (static per-engine partition).
inline constexpr unsigned long long kAccelOnchipBytes =
    32ull * 1024 * 1024;
// DRAM bandwidth available to working-set spills (single LPDDR4
// channel) and its access energy.
inline constexpr double kAccelDramBytesPerSec = 12.8e9;
inline constexpr double kAccelDramPjPerByte = 40.0;
// Active power of one engine while computing.
inline constexpr double kAccelEnginePowerW = 2.5;
// Per-task engine compute time (ms) and one-frame working set (MiB),
// indexed by TaskKind order: Sensing, DepthEstimation, Detection,
// KcfTracking, Localization, MpcPlanning, EmPlanning.
inline constexpr double kAccelComputeMs[7] = {8.0,  24.0, 28.0, 4.0,
                                              12.0, 2.0,  40.0};
inline constexpr double kAccelWorkingSetMib[7] = {4.0, 6.0,  7.0, 1.0,
                                                  2.0, 0.25, 1.0};

} // namespace calibration
} // namespace sov
