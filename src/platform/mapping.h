/**
 * @file
 * Algorithm-to-hardware mapping exploration (Sec. V-B2, Fig. 8).
 *
 * Enumerates assignments of the perception tasks (scene understanding,
 * localization) to platforms, evaluates each with the calibrated
 * model (contention included), and ranks them — reproducing the
 * paper's conclusion: scene understanding on the GPU, localization on
 * the FPGA, 1.6x perception speedup, ~23% end-to-end reduction.
 */
#pragma once

#include <string>
#include <vector>

#include "platform/platform_model.h"

namespace sov {

/** One evaluated mapping. */
struct MappingOption
{
    Platform scene_platform;
    Platform localization_platform;
    Duration scene_latency;
    Duration localization_latency;

    /** Perception latency = slower of the two parallel branches. */
    Duration perceptionLatency() const
    {
        return std::max(scene_latency, localization_latency);
    }

    std::string name() const;
};

/** Mapping explorer. */
class MappingExplorer
{
  public:
    explicit MappingExplorer(const PlatformModel &model) : model_(model) {}

    /**
     * Evaluate all scene x localization platform assignments over the
     * candidate platforms (GPU, TX2, FPGA — the CPU is never
     * competitive for perception and is reserved for planning).
     */
    std::vector<MappingOption> enumerate() const;

    /** The best mapping (minimum perception latency). */
    MappingOption best() const;

    /**
     * End-to-end latency reduction of mapping @p a over @p b given the
     * (mapping-independent) sensing + planning latency.
     */
    static double endToEndReduction(const MappingOption &faster,
                                    const MappingOption &slower,
                                    Duration sensing_plus_planning);

  private:
    MappingOption evaluate(Platform scene, Platform loc) const;

    const PlatformModel &model_;
};

} // namespace sov
