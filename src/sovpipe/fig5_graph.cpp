#include "sovpipe/fig5_graph.h"

#include <memory>
#include <string>

#include "core/logging.h"

namespace sov {

namespace {

/** Executor for one (task, platform) pair in the requested mode. */
std::unique_ptr<runtime::StageExecutor>
makeExecutor(const PlatformModel &model, TaskKind task, Platform platform,
             bool shared_gpu, Rng *rng, Fig5Latency mode)
{
    const LatencyProfile profile = model.latency(task, platform, shared_gpu);
    if (mode == Fig5Latency::Mean)
        return std::make_unique<runtime::FixedExecutor>(profile.mean());
    SOV_ASSERT(rng != nullptr);
    return std::make_unique<runtime::AnalyticExecutor>(
        [profile, rng](std::size_t) { return profile.sample(*rng); });
}

} // namespace

Fig5Stages
buildFig5Graph(runtime::StageGraph &graph, const PlatformModel &model,
               const SovPipelineConfig &config, Rng *rng, Fig5Latency mode)
{
    // GPU contention (Fig. 8) applies when localization shares the
    // discrete GPU with scene understanding.
    const bool shared = config.scene_platform == Platform::Gtx1060 &&
        config.localization_platform == Platform::Gtx1060;

    const std::string scene_hw =
        std::string("scene-") + toString(config.scene_platform);
    const std::string loc_hw =
        std::string("loc-") + toString(config.localization_platform);

    Fig5Stages ids;
    ids.sensing = graph.addStage(
        "sensing", "sensor-fpga",
        makeExecutor(model, TaskKind::Sensing, Platform::ZynqFpga,
                     false, rng, mode));
    ids.depth = graph.addStage(
        "depth", scene_hw,
        makeExecutor(model, TaskKind::DepthEstimation,
                     config.scene_platform, shared, rng, mode),
        {ids.sensing});
    ids.detection = graph.addStage(
        "detection", scene_hw,
        makeExecutor(model, TaskKind::Detection, config.scene_platform,
                     shared, rng, mode),
        {ids.sensing});
    if (config.radar_tracking) {
        // Radar tracking + spatial sync ~ 1 ms on the CPU (Sec. VI-B).
        ids.tracking = graph.addFixed("tracking", "cpu",
                                      Duration::millisF(1.0),
                                      {ids.detection});
    } else {
        // KCF baseline runs on the CPU, serialized after detection.
        ids.tracking = graph.addStage(
            "tracking", "cpu",
            makeExecutor(model, TaskKind::KcfTracking,
                         Platform::CoffeeLakeCpu, false, rng, mode),
            {ids.detection});
    }
    ids.localization = graph.addStage(
        "localization", loc_hw,
        makeExecutor(model, TaskKind::Localization,
                     config.localization_platform, shared, rng, mode),
        {ids.sensing});
    ids.planning = graph.addStage(
        "planning", "cpu",
        makeExecutor(model,
                     config.planner == PlannerKind::LaneMpc
                         ? TaskKind::MpcPlanning
                         : TaskKind::EmPlanning,
                     Platform::CoffeeLakeCpu, false, rng, mode),
        {ids.depth, ids.tracking, ids.localization});
    return ids;
}

Fig5Stages
buildFig5AcceleratorGraph(runtime::StageGraph &graph,
                          const PlatformModel &model,
                          const AcceleratorModel &accel,
                          const SovPipelineConfig &config,
                          std::size_t overlap_depth)
{
    SOV_ASSERT(overlap_depth > 0);
    // The on-chip buffer is statically partitioned across the four
    // perception engines (depth, detection, tracking, localization).
    constexpr std::size_t kEngines = 4;
    const auto accelLatency = [&](TaskKind task) {
        return accel.stageLatency(task, overlap_depth, kEngines);
    };

    Fig5Stages ids;
    // Sensing stays on the sensor SoC (deterministic mean, as in the
    // Mean-mode Fig. 5 graph).
    ids.sensing = graph.addFixed(
        "sensing", "sensor-fpga",
        model.latency(TaskKind::Sensing, Platform::ZynqFpga).mean());
    ids.depth = graph.addFixed("depth", "accel-depth",
                               accelLatency(TaskKind::DepthEstimation),
                               {ids.sensing});
    ids.detection = graph.addFixed("detection", "accel-detect",
                                   accelLatency(TaskKind::Detection),
                                   {ids.sensing});
    if (config.radar_tracking) {
        // Radar tracking + spatial sync ~ 1 ms on the CPU (Sec. VI-B).
        ids.tracking = graph.addFixed("tracking", "cpu",
                                      Duration::millisF(1.0),
                                      {ids.detection});
    } else {
        ids.tracking = graph.addFixed("tracking", "accel-track",
                                      accelLatency(TaskKind::KcfTracking),
                                      {ids.detection});
    }
    ids.localization = graph.addFixed(
        "localization", "accel-loc",
        accelLatency(TaskKind::Localization), {ids.sensing});
    ids.planning = graph.addFixed(
        "planning", "cpu",
        model.latency(config.planner == PlannerKind::LaneMpc
                          ? TaskKind::MpcPlanning
                          : TaskKind::EmPlanning,
                      Platform::CoffeeLakeCpu)
            .mean(),
        {ids.depth, ids.tracking, ids.localization});
    return ids;
}

} // namespace sov
