#include "sovpipe/closed_loop.h"

#include <cmath>

#include "core/logging.h"

namespace sov {

ClosedLoopSim::ClosedLoopSim(World &world, Polyline2 route,
                             const ClosedLoopConfig &config,
                             const SovPipelineConfig &pipeline_config,
                             Rng rng)
    : world_(world), route_(std::move(route)), config_(config),
      rng_(std::move(rng)),
      pipeline_(platform_model_, pipeline_config, rng_.fork("pipeline")),
      pipeline_exec_(sim_, pipeline_.graph()),
      vehicle_(), ecu_(sim_, vehicle_), can_(sim_),
      radar_(RadarConfig{}, rng_.fork("radar")),
      reactive_(sim_, ecu_, radar_)
{
    // Long runs release thousands of frames; stream spans into the
    // tracer instead of keeping every trace.
    pipeline_exec_.setKeepTraces(false);
    pipeline_exec_.attachTracer(&pipeline_tracer_);
    pipeline_exec_.setDeadline(config_.pipeline_deadline);
    can_.connect([this](const ControlCommand &cmd) { ecu_.onCommand(cmd); });
    reset();
}

void
ClosedLoopSim::reset()
{
    SOV_ASSERT(route_.size() >= 2);
    vehicle_.setPose(Pose2{route_.sample(0.0), route_.headingAt(0.0)});
    vehicle_.setSpeed(config_.cruise_speed);
    // Start cruising even before the first command lands.
    ActuatorState initial;
    initial.acceleration = 0.0;
    vehicle_.applyActuator(initial);
    result_ = ClosedLoopResult{};
    cycles_ = 0;
    reactive_cycles_ = 0;
    was_moving_ = false;
}

void
ClosedLoopSim::planningCycle()
{
    ++cycles_;
    if (reactive_.active())
        ++reactive_cycles_;

    if (!config_.enable_proactive)
        return;

    // Load shedding: when a latency tail backs the pipeline up, drop
    // this cycle's frame rather than queue work that would only yield
    // a stale command hundreds of milliseconds late.
    if (!config_.fixed_compute_latency &&
        pipeline_exec_.framesInFlight() >= config_.max_frames_in_flight) {
        ++result_.frames_dropped;
        return;
    }

    // Perception oracle with modelled latency: the planner sees the
    // world as it was at cycle start, and its command reaches the CAN
    // bus after the computing latency drawn from the pipeline model.
    PlannerInput input;
    input.now = sim_.now();
    input.ego_pose = vehicle_.pose();
    input.ego_speed = vehicle_.speed();
    input.reference_path = route_;
    input.speed_limit = config_.cruise_speed;
    for (const auto &obs : world_.obstaclesNear(
             vehicle_.pose().position, config_.perception_range,
             sim_.now())) {
        // Injected vision failure: the detector misses this object.
        if (config_.perception_miss_probability > 0.0 &&
            rng_.bernoulli(config_.perception_miss_probability)) {
            continue;
        }
        FusedObject object;
        object.track_id = obs.id;
        object.position = obs.positionAt(sim_.now());
        object.velocity = obs.velocity;
        object.cls = obs.cls;
        object.confidence = 1.0;
        input.objects.push_back(object);
    }

    const MpcOutput plan = planner_.plan(input);

    if (config_.fixed_compute_latency) {
        // Latency-sweep experiments bypass the pipeline graph.
        sim_.schedule(*config_.fixed_compute_latency,
                      [this, cmd = plan.command]() mutable {
                          cmd.issued_at = sim_.now();
                          can_.transmit(cmd);
                      });
        return;
    }
    // Release one Fig. 5 frame into the dataflow runtime; the command
    // reaches the CAN bus when the frame's planning stage completes.
    // Per-resource in-order issue keeps command delivery in cycle
    // order even when a frame hits a latency tail.
    pipeline_exec_.releaseFrame(
        [this, cmd = plan.command](const runtime::FrameTrace &) mutable {
            cmd.issued_at = sim_.now();
            can_.transmit(cmd);
        });
}

void
ClosedLoopSim::physicsStep()
{
    const Duration dt =
        Duration::seconds(1.0 / config_.physics_rate_hz);

    // Reactive path: the radar watch runs at sensor rate, far faster
    // than the planner (it bypasses the computing pipeline, Sec. IV).
    if (config_.enable_reactive) {
        reactive_.evaluate(world_, vehicle_.pose(), vehicle_.speed(),
                           sim_.now());
    }

    vehicle_.step(dt);

    // Gap and collision monitoring against every obstacle.
    for (const auto &obs : world_.obstacles()) {
        const OrientedBox2 box = obs.footprintAt(sim_.now());
        const OrientedBox2 ego{vehicle_.pose(), 1.3, 0.7};
        const double gap = ego.distanceTo(box);
        result_.min_gap = std::min(result_.min_gap, gap);
        if (gap <= 0.0) {
            result_.collided = true;
            sim_.stop();
            return;
        }
    }

    if (vehicle_.speed() > 0.5)
        was_moving_ = true;
    if (was_moving_ && vehicle_.stopped()) {
        result_.stopped = true;
        sim_.stop();
        return;
    }
    // Route end.
    const auto [s, off] = route_.project(vehicle_.pose().position);
    (void)off;
    if (s >= route_.length() - 1.0)
        sim_.stop();
}

ClosedLoopResult
ClosedLoopSim::run(Duration horizon)
{
    sim_.schedulePeriodic(
        Duration::seconds(1.0 / config_.planner_rate_hz),
        Duration::zero(), [this] { planningCycle(); });
    sim_.schedulePeriodic(
        Duration::seconds(1.0 / config_.physics_rate_hz),
        Duration::millisF(0.1), [this] { physicsStep(); });

    sim_.runUntil(Timestamp::origin() + horizon);

    result_.distance_travelled = vehicle_.odometer();
    result_.reactive_triggers = reactive_.triggerCount();
    result_.deadline_misses = pipeline_exec_.deadlineMisses();
    result_.reactive_fraction = cycles_
        ? static_cast<double>(reactive_cycles_) /
            static_cast<double>(cycles_)
        : 0.0;
    result_.elapsed = sim_.now() - Timestamp::origin();
    return result_;
}

} // namespace sov
