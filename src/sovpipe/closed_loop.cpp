#include "sovpipe/closed_loop.h"

#include <algorithm>
#include <cmath>

#include "core/logging.h"
#include "fault/stage_faults.h"

namespace sov {

ClosedLoopSim::ClosedLoopSim(World &world, Polyline2 route,
                             const ClosedLoopConfig &config,
                             const SovPipelineConfig &pipeline_config,
                             Rng rng)
    : world_(world), route_(std::move(route)), config_(config),
      rng_(std::move(rng)),
      pipeline_(platform_model_, pipeline_config, rng_.fork("pipeline")),
      pipeline_exec_(sim_, pipeline_.graph()),
      vehicle_(), ecu_(sim_, vehicle_), can_(sim_),
      radar_(RadarConfig{}, rng_.fork("radar")),
      reactive_(sim_, ecu_, radar_),
      own_faults_(rng_.fork("fault")),
      sensor_faults_(config_.faults)
{
    // Long runs release thousands of frames; stream samples into the
    // metric registry instead of keeping every trace.
    pipeline_exec_.setKeepTraces(false);
    pipeline_exec_.attachMetrics(&pipeline_metrics_);
    pipeline_exec_.setDeadline(config_.pipeline_deadline);
    can_.connect([this](const ControlCommand &cmd) { ecu_.onCommand(cmd); });

    // Legacy perception-miss knob, now a first-class fault channel
    // (Sec. III-C scenario 2). p = 0 creates no channel and draws
    // nothing, so fault-free runs reproduce the pre-fault-layer
    // schedule bit for bit.
    if (config_.perception_miss_probability > 0.0) {
        perception_miss_.push_back(&own_faults_.add(
            fault::perceptionMiss(config_.perception_miss_probability)));
    }

    if (config_.faults) {
        for (fault::FaultChannel *ch :
             config_.faults->channelsFor(fault::FaultTarget::Perception)) {
            if (ch->spec().mode == fault::FaultMode::Dropout)
                perception_miss_.push_back(ch);
        }
        // The reactive path polls the radar via the world oracle at
        // physics rate; its dropout channel is consulted there (one
        // draw per sweep) rather than through the model's filter hook.
        radar_dropout_ = config_.faults->find(fault::FaultTarget::Radar,
                                              fault::FaultMode::Dropout);
        if (fault::FaultChannel *loss = config_.faults->find(
                fault::FaultTarget::CanBus, fault::FaultMode::Dropout)) {
            can_.setLossFilter(fault::makeDropoutFilter(loss));
        }
        fault::installStageFaults(pipeline_.graph(), *config_.faults,
                                  [this] { return sim_.now(); });
    }

    if (config_.stage_watchdog) {
        runtime::StagePolicy policy;
        policy.timeout = config_.stage_watchdog;
        policy.max_retries = config_.stage_max_retries;
        policy.retry_backoff = config_.stage_retry_backoff;
        pipeline_exec_.setAllStagePolicies(policy);
    }

    if (config_.enable_health) {
        health_ =
            std::make_unique<health::HealthMonitor>(config_.degradation);
        pipeline_exec_.setHealthListener(health_.get());
        // Camera frames arrive once per planning cycle; five silent
        // cycles mark the proactive front-end stale.
        health::HeartbeatSpec camera;
        camera.expected_period =
            Duration::seconds(1.0 / config_.planner_rate_hz);
        camera.stale_after =
            Duration::seconds(5.0 / config_.planner_rate_hz);
        health_->watchSensor("camera", camera, sim_.now());
        // The radar guards the reactive path: silence beyond 200 ms
        // means the last line of defense is blind -> SAFE_STOP.
        health::HeartbeatSpec radar;
        radar.expected_period =
            Duration::seconds(1.0 / config_.physics_rate_hz);
        radar.stale_after = Duration::millisF(200.0);
        radar.reactive_critical = true;
        health_->watchSensor("radar", radar, sim_.now());
    }

    reset();
}

void
ClosedLoopSim::reset()
{
    SOV_ASSERT(route_.size() >= 2);
    vehicle_.setPose(Pose2{route_.sample(0.0), route_.headingAt(0.0)});
    vehicle_.setSpeed(config_.cruise_speed);
    // Start cruising even before the first command lands.
    ActuatorState initial;
    initial.acceleration = 0.0;
    vehicle_.applyActuator(initial);
    result_ = ClosedLoopResult{};
    prev_gaps_.clear();
    cycles_ = 0;
    reactive_cycles_ = 0;
    proactive_cycles_ = 0;
    was_moving_ = false;
    safe_stop_commanded_ = false;
    last_camera_ = CameraSnapshot{};
    pending_release_.reset();
    transitions_traced_ = 0;
    reactive_triggers_traced_ = 0;
}

void
ClosedLoopSim::setTraceRecorder(obs::TraceRecorder *recorder)
{
    recorder_ = recorder;
    pipeline_exec_.attachTrace(recorder);
    own_faults_.setTraceRecorder(recorder);
    if (config_.faults)
        config_.faults->setTraceRecorder(recorder);
    if (!recorder_)
        return;
    trace_ids_.track_loop = recorder_->intern("loop");
    trace_ids_.cat_sched = recorder_->intern("sched");
    trace_ids_.cat_fault = recorder_->intern("fault");
    trace_ids_.cat_health = recorder_->intern("health");
    trace_ids_.load_shed = recorder_->intern("load_shed");
    trace_ids_.frame_deferred = recorder_->intern("frame_deferred");
    trace_ids_.camera_dropout = recorder_->intern("camera_dropout");
    trace_ids_.radar_dropout = recorder_->intern("radar_dropout");
    trace_ids_.safe_stop = recorder_->intern("safe_stop");
    trace_ids_.reactive_trigger = recorder_->intern("reactive_trigger");
    trace_ids_.frames_in_flight = recorder_->intern("frames_in_flight");
    for (int level = 0; level < 4; ++level) {
        trace_ids_.level_names[level] = recorder_->intern(
            health::toString(static_cast<health::DegradationLevel>(level)));
    }
}

void
ClosedLoopSim::traceNewTransitions()
{
    if (!recorder_ || !health_)
        return;
    const auto &transitions = health_->degradation().transitions();
    for (; transitions_traced_ < transitions.size();
         ++transitions_traced_) {
        const auto &[at, level] = transitions[transitions_traced_];
        recorder_->instant(
            trace_ids_.level_names[static_cast<int>(level)],
            trace_ids_.cat_health, trace_ids_.track_loop, at);
    }
}

void
ClosedLoopSim::dispatchCommand(const ControlCommand &command)
{
    ControlCommand cmd = command;
    cmd.issued_at = sim_.now();
    can_.transmit(cmd);
}

void
ClosedLoopSim::planningCycle()
{
    const Timestamp now = sim_.now();
    // Step the agent timeline to this cycle's epoch: behavioral
    // agents observe the ego as of now. Constant-velocity worlds are
    // unaffected (their published rows never change), keeping legacy
    // scenarios bit-identical.
    world_.advanceTo(now, vehicle_.pose(), vehicle_.speed());
    ++cycles_;
    if (reactive_.active())
        ++reactive_cycles_;
    if (recorder_ && !config_.fixed_compute_latency) {
        recorder_->counter(
            trace_ids_.frames_in_flight, trace_ids_.track_loop, now,
            static_cast<double>(pipeline_exec_.framesInFlight()));
    }

    // Supervision cycle: fold watchdog events and sensor heartbeats
    // into the degradation state machine before planning.
    double speed_limit = config_.cruise_speed;
    bool proactive_allowed = config_.enable_proactive;
    if (health_) {
        health_->evaluate(now, config_.fixed_compute_latency
                                   ? 0
                                   : pipeline_exec_.framesInFlight());
        traceNewTransitions();
        const health::DegradationManager &mgr = health_->degradation();
        if (mgr.safeStopRequested()) {
            // The reactive path itself is untrusted: stop now, once,
            // through the ECU override (no pipeline in the way).
            if (!safe_stop_commanded_) {
                safe_stop_commanded_ = true;
                if (recorder_) {
                    recorder_->instant(trace_ids_.safe_stop,
                                       trace_ids_.cat_health,
                                       trace_ids_.track_loop, now);
                }
                ecu_.emergencyBrake();
            }
            return;
        }
        speed_limit = mgr.speedCap(config_.cruise_speed);
        if (!mgr.proactiveEnabled())
            proactive_allowed = false;
    }

    if (!proactive_allowed)
        return;

    // Camera-side fault disposition for this cycle's frame.
    fault::SensorDisposition cam =
        sensor_faults_.evaluate(fault::FaultTarget::Camera, now);
    if (cam.drop) {
        // The frame never arrives: no heartbeat, no planning. The
        // monitor sees the silence and degrades after the budget.
        ++result_.sensor_dropouts;
        if (recorder_) {
            recorder_->instant(trace_ids_.camera_dropout,
                               trace_ids_.cat_fault,
                               trace_ids_.track_loop, now);
        }
        return;
    }
    if (health_)
        health_->noteHeartbeat("camera", now);
    ++proactive_cycles_;

    // Congestion disposition: when a latency tail backs the pipeline
    // up, sync mode drops this cycle's frame rather than queue work
    // that would only yield a stale command hundreds of milliseconds
    // late; async mode still plans but parks the frame under
    // backpressure (admitted by the completion that frees a slot).
    bool defer = false;
    if (!config_.fixed_compute_latency &&
        pipeline_exec_.framesInFlight() >= config_.max_frames_in_flight) {
        if (config_.pipeline_mode == PipelineMode::Sync) {
            ++result_.frames_dropped;
            if (recorder_) {
                recorder_->instant(trace_ids_.load_shed,
                                   trace_ids_.cat_sched,
                                   trace_ids_.track_loop, now);
            }
            return;
        }
        defer = true;
    }

    // Perception oracle with modelled latency: the planner sees the
    // world as it was at cycle start, and its command reaches the CAN
    // bus after the computing latency drawn from the pipeline model.
    PlannerInput input;
    input.now = now;
    input.ego_pose = vehicle_.pose();
    input.ego_speed = vehicle_.speed();
    input.reference_path = route_;
    input.speed_limit = std::min(config_.cruise_speed, speed_limit);
    if (cam.freeze && last_camera_.valid) {
        // Frozen sensor: the planner acts on the previous frame's
        // world view (objects have moved on; the plan is stale).
        input.objects = last_camera_.objects;
    } else {
        const WorldSnapshot snap = world_.snapshot();
        for (const auto &obs : snap.obstaclesNear(
                 vehicle_.pose().position, config_.perception_range,
                 now)) {
            // Injected vision failure: the detector misses this
            // object (each channel decides on its own stream).
            bool missed = false;
            for (fault::FaultChannel *ch : perception_miss_) {
                if (ch->shouldInject(now))
                    missed = true;
            }
            if (missed)
                continue;
            FusedObject object;
            object.track_id = obs.id;
            object.position = obs.positionAt(now);
            object.velocity = obs.velocity;
            object.cls = obs.cls;
            object.confidence = 1.0;
            if (cam.corruption) {
                object.position.x() =
                    cam.corruption->corrupt(object.position.x());
                object.position.y() =
                    cam.corruption->corrupt(object.position.y());
            }
            input.objects.push_back(object);
        }
        last_camera_.objects = input.objects;
        last_camera_.valid = true;
    }

    const MpcOutput plan = planner_.plan(input);

    if (config_.fixed_compute_latency) {
        // Latency-sweep experiments bypass the pipeline graph.
        sim_.schedule(*config_.fixed_compute_latency + cam.extra_latency,
                      [this, cmd = plan.command] { dispatchCommand(cmd); });
        return;
    }
    if (defer) {
        // Async backpressure: park this cycle's plan until a window
        // slot frees. Latest wins — a plan superseded before admission
        // is the async analogue of a shed frame.
        ++result_.frames_deferred;
        if (pending_release_)
            ++result_.frames_dropped;
        pending_release_ = plan.command;
        if (recorder_) {
            recorder_->instant(trace_ids_.frame_deferred,
                               trace_ids_.cat_sched, trace_ids_.track_loop,
                               now);
        }
        return;
    }
    if (cam.extra_latency > Duration::zero()) {
        // Sensor latency spike: the frame enters the pipeline late.
        sim_.schedule(cam.extra_latency, [this, cmd = plan.command] {
            releasePipelineFrame(cmd);
        });
        return;
    }
    // Release one Fig. 5 frame into the dataflow runtime; the command
    // reaches the CAN bus when the frame's planning stage completes.
    // Per-resource in-order issue keeps command delivery in cycle
    // order even when a frame hits a latency tail. An abandoned frame
    // (watchdog retries exhausted) never fires the callback with a
    // command transmit — see releasePipelineFrame.
    releasePipelineFrame(plan.command);
}

void
ClosedLoopSim::releasePipelineFrame(const ControlCommand &command)
{
    pipeline_exec_.releaseFrame(
        [this, cmd = command](const runtime::FrameTrace &trace) {
            // skip-frame: an abandoned frame transmits no stale/garbage
            // command, but its retirement still frees a window slot.
            if (!trace.failed)
                dispatchCommand(cmd);
            pumpPending();
        });
}

void
ClosedLoopSim::pumpPending()
{
    if (!pending_release_)
        return;
    if (pipeline_exec_.framesInFlight() >= config_.max_frames_in_flight)
        return;
    const ControlCommand cmd = *pending_release_;
    pending_release_.reset();
    releasePipelineFrame(cmd);
}

void
ClosedLoopSim::physicsStep()
{
    const Duration dt =
        Duration::seconds(1.0 / config_.physics_rate_hz);

    // Step the agent timeline before any sensing this step.
    world_.advanceTo(sim_.now(), vehicle_.pose(), vehicle_.speed());
    const WorldSnapshot snap = world_.snapshot();

    // Reactive path: the radar watch runs at sensor rate, far faster
    // than the planner (it bypasses the computing pipeline, Sec. IV).
    // Once SAFE_STOP latched the override, nothing may release it.
    if (config_.enable_reactive && !safe_stop_commanded_) {
        const bool radar_out =
            radar_dropout_ && radar_dropout_->shouldInject(sim_.now());
        if (radar_out) {
            ++result_.sensor_dropouts;
            if (recorder_) {
                recorder_->instant(trace_ids_.radar_dropout,
                                   trace_ids_.cat_fault,
                                   trace_ids_.track_loop, sim_.now());
            }
        } else {
            if (health_)
                health_->noteHeartbeat("radar", sim_.now());
            reactive_.evaluate(snap, vehicle_.pose(), vehicle_.speed(),
                               sim_.now());
            if (recorder_) {
                // Surface each new reactive-brake engagement as an
                // instant on the loop lane.
                const std::uint64_t triggers = reactive_.triggerCount();
                for (; reactive_triggers_traced_ < triggers;
                     ++reactive_triggers_traced_) {
                    recorder_->instant(trace_ids_.reactive_trigger,
                                       trace_ids_.cat_sched,
                                       trace_ids_.track_loop, sim_.now());
                }
            }
        }
    }

    vehicle_.step(dt);

    // Gap and collision monitoring against every obstacle, plus the
    // triage facts (offending agent, time-to-collision) the scenario
    // fuzzer mines for near misses.
    const auto &obstacles = snap.obstacles();
    if (prev_gaps_.size() != obstacles.size())
        prev_gaps_.assign(obstacles.size(), 1e18);
    for (std::size_t i = 0; i < obstacles.size(); ++i) {
        const Obstacle &obs = obstacles[i];
        const OrientedBox2 box = obs.footprintAt(sim_.now());
        const OrientedBox2 ego{vehicle_.pose(), 1.3, 0.7};
        const double gap = ego.distanceTo(box);
        if (gap < result_.min_gap) {
            result_.min_gap = gap;
            result_.nearest_obstacle = obs.id;
        }
        // TTC estimate from the closing rate over one physics step.
        const double closing = (prev_gaps_[i] - gap) / dt.toSeconds();
        if (prev_gaps_[i] < 1e17 && closing > 1e-9 && gap > 0.0) {
            result_.min_ttc =
                std::min(result_.min_ttc, gap / closing);
        }
        prev_gaps_[i] = gap;
        if (gap <= 0.0) {
            result_.collided = true;
            result_.min_ttc = 0.0;
            result_.nearest_obstacle = obs.id;
            sim_.stop();
            return;
        }
    }

    if (vehicle_.speed() > 0.5)
        was_moving_ = true;
    if (was_moving_ && vehicle_.stopped()) {
        result_.stopped = true;
        sim_.stop();
        return;
    }
    // Route end.
    const auto [s, off] = route_.project(vehicle_.pose().position);
    (void)off;
    if (s >= route_.length() - 1.0)
        sim_.stop();
}

ClosedLoopResult
ClosedLoopSim::run(Duration horizon)
{
    sim_.schedulePeriodic(
        Duration::seconds(1.0 / config_.planner_rate_hz),
        Duration::zero(), [this] { planningCycle(); });
    sim_.schedulePeriodic(
        Duration::seconds(1.0 / config_.physics_rate_hz),
        Duration::millisF(0.1), [this] { physicsStep(); });

    sim_.runUntil(Timestamp::origin() + horizon);
    traceNewTransitions();

    result_.distance_travelled = vehicle_.odometer();
    result_.reactive_triggers = reactive_.triggerCount();
    result_.deadline_misses = pipeline_exec_.deadlineMisses();
    result_.pipeline_frames_failed = pipeline_exec_.framesFailed();
    result_.can_frames_lost = can_.framesLost();
    result_.reactive_fraction = cycles_
        ? static_cast<double>(reactive_cycles_) /
            static_cast<double>(cycles_)
        : 0.0;
    result_.availability = cycles_
        ? static_cast<double>(proactive_cycles_) /
            static_cast<double>(cycles_)
        : 0.0;
    if (health_) {
        result_.final_level = health_->degradation().level();
        result_.worst_level = health_->degradation().worstLevel();
    }
    result_.elapsed = sim_.now() - Timestamp::origin();
    return result_;
}

} // namespace sov
