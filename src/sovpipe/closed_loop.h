/**
 * @file
 * Closed-loop SoV simulation: the full proactive pipeline (perception
 * with modelled compute latency -> MPC -> CAN -> ECU -> actuator) plus
 * the reactive safety path, driving the vehicle plant through a world.
 *
 * The proactive compute latency is not a private draw: each planning
 * cycle releases one frame of the shared Fig. 5 StageGraph into a
 * runtime::DataflowExecutor bound to the simulation clock, and the
 * actuation command transmits from the frame-completion event — so the
 * closed-loop experiments execute exactly the pipeline that Fig. 10
 * characterizes, stage spans, resource contention and all.
 *
 * Used for the end-to-end safety experiments: obstacle-avoidance
 * distance vs computing latency (Fig. 3a validated in closed loop),
 * the reactive path's 4.1 m stopping capability (Sec. IV), and the
 * >90% proactive-time statistic (Sec. V-C).
 */
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "core/rng.h"
#include "fault/fault_plan.h"
#include "fault/sensor_faults.h"
#include "health/health_monitor.h"
#include "planning/mpc.h"
#include "runtime/dataflow.h"
#include "sensors/radar.h"
#include "sim/simulator.h"
#include "sovpipe/pipeline_model.h"
#include "vehicle/can_bus.h"
#include "vehicle/ecu.h"
#include "vehicle/reactive.h"

namespace sov {

/**
 * How planning cycles feed the Fig. 5 pipeline when it is congested.
 *
 * Sync is the classic load-shedding loop: a cycle whose frame finds
 * max_frames_in_flight frames already in flight drops it outright.
 * Async mirrors DataflowExecutor::runAsync's admission window inside
 * the closed loop: the congested cycle still plans, but its frame is
 * *deferred* — parked until the completion that frees a window slot
 * admits it (backpressure instead of loss). A newer cycle supersedes
 * an un-admitted deferral (the stale plan is dropped), so at most one
 * frame waits and commands never act on state older than one cycle.
 * Availability and degradation accounting are identical in both modes.
 */
enum class PipelineMode
{
    Sync,
    Async,
};

/** Closed-loop simulation settings. */
struct ClosedLoopConfig
{
    double cruise_speed = 5.6;       //!< m/s (Sec. III-A typical)
    double planner_rate_hz = 10.0;   //!< throughput requirement
    double physics_rate_hz = 200.0;
    double perception_range = 40.0;  //!< oracle-perception radius
    bool enable_reactive = true;
    bool enable_proactive = true;
    /** Failure injection (Sec. III-C, scenario 2: "vision algorithms
     *  produce wrong results, e.g., missing an object"): probability
     *  that the perception stage drops an object this cycle. */
    double perception_miss_probability = 0.0;
    /** Override the pipeline model with a fixed compute latency
     *  (for latency-sweep experiments); unset = run the Fig. 5
     *  dataflow graph on the simulation clock. */
    std::optional<Duration> fixed_compute_latency;
    /** Per-frame pipeline deadline (from release to planning done);
     *  unset = only count, never enforce. Misses are reported in
     *  ClosedLoopResult::deadline_misses. */
    std::optional<Duration> pipeline_deadline;
    /** Load shedding: a planning cycle drops its frame instead of
     *  releasing it when this many frames are already in flight.
     *  Detection latency tails would otherwise build a backlog and
     *  every later command would act on stale state; real pipelines
     *  shed sensor frames under congestion. Default allows normal
     *  pipelining (two frames overlap at 10 Hz) plus one tail frame. */
    std::uint64_t max_frames_in_flight = 3;
    /** Fault scenario to run under (Sec. III-C). Not owned; must
     *  outlive the sim. nullptr = fault-free. A plan whose channels
     *  never fire leaves the run bit-identical to a fault-free one. */
    fault::FaultPlan *faults = nullptr;
    /** Run the HealthMonitor + DegradationManager (one supervision
     *  cycle per planning cycle). Off = faults still inject but
     *  nothing degrades gracefully — the "no supervision" baseline. */
    bool enable_health = false;
    health::DegradationPolicy degradation;
    /** Watchdog timeout applied to every pipeline stage (truncates
     *  hangs and latency tails); unset = unsupervised stages. */
    std::optional<Duration> stage_watchdog;
    /** Retries per stage attempt before the frame is abandoned. */
    std::uint32_t stage_max_retries = 1;
    /** Pause between a failed stage attempt and its retry (restart
     *  cost); zero keeps the pre-backoff supervised schedule. */
    Duration stage_retry_backoff = Duration::zero();
    /** Congestion behavior of the proactive pipeline (see
     *  PipelineMode): shed the frame (Sync) or defer it under
     *  backpressure (Async). */
    PipelineMode pipeline_mode = PipelineMode::Sync;
};

/** Outcome of a scenario run. */
struct ClosedLoopResult
{
    bool collided = false;
    bool stopped = false;
    /** Minimum gap between the vehicle front and any obstacle. */
    double min_gap = 1e18;
    double distance_travelled = 0.0;
    std::uint64_t reactive_triggers = 0;
    /** Fraction of cycles in which the reactive path was latched. */
    double reactive_fraction = 0.0;
    /** Pipeline frames that blew config.pipeline_deadline. */
    std::uint64_t deadline_misses = 0;
    /** Planning cycles shed because the pipeline was congested. In
     *  async mode a frame is only counted here when a newer cycle
     *  superseded it before it was admitted. */
    std::uint64_t frames_dropped = 0;
    /** Async mode: cycles whose frame was parked under backpressure
     *  instead of released immediately (zero in sync mode). */
    std::uint64_t frames_deferred = 0;
    /** Frames abandoned after a stage exhausted its watchdog retries. */
    std::uint64_t pipeline_frames_failed = 0;
    /** Command frames eaten by an injected CAN loss fault. */
    std::uint64_t can_frames_lost = 0;
    /** Sensor samples (camera frames, radar sweeps) lost to dropout. */
    std::uint64_t sensor_dropouts = 0;
    /** Degradation level at run end / worst reached (NOMINAL when
     *  health monitoring is off). */
    health::DegradationLevel final_level = health::DegradationLevel::Nominal;
    health::DegradationLevel worst_level = health::DegradationLevel::Nominal;
    /** Fraction of planning cycles at proactive capability (camera
     *  frame delivered and the degradation level allowed the proactive
     *  pipeline to drive) — the paper's >90% proactive-time statistic
     *  under fault load. */
    double availability = 0.0;
    Duration elapsed;

    // Near-miss triage facts (scenario-fuzzer mining; never part of
    // the hashed ScenarioOutcome row, so adding them cannot perturb
    // existing fleet fingerprints).
    /** Minimum time-to-collision observed against any obstacle while
     *  on a closing course, seconds; 1e18 when never closing. Zero on
     *  a collision. */
    double min_ttc = 1e18;
    /** Id of the obstacle/agent that produced min_gap. */
    ObstacleId nearest_obstacle = 0;
};

/** The closed-loop simulator. */
class ClosedLoopSim
{
  public:
    /**
     * @param world The environment (obstacles may be added later).
     * @param route The reference path the planner tracks.
     */
    ClosedLoopSim(World &world, Polyline2 route,
                  const ClosedLoopConfig &config,
                  const SovPipelineConfig &pipeline_config, Rng rng);

    /** Place the vehicle at the route start, at cruise speed. */
    void reset();

    /**
     * Run until the vehicle stops (after having moved), collides,
     * reaches the route end, or @p horizon elapses.
     */
    ClosedLoopResult run(Duration horizon);

    VehicleDynamics &vehicle() { return vehicle_; }
    World &world() { return world_; }

    /** Per-stage durations and queueing of the proactive pipeline
     *  frames executed so far (histograms named after the Fig. 5
     *  stages, plus "queue:<stage>" and "total"). */
    const obs::MetricRegistry &pipelineMetrics() const
    {
        return pipeline_metrics_;
    }

    /**
     * Stream the run into @p recorder (nullptr detaches): every Fig. 5
     * stage execution as a span on its resource lane, frame spans,
     * and instants for load shedding, sensor dropouts, fault
     * injections, degradation transitions and the safe-stop command.
     * Call before run(); purely observational — a traced run is
     * bit-identical to an untraced one.
     */
    void setTraceRecorder(obs::TraceRecorder *recorder);

    /** The health monitor, when config.enable_health is set. */
    const health::HealthMonitor *healthMonitor() const
    {
        return health_.get();
    }

  private:
    /** Last camera frame delivered to the planner (Freeze replays it). */
    struct CameraSnapshot
    {
        std::vector<FusedObject> objects;
        bool valid = false;
    };

    void planningCycle();
    void physicsStep();
    void dispatchCommand(const ControlCommand &command);
    /** Release a frame whose completion transmits @p command (and, in
     *  async mode, admits any deferred frame). */
    void releasePipelineFrame(const ControlCommand &command);
    /** Async mode: admit the deferred frame if the window has room. */
    void pumpPending();
    /** Emit any degradation transitions not yet in the trace. */
    void traceNewTransitions();

    World &world_;
    Polyline2 route_;
    ClosedLoopConfig config_;
    Rng rng_;

    Simulator sim_;
    PlatformModel platform_model_;
    SovPipelineModel pipeline_;
    /** Executes pipeline_.graph() on sim_; planning cycles release
     *  frames and commands transmit on frame completion. */
    runtime::DataflowExecutor pipeline_exec_;
    obs::MetricRegistry pipeline_metrics_;
    VehicleDynamics vehicle_;
    Ecu ecu_;
    CanBus can_;
    RadarModel radar_;
    ReactivePath reactive_;
    MpcPlanner planner_;

    // Fault + health wiring.
    /** Holds the legacy perception_miss_probability knob as a real
     *  fault channel; forked off rng_ so constructing it never
     *  perturbs the simulation streams. */
    fault::FaultPlan own_faults_;
    /** All Perception/Dropout channels (legacy + external plan). */
    std::vector<fault::FaultChannel *> perception_miss_;
    fault::SensorFaultHub sensor_faults_;
    fault::FaultChannel *radar_dropout_ = nullptr;
    std::unique_ptr<health::HealthMonitor> health_;
    CameraSnapshot last_camera_;
    /** Async mode: the command of the one frame parked under
     *  backpressure (latest wins; see PipelineMode). */
    std::optional<ControlCommand> pending_release_;

    // Trace wiring (all optional; inert when recorder_ is null).
    obs::TraceRecorder *recorder_ = nullptr;
    /** Interned obs names for the sim-level events. */
    struct TraceIds
    {
        obs::NameId track_loop = 0;
        obs::NameId cat_sched = 0;
        obs::NameId cat_fault = 0;
        obs::NameId cat_health = 0;
        obs::NameId load_shed = 0;
        obs::NameId frame_deferred = 0;
        obs::NameId camera_dropout = 0;
        obs::NameId radar_dropout = 0;
        obs::NameId safe_stop = 0;
        obs::NameId reactive_trigger = 0;
        obs::NameId frames_in_flight = 0;
        obs::NameId level_names[4] = {0, 0, 0, 0};
    } trace_ids_;
    std::size_t transitions_traced_ = 0;
    std::uint64_t reactive_triggers_traced_ = 0;

    // Run bookkeeping.
    ClosedLoopResult result_;
    /** Previous physics step's gap per obstacle (index-aligned with
     *  world obstacles), for the TTC closing-rate estimate. */
    std::vector<double> prev_gaps_;
    std::uint64_t cycles_ = 0;
    std::uint64_t reactive_cycles_ = 0;
    std::uint64_t proactive_cycles_ = 0;
    bool was_moving_ = false;
    bool safe_stop_commanded_ = false;
};

} // namespace sov
