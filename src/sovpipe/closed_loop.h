/**
 * @file
 * Closed-loop SoV simulation: the full proactive pipeline (perception
 * with modelled compute latency -> MPC -> CAN -> ECU -> actuator) plus
 * the reactive safety path, driving the vehicle plant through a world.
 *
 * The proactive compute latency is not a private draw: each planning
 * cycle releases one frame of the shared Fig. 5 StageGraph into a
 * runtime::DataflowExecutor bound to the simulation clock, and the
 * actuation command transmits from the frame-completion event — so the
 * closed-loop experiments execute exactly the pipeline that Fig. 10
 * characterizes, stage spans, resource contention and all.
 *
 * Used for the end-to-end safety experiments: obstacle-avoidance
 * distance vs computing latency (Fig. 3a validated in closed loop),
 * the reactive path's 4.1 m stopping capability (Sec. IV), and the
 * >90% proactive-time statistic (Sec. V-C).
 */
#pragma once

#include <optional>

#include "core/rng.h"
#include "planning/mpc.h"
#include "runtime/dataflow.h"
#include "sensors/radar.h"
#include "sim/simulator.h"
#include "sovpipe/pipeline_model.h"
#include "vehicle/can_bus.h"
#include "vehicle/ecu.h"
#include "vehicle/reactive.h"

namespace sov {

/** Closed-loop simulation settings. */
struct ClosedLoopConfig
{
    double cruise_speed = 5.6;       //!< m/s (Sec. III-A typical)
    double planner_rate_hz = 10.0;   //!< throughput requirement
    double physics_rate_hz = 200.0;
    double perception_range = 40.0;  //!< oracle-perception radius
    bool enable_reactive = true;
    bool enable_proactive = true;
    /** Failure injection (Sec. III-C, scenario 2: "vision algorithms
     *  produce wrong results, e.g., missing an object"): probability
     *  that the perception stage drops an object this cycle. */
    double perception_miss_probability = 0.0;
    /** Override the pipeline model with a fixed compute latency
     *  (for latency-sweep experiments); unset = run the Fig. 5
     *  dataflow graph on the simulation clock. */
    std::optional<Duration> fixed_compute_latency;
    /** Per-frame pipeline deadline (from release to planning done);
     *  unset = only count, never enforce. Misses are reported in
     *  ClosedLoopResult::deadline_misses. */
    std::optional<Duration> pipeline_deadline;
    /** Load shedding: a planning cycle drops its frame instead of
     *  releasing it when this many frames are already in flight.
     *  Detection latency tails would otherwise build a backlog and
     *  every later command would act on stale state; real pipelines
     *  shed sensor frames under congestion. Default allows normal
     *  pipelining (two frames overlap at 10 Hz) plus one tail frame. */
    std::uint64_t max_frames_in_flight = 3;
};

/** Outcome of a scenario run. */
struct ClosedLoopResult
{
    bool collided = false;
    bool stopped = false;
    /** Minimum gap between the vehicle front and any obstacle. */
    double min_gap = 1e18;
    double distance_travelled = 0.0;
    std::uint64_t reactive_triggers = 0;
    /** Fraction of cycles in which the reactive path was latched. */
    double reactive_fraction = 0.0;
    /** Pipeline frames that blew config.pipeline_deadline. */
    std::uint64_t deadline_misses = 0;
    /** Planning cycles shed because the pipeline was congested. */
    std::uint64_t frames_dropped = 0;
    Duration elapsed;
};

/** The closed-loop simulator. */
class ClosedLoopSim
{
  public:
    /**
     * @param world The environment (obstacles may be added later).
     * @param route The reference path the planner tracks.
     */
    ClosedLoopSim(World &world, Polyline2 route,
                  const ClosedLoopConfig &config,
                  const SovPipelineConfig &pipeline_config, Rng rng);

    /** Place the vehicle at the route start, at cruise speed. */
    void reset();

    /**
     * Run until the vehicle stops (after having moved), collides,
     * reaches the route end, or @p horizon elapses.
     */
    ClosedLoopResult run(Duration horizon);

    VehicleDynamics &vehicle() { return vehicle_; }
    World &world() { return world_; }

    /** Per-stage spans and queueing of the proactive pipeline frames
     *  executed so far (stages of the shared Fig. 5 graph). */
    const LatencyTracer &pipelineTracer() const { return pipeline_tracer_; }

  private:
    void planningCycle();
    void physicsStep();

    World &world_;
    Polyline2 route_;
    ClosedLoopConfig config_;
    Rng rng_;

    Simulator sim_;
    PlatformModel platform_model_;
    SovPipelineModel pipeline_;
    /** Executes pipeline_.graph() on sim_; planning cycles release
     *  frames and commands transmit on frame completion. */
    runtime::DataflowExecutor pipeline_exec_;
    LatencyTracer pipeline_tracer_;
    VehicleDynamics vehicle_;
    Ecu ecu_;
    CanBus can_;
    RadarModel radar_;
    ReactivePath reactive_;
    MpcPlanner planner_;

    // Run bookkeeping.
    ClosedLoopResult result_;
    std::uint64_t cycles_ = 0;
    std::uint64_t reactive_cycles_ = 0;
    bool was_moving_ = false;
};

} // namespace sov
