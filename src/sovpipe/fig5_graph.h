/**
 * @file
 * THE Fig. 5 pipeline, expressed once as a runtime::StageGraph.
 *
 * Per frame: sensing feeds perception; within perception, localization
 * runs parallel to scene understanding (depth || detection serialized
 * on the scene platform, tracking after detection); planning consumes
 * both branches. Every consumer of the SoV pipeline — the Fig. 10
 * latency characterization, the pipelined throughput run, and the
 * closed-loop safety experiments — builds its graph through this
 * function, so the DAG cannot drift between experiments.
 *
 * Resource lanes: the scene-understanding stages share one lane (the
 * accelerator they are mapped to) and so serialize; localization gets
 * its own lane even when mapped to the same physical GPU, because the
 * paper models GPU sharing as the Fig. 8 contention multiplier on the
 * kernels' latency distributions, not as time-slicing.
 */
#pragma once

#include <cstddef>

#include "core/kernels.h"
#include "core/rng.h"
#include "platform/accelerator.h"
#include "platform/platform_model.h"
#include "runtime/stage_graph.h"

namespace sov {

/** Which planner runs (MPC lane-level vs EM-style fine-grained). */
enum class PlannerKind { LaneMpc, EmStyle };

/** Pipeline configuration: the algorithm-to-hardware mapping. */
struct SovPipelineConfig
{
    Platform scene_platform = Platform::Gtx1060;
    Platform localization_platform = Platform::ZynqFpga;
    PlannerKind planner = PlannerKind::LaneMpc;
    /** Radar replaces KCF tracking (Sec. VI-B); if false the KCF
     *  baseline runs serialized after detection. */
    bool radar_tracking = true;
    double frame_rate_hz = 10.0; //!< pipeline cadence (Sec. III-A)
    /** Kernel tier the stack's perception kernels run at when a
     *  consumer executes real kernels (stereo/detector/ICP); the
     *  modelled latency distributions are tier-independent, so for
     *  model-driven runs this is recorded in bench metadata but does
     *  not perturb outcomes. Defaults to the production Simd tier. */
    KernelBackend backend = defaultKernelBackend();
};

/** Stage ids of the built graph, for span lookups. */
struct Fig5Stages
{
    runtime::StageId sensing = 0;
    runtime::StageId depth = 0;
    runtime::StageId detection = 0;
    runtime::StageId tracking = 0;
    runtime::StageId localization = 0;
    runtime::StageId planning = 0;
};

/** How stage durations are produced. */
enum class Fig5Latency
{
    Sampled, //!< draw from the calibrated distributions (needs rng)
    Mean,    //!< deterministic analytic means (throughput runs)
};

/**
 * Append the Fig. 5 stages to @p graph.
 * @param rng Stream the Sampled executors draw from; must outlive the
 *        graph. May be nullptr in Mean mode.
 */
Fig5Stages buildFig5Graph(runtime::StageGraph &graph,
                          const PlatformModel &model,
                          const SovPipelineConfig &config, Rng *rng,
                          Fig5Latency mode = Fig5Latency::Sampled);

/**
 * Accelerator-mapped variant of the same DAG: each perception stage
 * runs on its own dedicated dataflow engine (lanes "accel-depth",
 * "accel-detect", "accel-track", "accel-loc"), so depth and detection
 * no longer serialize on a shared scene platform and successive frames
 * stream through the engines. Stage durations are the deterministic
 * AcceleratorModel latencies — issue + compute + the spill penalty of
 * keeping @p overlap_depth frames' working sets resident. Sensing
 * stays on the sensor SoC and planning on the CPU (analytic means), so
 * the comparison against buildFig5Graph isolates the perception
 * mapping.
 */
Fig5Stages buildFig5AcceleratorGraph(runtime::StageGraph &graph,
                                     const PlatformModel &model,
                                     const AcceleratorModel &accel,
                                     const SovPipelineConfig &config,
                                     std::size_t overlap_depth = 2);

} // namespace sov
