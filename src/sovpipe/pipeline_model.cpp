#include "sovpipe/pipeline_model.h"

#include <algorithm>

namespace sov {

FrameLatency
SovPipelineModel::sampleFrame()
{
    const bool shared =
        config_.scene_platform == Platform::Gtx1060 &&
        config_.localization_platform == Platform::Gtx1060;

    FrameLatency frame;
    frame.sensing = model_
        .latency(TaskKind::Sensing, Platform::ZynqFpga)
        .sample(rng_);

    // Scene understanding: depth || detection on the same platform
    // (serialized by the resource), tracking after detection.
    const Duration depth = model_
        .latency(TaskKind::DepthEstimation, config_.scene_platform, shared)
        .sample(rng_);
    const Duration detection = model_
        .latency(TaskKind::Detection, config_.scene_platform, shared)
        .sample(rng_);
    Duration tracking = Duration::zero();
    if (!config_.radar_tracking) {
        // KCF baseline runs on the CPU, serialized after detection.
        tracking = model_
            .latency(TaskKind::KcfTracking, Platform::CoffeeLakeCpu)
            .sample(rng_);
    } else {
        // Radar tracking + spatial sync ~ 1 ms on the CPU (Sec. VI-B).
        tracking = Duration::millisF(1.0);
    }
    const Duration scene = depth + detection + tracking;

    const Duration localization = model_
        .latency(TaskKind::Localization, config_.localization_platform,
                 shared)
        .sample(rng_);

    frame.perception = std::max(scene, localization);

    frame.planning = model_
        .latency(config_.planner == PlannerKind::LaneMpc
                     ? TaskKind::MpcPlanning
                     : TaskKind::EmPlanning,
                 Platform::CoffeeLakeCpu)
        .sample(rng_);
    return frame;
}

PipelineStats
SovPipelineModel::characterize(std::size_t frames)
{
    PipelineStats stats;
    std::vector<FrameLatency> samples;
    samples.reserve(frames);
    for (std::size_t i = 0; i < frames; ++i) {
        const FrameLatency f = sampleFrame();
        samples.push_back(f);
        stats.tracer.record("sensing", f.sensing);
        stats.tracer.record("perception", f.perception);
        stats.tracer.record("planning", f.planning);
        stats.tracer.recordTotal(f.total());
    }
    stats.best_case = Duration::millisF(
        stats.tracer.percentileMs("total", 0.0));
    stats.mean = Duration::millisF(stats.tracer.meanMs("total"));
    stats.p99 = Duration::millisF(
        stats.tracer.percentileMs("total", 99.0));

    // Pipelined throughput via the TaskGraph executor: stage times are
    // the mean stage latencies; the slowest stage bounds throughput,
    // capped by the frame release rate.
    TaskGraph graph;
    const Duration sensing_mean =
        Duration::millisF(stats.tracer.meanMs("sensing"));
    const Duration perception_mean =
        Duration::millisF(stats.tracer.meanMs("perception"));
    const Duration planning_mean =
        Duration::millisF(stats.tracer.meanMs("planning"));
    const TaskId s =
        graph.addFixedTask("sensing", "sensing-hw", sensing_mean);
    const TaskId p = graph.addFixedTask("perception", "perception-hw",
                                        perception_mean, {s});
    graph.addFixedTask("planning", "cpu", planning_mean, {p});
    const auto schedule = graph.schedule(
        64, Duration::seconds(1.0 / config_.frame_rate_hz));
    stats.throughput_hz = schedule.steadyStateThroughputHz();
    return stats;
}

LatencyTracer
SovPipelineModel::perceptionTaskBreakdown(std::size_t frames)
{
    const bool shared =
        config_.scene_platform == Platform::Gtx1060 &&
        config_.localization_platform == Platform::Gtx1060;
    LatencyTracer tracer;
    for (std::size_t i = 0; i < frames; ++i) {
        tracer.record("depth",
                      model_.latency(TaskKind::DepthEstimation,
                                     config_.scene_platform, shared)
                          .sample(rng_));
        tracer.record("detection",
                      model_.latency(TaskKind::Detection,
                                     config_.scene_platform, shared)
                          .sample(rng_));
        tracer.record("tracking",
                      config_.radar_tracking
                          ? Duration::millisF(1.0)
                          : model_.latency(TaskKind::KcfTracking,
                                           Platform::CoffeeLakeCpu)
                                .sample(rng_));
        tracer.record("localization",
                      model_.latency(TaskKind::Localization,
                                     config_.localization_platform,
                                     shared)
                          .sample(rng_));
    }
    return tracer;
}

} // namespace sov
