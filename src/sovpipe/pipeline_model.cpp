#include "sovpipe/pipeline_model.h"

namespace sov {

SovPipelineModel::SovPipelineModel(const PlatformModel &model,
                                   const SovPipelineConfig &config, Rng rng)
    : model_(model), config_(config), rng_(std::move(rng))
{
    stages_ = buildFig5Graph(graph_, model_, config_, &rng_,
                             Fig5Latency::Sampled);
}

FrameLatency
SovPipelineModel::groupStages(const runtime::FrameTrace &trace) const
{
    const runtime::StageSpan &sensing = trace.spans[stages_.sensing];
    const runtime::StageSpan &planning = trace.spans[stages_.planning];
    FrameLatency frame;
    frame.sensing = sensing.duration();
    // Perception spans both branches: from sensing done until planning
    // may start = max(depth + detection + tracking, localization).
    frame.perception = planning.start - sensing.finish;
    frame.planning = planning.duration();
    return frame;
}

FrameLatency
SovPipelineModel::sampleFrame()
{
    const runtime::RunResult run =
        runtime::DataflowExecutor::run(graph_, runtime::RunOptions{});
    return groupStages(run.frames.front());
}

PipelineStats
SovPipelineModel::characterize(std::size_t frames)
{
    // Single-shot runs (period zero): per-frame latency without
    // cross-frame contention — the Fig. 10 characterization.
    runtime::RunOptions opts;
    opts.frames = frames;
    const runtime::RunResult run =
        runtime::DataflowExecutor::run(graph_, opts);

    PipelineStats stats;
    for (const runtime::FrameTrace &trace : run.frames) {
        const FrameLatency f = groupStages(trace);
        stats.metrics.record("sensing", f.sensing);
        stats.metrics.record("perception", f.perception);
        stats.metrics.record("planning", f.planning);
        stats.metrics.recordTotal(f.total());
    }
    stats.best_case = Duration::millisF(
        stats.metrics.percentile("total", 0.0));
    stats.mean = Duration::millisF(stats.metrics.mean("total"));
    stats.p99 = Duration::millisF(
        stats.metrics.percentile("total", 99.0));

    // Pipelined throughput: the same Fig. 5 graph at the analytic
    // stage means, released at the frame rate; the slowest resource
    // lane bounds throughput, capped by the release rate.
    runtime::StageGraph mean_graph;
    buildFig5Graph(mean_graph, model_, config_, nullptr,
                   Fig5Latency::Mean);
    runtime::RunOptions pipelined;
    pipelined.frames = 64;
    pipelined.period = Duration::seconds(1.0 / config_.frame_rate_hz);
    stats.throughput_hz =
        runtime::DataflowExecutor::run(mean_graph, pipelined)
            .steadyStateThroughputHz();

    // Asynchronous pipeline parallelism: self-paced admission (period
    // zero) with a double-buffer window saturates the bottleneck lane
    // instead of the frame-rate cap. Runs on a fresh mean graph after
    // the sampled runs, so the sampled statistics above are untouched.
    runtime::StageGraph async_graph;
    buildFig5Graph(async_graph, model_, config_, nullptr,
                   Fig5Latency::Mean);
    runtime::AsyncOptions async;
    async.frames = 64;
    async.max_in_flight = 3;
    stats.async_throughput_hz =
        runtime::DataflowExecutor::runAsync(async_graph, async)
            .steadyStateThroughputHz();
    return stats;
}

obs::MetricRegistry
SovPipelineModel::perceptionTaskBreakdown(std::size_t frames)
{
    runtime::RunOptions opts;
    opts.frames = frames;
    const runtime::RunResult run =
        runtime::DataflowExecutor::run(graph_, opts);

    obs::MetricRegistry metrics;
    for (const runtime::FrameTrace &trace : run.frames) {
        metrics.record("depth", trace.spans[stages_.depth].duration());
        metrics.record("detection",
                       trace.spans[stages_.detection].duration());
        metrics.record("tracking",
                       trace.spans[stages_.tracking].duration());
        metrics.record("localization",
                       trace.spans[stages_.localization].duration());
    }
    return metrics;
}

} // namespace sov
