/**
 * @file
 * The SoV software pipeline as a calibrated stochastic model
 * (Fig. 5 structure x Fig. 6/8 platform timings -> Fig. 10 latency
 * characterization).
 *
 * The pipeline DAG is built once through buildFig5Graph() and executed
 * by the sov::runtime dataflow layer: single-shot runs give the
 * per-frame latency distribution (Fig. 10a/10b), a pipelined run at
 * the stage means gives the sustained throughput (Sec. III-A), and
 * the closed-loop simulation drives the very same graph event by
 * event — one pipeline definition, three characterizations.
 */
#pragma once

#include "core/rng.h"
#include "obs/metrics.h"
#include "platform/platform_model.h"
#include "runtime/dataflow.h"
#include "sovpipe/fig5_graph.h"

namespace sov {

/** One frame's stage latencies. */
struct FrameLatency
{
    Duration sensing;
    Duration perception;
    Duration planning;

    Duration total() const { return sensing + perception + planning; }
};

/** Aggregated characterization results. */
struct PipelineStats
{
    /** Histograms: sensing/perception/planning/total (milliseconds). */
    obs::MetricRegistry metrics;
    double throughput_hz = 0.0;
    /** Throughput of the asynchronous pipeline-parallel mode: frames
     *  admitted whenever the overlap window has room (self-paced), so
     *  the bottleneck lane — not the release cadence — sets the rate. */
    double async_throughput_hz = 0.0;
    Duration best_case;
    Duration mean;
    Duration p99;
};

/** The calibrated pipeline model. */
class SovPipelineModel
{
  public:
    SovPipelineModel(const PlatformModel &model,
                     const SovPipelineConfig &config, Rng rng);

    // The stage executors capture the member rng; moving or copying
    // the model would dangle them.
    SovPipelineModel(const SovPipelineModel &) = delete;
    SovPipelineModel &operator=(const SovPipelineModel &) = delete;

    /** Draw one frame's stage latencies (single-shot runtime run). */
    FrameLatency sampleFrame();

    /** Characterize @p frames frames (Fig. 10a/10b). */
    PipelineStats characterize(std::size_t frames);

    /**
     * Per-task mean latencies over @p frames runtime frames, for
     * Fig. 10b (depth / detection / tracking / localization).
     */
    obs::MetricRegistry perceptionTaskBreakdown(std::size_t frames);

    const SovPipelineConfig &config() const { return config_; }

    /** The shared Fig. 5 dataflow graph (Sampled executors). */
    runtime::StageGraph &graph() { return graph_; }

    /** Stage ids within graph(). */
    const Fig5Stages &stages() const { return stages_; }

    /** Group a runtime frame trace into the coarse Fig. 10a stages:
     *  sensing / perception (both branches) / planning. */
    FrameLatency groupStages(const runtime::FrameTrace &trace) const;

  private:
    const PlatformModel &model_;
    SovPipelineConfig config_;
    Rng rng_;
    runtime::StageGraph graph_;
    Fig5Stages stages_;
};

} // namespace sov
