/**
 * @file
 * The SoV software pipeline as a calibrated stochastic model
 * (Fig. 5 structure x Fig. 6/8 platform timings -> Fig. 10 latency
 * characterization).
 *
 * Per frame: sensing feeds perception; within perception, localization
 * runs parallel to scene understanding (depth || detection, tracking
 * after detection); planning consumes both. Stage latencies are drawn
 * from the PlatformModel's calibrated distributions for the chosen
 * mapping. The TaskGraph executor provides pipelined throughput.
 */
#pragma once

#include "core/rng.h"
#include "platform/platform_model.h"
#include "sim/latency_tracer.h"
#include "sim/task_graph.h"

namespace sov {

/** Which planner runs (MPC lane-level vs EM-style fine-grained). */
enum class PlannerKind { LaneMpc, EmStyle };

/** Pipeline configuration: the algorithm-to-hardware mapping. */
struct SovPipelineConfig
{
    Platform scene_platform = Platform::Gtx1060;
    Platform localization_platform = Platform::ZynqFpga;
    PlannerKind planner = PlannerKind::LaneMpc;
    /** Radar replaces KCF tracking (Sec. VI-B); if false the KCF
     *  baseline runs serialized after detection. */
    bool radar_tracking = true;
    double frame_rate_hz = 10.0; //!< pipeline cadence (Sec. III-A)
};

/** One frame's stage latencies. */
struct FrameLatency
{
    Duration sensing;
    Duration perception;
    Duration planning;

    Duration total() const { return sensing + perception + planning; }
};

/** Aggregated characterization results. */
struct PipelineStats
{
    LatencyTracer tracer;      //!< stages: sensing/perception/planning/total
    double throughput_hz = 0.0;
    Duration best_case;
    Duration mean;
    Duration p99;
};

/** The calibrated pipeline model. */
class SovPipelineModel
{
  public:
    SovPipelineModel(const PlatformModel &model,
                     const SovPipelineConfig &config, Rng rng)
        : model_(model), config_(config), rng_(std::move(rng)) {}

    /** Draw one frame's stage latencies. */
    FrameLatency sampleFrame();

    /** Characterize @p frames frames (Fig. 10a/10b). */
    PipelineStats characterize(std::size_t frames);

    /**
     * Per-task mean latencies over @p frames draws, for Fig. 10b
     * (depth / detection / tracking / localization).
     */
    LatencyTracer perceptionTaskBreakdown(std::size_t frames);

    const SovPipelineConfig &config() const { return config_; }

  private:
    const PlatformModel &model_;
    SovPipelineConfig config_;
    Rng rng_;
};

} // namespace sov
