#!/usr/bin/env python3
"""Summarize a TraceRecorder Chrome-trace export into a per-stage
latency table (the Fig. 10 breakdown) without rerunning the sim.

Input is the JSON written by TraceRecorder::writeChromeTrace():
"X" duration events carry per-execution spans (ts/dur in microseconds
of SIMULATION time), "M" thread_name metadata names the tracks. The
summary aggregates spans by name — count, best, mean, p99, worst — in
milliseconds, sorted by name so the output is deterministic.

Stdlib-only by design: this runs anywhere the trace file lands (CI
artifact download, a vehicle log pull) with no environment to set up.

Usage:
  trace_summarize.py TRACE.json                  # table to stdout
  trace_summarize.py TRACE.json --category stage # only "cat":"stage"
  trace_summarize.py TRACE.json --format csv
  trace_summarize.py TRACE.json --check GOLDEN   # exit 1 on mismatch
"""

from __future__ import annotations

import argparse
import json
import math
import sys


def load_spans(path, category=None, track=None):
    """Parse the export; return ({name: [dur_ms, ...]}, {tid: track})."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc.get("traceEvents", [])

    track_names = {}
    for ev in events:
        if ev.get("ph") == "M" and ev.get("name") == "thread_name":
            track_names[ev.get("tid")] = ev.get("args", {}).get("name", "")

    spans = {}
    for ev in events:
        if ev.get("ph") != "X":
            continue
        if category is not None and ev.get("cat") != category:
            continue
        if track is not None and \
                track_names.get(ev.get("tid")) != track:
            continue
        spans.setdefault(ev["name"], []).append(
            float(ev.get("dur", 0.0)) / 1000.0)
    return spans, track_names


def percentile(sorted_values, fraction):
    """Nearest-rank percentile of an ascending-sorted list."""
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


def summarize(spans):
    """Per-name stats rows sorted by name: (name, count, best, mean,
    p99, worst), all latencies in milliseconds."""
    rows = []
    for name in sorted(spans):
        durs = sorted(spans[name])
        rows.append((name, len(durs), durs[0],
                     sum(durs) / len(durs), percentile(durs, 0.99),
                     durs[-1]))
    return rows


def render_table(rows):
    header = ("stage", "count", "best_ms", "mean_ms", "p99_ms",
              "worst_ms")
    width = max([len(header[0])] + [len(r[0]) for r in rows])
    lines = ["%-*s %7s %10s %10s %10s %10s" % (width, *header)]
    for name, count, best, mean, p99, worst in rows:
        lines.append("%-*s %7d %10.3f %10.3f %10.3f %10.3f"
                     % (width, name, count, best, mean, p99, worst))
    return "\n".join(lines) + "\n"


def render_csv(rows):
    lines = ["stage,count,best_ms,mean_ms,p99_ms,worst_ms"]
    for name, count, best, mean, p99, worst in rows:
        lines.append("%s,%d,%.3f,%.3f,%.3f,%.3f"
                     % (name, count, best, mean, p99, worst))
    return "\n".join(lines) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Per-stage latency table from a Chrome trace "
                    "export (Fig. 10).")
    parser.add_argument("trace", help="writeChromeTrace() JSON file")
    parser.add_argument("--category",
                        help="only spans with this \"cat\" "
                             "(e.g. stage, frame)")
    parser.add_argument("--track",
                        help="only spans on this named track")
    parser.add_argument("--format", choices=("table", "csv"),
                        default="table")
    parser.add_argument("--check", metavar="GOLDEN",
                        help="compare against a golden rendering; "
                             "exit 1 and show a diff on mismatch")
    args = parser.parse_args(argv)

    spans, _ = load_spans(args.trace, args.category, args.track)
    if not spans:
        print("no matching spans in %s" % args.trace, file=sys.stderr)
        return 1
    rows = summarize(spans)
    rendered = (render_csv(rows) if args.format == "csv"
                else render_table(rows))

    if args.check:
        with open(args.check, "r", encoding="utf-8") as fh:
            golden = fh.read()
        if rendered != golden:
            sys.stderr.write("trace summary drifted from %s\n"
                             % args.check)
            got = rendered.splitlines()
            want = golden.splitlines()
            for i in range(max(len(got), len(want))):
                g = got[i] if i < len(got) else "<missing>"
                w = want[i] if i < len(want) else "<missing>"
                if g != w:
                    sys.stderr.write("  line %d:\n    golden: %s\n"
                                     "    got:    %s\n" % (i + 1, w, g))
            return 1
        print("trace summary matches %s" % args.check)
        return 0

    sys.stdout.write(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
