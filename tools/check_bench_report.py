#!/usr/bin/env python3
"""Validate BENCH_*.json reports against bench/report_schema.json.

Stdlib-only validator for the JSON-Schema subset the report schema
actually uses: type (including lists of types and "integer"), const,
enum, pattern, minimum, maximum, required, properties,
additionalProperties (boolean or schema), and items. Exits nonzero and lists every violation if any
report fails; prints one OK line per valid report.

Usage:
    tools/check_bench_report.py bench/report_schema.json BENCH_*.json
"""

import json
import re
import sys


def type_matches(value, type_name):
    if type_name == "null":
        return value is None
    if type_name == "boolean":
        return isinstance(value, bool)
    if type_name == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    if type_name == "number":
        return isinstance(value, (int, float)) and not isinstance(
            value, bool
        )
    if type_name == "string":
        return isinstance(value, str)
    if type_name == "object":
        return isinstance(value, dict)
    if type_name == "array":
        return isinstance(value, list)
    raise ValueError(f"unsupported schema type: {type_name}")


def validate(value, schema, path, errors):
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: expected const {schema['const']!r}, "
                      f"got {value!r}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in enum {schema['enum']!r}")
        return

    if "type" in schema:
        types = schema["type"]
        if isinstance(types, str):
            types = [types]
        if not any(type_matches(value, t) for t in types):
            errors.append(f"{path}: expected type {types}, got "
                          f"{type(value).__name__} ({value!r})")
            return

    if "pattern" in schema and isinstance(value, str):
        if not re.search(schema["pattern"], value):
            errors.append(f"{path}: {value!r} does not match pattern "
                          f"{schema['pattern']!r}")

    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            errors.append(f"{path}: {value!r} below minimum "
                          f"{schema['minimum']!r}")
        if "maximum" in schema and value > schema["maximum"]:
            errors.append(f"{path}: {value!r} above maximum "
                          f"{schema['maximum']!r}")

    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        for key, sub in value.items():
            if key in props:
                validate(sub, props[key], f"{path}.{key}", errors)
                continue
            extra = schema.get("additionalProperties", True)
            if extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(extra, dict):
                validate(sub, extra, f"{path}.{key}", errors)

    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(item, schema["items"], f"{path}[{i}]", errors)


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(argv[1], encoding="utf-8") as f:
        schema = json.load(f)

    failures = 0
    for report_path in argv[2:]:
        errors = []
        try:
            with open(report_path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            errors.append(f"{report_path}: unreadable or invalid JSON: "
                          f"{exc}")
            report = None
        if report is not None:
            validate(report, schema, report_path, errors)
        if errors:
            failures += 1
            for err in errors:
                print(f"FAIL {err}")
        else:
            print(f"OK   {report_path} "
                  f"(bench={report.get('bench')}, "
                  f"pass={report.get('pass')})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
