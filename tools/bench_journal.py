#!/usr/bin/env python3
"""Per-commit bench history journal.

bench_diff.py answers "did THIS change regress the committed
baseline?"; the journal answers the longitudinal question — how every
gated number has moved across the last N commits, and whether the
current head drifted against the entry before it.

The journal is a JSON-lines file: one line per `append` invocation,
holding the commit id, a wall timestamp, and a flattened snapshot of
every BENCH_*.json passed in — gate verdicts plus the named
performance values bench_diff.py tracks (latency / throughput /
availability / *_ms / *_hz / *per_sec keys from the meta block and
row tables; wall-clock keys are machine noise and are never
journalled). Append-only and line-oriented, so concurrent CI lanes
can't corrupt more than their own line and `git log`-style tooling
can tail it.

Subcommands:
    append  JOURNAL REPORT...  [--commit SHA]
        Append one entry. --commit defaults to `git rev-parse HEAD`
        of the current directory, falling back to "unknown".
    report  JOURNAL  [--fail-on-drift] [--tolerance 0.10] [--last N]
        Print per-bench history of the journalled values over the
        last N entries (default 10) and flag drift between the two
        most recent entries: gate flips pass -> fail always fail the
        report; perf keys moving more than --tolerance fail it only
        under --fail-on-drift.
    selftest
        Run the built-in behavioral checks (used by ctest).

Exit codes: 0 OK, 1 drift/gate-flip under the flags above, 2 usage or
unreadable input.
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

PERF_SUFFIXES = ("_ms", "_hz", "per_sec")
LABEL_KEYS = ("fault", "scenario", "policy", "mode", "preset", "stack",
              "tenant", "name")


def is_perf_key(key):
    lowered = key.lower()
    if "wall" in lowered:
        return False
    if ("latency" in lowered or "throughput" in lowered
            or "availability" in lowered or "ttfr" in lowered
            or "fairness" in lowered):
        return True
    return lowered.endswith(PERF_SUFFIXES)


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def row_label(row, index):
    parts = [row[key] for key in LABEL_KEYS
             if isinstance(row.get(key), str)]
    if parts:
        return "/".join(parts)
    for value in row.values():
        if isinstance(value, str):
            return value
    return f"#{index}"


def flatten_report(report):
    """One report -> {"gates": {name: bool}, "perf": {path: number}}."""
    gates = {g["name"]: bool(g.get("pass"))
             for g in report.get("gates", [])}
    perf = {}
    for key, value in report.get("meta", {}).items():
        if is_perf_key(key) and is_number(value):
            perf[f"meta.{key}"] = value
    for table, rows in sorted(report.get("rows", {}).items()):
        for i, row in enumerate(rows):
            label = row_label(row, i)
            for key, value in row.items():
                if is_perf_key(key) and is_number(value):
                    perf[f"{table}[{label}].{key}"] = value
    return {"gates": gates, "perf": perf,
            "pass": bool(report.get("pass")),
            "smoke": bool(report.get("smoke"))}


def git_head():
    try:
        out = subprocess.run(["git", "rev-parse", "HEAD"],
                             capture_output=True, text=True, check=True)
        return out.stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_journal(path):
    entries = []
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_no}: {exc}") from exc
    return entries


def cmd_append(args):
    entry = {"commit": args.commit or git_head(),
             "time": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
             "reports": {}}
    for path in args.reports:
        try:
            with open(path, encoding="utf-8") as f:
                report = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"bench_journal: unreadable report {path}: {exc}",
                  file=sys.stderr)
            return 2
        entry["reports"][os.path.basename(path)] = flatten_report(report)
    if not entry["reports"]:
        print("bench_journal: no reports to append", file=sys.stderr)
        return 2
    with open(args.journal, "a", encoding="utf-8") as f:
        f.write(json.dumps(entry, sort_keys=True) + "\n")
    print(f"journalled {len(entry['reports'])} report(s) at "
          f"{entry['commit'][:12]} -> {args.journal}")
    return 0


def drift_between(prev, head, tolerance):
    """(gate_flips, perf_drifts) between two journal entries."""
    gate_flips = []
    perf_drifts = []
    for name, head_report in sorted(head["reports"].items()):
        prev_report = prev["reports"].get(name)
        if prev_report is None:
            continue
        if prev_report.get("smoke") != head_report.get("smoke"):
            continue  # smoke vs full runs differ by design
        for gate, passed in sorted(prev_report["gates"].items()):
            now = head_report["gates"].get(gate)
            if passed and now is False:
                gate_flips.append(f"{name}: gate '{gate}' pass -> FAIL")
        for key, base in sorted(prev_report["perf"].items()):
            value = head_report["perf"].get(key)
            if not is_number(value):
                continue
            if base == 0:
                drift = 0.0 if value == 0 else float("inf")
            else:
                drift = abs(value - base) / abs(base)
            if drift > tolerance:
                perf_drifts.append(
                    f"{name}: {key}: {base:g} -> {value:g} "
                    f"({drift * 100.0:+.1f}% > {tolerance * 100.0:.0f}%)")
    return gate_flips, perf_drifts


def cmd_report(args):
    try:
        entries = load_journal(args.journal)
    except (OSError, ValueError) as exc:
        print(f"bench_journal: {exc}", file=sys.stderr)
        return 2
    if not entries:
        print(f"bench_journal: empty journal {args.journal}")
        return 0

    window = entries[-args.last:]
    print(f"=== bench journal: {len(entries)} entries, showing last "
          f"{len(window)} ===")
    # Per-bench, per-key value series across the window.
    series = {}
    for entry in window:
        for name, report in entry["reports"].items():
            for key, value in report["perf"].items():
                series.setdefault((name, key), []).append(value)
    for (name, key), values in sorted(series.items()):
        lo, hi = min(values), max(values)
        spread = (hi - lo) / abs(lo) if lo else 0.0
        rendered = " ".join(f"{v:g}" for v in values)
        print(f"{name} {key}: {rendered}"
              + (f"  [spread {spread * 100.0:.1f}%]" if len(values) > 1
                 else ""))

    if len(entries) < 2:
        print("no previous entry to diff against")
        return 0
    gate_flips, perf_drifts = drift_between(entries[-2], entries[-1],
                                            args.tolerance)
    for flip in gate_flips:
        print(f"GATE  {flip}")
    for drift in perf_drifts:
        print(f"DRIFT {drift}")
    if not gate_flips and not perf_drifts:
        print("head vs previous: no gate flips, no out-of-tolerance "
              "drift")
    if gate_flips:
        return 1
    if perf_drifts and args.fail_on_drift:
        return 1
    return 0


def cmd_selftest(_args):
    report_a = {
        "schema": "sov-bench-report-v1", "bench": "demo", "smoke": False,
        "meta": {"latency_budget_ms": 100.0, "wall_s": 3.0},
        "rows": {"runs": [{"name": "r1", "scenarios_per_sec": 50.0,
                           "wall_s": 9.9}]},
        "gates": [{"name": "deterministic", "pass": True}],
        "pass": True,
    }
    report_b = json.loads(json.dumps(report_a))
    report_b["rows"]["runs"][0]["scenarios_per_sec"] = 30.0  # -40%
    report_b["gates"][0]["pass"] = False

    flat = flatten_report(report_a)
    assert flat["perf"] == {"meta.latency_budget_ms": 100.0,
                            "runs[r1].scenarios_per_sec": 50.0}, flat
    assert flat["gates"] == {"deterministic": True}

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "journal.jsonl")
        for i, report in enumerate((report_a, report_b)):
            path = os.path.join(tmp, "BENCH_demo.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump(report, f)
            rc = main(["bench_journal", "append", journal, path,
                       "--commit", f"c{i}"])
            assert rc == 0, rc

        entries = load_journal(journal)
        assert len(entries) == 2
        assert entries[0]["commit"] == "c0"
        # Wall-clock keys never journalled.
        assert all("wall" not in k
                   for e in entries
                   for r in e["reports"].values()
                   for k in r["perf"])

        gate_flips, perf_drifts = drift_between(entries[0], entries[1],
                                                0.10)
        assert gate_flips == ["BENCH_demo.json: gate 'deterministic' "
                              "pass -> FAIL"], gate_flips
        assert len(perf_drifts) == 1, perf_drifts
        assert "scenarios_per_sec" in perf_drifts[0]

        # A gate flip fails the report even without --fail-on-drift.
        rc = main(["bench_journal", "report", journal])
        assert rc == 1, rc

        # Drift alone only fails under --fail-on-drift.
        entries[1]["reports"]["BENCH_demo.json"]["gates"][
            "deterministic"] = True
        with open(journal, "w", encoding="utf-8") as f:
            for e in entries:
                f.write(json.dumps(e, sort_keys=True) + "\n")
        rc = main(["bench_journal", "report", journal])
        assert rc == 0, rc
        rc = main(["bench_journal", "report", journal,
                   "--fail-on-drift"])
        assert rc == 1, rc

        # Smoke-vs-full pairs are skipped (matrices differ by design).
        entries[1]["reports"]["BENCH_demo.json"]["smoke"] = True
        with open(journal, "w", encoding="utf-8") as f:
            for e in entries:
                f.write(json.dumps(e, sort_keys=True) + "\n")
        rc = main(["bench_journal", "report", journal,
                   "--fail-on-drift"])
        assert rc == 0, rc

    print("bench_journal selftest OK")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, add_help=True,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    p_append = sub.add_parser("append")
    p_append.add_argument("journal")
    p_append.add_argument("reports", nargs="+")
    p_append.add_argument("--commit", default=None)
    p_append.set_defaults(func=cmd_append)

    p_report = sub.add_parser("report")
    p_report.add_argument("journal")
    p_report.add_argument("--fail-on-drift", action="store_true")
    p_report.add_argument("--tolerance", type=float, default=0.10)
    p_report.add_argument("--last", type=int, default=10)
    p_report.set_defaults(func=cmd_report)

    p_selftest = sub.add_parser("selftest")
    p_selftest.set_defaults(func=cmd_selftest)

    args = parser.parse_args(argv[1:])
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
