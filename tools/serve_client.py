#!/usr/bin/env python3
"""Line-protocol client for the sov::serve scenario service.

Speaks the newline-delimited protocol from DESIGN.md over TCP or a
Unix socket. Every command's response is one or more lines; the final
line always starts with "OK" or "ERR", which is how the client frames
multi-line replies (CATALOG's SET lines, ROWS' ROW lines).

Usage:
    tools/serve_client.py --tcp HOST:PORT COMMAND [ARG ...]
    tools/serve_client.py --unix /path/to.sock COMMAND [ARG ...]

Commands:
    ping                          liveness check
    catalog                       list scenario sets
    stats                         service-wide counters
    submit TENANT SET [K=V ...]   enqueue a job (seed=, seeds=,
                                  horizon_s=, deadline_s=, label=);
                                  add --wait to block until terminal,
                                  --rows to stream outcome rows
    status JOB                    one snapshot line
    wait JOB [TIMEOUT_S]          block until terminal (or timeout)
    rows JOB [FROM]               fetch outcome rows from index FROM
    cancel JOB                    revoke queued + in-flight shards
    repl                          interactive prompt (QUIT to exit)

Exits 0 when the final response line is OK, 1 on ERR, 2 on usage or
connection errors.
"""

import argparse
import socket
import sys


class LineClient:
    """Buffered newline-framed request/response over a stream socket."""

    def __init__(self, sock):
        self.sock = sock
        self.buffer = b""

    @classmethod
    def connect(cls, tcp, unix):
        if unix:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(unix)
        else:
            host, _, port = tcp.rpartition(":")
            sock = socket.create_connection((host or "127.0.0.1",
                                             int(port)))
        return cls(sock)

    def read_line(self):
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(4096)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buffer += chunk
        line, _, self.buffer = self.buffer.partition(b"\n")
        return line.decode("utf-8", errors="replace").rstrip("\r")

    def request(self, line):
        """Send one command; return the response lines (terminal last)."""
        self.sock.sendall(line.encode("utf-8") + b"\n")
        lines = []
        while True:
            response = self.read_line()
            lines.append(response)
            if response.startswith(("OK", "ERR")):
                return lines

    def close(self):
        self.sock.close()


def run_request(client, line, quiet_prefixes=()):
    lines = client.request(line)
    for response in lines:
        if not response.startswith(quiet_prefixes):
            print(response)
    return 0 if lines[-1].startswith("OK") else 1


def parse_field(line, key):
    """Pull `key=value` out of a snapshot/response line."""
    for token in line.split():
        if token.startswith(key + "="):
            return token[len(key) + 1:]
    return None


def cmd_submit(client, args):
    line = f"SUBMIT {args.tenant} {args.set}"
    for option in args.options:
        if "=" not in option:
            print(f"serve_client: option {option!r} is not k=v",
                  file=sys.stderr)
            return 2
        line += " " + option
    lines = client.request(line)
    for response in lines:
        print(response)
    if not lines[-1].startswith("OK"):
        return 1
    job = parse_field(lines[-1], "job")
    if args.wait or args.rows:
        status = run_request(client, f"WAIT {job} timeout_s=86400")
        if status:
            return status
    if args.rows:
        return run_request(client, f"ROWS {job} from=0")
    return 0


def repl(client):
    print("connected; QUIT to exit", file=sys.stderr)
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                continue
            for response in client.request(line):
                print(response)
            if line.upper() == "QUIT":
                return 0
    except (ConnectionError, KeyboardInterrupt):
        pass
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description=__doc__, add_help=True,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    transport = parser.add_mutually_exclusive_group(required=True)
    transport.add_argument("--tcp", metavar="HOST:PORT")
    transport.add_argument("--unix", metavar="SOCKET_PATH")
    sub = parser.add_subparsers(dest="command", required=True)

    for simple in ("ping", "catalog", "stats", "repl"):
        sub.add_parser(simple)
    submit = sub.add_parser("submit")
    submit.add_argument("tenant")
    submit.add_argument("set")
    submit.add_argument("options", nargs="*", metavar="K=V")
    submit.add_argument("--wait", action="store_true")
    submit.add_argument("--rows", action="store_true")
    for job_command in ("status", "cancel"):
        sub.add_parser(job_command).add_argument("job")
    wait = sub.add_parser("wait")
    wait.add_argument("job")
    wait.add_argument("timeout_s", nargs="?", default="86400")
    rows = sub.add_parser("rows")
    rows.add_argument("job")
    rows.add_argument("from_index", nargs="?", default="0",
                      metavar="FROM")
    args = parser.parse_args(argv[1:])

    try:
        client = LineClient.connect(args.tcp, args.unix)
    except (OSError, ValueError) as exc:
        print(f"serve_client: cannot connect: {exc}", file=sys.stderr)
        return 2
    try:
        if args.command == "repl":
            return repl(client)
        if args.command == "submit":
            return cmd_submit(client, args)
        if args.command == "wait":
            return run_request(
                client, f"WAIT {args.job} timeout_s={args.timeout_s}")
        if args.command == "rows":
            return run_request(
                client, f"ROWS {args.job} from={args.from_index}")
        if args.command in ("status", "cancel"):
            return run_request(
                client, f"{args.command.upper()} {args.job}")
        return run_request(client, args.command.upper())
    except ConnectionError as exc:
        print(f"serve_client: {exc}", file=sys.stderr)
        return 2
    finally:
        client.close()


if __name__ == "__main__":
    sys.exit(main(sys.argv))
